"""Setuptools shim.

The environment is offline and lacks the ``wheel`` package, so PEP 660
editable installs fail; ``python setup.py develop`` (or ``pip install
-e . --no-build-isolation`` on newer toolchains) installs the package
from pyproject.toml metadata instead.
"""

from setuptools import setup

setup()
