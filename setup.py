"""Package metadata and entry points.

The environment is offline and lacks the ``wheel`` package, so PEP 660
editable installs can fail; ``python setup.py develop`` (or ``pip
install -e . --no-build-isolation`` on newer toolchains) installs the
package from the metadata below.  Installing provides the ``repro``
console script (equivalent to ``python -m repro``).
"""

from setuptools import find_packages, setup

setup(
    name="rotor-router-ring",
    version="1.0.0",
    description=(
        "Reproduction of 'The multi-agent rotor-router on the ring: a "
        "deterministic alternative to parallel random walks' (PODC 2013)"
    ),
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    extras_require={
        "test": ["pytest", "hypothesis", "pytest-benchmark"],
    },
    entry_points={
        "console_scripts": ["repro=repro.cli:main"],
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "Topic :: Scientific/Engineering",
    ],
)
