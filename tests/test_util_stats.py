"""Tests for repro.util.stats."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.stats import (
    bootstrap_ci,
    geometric_mean,
    max_abs_deviation_ratio,
    normal_ci,
    summarize,
)


class TestSummarize:
    def test_basic(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.mean == pytest.approx(2.5)
        assert s.minimum == 1.0
        assert s.maximum == 4.0
        assert s.median == pytest.approx(2.5)

    def test_singleton(self):
        s = summarize([7.0])
        assert s.std == 0.0
        assert s.sem() == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50))
    def test_mean_within_bounds(self, values):
        s = summarize(values)
        assert s.minimum - 1e-9 <= s.mean <= s.maximum + 1e-9


class TestNormalCi:
    def test_contains_mean(self):
        low, high = normal_ci([1.0, 2.0, 3.0, 4.0, 5.0])
        assert low <= 3.0 <= high

    def test_widens_with_confidence(self):
        data = [1.0, 2.0, 3.0, 4.0, 5.0]
        low90, high90 = normal_ci(data, 0.90)
        low99, high99 = normal_ci(data, 0.99)
        assert high99 - low99 > high90 - low90

    def test_nonstandard_confidence_uses_stdlib(self, monkeypatch):
        # Regression: non-tabulated confidences used to import scipy,
        # which setup.py does not declare — a minimal (numpy-only)
        # install crashed with ImportError.  The fallback is stdlib.
        import builtins
        import sys

        monkeypatch.delitem(sys.modules, "scipy", raising=False)
        monkeypatch.delitem(sys.modules, "scipy.stats", raising=False)
        real_import = builtins.__import__

        def no_scipy(name, *args, **kwargs):
            if name.startswith("scipy"):
                raise ImportError(f"{name} is not installed")
            return real_import(name, *args, **kwargs)

        monkeypatch.setattr(builtins, "__import__", no_scipy)
        low, high = normal_ci([1.0, 2.0, 3.0], 0.85)
        assert low < 2.0 < high

    def test_nontabulated_confidence_matches_known_z(self):
        # confidence 0.975 -> z = Phi^-1(0.9875) = 2.2414 (not in the
        # 0.90/0.95/0.99 table).
        data = [1.0, 2.0, 3.0, 4.0, 5.0]
        low, high = normal_ci(data, 0.975)
        s = summarize(data)
        half = 2.241403 * s.sem()
        assert low == pytest.approx(s.mean - half, rel=1e-5)
        assert high == pytest.approx(s.mean + half, rel=1e-5)

    def test_invalid_confidence_rejected(self):
        with pytest.raises(ValueError):
            normal_ci([1.0, 2.0], 1.5)


class TestBootstrapCi:
    def test_contains_mean_for_symmetric_data(self):
        data = [float(i) for i in range(20)]
        low, high = bootstrap_ci(data, seed=1)
        assert low <= 9.5 <= high

    def test_singleton_degenerate(self):
        assert bootstrap_ci([5.0]) == (5.0, 5.0)

    def test_deterministic_given_seed(self):
        data = [1.0, 5.0, 2.0, 8.0, 3.0]
        assert bootstrap_ci(data, seed=3) == bootstrap_ci(data, seed=3)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    @given(st.lists(st.floats(0.1, 100.0), min_size=1, max_size=20))
    def test_between_min_and_max(self, values):
        g = geometric_mean(values)
        assert min(values) - 1e-9 <= g <= max(values) + 1e-9

    def test_log_identity(self):
        values = [2.0, 8.0, 4.0]
        expected = math.exp(sum(math.log(v) for v in values) / 3)
        assert geometric_mean(values) == pytest.approx(expected)


class TestDeviationRatio:
    def test_flat_is_one(self):
        assert max_abs_deviation_ratio([3.0, 3.0, 3.0]) == 1.0

    def test_ratio(self):
        assert max_abs_deviation_ratio([2.0, 4.0]) == pytest.approx(2.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            max_abs_deviation_ratio([1.0, -1.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            max_abs_deviation_ratio([])
