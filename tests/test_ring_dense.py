"""The dense ring engine must match the sparse one exactly."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ring import RingRotorRouter
from repro.core.ring_dense import DenseRingRotorRouter


@st.composite
def ring_setup(draw):
    n = draw(st.integers(3, 40))
    k = draw(st.integers(1, 2 * n))  # dense regimes included
    dirs = draw(st.lists(st.sampled_from((1, -1)), min_size=n, max_size=n))
    agents = draw(st.lists(st.integers(0, n - 1), min_size=k, max_size=k))
    rounds = draw(st.integers(1, 80))
    return n, dirs, agents, rounds


class TestEquivalence:
    @given(ring_setup())
    @settings(max_examples=50, deadline=None)
    def test_matches_sparse_engine(self, setup):
        n, dirs, agents, rounds = setup
        sparse = RingRotorRouter(n, list(dirs), agents, track_counts=False)
        dense = DenseRingRotorRouter(n, list(dirs), agents)
        for _ in range(rounds):
            sparse.step()
            dense.step()
            assert sparse.positions() == dense.positions()
            assert list(sparse.ptr) == [int(d) for d in dense.ptr]
        assert sparse.unvisited == dense.unvisited

    @given(ring_setup())
    @settings(max_examples=20, deadline=None)
    def test_cover_times_match(self, setup):
        n, dirs, agents, _ = setup
        budget = 8 * n * n + 64
        sparse = RingRotorRouter(n, list(dirs), agents, track_counts=False)
        dense = DenseRingRotorRouter(n, list(dirs), agents)
        assert sparse.run_until_covered(budget) == \
            dense.run_until_covered(budget)


class TestValidation:
    def test_min_size(self):
        with pytest.raises(ValueError):
            DenseRingRotorRouter(2, [1, 1], [0])

    def test_pointer_values(self):
        with pytest.raises(ValueError):
            DenseRingRotorRouter(4, [1, 0, 1, 1], [0])

    def test_agents_required(self):
        with pytest.raises(ValueError):
            DenseRingRotorRouter(4, [1] * 4, [])

    def test_budget(self):
        e = DenseRingRotorRouter(32, [1] * 32, [0])
        with pytest.raises(RuntimeError):
            e.run_until_covered(3)

    def test_token_conservation_dense_regime(self):
        e = DenseRingRotorRouter(8, [1] * 8, [0] * 100)
        e.run(50)
        assert sum(e.counts) == 100
