"""Fault tolerance: injection plans, the supervisor, self-healing.

The chaos acceptance suite for the fault-tolerant executor: seeded
:class:`repro.sweep.faults.FaultPlan` injections (worker crash, poison
cell, chunk delay past its deadline, corrupted store row) must leave
``run_cells`` finishing with exactly the poison cell quarantined and
every other metric bit-identical to a fault-free run — under both
store backends and both ``jobs=1``/``jobs=2`` — plus interrupt
safety, serial degradation, progress accounting and the
``repro cache verify`` CLI.
"""

import glob
import json
import os

import pytest

from repro.cli import main
from repro.sweep.executor import (
    FailureReport,
    StderrProgress,
    run_cells,
    run_sweep,
)
from repro.sweep.faults import (
    FAULTS_ENV,
    ExecutionPolicy,
    FaultPlan,
    active_policy,
    corrupt_rows_in_store,
    execution_policy,
)
from repro.sweep.spec import InitFamily, ScenarioSpec
from repro.sweep.store import open_store, verify_store

BACKENDS = ("json", "sqlite")


def _spec(**overrides):
    base = dict(
        name="faults-test",
        ns=(16, 24),
        ks=(2, 3),
        families=(
            InitFamily("all_on_one", "toward_node0"),
            InitFamily("equally_spaced", "negative"),
        ),
        metrics=("cover",),
    )
    base.update(overrides)
    return ScenarioSpec(**base)


def _store_spec(backend: str, tmp_path) -> str:
    directory = str(tmp_path / f"cache-{backend}")
    return directory if backend == "json" else f"sqlite://{directory}"


def _baseline(cells) -> dict:
    metrics, cached, report = run_cells(cells)
    assert report.clean and not cached
    return metrics


class TestFaultPlan:
    def test_round_trip_and_enabled(self):
        plan = FaultPlan(
            seed=7,
            crash_chunks=(0, 2),
            poison_cells=("abc",),
            delay_chunks=((1, 0.5),),
            flaky_chunks=((3, 2),),
            corrupt_rows=("def",),
        )
        assert plan.enabled
        assert FaultPlan.from_dict(plan.to_dict()) == plan
        assert not FaultPlan(seed=7).enabled

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        assert FaultPlan.from_env() is None
        plan = FaultPlan(poison_cells=("ab",))
        monkeypatch.setenv(FAULTS_ENV, json.dumps(plan.to_dict()))
        assert FaultPlan.from_env() == plan

    def test_from_env_malformed_is_loud(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "not json")
        with pytest.raises(ValueError, match=FAULTS_ENV):
            FaultPlan.from_env()
        monkeypatch.setenv(FAULTS_ENV, "[1, 2]")
        with pytest.raises(ValueError, match="JSON object"):
            FaultPlan.from_env()

    def test_corrupt_matches_by_prefix(self):
        plan = FaultPlan(corrupt_rows=("ab", "ff"))
        assert plan.corrupt_matches(["abc", "ba", "ffff"]) == ["abc", "ffff"]

    def test_policy_stack(self):
        assert active_policy() is None
        with execution_policy(ExecutionPolicy(max_retries=0)) as outer:
            assert active_policy() is outer
            with execution_policy(
                ExecutionPolicy(chunk_timeout=1.0)
            ) as inner:
                assert active_policy() is inner
            assert active_policy() is outer
        assert active_policy() is None


class TestChaosSuite:
    """The acceptance scenario: crash + poison + delay + corrupt row."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("jobs", (1, 2))
    def test_survives_and_heals(self, tmp_path, backend, jobs):
        cells = _spec().configs()
        assert len(cells) == 8
        baseline = _baseline(cells)
        poison = cells[0].config_hash
        tampered = cells[1].config_hash
        plan = FaultPlan(
            seed=1,
            crash_chunks=(0,),
            poison_cells=(poison,),
            delay_chunks=((0, 0.05),),
            corrupt_rows=(tampered,),
        )
        cache_dir = _store_spec(backend, tmp_path)

        metrics, cached, report = run_cells(
            cells, jobs=jobs, cache_dir=cache_dir, faults=plan,
            max_retries=1, chunk_timeout=120.0, retry_backoff=0.01,
        )
        # Only the poison cell is quarantined; everything else is
        # bit-identical to the fault-free run.
        assert report.quarantined.keys() == {poison}
        assert "InjectedFault" in report.quarantined[poison]
        assert report.failed == 1 and not cached
        assert metrics == {
            h: m for h, m in baseline.items() if h != poison
        }
        if jobs > 1:
            assert report.pool_restarts >= 1  # the injected crash
        else:
            assert report.retries >= 1  # crash simulated in-process
        assert report.chunk_failures >= 1  # bisection ran

        # The tampered row is caught by a full scan, and a fault-free
        # rerun recomputes exactly the quarantined + corrupt cells.
        directory = cache_dir.removeprefix("sqlite://")
        assert verify_store(directory).corrupt == 1
        metrics2, cached2, report2 = run_cells(
            cells, jobs=jobs, cache_dir=cache_dir
        )
        assert report2.clean
        assert metrics2 == baseline
        assert len(cached2) == len(cells) - 2
        assert verify_store(directory).ok

    def test_flaky_chunk_retries_transparently(self, tmp_path):
        cells = _spec().configs()
        plan = FaultPlan(flaky_chunks=((0, 2),))
        metrics, _, report = run_cells(
            cells, faults=plan, max_retries=2, retry_backoff=0.0,
        )
        assert metrics == _baseline(cells)
        assert report.retries == 2
        assert not report.quarantined and not report.chunk_failures

    def test_delay_past_deadline_times_out_and_recovers(self, tmp_path):
        cells = _spec().configs()
        plan = FaultPlan(delay_chunks=((0, 1.5),))
        metrics, _, report = run_cells(
            cells, jobs=2, faults=plan,
            max_retries=2, chunk_timeout=0.25, retry_backoff=0.0,
        )
        assert metrics == _baseline(cells)
        assert report.timeouts >= 1
        assert report.pool_restarts >= 1  # the hung slot was reclaimed
        assert not report.quarantined

    def test_retries_exhausted_quarantines_single_cell(self):
        # max_retries=0: the poison fault goes straight to bisection.
        cells = _spec().configs()
        poison = cells[3].config_hash
        metrics, _, report = run_cells(
            cells, faults=FaultPlan(poison_cells=(poison,)),
            max_retries=0, retry_backoff=0.0,
        )
        assert report.quarantined.keys() == {poison}
        assert set(metrics) == {
            c.config_hash for c in cells if c.config_hash != poison
        }


class TestSerialDegradation:
    def test_pool_creation_failure_degrades_to_serial(self, monkeypatch):
        import repro.sweep.executor as executor_module

        def broken_pool(jobs):
            raise RuntimeError("no pool for you")

        monkeypatch.setattr(executor_module, "_create_pool", broken_pool)
        cells = _spec().configs()
        metrics, _, report = run_cells(cells, jobs=2)
        assert metrics == _baseline(cells)
        assert report.serial_fallbacks == 1
        assert not report.quarantined

    def test_repeated_pool_death_degrades_to_serial(self, monkeypatch):
        import repro.sweep.executor as executor_module

        created = []

        class DispatchBrokenPool:
            def apply_async(self, fn, args):
                raise RuntimeError("pool lost its workers")

            def terminate(self):
                pass

            def join(self):
                pass

        def flaky_pool(jobs):
            created.append(jobs)
            return DispatchBrokenPool()

        monkeypatch.setattr(executor_module, "_create_pool", flaky_pool)
        cells = _spec().configs()
        metrics, _, report = run_cells(cells, jobs=2)
        assert metrics == _baseline(cells)
        assert report.serial_fallbacks == 1
        assert not report.quarantined


class TestAccounting:
    def test_progress_reaches_total_despite_quarantine(self):
        cells = _spec().configs()
        poison = cells[0].config_hash
        calls = []
        _, _, report = run_cells(
            cells,
            progress=lambda done, total: calls.append((done, total)),
            faults=FaultPlan(poison_cells=(poison,)),
            max_retries=0, retry_backoff=0.0,
        )
        assert report.failed == 1
        assert calls[-1] == (len(cells), len(cells))
        dones = [done for done, _ in calls]
        assert dones == sorted(dones)  # never regresses, never stalls

    def test_stderr_progress_accepts_failed_cells(self, capsys):
        # The (done, total) stream includes quarantined cells, so the
        # reporter completes and resets exactly as in a clean sweep.
        progress = StderrProgress(tty=False, interval=0.0)
        cells = _spec().configs()
        run_cells(
            cells, progress=progress,
            faults=FaultPlan(poison_cells=(cells[0].config_hash,)),
            max_retries=0, retry_backoff=0.0,
        )
        err = capsys.readouterr().err
        assert f"{len(cells)}/{len(cells)} configurations" in err
        assert progress._watch is None  # reset fired at completion

    def test_run_sweep_failed_accounting_and_table(self):
        spec = _spec()
        poison = spec.configs()[0].config_hash
        result = run_sweep(
            spec, faults=FaultPlan(poison_cells=(poison,)),
            max_retries=0, retry_backoff=0.0,
        )
        assert result.failed == 1
        assert result.cache_hits == 0
        assert result.cache_misses == len(result.results) - 1
        assert isinstance(result.failure_report, FailureReport)
        [failed_row] = [r for r in result.results if r.failed]
        assert failed_row.config.config_hash == poison
        assert failed_row.metrics == {}
        assert "failed" in result.table().render()

    def test_measurement_plan_refuses_quarantined_cells(self, monkeypatch):
        from repro.analysis.backend import MeasurementPlan

        # An empty prefix poisons every cell: the experiment bridge
        # must fail loudly rather than serve partial tables.
        monkeypatch.setenv(
            FAULTS_ENV, json.dumps({"poison_cells": [""]})
        )
        plan = MeasurementPlan(backend="batch")
        plan.rotor_cover(8, [0, 4], [0] * 8)
        with pytest.raises(RuntimeError, match="quarantined"):
            with execution_policy(
                ExecutionPolicy(max_retries=0, retry_backoff=0.0)
            ):
                plan.execute()


class TestInterruptSafety:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("jobs", (1, 2))
    def test_interrupt_between_commits(self, tmp_path, backend, jobs):
        cells = _spec().configs()
        baseline = _baseline(cells)
        cache_dir = _store_spec(backend, tmp_path)
        directory = cache_dir.removeprefix("sqlite://")
        segments_before = set(glob.glob("/dev/shm/repro-*"))

        class Interrupt(KeyboardInterrupt):
            pass

        def interrupting(done, total):
            if done >= 2:  # after the first committed chunk
                raise Interrupt()

        with pytest.raises(Interrupt):
            run_cells(
                cells, jobs=jobs, cache_dir=cache_dir,
                progress=interrupting, chunk_lanes=2,
            )
        # No shared-memory segment outlives the interrupted call.
        assert set(glob.glob("/dev/shm/repro-*")) <= segments_before
        # Committed chunks are fully readable, nothing is torn.
        assert verify_store(directory).ok
        store = open_store(cache_dir)
        try:
            committed = store.count()
        finally:
            store.close()
        assert 0 < committed < len(cells)
        # The rerun recomputes exactly the uncommitted cells.
        metrics, cached, report = run_cells(
            cells, jobs=jobs, cache_dir=cache_dir
        )
        assert report.clean
        assert metrics == baseline
        assert len(cached) == committed


class TestVerifyCli:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_verify_reports_and_repairs(self, tmp_path, backend, capsys):
        cells = _spec().configs()
        cache_dir = _store_spec(backend, tmp_path)
        directory = cache_dir.removeprefix("sqlite://")
        run_cells(cells, cache_dir=cache_dir)
        assert main(["cache", "verify", directory]) == 0
        out = capsys.readouterr().out
        assert f"backend={backend} checked={len(cells)} corrupt=0" in out

        store = open_store(cache_dir)
        try:
            corrupt_rows_in_store(store, [cells[0].config_hash])
        finally:
            store.close()
        assert main(["cache", "verify", directory]) == 1
        assert "corrupt=1 repaired=0" in capsys.readouterr().out
        assert main(["cache", "verify", directory, "--repair"]) == 0
        assert "corrupt=1 repaired=1" in capsys.readouterr().out
        assert main(["cache", "verify", directory]) == 0

        # The quarantined row is recomputed (and overwritten) on rerun.
        _, cached, report = run_cells(cells, cache_dir=cache_dir)
        assert report.clean
        assert len(cached) == len(cells) - 1

    def test_verify_absent_directory_is_vacuously_clean(
        self, tmp_path, capsys
    ):
        assert main(["cache", "verify", str(tmp_path / "nope")]) == 0
        assert "checked=0 corrupt=0" in capsys.readouterr().out


class TestSweepCliFaults:
    def test_env_hook_reaches_sweep_and_accounts_failed(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.sweep.registry import scenario

        cells = scenario("table1", quick=True).configs()
        poison = cells[0].config_hash
        monkeypatch.setenv(
            FAULTS_ENV, json.dumps({"poison_cells": [poison]})
        )
        cache = str(tmp_path / "cache")
        assert main([
            "sweep", "table1", "--quick", "--cache", cache,
            "--max-retries", "0",
        ]) == 0
        captured = capsys.readouterr()
        assert f"computed={len(cells) - 1} cached=0 failed=1" \
            in captured.out
        assert f"quarantined {poison[:12]}" in captured.err

        # Fault-free rerun: only the quarantined cell is recomputed,
        # and the accounting line carries no failed= field.
        monkeypatch.delenv(FAULTS_ENV)
        assert main(["sweep", "table1", "--quick", "--cache", cache]) == 0
        out = capsys.readouterr().out
        assert f"computed=1 cached={len(cells) - 1}" in out
        assert "failed=" not in out

    def test_robustness_knobs_reject_bad_values(self):
        with pytest.raises(SystemExit):
            main([
                "sweep", "table1", "--quick", "--cache", "none",
                "--max-retries", "-1",
            ])
        with pytest.raises(SystemExit):
            main([
                "sweep", "table1", "--quick", "--cache", "none",
                "--chunk-timeout", "0",
            ])


class TestStatsRendering:
    def test_fault_counters_render_in_stats(self, tmp_path):
        from repro.obs import load_manifest, render_stats, trace_session

        cells = _spec().configs()
        path = str(tmp_path / "trace.jsonl")
        with trace_session(path):
            run_cells(
                cells,
                faults=FaultPlan(poison_cells=(cells[0].config_hash,)),
                max_retries=0, retry_backoff=0.0,
            )
        manifest = load_manifest(path)
        assert manifest["counters"]["executor.quarantined_cells"] == 1
        assert manifest["counters"]["executor.chunk_failures"] >= 1
        rendered = render_stats(manifest, path=path)
        assert "fault handling" in rendered
        assert "executor.quarantined_cells" in rendered

    def test_clean_run_renders_no_fault_table(self, tmp_path):
        from repro.obs import load_manifest, render_stats, trace_session

        path = str(tmp_path / "trace.jsonl")
        with trace_session(path):
            run_cells(_spec().configs())
        rendered = render_stats(load_manifest(path), path=path)
        assert "fault handling" not in rendered
