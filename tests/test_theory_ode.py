"""Tests for the §2.3 continuous-time approximation."""

import numpy as np
import pytest

from repro.theory.ode import (
    domain_rhs,
    equilibrium_check,
    integrate_domains,
)


class TestRhs:
    def test_uncovered_boundary_terms_vanish(self):
        # Single domain, uncovered: growth 1/nu with no neighbors.
        rhs = domain_rhs(np.array([10.0]), covered=False)
        assert rhs[0] == pytest.approx(0.1)

    def test_covered_equal_sizes_equilibrium(self):
        rhs = domain_rhs(np.array([5.0, 5.0, 5.0, 5.0]), covered=True)
        assert np.allclose(rhs, 0.0)

    def test_covered_bigger_neighbor_shrinks_smaller(self):
        # Cyclic 2-domain system: the small domain grows, the big one
        # shrinks (borders move toward the bigger domain).
        rhs = domain_rhs(np.array([4.0, 16.0]), covered=True)
        assert rhs[0] > 0
        assert rhs[1] < 0

    def test_uncovered_interior_structure(self):
        nu = np.array([8.0, 8.0, 8.0])
        rhs = domain_rhs(nu, covered=False)
        # Ends only lose to one neighbor; the middle loses to two.
        assert rhs[0] == pytest.approx(1 / 8 - 1 / 16)
        assert rhs[1] == pytest.approx(1 / 8 - 2 / 16)
        assert rhs[0] > rhs[1]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            domain_rhs(np.array([]), covered=False)


class TestIntegration:
    def test_sqrt_growth(self):
        trajectory = integrate_domains([1.0] * 8, t_final=1e6)
        assert trajectory.growth_exponent() == pytest.approx(0.5, abs=0.03)

    def test_sizes_positive_and_increasing_total(self):
        trajectory = integrate_domains([1.0] * 5, t_final=1e4)
        assert np.all(trajectory.sizes > 0)
        total = trajectory.total
        assert total[-1] > total[0]

    def test_profile_decreasing_from_frontier(self):
        # Which end is the frontier depends on orientation; domain 1
        # (index 0) neighbors the unexplored region, as does domain k.
        trajectory = integrate_domains([1.0] * 6, t_final=1e5)
        profile = trajectory.final_profile()
        assert profile[0] == max(profile) or profile[-1] == max(profile)
        assert profile.sum() == pytest.approx(1.0)

    def test_covered_mode_relaxes_to_uniform(self):
        start = [10.0, 30.0, 10.0, 30.0]
        trajectory = integrate_domains(
            start, t_final=1e5, covered=True
        )
        final = trajectory.final_profile()
        assert np.allclose(final, 0.25, atol=0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            integrate_domains([], t_final=100.0)
        with pytest.raises(ValueError):
            integrate_domains([1.0, -1.0], t_final=100.0)
        with pytest.raises(ValueError):
            integrate_domains([1.0], t_final=0.5)

    def test_growth_fit_needs_samples(self):
        trajectory = integrate_domains([1.0], t_final=10.0, num_samples=3)
        with pytest.raises(ValueError):
            trajectory.growth_exponent(skip_fraction=0.99)


class TestEquilibrium:
    def test_uniform_is_equilibrium(self):
        assert equilibrium_check([7.0, 7.0, 7.0]) == pytest.approx(0.0)

    def test_perturbed_is_not(self):
        assert equilibrium_check([7.0, 9.0, 7.0]) > 0.0
