"""Tests for repro.obs.telemetry and the StderrProgress reporter."""

import io

import pytest

from repro.obs import telemetry
from repro.obs.telemetry import Telemetry
from repro.sweep.executor import StderrProgress


@pytest.fixture(autouse=True)
def _no_ambient_telemetry():
    """Keep the module-global context clean across tests."""
    previous = telemetry.set_active(None)
    yield
    telemetry.set_active(previous)


class TestTelemetry:
    def test_counters_merge_monotonically(self):
        tel = Telemetry()
        tel.count("ring.rounds", 5)
        tel.count("ring.rounds", 7)
        tel.count("ring.lanes")
        tel.count_many({"ring.rounds": 3, "cache.hits": 2})
        assert tel.counters == {
            "ring.rounds": 15,
            "ring.lanes": 1,
            "cache.hits": 2,
        }

    def test_span_nesting_qualifies_names(self):
        tel = Telemetry()
        with tel.span("chunk[0]", cells=4):
            with tel.span("compute"):
                pass
        names = [record["name"] for record in tel.spans]
        # Inner spans close (and append) first.
        assert names == ["chunk[0]/compute", "chunk[0]"]
        outer = tel.spans[1]
        assert outer["attrs"] == {"cells": 4}
        for record in tel.spans:
            assert record["wall"] >= 0.0
            assert record["start"] >= 0.0
        # The inner span starts no earlier and is no longer than the outer.
        inner = tel.spans[0]
        assert inner["start"] >= outer["start"]
        assert inner["wall"] <= outer["wall"] + 1e-9

    def test_span_recorded_on_exception(self):
        tel = Telemetry()
        with pytest.raises(RuntimeError):
            with tel.span("boom"):
                raise RuntimeError("kernel died")
        assert [record["name"] for record in tel.spans] == ["boom"]

    def test_events_snapshot(self):
        tel = Telemetry()
        with tel.span("plan"):
            pass
        tel.count("cache.hits", 3)
        events = tel.events()
        assert [event["event"] for event in events] == ["span", "counters"]
        assert events[0]["name"] == "plan"
        assert events[1]["counters"] == {"cache.hits": 3}

    def test_events_without_counters_has_no_counters_event(self):
        tel = Telemetry()
        with tel.span("plan"):
            pass
        assert all(event["event"] == "span" for event in tel.events())


class TestAmbientContext:
    def test_set_active_returns_previous(self):
        first = Telemetry()
        second = Telemetry()
        assert telemetry.set_active(first) is None
        assert telemetry.set_active(second) is first
        assert telemetry.active() is second
        telemetry.set_active(None)
        assert telemetry.active() is None

    def test_module_helpers_are_noops_when_disabled(self):
        assert telemetry.active() is None
        telemetry.count("ring.rounds", 5)
        telemetry.count_many({"ring.lanes": 2})
        with telemetry.span("plan") as record:
            assert record is None

    def test_module_helpers_record_when_enabled(self):
        tel = Telemetry()
        telemetry.set_active(tel)
        telemetry.count("ring.rounds", 5)
        telemetry.count_many({"ring.lanes": 2})
        with telemetry.span("plan", cells=3) as record:
            assert record is not None
        assert tel.counters == {"ring.rounds": 5, "ring.lanes": 2}
        assert tel.spans[0]["name"] == "plan"
        assert tel.spans[0]["attrs"] == {"cells": 3}


class TestStderrProgress:
    def test_non_tty_emits_plain_lines(self):
        stream = io.StringIO()
        progress = StderrProgress(stream=stream, interval=1000.0, tty=False)
        progress(0, 4)
        progress(1, 4)  # throttled: inside the interval, not final
        progress(4, 4)
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2  # first + final only
        assert "\r" not in stream.getvalue()
        assert lines[0].startswith("sweep: 0/4 configurations elapsed=")
        assert lines[1].startswith("sweep: 4/4 configurations elapsed=")

    def test_non_tty_zero_interval_emits_every_update(self):
        stream = io.StringIO()
        progress = StderrProgress(stream=stream, interval=0.0, tty=False)
        for done in range(5):
            progress(done, 4)
        assert len(stream.getvalue().splitlines()) == 5

    def test_tty_rewrites_in_place_and_finishes_with_newline(self):
        stream = io.StringIO()
        progress = StderrProgress(stream=stream, tty=True)
        progress(1, 3)
        progress(2, 3)
        progress(3, 3)
        text = stream.getvalue()
        assert text.count("\r") == 2  # intermediate updates rewrite in place
        assert text.count("\n") == 1
        assert text.endswith("\n")  # the final update closes the line

    def test_rate_excludes_cache_hit_baseline(self):
        stream = io.StringIO()
        progress = StderrProgress(stream=stream, interval=0.0, tty=False)
        # First call reports a big cache-hit jump; it sets the baseline,
        # so no rate can be computed yet.
        progress(90, 100)
        first = stream.getvalue().splitlines()[-1]
        assert "rate=" not in first
        progress(95, 100)
        line = stream.getvalue().splitlines()[-1]
        assert "rate=" in line
        assert "eta=" in line

    def test_final_line_has_no_eta(self):
        stream = io.StringIO()
        progress = StderrProgress(stream=stream, interval=0.0, tty=False)
        progress(0, 2)
        progress(2, 2)
        final = stream.getvalue().splitlines()[-1]
        assert "eta=" not in final

    def test_resets_between_sweeps(self):
        stream = io.StringIO()
        progress = StderrProgress(stream=stream, interval=1000.0, tty=False)
        progress(0, 2)
        progress(2, 2)  # completes and resets
        progress(0, 3)  # new sweep: emits again despite the interval
        lines = stream.getvalue().splitlines()
        assert len(lines) == 3
        assert lines[-1].startswith("sweep: 0/3 ")

    @staticmethod
    def _scripted(progress, times):
        """Replace the live stopwatch with scripted ``split()`` values.

        The first real call (already made by the caller) pinned the
        baseline; from here elapsed times come from ``times`` so the
        sliding rate window is tested deterministically.
        """

        class _Watch:
            def __init__(self, values):
                self._values = iter(values)

            def split(self):
                return next(self._values)

        progress._watch = _Watch(times)
        progress._samples = [(0.0, 0)]
        progress._last_emit = None

    def test_fused_epoch_burst_averages_over_the_stall(self):
        # A fused chunk is silent for a whole epoch, then completes 60
        # cells in one progress callback.  The rate window is clamped
        # at that boundary — it keeps the sample *preceding* the burst,
        # so the burst reads as 60 cells / 120 s, not as instantaneous
        # throughput (which would collapse the ETA to ~0).
        stream = io.StringIO()
        progress = StderrProgress(stream=stream, interval=0.0, tty=False)
        progress(0, 100)
        self._scripted(progress, [120.0])
        progress(60, 100)
        line = stream.getvalue().splitlines()[-1]
        assert "rate=0.5/s" in line
        assert "eta=80s" in line

    def test_rate_window_sheds_stale_history(self):
        # Slow early phase, then a fast phase: once the slow samples
        # age past RATE_WINDOW the rate reflects only recent
        # throughput.  A since-start rate would report ~2.1/s here.
        stream = io.StringIO()
        progress = StderrProgress(stream=stream, interval=0.0, tty=False)
        progress(0, 500)
        self._scripted(progress, [30.0, 60.0, 70.0, 75.0])
        progress(3, 500)
        progress(6, 500)
        progress(106, 500)
        progress(156, 500)
        line = stream.getvalue().splitlines()[-1]
        assert "rate=10.0/s" in line

    def test_no_progress_reemission_shows_no_rate(self):
        # Waiting inside an epoch with nothing new completed: the line
        # re-emits (non-TTY heartbeat) without a rate or ETA instead of
        # showing a decayed whole-run average.
        stream = io.StringIO()
        progress = StderrProgress(stream=stream, interval=0.0, tty=False)
        progress(0, 10)
        self._scripted(progress, [10.0, 20.0])
        progress(0, 10)
        progress(0, 10)
        for line in stream.getvalue().splitlines():
            assert "rate=" not in line
            assert "eta=" not in line

    def test_resets_when_total_changes_mid_stream(self):
        stream = io.StringIO()
        progress = StderrProgress(stream=stream, interval=1000.0, tty=False)
        progress(0, 2)
        progress(1, 5)  # different total: treated as a fresh sweep
        lines = stream.getvalue().splitlines()
        assert lines[-1].startswith("sweep: 1/5 ")
