"""The appendix token game: invariants under arbitrary legal play."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.theory.token_game import (
    IllegalMoveError,
    TokenGame,
    play_draining_adversary,
    play_move_sequence,
    play_random_adversary,
)


class TestRules:
    def test_initial_state(self):
        game = TokenGame(4, 100)
        assert game.heights == [100, 100, 100, 100]
        assert game.moves_played == 0

    def test_legal_within_margin(self):
        game = TokenGame(3, 10)
        assert game.is_legal(0, 1)  # equal heights: legal
        game.heights = [10, 18, 10]
        assert game.is_legal(0, 1)  # 18 <= 10 + 8
        game.heights = [10, 19, 10]
        assert not game.is_legal(0, 1)  # 19 > 18

    def test_empty_source_illegal(self):
        game = TokenGame(3, 10)
        game.heights = [0, 10, 10]
        assert not game.is_legal(0, 1)

    def test_self_move_illegal(self):
        game = TokenGame(3, 10)
        assert not game.is_legal(1, 1)

    def test_out_of_range_illegal(self):
        game = TokenGame(3, 10)
        assert not game.is_legal(0, 3)
        assert not game.is_legal(-1, 0)

    def test_move_applies(self):
        game = TokenGame(2, 5)
        game.move(0, 1)
        assert game.heights == [4, 6]
        assert game.moves_played == 1

    def test_illegal_move_raises(self):
        game = TokenGame(2, 5)
        game.heights = [1, 12]
        with pytest.raises(IllegalMoveError):
            game.move(0, 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenGame(1, 10)
        with pytest.raises(ValueError):
            TokenGame(3, -1)

    def test_legal_moves_enumeration(self):
        game = TokenGame(2, 3)
        assert sorted(game.legal_moves()) == [(0, 1), (1, 0)]


class TestInvariants:
    def test_claim_bound_value(self):
        game = TokenGame(6, 100)
        assert game.claim_lower_bound() == 100 - 30 + 5

    def test_partial_sum_bound_k_is_total(self):
        game = TokenGame(5, 40)
        # y_k bound equals the conserved total: eta*k + 5k*k - 5k^2.
        assert game.partial_sum_bound(5) == 200

    @given(
        st.integers(2, 6),
        st.integers(30, 80),
        st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 5)),
            min_size=0,
            max_size=300,
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_invariants_under_arbitrary_legal_play(self, k, eta, sequence):
        game = TokenGame(k, eta)
        play_move_sequence(game, sequence)
        assert game.claim_holds()
        assert game.partial_sums_hold()
        assert sum(game.heights) == k * eta  # conservation

    def test_random_adversary_respects_claim(self):
        game = TokenGame(8, 120)
        played = play_random_adversary(game, 4000, seed=3)
        assert played == 4000
        assert game.claim_holds()
        assert game.partial_sums_hold()

    def test_draining_adversary_respects_claim(self):
        game = TokenGame(8, 120)
        play_draining_adversary(game, 4000)
        assert game.claim_holds()
        assert game.partial_sums_hold()

    def test_draining_adversary_is_tightish(self):
        # The adversary should actually push the minimum well below the
        # starting height (the claim is not vacuous).
        game = TokenGame(10, 200)
        play_draining_adversary(game, 20_000)
        assert game.min_height() < 200 - 5
        assert game.min_height() >= game.claim_lower_bound()

    def test_play_move_sequence_skips_illegal(self):
        game = TokenGame(2, 2)
        game.heights = [0, 4]
        played = play_move_sequence(game, [(0, 1), (1, 0)])
        assert played == 1  # only the legal one
        assert game.heights == [1, 3]

    def test_index_validation(self):
        game = TokenGame(3, 10)
        with pytest.raises(ValueError):
            game.sum_of_largest(0)
        with pytest.raises(ValueError):
            game.partial_sum_bound(4)
