"""Tests for the path-specialized engine."""

import pytest

from repro.core.path import PathRotorRouter


class TestConstruction:
    def test_min_size(self):
        with pytest.raises(ValueError):
            PathRotorRouter(1, [1], [0])

    def test_endpoint_pointers_forced(self):
        e = PathRotorRouter(5, [-1] * 5, [0])
        assert e.ptr[0] == 1
        assert e.ptr[4] == -1

    def test_pointer_validation(self):
        with pytest.raises(ValueError):
            PathRotorRouter(4, [1, 0, 1, 1], [0])


class TestEndpointSemantics:
    def test_left_endpoint_sends_right(self):
        e = PathRotorRouter(4, [1] * 4, [0, 0, 0])
        moves = e.step()
        assert moves == [(0, 1, 3)]  # all three through the single port

    def test_right_endpoint_sends_left(self):
        e = PathRotorRouter(4, [1] * 4, [3, 3])
        assert e.step() == [(3, 2, 2)]

    def test_endpoint_pointer_never_flips(self):
        e = PathRotorRouter(4, [1] * 4, [0])
        e.step()
        assert e.ptr[0] == 1


class TestInteriorSemantics:
    def test_matches_ring_rule(self):
        e = PathRotorRouter(5, [1] * 5, [2, 2, 2])
        moves = dict(((s, d), c) for s, d, c in e.step())
        assert moves[(2, 3)] == 2
        assert moves[(2, 1)] == 1
        assert e.ptr[2] == -1  # odd exits flip

    def test_bounce_walk_from_left(self):
        # Single agent, all-left pointers: the canonical slow pattern.
        e = PathRotorRouter(6, [-1] * 6, [0], track_counts=False)
        visited_order = []
        for _ in range(8):
            moves = e.step()
            visited_order.append(moves[0][1])
        assert visited_order[:4] == [1, 0, 1, 2]


class TestCoverAndState:
    def test_cover_time_slow_case(self):
        n = 24
        e = PathRotorRouter(n, [-1] * n, [0], track_counts=False)
        cover = e.run_until_covered(8 * n * n)
        assert (n - 1) ** 2 / 2 <= cover <= 3 * n * n

    def test_more_agents_at_least_as_fast(self):
        n = 40
        covers = []
        for k in (1, 2, 4, 8):
            e = PathRotorRouter(n, [-1] * n, [0] * k, track_counts=False)
            covers.append(e.run_until_covered(8 * n * n))
        for a, b in zip(covers, covers[1:]):
            assert b <= a

    def test_budget_raises(self):
        e = PathRotorRouter(16, [-1] * 16, [0], track_counts=False)
        with pytest.raises(RuntimeError):
            e.run_until_covered(3)

    def test_clone_trajectory(self):
        e = PathRotorRouter(12, [-1] * 12, [0, 4])
        e.run(5)
        twin = e.clone()
        for _ in range(10):
            assert sorted(e.step()) == sorted(twin.step())

    def test_holds(self):
        e = PathRotorRouter(6, [1] * 6, [2, 2])
        moves = e.step(holds={2: 2})
        assert moves == []
        assert e.positions() == [2, 2]

    def test_positions(self):
        e = PathRotorRouter(6, [1] * 6, [5, 0, 5])
        assert e.positions() == [0, 5, 5]
