"""Tests for agent placements."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import placement
from repro.graphs.ring import ring_distance


class TestAllOnOne:
    def test_basic(self):
        assert placement.all_on_one(3, node=5) == [5, 5, 5]

    def test_default_node(self):
        assert placement.all_on_one(2) == [0, 0]

    def test_validation(self):
        with pytest.raises(ValueError):
            placement.all_on_one(0)
        with pytest.raises(ValueError):
            placement.all_on_one(2, node=-1)


class TestEquallySpaced:
    def test_exact_division(self):
        assert placement.equally_spaced(12, 4) == [0, 3, 6, 9]

    def test_offset(self):
        assert placement.equally_spaced(12, 4, offset=2) == [2, 5, 8, 11]

    def test_uneven(self):
        spots = placement.equally_spaced(10, 3)
        assert spots == [0, 3, 6]

    @given(st.integers(3, 60), st.integers(1, 12))
    @settings(max_examples=40, deadline=None)
    def test_gaps_at_most_ceil_n_over_k(self, n, k):
        k = min(k, n)
        spots = placement.equally_spaced(n, k)
        assert len(spots) == k
        assert len(set(spots)) == k  # distinct
        ordered = sorted(spots)
        gaps = [
            (ordered[(i + 1) % k] - ordered[i]) % n if k > 1 else n
            for i in range(k)
        ]
        assert max(gaps) <= -(-n // k) + 1

    def test_validation(self):
        with pytest.raises(ValueError):
            placement.equally_spaced(0, 1)
        with pytest.raises(ValueError):
            placement.equally_spaced(10, 0)


class TestRandomNodes:
    def test_deterministic(self):
        assert placement.random_nodes(50, 5, seed=1) == \
            placement.random_nodes(50, 5, seed=1)

    def test_distinct(self):
        spots = placement.random_nodes(20, 10, seed=2, distinct=True)
        assert len(set(spots)) == 10

    def test_distinct_overflow_rejected(self):
        with pytest.raises(ValueError):
            placement.random_nodes(5, 6, distinct=True)

    def test_range(self):
        spots = placement.random_nodes(30, 50, seed=0)
        assert all(0 <= s < 30 for s in spots)


class TestClusteredAndHalfRing:
    def test_clustered_counts(self):
        spots = placement.clustered(40, 8, 4, seed=0)
        assert len(spots) == 8
        assert len(set(spots)) == 4

    def test_clustered_single_is_stack(self):
        spots = placement.clustered(40, 5, 1, seed=0)
        assert len(set(spots)) == 1

    def test_clustered_validation(self):
        with pytest.raises(ValueError):
            placement.clustered(40, 4, 5)
        with pytest.raises(ValueError):
            placement.clustered(3, 8, 5)

    def test_half_ring_leaves_gap(self):
        n, k = 40, 4
        spots = placement.half_ring(n, k)
        assert all(s < n // 2 for s in spots)
        # The far point of the ring is at distance >= ~n/4 from all.
        far = 3 * n // 4
        assert min(ring_distance(n, far, s) for s in spots) >= n // 5


class TestPaperRegime:
    def test_small_k_in_regime(self):
        assert placement.paper_regime_ok(10 ** 12, 10)

    def test_practical_sizes_out_of_regime(self):
        assert not placement.paper_regime_ok(512, 8)

    def test_k1_needs_n_above_one(self):
        assert placement.paper_regime_ok(3, 1)
