"""Trace sessions: shard merge determinism, jobs>1, validation, CLI."""

import json
import os

import pytest

from repro.cli import main
from repro.obs import telemetry
from repro.obs.manifest import (
    append_shard,
    current_session,
    load_manifest,
    trace_session,
    write_manifest,
)
from repro.obs.stats import render_stats
from repro.sweep.executor import run_sweep
from repro.sweep.spec import InitFamily, ScenarioSpec


def _cover_spec(**overrides):
    base = dict(
        name="obs-test",
        ns=(16, 24),
        ks=(2, 3),
        families=(
            InitFamily("all_on_one", "toward_node0"),
            InitFamily("equally_spaced", "negative"),
        ),
        metrics=("cover",),
    )
    base.update(overrides)
    return ScenarioSpec(**base)


def _traced_sweep(tmp_path, tag, jobs, cache_dir=None):
    path = str(tmp_path / f"{tag}.jsonl")
    with trace_session(path, meta={"tag": tag}):
        result = run_sweep(
            _cover_spec(),
            jobs=jobs,
            cache_dir=cache_dir,
            chunk_lanes=3,
        )
    return path, result


class TestTraceSession:
    def test_lifecycle_writes_manifest_and_cleans_shards(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with trace_session(path, meta={"command": "test"}) as session:
            assert current_session() is session
            assert telemetry.active() is session.telemetry
            telemetry.count("demo.counter", 2)
            with telemetry.span("demo"):
                pass
        assert current_session() is None
        assert telemetry.active() is None
        assert not os.path.exists(session.shard_dir)
        manifest = load_manifest(path)
        assert manifest["run_id"] == session.run_id
        assert manifest["meta"]["command"] == "test"
        assert manifest["meta"]["wall"] >= 0.0
        assert manifest["counters"]["demo.counter"] == 2
        assert [s["name"] for s in manifest["spans"]] == ["demo"]
        assert manifest["spans"][0]["worker"] == "main"

    def test_nested_sessions_rejected(self, tmp_path):
        with trace_session(str(tmp_path / "outer.jsonl")):
            with pytest.raises(RuntimeError, match="already active"):
                with trace_session(str(tmp_path / "inner.jsonl")):
                    pass  # pragma: no cover

    def test_manifest_written_even_when_body_raises(self, tmp_path):
        path = str(tmp_path / "crash.jsonl")
        with pytest.raises(RuntimeError, match="boom"):
            with trace_session(path):
                telemetry.count("partial.progress", 1)
                raise RuntimeError("boom")
        manifest = load_manifest(path)
        assert manifest["counters"]["partial.progress"] == 1


class TestParallelMerge:
    def test_jobs2_counters_sum_to_serial_counters(self, tmp_path):
        serial_path, serial_result = _traced_sweep(tmp_path, "serial", jobs=1)
        para_path, para_result = _traced_sweep(tmp_path, "para", jobs=2)
        assert [c.metrics for c in serial_result.results] == [
            c.metrics for c in para_result.results
        ]
        serial = load_manifest(serial_path)
        para = load_manifest(para_path)
        # Chunk planning ignores ``jobs`` for ring sweeps, so per-shard
        # counters must sum to exactly the serial totals.
        assert para["counters"] == serial["counters"]
        assert para["counters"]["executor.cells"] == 8
        assert para["counters"]["executor.cells_computed"] == 8

    def test_jobs2_manifest_has_workers_and_chunk_spans(self, tmp_path):
        path, _ = _traced_sweep(tmp_path, "workers", jobs=2)
        manifest = load_manifest(path)
        assert manifest["workers"]
        for worker in manifest["workers"]:
            assert worker["chunks"] >= 1
        total_chunks = sum(w["chunks"] for w in manifest["workers"])
        assert total_chunks == manifest["counters"]["executor.chunks"]
        chunk_spans = [
            s
            for s in manifest["spans"]
            if s["name"].startswith("chunk[") and "/" not in s["name"]
        ]
        assert len(chunk_spans) == total_chunks
        compute = [
            s for s in manifest["spans"] if s["name"].endswith("/compute")
        ]
        assert len(compute) == total_chunks
        # Every chunk index 0..N-1 appears exactly once.
        indices = sorted(
            int(s["name"][len("chunk["):-1]) for s in chunk_spans
        )
        assert indices == list(range(total_chunks))

    def test_counter_section_reproducible_across_runs(self, tmp_path):
        first_path, _ = _traced_sweep(tmp_path, "rep1", jobs=2)
        second_path, _ = _traced_sweep(tmp_path, "rep2", jobs=2)
        first = load_manifest(first_path)
        second = load_manifest(second_path)
        assert first["counters"] == second["counters"]

    def test_same_shard_set_merges_byte_identically(self, tmp_path):
        path = str(tmp_path / "reprod.jsonl")
        with trace_session(path) as session:
            run_sweep(_cover_spec(), jobs=2, chunk_lanes=3)
            kwargs = dict(
                run_id=session.run_id,
                main=session.telemetry,
                shard_dir=session.shard_dir,
                meta={"fixed": True},
            )
            first = str(tmp_path / "merge1.jsonl")
            second = str(tmp_path / "merge2.jsonl")
            write_manifest(first, **kwargs)
            write_manifest(second, **kwargs)
        with open(first, "rb") as fh:
            first_bytes = fh.read()
        with open(second, "rb") as fh:
            second_bytes = fh.read()
        assert first_bytes == second_bytes
        load_manifest(first)  # both merges validate

    def test_cache_counters_track_hits_and_puts(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        cold_path, _ = _traced_sweep(
            tmp_path, "cold", jobs=1, cache_dir=cache_dir
        )
        warm_path, _ = _traced_sweep(
            tmp_path, "warm", jobs=1, cache_dir=cache_dir
        )
        cold = load_manifest(cold_path)["counters"]
        warm = load_manifest(warm_path)["counters"]
        assert cold["cache.hits"] == 0
        assert cold["cache.misses"] == 8
        assert cold["cache.puts"] == 8
        assert warm["cache.hits"] == 8
        assert warm["cache.misses"] == 0
        assert "cache.puts" not in warm

    def test_kernel_counters_present_for_ring_and_walk(self, tmp_path):
        path = str(tmp_path / "kernels.jsonl")
        spec = _cover_spec(
            models=("rotor", "walk"),
            repetitions=2,
            ns=(16,),
        )
        with trace_session(path):
            run_sweep(spec, jobs=1, chunk_lanes=4)
        counters = load_manifest(path)["counters"]
        assert counters["walk.invocations"] >= 1
        assert counters["walk.lane_rounds"] > 0
        # Rotor cover cells route to the batch kernel or the serial
        # fallback depending on chunk shape; either leaves a counter.
        assert (
            counters.get("ring.invocations", 0) > 0
            or counters.get("ring.serial_cells", 0) > 0
        )


class TestLeftoverShards:
    def test_foreign_shard_reported_not_merged(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with trace_session(path) as session:
            leftover = os.path.join(
                session.shard_dir, "deadbeefdeadbeef.999.events.jsonl"
            )
            with open(leftover, "w") as handle:
                handle.write(
                    json.dumps(
                        {"event": "counters", "counters": {"evil.count": 7}}
                    )
                    + "\n"
                )
            telemetry.count("good.count", 1)
        manifest = load_manifest(path)
        assert manifest["leftover_shards"] == [
            "deadbeefdeadbeef.999.events.jsonl"
        ]
        assert "evil.count" not in manifest["counters"]
        assert manifest["counters"]["good.count"] == 1
        # close() must not delete another run's shard.
        assert os.path.exists(leftover)
        rendered = render_stats(manifest, path=path)
        assert "leftover shard not merged" in rendered

    def test_own_run_shards_are_merged_and_removed(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with trace_session(path) as session:
            append_shard(
                session.shard_dir,
                session.run_id,
                [
                    {
                        "event": "span",
                        "name": "chunk[0]",
                        "start": 0.0,
                        "wall": 0.5,
                        "cpu": 0.4,
                    },
                    {"event": "counters", "counters": {"ring.rounds": 10}},
                ],
            )
        manifest = load_manifest(path)
        assert manifest["counters"]["ring.rounds"] == 10
        assert manifest["leftover_shards"] == []
        assert manifest["workers"] == [
            {
                "event": "worker",
                "worker": 0,
                "pid": str(os.getpid()),
                "chunks": 1,
                "wall": 0.5,
                "cpu": 0.4,
            }
        ]
        assert not os.path.exists(session.shard_dir)


class TestLoadManifestValidation:
    def _write(self, tmp_path, lines):
        path = str(tmp_path / "manifest.jsonl")
        with open(path, "w") as handle:
            for line in lines:
                handle.write(
                    (line if isinstance(line, str) else json.dumps(line))
                    + "\n"
                )
        return path

    def _header(self, **overrides):
        header = {
            "event": "manifest",
            "schema": 1,
            "run_id": "abc123",
            "meta": {},
        }
        header.update(overrides)
        return header

    def test_empty_file_rejected(self, tmp_path):
        path = self._write(tmp_path, [])
        with pytest.raises(ValueError, match="empty manifest"):
            load_manifest(path)

    def test_first_event_must_be_header(self, tmp_path):
        path = self._write(
            tmp_path, [{"event": "counter", "name": "x", "value": 1}]
        )
        with pytest.raises(ValueError, match="must be 'manifest'"):
            load_manifest(path)

    def test_unsupported_schema_rejected(self, tmp_path):
        path = self._write(tmp_path, [self._header(schema=99)])
        with pytest.raises(ValueError, match="unsupported manifest schema"):
            load_manifest(path)

    def test_missing_run_id_rejected(self, tmp_path):
        path = self._write(tmp_path, [self._header(run_id="")])
        with pytest.raises(ValueError, match="requires a run_id"):
            load_manifest(path)

    def test_non_json_line_rejected(self, tmp_path):
        path = self._write(tmp_path, [self._header(), "not json {"])
        with pytest.raises(ValueError, match="line 2: not JSON"):
            load_manifest(path)

    def test_non_integer_counter_rejected(self, tmp_path):
        path = self._write(
            tmp_path,
            [
                self._header(),
                {"event": "counter", "name": "x", "value": 1.5},
            ],
        )
        with pytest.raises(ValueError, match="integer value"):
            load_manifest(path)

    def test_boolean_counter_rejected(self, tmp_path):
        path = self._write(
            tmp_path,
            [
                self._header(),
                {"event": "counter", "name": "x", "value": True},
            ],
        )
        with pytest.raises(ValueError, match="integer value"):
            load_manifest(path)

    def test_duplicate_counter_rejected(self, tmp_path):
        counter = {"event": "counter", "name": "x", "value": 1}
        path = self._write(tmp_path, [self._header(), counter, counter])
        with pytest.raises(ValueError, match="duplicate counter"):
            load_manifest(path)

    def test_span_without_worker_rejected(self, tmp_path):
        path = self._write(
            tmp_path,
            [
                self._header(),
                {"event": "span", "name": "plan", "start": 0.0, "wall": 0.1},
            ],
        )
        with pytest.raises(ValueError, match="requires a worker"):
            load_manifest(path)

    def test_negative_span_wall_rejected(self, tmp_path):
        path = self._write(
            tmp_path,
            [
                self._header(),
                {
                    "event": "span",
                    "name": "plan",
                    "start": 0.0,
                    "wall": -0.1,
                    "worker": "main",
                },
            ],
        )
        with pytest.raises(ValueError, match="non-negative wall"):
            load_manifest(path)

    def test_unknown_event_kind_rejected(self, tmp_path):
        path = self._write(tmp_path, [self._header(), {"event": "mystery"}])
        with pytest.raises(ValueError, match="unknown event kind"):
            load_manifest(path)

    def test_duplicate_header_rejected(self, tmp_path):
        path = self._write(tmp_path, [self._header(), self._header()])
        with pytest.raises(ValueError, match="duplicate manifest header"):
            load_manifest(path)


class TestCli:
    def _run(self, capsys, *argv):
        status = main(list(argv))
        captured = capsys.readouterr()
        return status, captured.out, captured.err

    def test_trace_leaves_report_bit_identical(self, tmp_path, capsys):
        trace = str(tmp_path / "trace.jsonl")
        status, plain_out, _ = self._run(
            capsys,
            "run", "theorem1", "--quick", "--backend", "batch",
            "--cache", str(tmp_path / "cache-plain"),
        )
        assert status == 0
        status, traced_out, traced_err = self._run(
            capsys,
            "run", "theorem1", "--quick", "--backend", "batch",
            "--cache", str(tmp_path / "cache-traced"),
            "--trace", trace,
        )
        assert status == 0
        # Timings vary; everything before the run summary is the report.
        assert traced_out.split("computed=")[0] == plain_out.split("computed=")[0]
        assert "wrote trace manifest" in traced_err  # notice on stderr only
        assert "wrote trace manifest" not in traced_out
        manifest = load_manifest(trace)
        assert manifest["meta"]["command"] == "run"
        assert manifest["meta"]["name"] == "theorem1"

    def test_stats_renders_tables(self, tmp_path, capsys):
        trace = str(tmp_path / "trace.jsonl")
        status, _, _ = self._run(
            capsys,
            "run", "theorem1", "--quick", "--backend", "batch",
            "--cache", str(tmp_path / "cache"),
            "--trace", trace,
        )
        assert status == 0
        status, out, _ = self._run(capsys, "stats", trace)
        assert status == 0
        assert f"trace {trace}: run " in out
        assert "per-phase wall clock" in out
        assert "result cache" in out
        assert "all counters" in out
        assert "chunk[*]" in out

    def test_stats_missing_file_exits_2(self, tmp_path, capsys):
        status, _, err = self._run(
            capsys, "stats", str(tmp_path / "absent.jsonl")
        )
        assert status == 2
        assert "cannot read manifest" in err

    def test_stats_invalid_manifest_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("this is not a manifest\n")
        status, _, err = self._run(capsys, "stats", str(bad))
        assert status == 2
        assert "invalid manifest" in err
