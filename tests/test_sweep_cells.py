"""Tests for explicit measurement cells (repro.sweep.cells)."""

import pytest

from repro.sweep.cells import (
    CELL_SCHEMA_VERSION,
    GeneralRotorCell,
    RotorCell,
    WalkCoverCell,
    WalkGapsCell,
    cell_from_dict,
)
from repro.sweep.spec import SweepConfig


def _rotor_cell(**overrides):
    kwargs = dict(
        n=8,
        agents=(0, 0, 3),
        directions=(1, -1, 1, 1, -1, 1, 1, -1),
        metrics=("cover",),
        max_rounds=1000,
    )
    kwargs.update(overrides)
    return RotorCell(**kwargs)


class TestRotorCell:
    def test_round_trip(self):
        cell = _rotor_cell()
        clone = cell_from_dict(cell.to_dict())
        assert clone == cell
        assert clone.config_hash == cell.config_hash

    def test_duck_type_surface(self):
        cell = _rotor_cell()
        assert cell.model == "rotor"
        assert cell.k == 3
        assert cell.repetitions == 1
        agents, directions = cell.build()
        assert agents == [0, 0, 3]
        assert directions == list(cell.directions)

    def test_hash_sensitive_to_instance(self):
        base = _rotor_cell()
        assert _rotor_cell(agents=(0, 0, 4)).config_hash != base.config_hash
        assert (
            _rotor_cell(metrics=("stabilization", "return")).config_hash
            != base.config_hash
        )
        assert _rotor_cell(max_rounds=999).config_hash != base.config_hash

    def test_validation(self):
        with pytest.raises(ValueError):
            _rotor_cell(agents=())
        with pytest.raises(ValueError):
            _rotor_cell(directions=(1, -1))
        with pytest.raises(ValueError):
            _rotor_cell(metrics=())


class TestWalkCells:
    def test_cover_cell_surface(self):
        cell = WalkCoverCell(
            n=16, agents=(0, 8), seeds=(11, 22, 33), max_rounds=4096
        )
        assert cell.model == "walk"
        assert cell.metrics == ("cover",)
        assert cell.k == 2
        assert cell.repetitions == 3
        assert cell.build_agents() == [0, 8]
        assert cell.rep_seeds() == (11, 22, 33)
        assert cell_from_dict(cell.to_dict()) == cell

    def test_cover_cell_validation(self):
        with pytest.raises(ValueError):
            WalkCoverCell(n=16, agents=(), seeds=(1,), max_rounds=10)
        with pytest.raises(ValueError):
            WalkCoverCell(n=16, agents=(0,), seeds=(), max_rounds=10)

    def test_gaps_cell_surface(self):
        cell = WalkGapsCell(
            n=24, k=3, node=5, observation_rounds=960, burn_in=96, seed=7
        )
        assert cell.model == "walk"
        assert cell.metrics == ("gaps",)
        assert cell.max_rounds == 960 + 96
        assert cell_from_dict(cell.to_dict()) == cell

    def test_gaps_cell_validation(self):
        with pytest.raises(ValueError):
            WalkGapsCell(
                n=24, k=0, node=0, observation_rounds=10, burn_in=0, seed=0
            )
        with pytest.raises(ValueError):
            WalkGapsCell(
                n=24, k=1, node=24, observation_rounds=10, burn_in=0, seed=0
            )
        with pytest.raises(ValueError):
            WalkGapsCell(
                n=24, k=1, node=0, observation_rounds=0, burn_in=0, seed=0
            )


class TestGeneralRotorCell:
    def test_round_trip_and_surface(self):
        # Triangle graph, one agent.
        cell = GeneralRotorCell(
            graph_ports=((1, 2), (0, 2), (0, 1)),
            agents=(0,),
            ports=(0, 0, 0),
            max_rounds=100,
        )
        assert cell.model == "rotor-general"
        assert cell.n == 3
        assert cell.k == 1
        # The dict form is compact (graph by digest); deserialization
        # resolves the structure through the chunk's graph table.
        graphs = {cell.graph_digest: cell.csr()}
        clone = cell_from_dict(cell.to_dict(), graphs=graphs)
        assert clone == cell
        assert clone.config_hash == cell.config_hash

    def test_dict_form_is_compact_and_needs_graph_table(self):
        cell = GeneralRotorCell(
            graph_ports=((1, 2), (0, 2), (0, 1)),
            agents=(0,),
            ports=(0, 0, 0),
            max_rounds=100,
        )
        data = cell.to_dict()
        assert "graph_ports" not in data
        assert data["graph"] == cell.graph_digest
        with pytest.raises(ValueError, match="graph table"):
            cell_from_dict(data)

    def test_labeled_cell_shares_identity(self):
        from repro.sweep.cells import LabeledGeneralRotorCell

        plain = GeneralRotorCell(
            graph_ports=((1, 2), (0, 2), (0, 1)),
            agents=(0,),
            ports=(0, 0, 0),
            max_rounds=100,
        )
        labeled = LabeledGeneralRotorCell(
            graph_ports=((1, 2), (0, 2), (0, 1)),
            agents=(0,),
            ports=(0, 0, 0),
            max_rounds=100,
            family="triangle",
            seed=7,
        )
        assert labeled.config_hash == plain.config_hash
        assert labeled.placement == "triangle"
        assert labeled.pointer == "random"
        assert labeled.seed == 7

    def test_identity_includes_graph(self):
        triangle = GeneralRotorCell(
            graph_ports=((1, 2), (0, 2), (0, 1)),
            agents=(0,),
            ports=(0, 0, 0),
            max_rounds=100,
        )
        path = GeneralRotorCell(
            graph_ports=((1,), (0, 2), (1,)),
            agents=(0,),
            ports=(0, 0, 0),
            max_rounds=100,
        )
        assert triangle.config_hash != path.config_hash

    def test_validation(self):
        with pytest.raises(ValueError):
            GeneralRotorCell(
                graph_ports=((1,), (0,)),
                agents=(0,),
                ports=(0,),
                max_rounds=10,
            )


class TestDispatcher:
    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown cell kind"):
            cell_from_dict({"kind": "mystery-cell", "schema": 1})

    def test_schema_mismatch(self):
        data = _rotor_cell().to_dict()
        data["schema"] = CELL_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema"):
            cell_from_dict(data)

    def test_sweep_config_fallback(self):
        config = SweepConfig(
            n=16,
            k=2,
            placement="all_on_one",
            pointer="toward_node0",
            seed=0,
            metrics=("cover",),
            max_rounds=2048,
        )
        assert cell_from_dict(config.to_dict()) == config

    def test_no_cross_kind_hash_collisions(self):
        # Distinct cell kinds never share a cache identity.
        rotor = _rotor_cell()
        walk = WalkCoverCell(
            n=8, agents=(0, 0, 3), seeds=(0,), max_rounds=1000
        )
        assert rotor.config_hash != walk.config_hash
