"""The batch ring kernel must match the reference engines exactly.

Three layers of equivalence:

* lockstep — random configurations stepped side by side with the
  sparse :class:`repro.core.ring.RingRotorRouter` (positions, pointer
  directions, unvisited counts identical every round);
* cover — per-lane cover rounds from the windowed bulk driver equal
  the reference's, over 200+ randomized configurations batched into
  shared kernels (the acceptance bar of the sweep subsystem);
* limit behaviour — per-lane Brent preperiods/periods and in-cycle
  return gaps equal :mod:`repro.core.limit`'s exact results.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.return_time import ring_rotor_return_time_exact
from repro.core import placement, pointers
from repro.core.ring import RingRotorRouter
from repro.sweep.batch_ring import (
    BatchRingKernel,
    _padded_columns,
    batch_limit_cycles,
    batch_return_gaps,
    lanes_from_configs,
)


def _fingerprint_words(n: int, max_agents: int = 126) -> int:
    """Word count of the fingerprint weight vectors for an int8 batch."""
    dtype = np.dtype(np.int8) if max_agents <= 126 else np.dtype(np.int16)
    return _padded_columns(n, dtype) * dtype.itemsize // 8


@st.composite
def lane_setup(draw):
    n = draw(st.integers(3, 40))
    k = draw(st.integers(1, 2 * n))  # dense regimes escalate the dtype
    dirs = draw(st.lists(st.sampled_from((1, -1)), min_size=n, max_size=n))
    agents = draw(st.lists(st.integers(0, n - 1), min_size=k, max_size=k))
    rounds = draw(st.integers(1, 80))
    return n, dirs, agents, rounds


def _random_configuration(rng, n, max_k):
    k = int(rng.integers(1, max_k))
    dirs = [int(d) for d in rng.choice((1, -1), size=n)]
    agents = [int(a) for a in rng.integers(0, n, size=k)]
    return dirs, agents


class TestLockstep:
    @given(lane_setup())
    @settings(max_examples=50, deadline=None)
    def test_matches_sparse_engine(self, setup):
        n, dirs, agents, rounds = setup
        ref = RingRotorRouter(n, list(dirs), agents, track_counts=False)
        ptr, cnt = lanes_from_configs(n, [(dirs, agents)])
        kernel = BatchRingKernel(n, ptr, cnt)
        for _ in range(rounds):
            ref.step()
            kernel.step()
            assert ref.positions() == kernel.positions(0)
            assert list(ref.ptr) == kernel.directions_lane(0)
        assert ref.unvisited == kernel.unvisited_lane(0)

    @given(lane_setup())
    @settings(max_examples=25, deadline=None)
    def test_windowed_run_matches_stepping(self, setup):
        """run() (windowed fast path) ends in the same configuration
        and the same cover round as per-step exact tracking."""
        n, dirs, agents, rounds = setup
        ptr, cnt = lanes_from_configs(n, [(dirs, agents)])
        stepped = BatchRingKernel(n, ptr, cnt)
        bulk = BatchRingKernel(n, ptr, cnt)
        for _ in range(rounds):
            stepped.step()
        bulk.run(rounds)
        assert stepped.positions(0) == bulk.positions(0)
        assert stepped.directions_lane(0) == bulk.directions_lane(0)
        assert stepped.unvisited_lane(0) == bulk.unvisited_lane(0)
        assert int(stepped.cover_rounds[0]) == int(bulk.cover_rounds[0])

    def test_visits_mark_arrivals(self):
        # Uniform clockwise pointers, one agent: node t visited at round t.
        n = 8
        ptr, cnt = lanes_from_configs(n, [([1] * n, [0])])
        kernel = BatchRingKernel(n, ptr, cnt)
        for t in range(1, n):
            visits = kernel.step()
            assert list(np.flatnonzero(visits[0])) == [t]


class TestCoverEquivalence:
    def test_200_randomized_configurations(self):
        """Acceptance bar: >= 200 random configs, exact cover agreement."""
        rng = np.random.default_rng(20260728)
        total = 0
        for n in (11, 32, 64):
            configurations = [
                _random_configuration(rng, n, max_k=3 * n // 2)
                for _ in range(70)
            ]
            budget = 8 * n * n + 64
            expected = [
                RingRotorRouter(
                    n, list(dirs), agents, track_counts=False
                ).run_until_covered(budget)
                for dirs, agents in configurations
            ]
            ptr, cnt = lanes_from_configs(n, configurations)
            covers = BatchRingKernel(n, ptr, cnt).run_until_covered(budget)
            assert [int(c) for c in covers] == expected
            total += len(configurations)
        assert total >= 200

    def test_paper_corner_cases(self):
        n, k = 64, 4
        spaced = placement.equally_spaced(n, k)
        cases = [
            (pointers.ring_toward_node(n, 0), placement.all_on_one(k)),
            (pointers.ring_negative(n, spaced), spaced),
            (pointers.ring_positive(n, spaced), spaced),
            (pointers.ring_alternating(n), placement.half_ring(n, k)),
        ]
        budget = 8 * n * n + 64
        ptr, cnt = lanes_from_configs(n, cases)
        covers = BatchRingKernel(n, ptr, cnt).run_until_covered(budget)
        for lane, (dirs, agents) in enumerate(cases):
            ref = RingRotorRouter(n, list(dirs), agents, track_counts=False)
            assert int(covers[lane]) == ref.run_until_covered(budget)

    def test_initially_covered_lane(self):
        n = 5
        ptr, cnt = lanes_from_configs(n, [([1] * n, list(range(n)))])
        kernel = BatchRingKernel(n, ptr, cnt)
        assert int(kernel.cover_rounds[0]) == 0
        assert kernel.run_until_covered(10)[0] == 0

    def test_budget_strict_and_lenient(self):
        n = 32
        ptr, cnt = lanes_from_configs(n, [([1] * n, [0])])
        with pytest.raises(RuntimeError):
            BatchRingKernel(n, ptr, cnt).run_until_covered(3)
        lenient = BatchRingKernel(n, ptr, cnt).run_until_covered(
            3, strict=False
        )
        assert int(lenient[0]) == -1


class TestLimitBehaviour:
    def test_cycles_and_gaps_match_reference(self):
        n, k = 48, 4
        spaced = placement.equally_spaced(n, k)
        cases = [
            (pointers.ring_toward_node(n, 0), placement.all_on_one(k)),
            (pointers.ring_negative(n, spaced), spaced),
            (pointers.ring_positive(n, spaced), spaced),
            (
                pointers.ring_random(n, seed=3),
                placement.random_nodes(n, k, seed=3),
            ),
        ]
        budget = 16 * n * n + 1024
        ptr, cnt = lanes_from_configs(n, cases)
        cycles = batch_limit_cycles(n, ptr, cnt, budget)
        worst, best = batch_return_gaps(n, ptr, cnt, cycles)
        for lane, (dirs, agents) in enumerate(cases):
            ref = ring_rotor_return_time_exact(n, agents, dirs)
            assert int(cycles.preperiods[lane]) == ref.preperiod
            assert int(cycles.periods[lane]) == ref.period
            assert float(worst[lane]) == ref.worst_gap
            assert float(best[lane]) == ref.best_gap

    def test_theorem6_shape(self):
        # Return time is Θ(n/k): worst gap a small multiple of n/k.
        n, k = 60, 4
        agents = placement.all_on_one(k)
        dirs = pointers.ring_toward_node(n, 0)
        ptr, cnt = lanes_from_configs(n, [(dirs, agents)])
        cycles = batch_limit_cycles(n, ptr, cnt, 16 * n * n + 1024)
        worst, _ = batch_return_gaps(n, ptr, cnt, cycles)
        assert worst[0] <= 4 * n / k

    def test_budget_exhaustion_raises(self):
        n = 16
        ptr, cnt = lanes_from_configs(n, [([1] * n, [0, 3])])
        with pytest.raises(RuntimeError):
            batch_limit_cycles(n, ptr, cnt, max_rounds=2)

    def test_lenient_budget_marks_unresolved_lanes(self):
        n = 16
        ptr, cnt = lanes_from_configs(n, [([1] * n, [0, 3])])
        cycles = batch_limit_cycles(n, ptr, cnt, max_rounds=2, strict=False)
        assert int(cycles.periods[0]) == -1
        assert int(cycles.preperiods[0]) == -1
        with pytest.raises(ValueError):
            batch_return_gaps(n, ptr, cnt, cycles)

    def test_lenient_mode_resolves_what_fits(self):
        # One instant-cycle lane and one whose search exceeds the budget.
        n, k = 24, 4
        spaced = placement.equally_spaced(n, k)
        easy = (pointers.ring_positive(n, spaced), spaced)
        hard = (pointers.ring_toward_node(n, 0), placement.all_on_one(k))
        ptr, cnt = lanes_from_configs(n, [easy, hard])
        budget = 2 * n  # enough for the spaced patrol, not for worst-case
        cycles = batch_limit_cycles(n, ptr, cnt, budget, strict=False)
        ref = ring_rotor_return_time_exact(n, easy[1], easy[0])
        assert int(cycles.periods[0]) == ref.period
        assert int(cycles.preperiods[0]) == ref.preperiod
        assert int(cycles.periods[1]) == -1


def _family_configurations(n, seed_base=0):
    """One config per (placement, pointer) init family at ring size n."""
    rng = np.random.default_rng(seed_base)
    k_values = (1, 2, 3, 4, 7, n // 2)
    spaced = {k: placement.equally_spaced(n, k) for k in k_values}
    configurations = []
    for k in k_values:
        seed = int(rng.integers(2**31))
        for agents in (
            placement.all_on_one(k),
            spaced[k],
            placement.half_ring(n, k),
            placement.random_nodes(n, k, seed=seed),
            placement.clustered(n, k, max(1, int(k**0.5)), seed=seed),
        ):
            for dirs in (
                pointers.ring_toward_node(n, 0),
                pointers.ring_negative(n, agents),
                pointers.ring_positive(n, agents),
                pointers.ring_alternating(n),
                pointers.ring_random(n, seed=seed),
            ):
                configurations.append((dirs, agents))
    return configurations


class TestRandomizedLimitEquivalence:
    """Acceptance bar: the array-native pipeline is pinned exactly to
    repro.core.limit (find_limit_cycle / return_time_exact) on 100+
    randomized configurations spanning every initialization family."""

    def test_100_plus_family_configurations(self):
        total = 0
        for n, seed_base in ((12, 1), (23, 2), (32, 3)):
            configurations = _family_configurations(n, seed_base)
            budget = 16 * n * n + 1024
            ptr, cnt = lanes_from_configs(n, configurations)
            cycles = batch_limit_cycles(n, ptr, cnt, budget)
            worst, best = batch_return_gaps(n, ptr, cnt, cycles)
            for lane, (dirs, agents) in enumerate(configurations):
                ref = ring_rotor_return_time_exact(n, agents, dirs)
                assert int(cycles.preperiods[lane]) == ref.preperiod
                assert int(cycles.periods[lane]) == ref.period
                assert float(worst[lane]) == ref.worst_gap
                assert float(best[lane]) == ref.best_gap
            total += len(configurations)
        assert total >= 100

    def test_truncation_lanes_mix_exactly(self):
        """strict=False: lanes inside the budget match the reference
        exactly, lanes beyond it report -1 — in one mixed batch."""
        n = 24
        k = 4
        spaced = placement.equally_spaced(n, k)
        fast = (pointers.ring_positive(n, spaced), spaced)
        slow = (
            pointers.ring_toward_node(n, 0),
            placement.all_on_one(k),
        )
        configurations = [fast, slow, fast, slow]
        budget = 3 * n  # enough for the patrol, not for the worst case
        ptr, cnt = lanes_from_configs(n, configurations)
        cycles = batch_limit_cycles(n, ptr, cnt, budget, strict=False)
        ref = ring_rotor_return_time_exact(n, fast[1], fast[0])
        for lane in (0, 2):
            assert int(cycles.preperiods[lane]) == ref.preperiod
            assert int(cycles.periods[lane]) == ref.period
        for lane in (1, 3):
            assert int(cycles.preperiods[lane]) == -1
            assert int(cycles.periods[lane]) == -1
        # Resolved lanes still produce exact gaps after slicing.
        lanes = np.flatnonzero(cycles.periods > 0)
        from repro.sweep.batch_ring import BatchLimitCycles

        worst, best = batch_return_gaps(
            n, ptr[lanes], cnt[lanes],
            BatchLimitCycles(
                preperiods=cycles.preperiods[lanes],
                periods=cycles.periods[lanes],
            ),
        )
        assert [float(w) for w in worst] == [ref.worst_gap] * 2
        assert [float(b) for b in best] == [ref.best_gap] * 2

    def test_wide_count_dtypes_match_reference(self):
        """k > 126 escalates counts to int16: the packed fingerprint
        and the step arithmetic must stay exact across dtypes."""
        n = 24
        for k in (126, 127, 200):
            agents = placement.random_nodes(n, k, seed=k)
            dirs = pointers.ring_random(n, seed=k)
            ptr, cnt = lanes_from_configs(n, [(dirs, agents)])
            kernel = BatchRingKernel(n, ptr, cnt, track_cover=False)
            assert kernel._counts.dtype == (
                np.int8 if k <= 126 else np.int16
            )
            budget = 16 * n * n + 1024
            cycles = batch_limit_cycles(n, ptr, cnt, budget)
            worst, best = batch_return_gaps(n, ptr, cnt, cycles)
            ref = ring_rotor_return_time_exact(n, agents, dirs)
            assert int(cycles.preperiods[0]) == ref.preperiod
            assert int(cycles.periods[0]) == ref.period
            assert float(worst[0]) == ref.worst_gap
            assert float(best[0]) == ref.best_gap

    def test_truncated_lanes_resolve_exactly_with_budget(self):
        """The same lanes that truncate resolve exactly once the
        budget allows — truncation is a budget fact, not corruption."""
        n, k = 24, 4
        slow = (pointers.ring_toward_node(n, 0), placement.all_on_one(k))
        ptr, cnt = lanes_from_configs(n, [slow])
        short = batch_limit_cycles(n, ptr, cnt, 3 * n, strict=False)
        assert int(short.periods[0]) == -1
        full = batch_limit_cycles(n, ptr, cnt, 16 * n * n + 1024)
        ref = ring_rotor_return_time_exact(n, slow[1], slow[0])
        assert int(full.preperiods[0]) == ref.preperiod
        assert int(full.periods[0]) == ref.period


class TestFingerprintCollisions:
    """Degenerate fingerprint weights force collisions; the byte-level
    confirmation must still deliver the true minimal period/preperiod."""

    def _reference(self, n, configurations):
        return [
            ring_rotor_return_time_exact(n, agents, dirs)
            for dirs, agents in configurations
        ]

    def _mixed_batch(self, n):
        k = 3
        spaced = placement.equally_spaced(n, k)
        return [
            (pointers.ring_positive(n, spaced), spaced),
            (pointers.ring_toward_node(n, 0), placement.all_on_one(k)),
            (
                pointers.ring_random(n, seed=7),
                placement.random_nodes(n, k, seed=7),
            ),
        ]

    def test_all_zero_weights_collide_every_round(self):
        # Zero weights make every fingerprint 0: every comparison is a
        # "hit" and only the byte-exact confirmation separates states.
        n = 24
        configurations = self._mixed_batch(n)
        words = _fingerprint_words(n)
        zero = np.zeros(words, dtype=np.uint64)
        ptr, cnt = lanes_from_configs(n, configurations)
        cycles = batch_limit_cycles(
            n, ptr, cnt, 16 * n * n + 1024,
            _fingerprint_weights=(zero, zero),
        )
        worst, best = batch_return_gaps(n, ptr, cnt, cycles)
        for lane, ref in enumerate(self._reference(n, configurations)):
            assert int(cycles.preperiods[lane]) == ref.preperiod
            assert int(cycles.periods[lane]) == ref.period
            assert float(worst[lane]) == ref.worst_gap
            assert float(best[lane]) == ref.best_gap

    def test_count_blind_weights_collide_on_count_changes(self):
        # Zero count weights: configurations differing only in agent
        # counts share a fingerprint — crafted collisions that the
        # confirmation step must refute round after round.
        n = 24
        configurations = self._mixed_batch(n)
        words = _fingerprint_words(n)
        rng = np.random.default_rng(5)
        w_ptr = rng.integers(0, 2**64, size=words, dtype=np.uint64)
        zero = np.zeros(words, dtype=np.uint64)
        ptr, cnt = lanes_from_configs(n, configurations)
        cycles = batch_limit_cycles(
            n, ptr, cnt, 16 * n * n + 1024,
            _fingerprint_weights=(w_ptr, zero),
        )
        for lane, ref in enumerate(self._reference(n, configurations)):
            assert int(cycles.preperiods[lane]) == ref.preperiod
            assert int(cycles.periods[lane]) == ref.period

    def test_weight_shape_validation(self):
        n = 24
        ptr, cnt = lanes_from_configs(
            n, [(pointers.ring_uniform(n), [0, 1])]
        )
        bad = np.zeros(1, dtype=np.uint64)
        good = np.zeros(_fingerprint_words(n), dtype=np.uint64)
        with pytest.raises(ValueError):
            batch_limit_cycles(
                n, ptr, cnt, 100, _fingerprint_weights=(bad, good)
            )


class TestCompaction:
    def test_results_invariant_across_ratios(self):
        n = 32
        configurations = _family_configurations(n, seed_base=9)[:40]
        budget = 16 * n * n + 1024
        ptr, cnt = lanes_from_configs(n, configurations)
        baseline = batch_limit_cycles(n, ptr, cnt, budget)
        for ratio in (0.0, 0.3, 1.0):
            cycles = batch_limit_cycles(
                n, ptr, cnt, budget, compact_ratio=ratio
            )
            assert np.array_equal(cycles.preperiods, baseline.preperiods)
            assert np.array_equal(cycles.periods, baseline.periods)

    def test_invalid_ratio_rejected(self):
        n = 8
        ptr, cnt = lanes_from_configs(n, [(pointers.ring_uniform(n), [0])])
        for ratio in (-0.1, 1.5):
            with pytest.raises(ValueError):
                batch_limit_cycles(n, ptr, cnt, 100, compact_ratio=ratio)


class TestPositions:
    def test_multiplicity_and_order(self):
        n = 6
        ptr, cnt = lanes_from_configs(
            n, [(pointers.ring_uniform(n), [4, 0, 2, 0, 0])]
        )
        kernel = BatchRingKernel(n, ptr, cnt)
        assert kernel.positions(0) == [0, 0, 0, 2, 4]


class TestLaneMask:
    def test_frozen_lanes_hold_still(self):
        n = 12
        dirs = [1] * n
        ptr, cnt = lanes_from_configs(n, [(dirs, [0]), (dirs, [0])])
        kernel = BatchRingKernel(n, ptr, cnt)
        kernel.step(lane_mask=np.array([True, False]))
        assert kernel.positions(0) == [1]
        assert kernel.positions(1) == [0]
        assert kernel.directions_lane(1) == dirs

    def test_masked_visits_only_active_lanes(self):
        n = 12
        dirs = [1] * n
        ptr, cnt = lanes_from_configs(n, [(dirs, [0]), (dirs, [0])])
        kernel = BatchRingKernel(n, ptr, cnt)
        visits = kernel.step(lane_mask=np.array([False, True]))
        assert not visits[0].any()
        assert visits[1].any()


class TestValidation:
    def test_min_ring_size(self):
        with pytest.raises(ValueError):
            BatchRingKernel(2, np.ones((1, 2)), np.ones((1, 2)))

    def test_pointer_values(self):
        with pytest.raises(ValueError):
            BatchRingKernel(4, np.zeros((1, 4)), np.ones((1, 4)))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            BatchRingKernel(4, np.ones((1, 4)), np.ones((2, 4)))

    def test_agentless_lane(self):
        counts = np.zeros((2, 4))
        counts[0, 0] = 1
        with pytest.raises(ValueError):
            BatchRingKernel(4, np.ones((2, 4)), counts)

    def test_negative_counts(self):
        counts = np.ones((1, 4))
        counts[0, 1] = -1
        with pytest.raises(ValueError):
            BatchRingKernel(4, np.ones((1, 4)), counts)

    def test_dtype_escalation_preserves_totals(self):
        # k > 126 forces int16 lanes; conservation must survive.
        n, k = 8, 500
        ptr, cnt = lanes_from_configs(n, [([1] * n, [0] * k)])
        kernel = BatchRingKernel(n, ptr, cnt)
        assert kernel._counts.dtype == np.int16
        kernel.run(50)
        assert int(kernel.counts_lane(0).sum()) == k

    def test_lanes_from_configs_validation(self):
        with pytest.raises(ValueError):
            lanes_from_configs(4, [])
        with pytest.raises(ValueError):
            lanes_from_configs(4, [([1, 1, 1], [0])])  # wrong length
        with pytest.raises(ValueError):
            lanes_from_configs(4, [([1] * 4, [])])  # no agents
        with pytest.raises(ValueError):
            lanes_from_configs(4, [([1] * 4, [9])])  # out of range
