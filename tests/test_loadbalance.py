"""Tests for the load-balancing extension."""

import numpy as np
import pytest

from repro.graphs.families import torus_2d
from repro.graphs.ring import ring_graph
from repro.loadbalance.diffusion import RotorDiffusion, random_walk_diffusion
from repro.loadbalance.discrepancy import (
    DiscrepancyTrace,
    discrepancy_trace,
    uniform_discrepancy,
)


class TestRotorDiffusion:
    def test_token_conservation(self):
        g = ring_graph(16)
        d = RotorDiffusion(g, [0] * 64)
        d.run(100)
        assert int(d.loads().sum()) == 64

    def test_round_counter(self):
        d = RotorDiffusion(ring_graph(8), [0] * 8)
        d.run(5)
        assert d.round == 5

    def test_loads_is_copy(self):
        d = RotorDiffusion(ring_graph(8), [0] * 8)
        loads = d.loads()
        loads[:] = 0
        assert int(d.loads().sum()) == 8

    def test_default_ports(self):
        d = RotorDiffusion(ring_graph(8), [0, 4])
        assert d.num_tokens == 2


class TestRandomWalkDiffusion:
    def test_conservation(self):
        g = torus_2d(4, 4)
        loads = random_walk_diffusion(g, [0] * 100, rounds=50, seed=1)
        assert int(loads.sum()) == 100

    def test_deterministic_per_seed(self):
        g = ring_graph(12)
        a = random_walk_diffusion(g, [0] * 30, rounds=20, seed=7)
        b = random_walk_diffusion(g, [0] * 30, rounds=20, seed=7)
        assert np.array_equal(a, b)

    def test_validation(self):
        g = ring_graph(8)
        with pytest.raises(ValueError):
            random_walk_diffusion(g, [], rounds=5)
        with pytest.raises(ValueError):
            random_walk_diffusion(g, [0], rounds=-1)
        with pytest.raises(ValueError):
            random_walk_diffusion(g, [9], rounds=5)


class TestDiscrepancy:
    def test_uniform_discrepancy(self):
        assert uniform_discrepancy(np.array([2.0, 2.0, 2.0])) == 0.0
        assert uniform_discrepancy(np.array([0.0, 4.0])) == 2.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            uniform_discrepancy(np.array([]))

    def test_trace_records(self):
        d = RotorDiffusion(ring_graph(8), [0] * 32)
        trace = discrepancy_trace(d, total_rounds=20, sample_every=5)
        assert isinstance(trace, DiscrepancyTrace)
        assert len(trace.rounds) == 4
        assert trace.peak >= trace.final

    def test_trace_validation(self):
        d = RotorDiffusion(ring_graph(8), [0] * 8)
        with pytest.raises(ValueError):
            discrepancy_trace(d, total_rounds=0, sample_every=1)
        with pytest.raises(ValueError):
            discrepancy_trace(d, total_rounds=3, sample_every=5)


class TestBalancingBehaviour:
    def test_rotor_discrepancy_settles_low_on_torus(self):
        # Cooper-Spencer style behaviour: from the worst imbalance the
        # rotor-router reaches near-fair loads and stays there.
        g = torus_2d(6, 6)
        per_node = 6
        d = RotorDiffusion(g, [0] * (per_node * g.num_nodes))
        d.run(20 * g.num_nodes)
        late = discrepancy_trace(d, total_rounds=200, sample_every=10)
        assert late.peak <= 3 * per_node

    def test_rotor_no_worse_than_walk_on_torus(self):
        g = torus_2d(6, 6)
        tokens = [0] * (8 * g.num_nodes)
        rounds = 10 * g.num_nodes
        rotor = RotorDiffusion(g, list(tokens))
        rotor.run(rounds)
        rotor_disc = uniform_discrepancy(rotor.loads())
        walk_disc = uniform_discrepancy(
            random_walk_diffusion(g, list(tokens), rounds=rounds, seed=0)
        )
        assert rotor_disc <= 2 * walk_disc + 8
