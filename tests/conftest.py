"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import MultiAgentRotorRouter
from repro.core.ring import RingRotorRouter
from repro.graphs.ring import ring_graph


@pytest.fixture
def small_ring_engine() -> RingRotorRouter:
    """A 12-node ring with 2 agents and clockwise pointers."""
    return RingRotorRouter(12, [1] * 12, [0, 6])


@pytest.fixture
def small_general_engine() -> MultiAgentRotorRouter:
    """The general engine on the same 12-node configuration."""
    return MultiAgentRotorRouter(ring_graph(12), [0] * 12, [0, 6])


def random_ring_setup(
    rng: np.random.Generator, max_n: int = 40, max_k: int = 6
) -> tuple[int, list[int], list[int]]:
    """Random (n, directions, agents) for equivalence/property tests."""
    n = int(rng.integers(3, max_n + 1))
    k = int(rng.integers(1, max_k + 1))
    directions = [int(d) for d in rng.choice((1, -1), size=n)]
    agents = [int(a) for a in rng.integers(0, n, size=k)]
    return n, directions, agents
