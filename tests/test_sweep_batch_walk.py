"""Batch walk kernel: seed-for-seed equivalence with RingRandomWalks."""

import numpy as np
import pytest

from repro.randomwalk.ring_walk import RingRandomWalks
from repro.sweep.batch_walk import (
    BatchRingWalks,
    WalkLane,
    walk_lanes_from_cells,
)
from repro.sweep.spec import PLACEMENTS


def _randomized_configs(count, seed=7, max_n=64, max_k=8):
    """Randomized (n, positions, seed) configurations, grouped by n."""
    rng = np.random.default_rng(seed)
    placements = list(PLACEMENTS)
    groups = {}
    for _ in range(count):
        n = int(rng.integers(8, max_n + 1))
        k = int(rng.integers(1, max_k + 1))
        name = placements[int(rng.integers(0, len(placements)))]
        positions = tuple(
            int(p) for p in PLACEMENTS[name](n, k, int(rng.integers(0, 2**31)))
        )
        groups.setdefault(n, []).append(
            (positions, int(rng.integers(0, 2**31)))
        )
    return groups


class TestReferenceEquivalence:
    def test_cover_rounds_match_reference_on_randomized_configs(self):
        # The acceptance pin: >= 100 randomized (n, k, placement)
        # configurations must reproduce RingRandomWalks.run_until_covered
        # exactly for the same seeds — not merely in distribution.
        groups = _randomized_configs(120)
        assert sum(len(lanes) for lanes in groups.values()) >= 100
        for n, lanes in groups.items():
            max_rounds = 64 * n * n
            batch = BatchRingWalks(
                n, [WalkLane(positions, seed) for positions, seed in lanes]
            )
            covers = batch.run_until_covered(max_rounds)
            for (positions, seed), got in zip(lanes, covers):
                reference = RingRandomWalks(n, positions, seed=seed)
                assert reference.run_until_covered(max_rounds) == int(got)

    def test_first_visit_rounds_match_reference(self):
        n, positions, seed = 24, (3, 17), 123
        batch = BatchRingWalks(n, [WalkLane(positions, seed)])
        batch.run_until_covered(64 * n * n)
        reference = RingRandomWalks(n, positions, seed=seed)
        reference.run_until_covered(64 * n * n)
        assert list(batch.first_visit[0]) == list(reference.first_visit)

    def test_mixed_walker_counts_in_one_batch(self):
        # The walker axis is ragged: lanes with different k coexist.
        n = 20
        lanes = [WalkLane((0,), 1), WalkLane((0, 5, 10, 15), 2)]
        covers = BatchRingWalks(n, lanes).run_until_covered(64 * n * n)
        for lane, got in zip(lanes, covers):
            reference = RingRandomWalks(n, lane.positions, seed=lane.seed)
            assert reference.run_until_covered(64 * n * n) == int(got)

    def test_partial_final_block_stays_aligned(self):
        # A max_rounds that is not a multiple of block_size truncates
        # the last block in both implementations identically.
        n, positions, seed = 16, (0,), 5
        max_rounds = 100
        batch = BatchRingWalks(n, [WalkLane(positions, seed)], block_size=32)
        covers = batch.run_until_covered(max_rounds, strict=False)
        reference = RingRandomWalks(
            n, positions, seed=seed, block_size=32
        )
        try:
            expected = reference.run_until_covered(max_rounds)
        except RuntimeError:
            expected = -1
        assert int(covers[0]) == expected


class TestCoverDetection:
    def test_initially_covered_lane_reports_zero(self):
        n = 8
        lanes = [WalkLane(tuple(range(n)), 0), WalkLane((0,), 0)]
        batch = BatchRingWalks(n, lanes)
        covers = batch.run_until_covered(64 * n * n)
        assert covers[0] == 0
        assert covers[1] > 0

    def test_covered_lanes_stop_drawing(self):
        # After a lane covers, its generator is never consumed again —
        # the remaining lanes still match their standalone runs.
        n = 12
        lanes = [WalkLane(tuple(range(n)), 3), WalkLane((0, 6), 4)]
        covers = BatchRingWalks(n, lanes).run_until_covered(64 * n * n)
        reference = RingRandomWalks(n, (0, 6), seed=4)
        assert int(covers[1]) == reference.run_until_covered(64 * n * n)

    def test_strict_truncation_raises(self):
        batch = BatchRingWalks(16, [WalkLane((0,), 0)])
        with pytest.raises(RuntimeError):
            batch.run_until_covered(2)

    def test_nonstrict_truncation_reports_minus_one(self):
        batch = BatchRingWalks(16, [WalkLane((0,), 0)])
        covers = batch.run_until_covered(2, strict=False)
        assert covers[0] == -1

    def test_run_advances_all_lanes(self):
        batch = BatchRingWalks(16, [WalkLane((0,), 0), WalkLane((8,), 1)])
        batch.run(10)
        assert batch.round == 10
        assert len(batch.positions_lane(0)) == 1
        assert batch.unvisited_lane(0) < 16


class TestValidation:
    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            BatchRingWalks(2, [WalkLane((0,), 0)])
        with pytest.raises(ValueError):
            BatchRingWalks(8, [])
        with pytest.raises(ValueError):
            BatchRingWalks(8, [WalkLane((), 0)])
        with pytest.raises(ValueError):
            BatchRingWalks(8, [WalkLane((9,), 0)])
        with pytest.raises(ValueError):
            BatchRingWalks(8, [WalkLane((0,), 0)], block_size=0)
        with pytest.raises(ValueError):
            BatchRingWalks(8, [WalkLane((0,), 0)]).run(-1)


class TestLaneFanOut:
    def test_cells_expand_to_slices(self):
        lanes, slices = walk_lanes_from_cells(
            [((0, 1), (10, 11, 12)), ((3,), (20,))]
        )
        assert len(lanes) == 4
        assert slices == [(0, 3), (3, 4)]
        assert lanes[0] == WalkLane(positions=(0, 1), seed=10)
        assert lanes[3] == WalkLane(positions=(3,), seed=20)

    def test_empty_seed_list_rejected(self):
        with pytest.raises(ValueError):
            walk_lanes_from_cells([((0,), ())])
