"""Tests for the Θ-shape normalization formulas."""

import math

import pytest

from repro.theory import bounds


class TestShapes:
    def test_rotor_cover_worst(self):
        assert bounds.rotor_cover_worst(100, 1) == 10_000.0
        assert bounds.rotor_cover_worst(100, 8) == pytest.approx(
            10_000 / math.log(8)
        )

    def test_rotor_cover_best(self):
        assert bounds.rotor_cover_best(100, 10) == pytest.approx(100.0)

    def test_return_time(self):
        assert bounds.rotor_return_time(120, 6) == 20.0

    def test_walk_k1_is_exact_expectation(self):
        assert bounds.walk_cover_worst(10, 1) == 45.0
        assert bounds.walk_cover_best(10, 1) == 45.0

    def test_walk_best_shape(self):
        assert bounds.walk_cover_best(100, 10) == pytest.approx(
            100.0 * math.log(10) ** 2
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            bounds.rotor_cover_worst(2, 1)
        with pytest.raises(ValueError):
            bounds.rotor_cover_best(10, 0)


class TestSpeedups:
    def test_worst_speedup_log(self):
        assert bounds.rotor_speedup_worst(1) == 1.0
        assert bounds.rotor_speedup_worst(8) == pytest.approx(math.log(8))

    def test_best_speedup_quadratic(self):
        assert bounds.rotor_speedup_best(5) == 25.0

    def test_walk_best_speedup(self):
        assert bounds.walk_speedup_best(1) == 1.0
        assert bounds.walk_speedup_best(10) == pytest.approx(
            100.0 / math.log(10) ** 2
        )

    def test_ordering_rotor_beats_walk_best(self):
        # Holds for k >= 3 (ln k >= 1); at k = 2 the normalization
        # ln²2 < 1 flips the raw formulas, which is fine: they are
        # shapes, not pointwise claims.
        for k in (3, 4, 8, 16, 64):
            assert bounds.rotor_speedup_best(k) >= bounds.walk_speedup_best(k)


class TestRegime:
    def test_max_k(self):
        n = 2 ** 22  # 4M: n^(1/11) = 4
        k = bounds.paper_regime_max_k(n)
        assert k ** 11 < n
        assert (k + 1) ** 11 >= n

    def test_small_n(self):
        assert bounds.paper_regime_max_k(100) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            bounds.paper_regime_max_k(2)

    def test_harmonic(self):
        assert bounds.harmonic_number(4) == pytest.approx(25.0 / 12.0)
