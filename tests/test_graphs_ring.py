"""Tests for the ring graph and its direction helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graphs.ring import (
    clockwise_distance,
    direction_toward,
    ring_distance,
    ring_graph,
)


class TestRingGraph:
    def test_port_convention(self):
        g = ring_graph(5)
        for v in range(5):
            assert g.port_target(v, 0) == (v + 1) % 5  # port 0 clockwise
            assert g.port_target(v, 1) == (v - 1) % 5  # port 1 anticlockwise

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            ring_graph(2)

    def test_regular_degree_two(self):
        g = ring_graph(7)
        assert all(g.degree(v) == 2 for v in range(7))

    def test_edge_count(self):
        assert ring_graph(9).num_edges == 9


class TestDistances:
    @given(st.integers(3, 50), st.integers(0, 49), st.integers(0, 49))
    def test_symmetry(self, n, u, v):
        u, v = u % n, v % n
        assert ring_distance(n, u, v) == ring_distance(n, v, u)

    @given(st.integers(3, 50), st.integers(0, 49))
    def test_self_distance_zero(self, n, u):
        assert ring_distance(n, u % n, u % n) == 0

    @given(st.integers(3, 50), st.integers(0, 49), st.integers(0, 49))
    def test_at_most_half(self, n, u, v):
        assert ring_distance(n, u % n, v % n) <= n // 2

    def test_clockwise_distance(self):
        assert clockwise_distance(10, 3, 7) == 4
        assert clockwise_distance(10, 7, 3) == 6

    @given(st.integers(3, 50), st.integers(0, 49), st.integers(0, 49))
    def test_clockwise_plus_reverse_is_n(self, n, u, v):
        u, v = u % n, v % n
        if u != v:
            assert (
                clockwise_distance(n, u, v) + clockwise_distance(n, v, u) == n
            )


class TestDirectionToward:
    def test_short_way(self):
        assert direction_toward(10, 0, 2) == 1
        assert direction_toward(10, 0, 8) == -1

    def test_tie_resolves_clockwise(self):
        assert direction_toward(10, 0, 5) == 1

    def test_same_node_rejected(self):
        with pytest.raises(ValueError):
            direction_toward(10, 3, 3)

    @given(st.integers(4, 40), st.integers(0, 39), st.integers(0, 39))
    def test_direction_decreases_distance(self, n, u, v):
        u, v = u % n, v % n
        if u == v:
            return
        d = direction_toward(n, u, v)
        moved = (u + d) % n
        assert ring_distance(n, moved, v) <= ring_distance(n, u, v)
