"""Lemma 13: all six properties of the profile sequence, executable."""

import math

import pytest

from repro.theory.bounds import harmonic_number
from repro.theory.sequences import solve_profile

KS = [4, 5, 6, 8, 10, 16, 32, 64, 128]


class TestLemma13Properties:
    @pytest.mark.parametrize("k", KS)
    def test_property1_a0_infinite(self, k):
        assert math.isinf(solve_profile(k).a[0])

    @pytest.mark.parametrize("k", KS)
    def test_property2_strictly_decreasing(self, k):
        a = solve_profile(k).a
        for i in range(1, k):
            assert a[i] > a[i + 1], f"a_{i} <= a_{i+1}"

    @pytest.mark.parametrize("k", KS)
    def test_property2_tail_equality(self, k):
        # a_{k+1} = a_k: encoded via b_{k+1} = b_k.
        profile = solve_profile(k)
        assert profile.b[k + 1] == pytest.approx(profile.b[k], rel=1e-9)

    @pytest.mark.parametrize("k", KS)
    def test_property3_sums_to_one(self, k):
        assert sum(solve_profile(k).a[1:]) == pytest.approx(1.0, abs=1e-9)

    @pytest.mark.parametrize("k", KS)
    def test_property4_recurrence(self, k):
        profile = solve_profile(k)
        for i in range(1, k + 1):
            assert abs(profile.residual(i)) < 1e-6

    @pytest.mark.parametrize("k", KS)
    def test_property5_a1_bounds(self, k):
        a1 = solve_profile(k).a[1]
        h_k = harmonic_number(k)
        assert 1.0 / (4.0 * (h_k + 1.0)) <= a1 <= 1.0 / h_k

    @pytest.mark.parametrize("k", KS)
    def test_property6_ai_lower_bound(self, k):
        profile = solve_profile(k)
        h_k = harmonic_number(k)
        for i in range(1, k + 1):
            assert profile.a[i] >= 1.0 / (4.0 * i * (h_k + 1.0))


class TestSolver:
    def test_requires_k_above_3(self):
        with pytest.raises(ValueError):
            solve_profile(3)

    def test_c_squared_in_proof_bracket(self):
        for k in (6, 20, 100):
            c = solve_profile(k).c
            h_k = harmonic_number(k)
            assert h_k <= c * c <= 4.0 * (h_k + 1.0)

    def test_b_increasing(self):
        profile = solve_profile(12)
        for i in range(12):
            assert profile.b[i] < profile.b[i + 1] + 1e-12

    def test_position_fractions(self):
        profile = solve_profile(8)
        p = profile.p
        assert p[1] == pytest.approx(1.0, abs=1e-9)  # frontier
        assert p[8] == pytest.approx(profile.a[8], abs=1e-12)
        for i in range(1, 8):
            assert p[i] > p[i + 1]

    def test_residual_index_validated(self):
        profile = solve_profile(6)
        with pytest.raises(ValueError):
            profile.residual(0)
        with pytest.raises(ValueError):
            profile.residual(7)

    def test_cached(self):
        assert solve_profile(10) is solve_profile(10)

    def test_profile_approximates_one_over_i_times_hk(self):
        # The paper's asymptotic reading: a_i ~ 1/(i·H_k) up to
        # constants.  Check the ratio stays in a modest band.
        k = 64
        profile = solve_profile(k)
        h_k = harmonic_number(k)
        ratios = [
            profile.a[i] * i * h_k for i in (1, 2, 4, 8, 16, 32, 64)
        ]
        assert max(ratios) / min(ratios) < 6.0
