"""Tests for repro.util.tables."""

import pytest

from repro.util.tables import Table, format_table


class TestTable:
    def test_add_and_render(self):
        table = Table(columns=["a", "b"], caption="demo")
        table.add_row(1, 2)
        table.add_row(30, 40)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "b" in lines[1]
        assert "30" in text and "40" in text

    def test_row_width_checked(self):
        table = Table(columns=["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_formats_applied(self):
        table = Table(columns=["x"], formats=[".2f"])
        table.add_row(3.14159)
        assert "3.14" in table.render()
        assert "3.14159" not in table.render()

    def test_none_rendered_as_dash(self):
        table = Table(columns=["x"])
        table.add_row(None)
        assert "-" in table.render().splitlines()[-1]

    def test_column_extraction(self):
        table = Table(columns=["k", "v"])
        table.add_row(1, "a")
        table.add_row(2, "b")
        assert table.column("k") == [1, 2]
        assert table.column("v") == ["a", "b"]

    def test_column_missing_raises(self):
        table = Table(columns=["k"])
        with pytest.raises(KeyError):
            table.column("nope")

    def test_alignment(self):
        table = Table(columns=["col"])
        table.add_row(1)
        table.add_row(1000)
        body = table.render().splitlines()
        assert len(body[-1]) == len(body[-2])  # right-aligned same width


class TestFormatTable:
    def test_no_caption(self):
        text = format_table(["h"], [[1]])
        assert text.splitlines()[0].strip() == "h"

    def test_format_length_checked(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [], formats=[None])

    def test_bad_row_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_string_cells_ignore_formats(self):
        text = format_table(["a"], [["hello"]], formats=[".2f"])
        assert "hello" in text
