"""CSR packing, digests, and the lazy construction caches of
:mod:`repro.graphs.base`."""

import numpy as np
import pytest

from repro.graphs import (
    GraphCSR,
    PortLabeledGraph,
    clique,
    hypercube,
    lollipop,
    path_graph,
    ring_graph,
    star,
    torus_2d,
)
from repro.graphs.random_graphs import gnp_random_graph, shuffled_ports


class TestGraphCSR:
    def test_round_trip_preserves_port_order(self):
        for graph in (
            torus_2d(4, 5),
            hypercube(4),
            clique(7),
            star(6),
            lollipop(4, 3),
            path_graph(9),
            shuffled_ports(torus_2d(3, 4), seed=3),
        ):
            csr = graph.to_csr()
            assert csr.num_nodes == graph.num_nodes
            assert csr.num_arcs == graph.num_arcs
            assert csr.to_ports() == graph.port_lists()
            # Arc (v, port) is CSR row indptr[v] + port.
            for v in range(graph.num_nodes):
                row = csr.neighbors[csr.indptr[v]:csr.indptr[v + 1]]
                assert tuple(int(u) for u in row) == graph.neighbors(v)
                assert int(csr.deg[v]) == graph.degree(v)

    def test_arrays_are_immutable(self):
        csr = hypercube(3).to_csr()
        for array in (csr.indptr, csr.neighbors, csr.deg):
            with pytest.raises(ValueError):
                array[0] = 99

    def test_digest_is_content_addressed(self):
        # Same structure from different factories: one digest.
        a = torus_2d(3, 4).to_csr()
        b = torus_2d(3, 4).to_csr()
        assert a is not b
        assert a.digest == b.digest
        # Port order is part of the content.
        shuffled = shuffled_ports(torus_2d(3, 4), seed=1).to_csr()
        assert shuffled.digest != a.digest
        assert hypercube(4).to_csr().digest != a.digest

    def test_from_ports_matches_graph_packing(self):
        graph = lollipop(5, 4)
        direct = GraphCSR.from_ports(graph.port_lists())
        assert direct.digest == graph.to_csr().digest

    def test_to_csr_is_cached(self):
        graph = hypercube(4)
        assert graph.to_csr() is graph.to_csr()


class TestLazyConstructionCaches:
    def test_construction_builds_no_port_index(self):
        # Regression: the reverse-lookup dicts (one per node, O(m)
        # Python objects) used to be built eagerly on every
        # construction.  An n=50k graph must construct without any.
        graph = ring_graph(50_000)
        assert graph._port_index_cache is None

    def test_port_index_built_on_first_reverse_lookup(self):
        graph = torus_2d(3, 3)
        assert graph._port_index_cache is None
        assert graph.port_to(0, 1) == 0
        assert graph._port_index_cache is not None
        # has_edge uses the same cache.
        assert graph.has_edge(0, 1)

    def test_reverse_lookup_still_correct(self):
        graph = shuffled_ports(lollipop(5, 3), seed=2)
        for v in range(graph.num_nodes):
            for i, u in enumerate(graph.neighbors(v)):
                assert graph.port_to(v, u) == i
        with pytest.raises(ValueError):
            graph.port_to(0, graph.num_nodes - 1)

    def test_validation_unaffected_by_lazy_index(self):
        with pytest.raises(ValueError, match="asymmetric"):
            PortLabeledGraph([(1,), (0,), (1,)])

    def test_diameter_cached_and_exact(self):
        graph = torus_2d(3, 5)
        first = graph.diameter()
        assert first == max(
            graph.eccentricity(v) for v in range(graph.num_nodes)
        )
        assert graph._diameter_cache == first
        assert graph.diameter() == first

    def test_gnp_csr_round_trip(self):
        graph = gnp_random_graph(40, 0.2, seed=9)
        assert graph.to_csr().to_ports() == graph.port_lists()
