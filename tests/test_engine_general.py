"""Tests of the reference engine's model semantics (paper §1.3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import MultiAgentRotorRouter
from repro.graphs.base import PortLabeledGraph
from repro.graphs.families import clique, grid_2d, path_graph, star
from repro.graphs.ring import ring_graph
from repro.util.rng import make_rng


def triangle_engine(agents=(0,), pointers=(0, 0, 0)):
    return MultiAgentRotorRouter(
        PortLabeledGraph([[1, 2], [0, 2], [0, 1]]), list(pointers), agents
    )


class TestConstruction:
    def test_pointer_length_checked(self):
        with pytest.raises(ValueError):
            MultiAgentRotorRouter(ring_graph(5), [0] * 4, [0])

    def test_pointer_range_checked(self):
        with pytest.raises(ValueError):
            MultiAgentRotorRouter(ring_graph(5), [0, 0, 2, 0, 0], [0])

    def test_agent_range_checked(self):
        with pytest.raises(ValueError):
            MultiAgentRotorRouter(ring_graph(5), [0] * 5, [5])

    def test_at_least_one_agent(self):
        with pytest.raises(ValueError):
            MultiAgentRotorRouter(ring_graph(5), [0] * 5, [])

    def test_initial_visit_counts_are_occupancy(self):
        e = MultiAgentRotorRouter(ring_graph(6), [0] * 6, [2, 2, 4])
        assert e.visit_counts[2] == 2
        assert e.visit_counts[4] == 1
        assert e.visit_counts[0] == 0


class TestSingleStepSemantics:
    def test_agent_follows_pointer_then_advances(self):
        e = triangle_engine(agents=(0,), pointers=(0, 0, 0))
        moves = e.step()
        assert moves == [(0, 1, 1)]
        assert e.pointers[0] == 1  # advanced to next port

    def test_two_agents_fan_out(self):
        # Paper: "one agent along pi_v, the other along next(pi_v)".
        e = triangle_engine(agents=(0, 0), pointers=(0, 0, 0))
        moves = sorted(e.step())
        assert moves == [(0, 1, 1), (0, 2, 1)]
        assert e.pointers[0] == 0  # advanced twice around degree 2

    def test_three_agents_wrap_ports(self):
        e = triangle_engine(agents=(0, 0, 0), pointers=(0, 0, 0))
        moves = dict(((s, d), c) for s, d, c in e.step())
        assert moves[(0, 1)] == 2  # ports 0, 2 -> port 0 twice
        assert moves[(0, 2)] == 1
        assert e.pointers[0] == 1

    def test_pointer_start_respected(self):
        e = triangle_engine(agents=(0,), pointers=(1, 0, 0))
        assert e.step() == [(0, 2, 1)]

    def test_round_increments(self):
        e = triangle_engine()
        e.step()
        assert e.round == 1

    def test_star_center_round_robin(self):
        e = MultiAgentRotorRouter(star(4), [0] * 5, [0])
        destinations = []
        for _ in range(8):
            moves = e.step()  # center -> leaf
            destinations.append(moves[0][1])
            e.step()  # leaf -> center (only port)
        # Round-robin over leaves 1..4, twice.
        assert destinations == [1, 2, 3, 4, 1, 2, 3, 4]


class TestConservationAndVisits:
    @given(st.integers(0, 2 ** 30))
    @settings(max_examples=25, deadline=None)
    def test_agent_count_conserved(self, seed):
        rng = make_rng(seed)
        g = grid_2d(4, 4)
        agents = [int(rng.integers(0, 16)) for _ in range(5)]
        ptrs = [int(rng.integers(0, g.degree(v))) for v in range(16)]
        e = MultiAgentRotorRouter(g, ptrs, agents)
        for _ in range(50):
            e.step()
        assert int(e.counts.sum()) == 5

    def test_visit_counts_accumulate_arrivals(self):
        e = triangle_engine(agents=(0,))
        e.step()  # 0 -> 1
        assert e.visit_counts[1] == 1
        # n_v(0): the initial occupancy of node 0 counts as one visit,
        # and stepping away does not add more.
        assert e.visit_counts[0] == 1
        assert e.visit_counts[2] == 0

    def test_exit_counts(self):
        e = triangle_engine(agents=(0, 0))
        e.step()
        assert e.exit_counts[0] == 2

    def test_cover_round_none_until_covered(self):
        e = MultiAgentRotorRouter(ring_graph(8), [0] * 8, [0])
        assert e.cover_round is None
        e.run_until_covered(1000)
        assert e.cover_round is not None
        assert e.unvisited == 0

    def test_cover_round_zero_when_fully_occupied(self):
        e = MultiAgentRotorRouter(ring_graph(4), [0] * 4, [0, 1, 2, 3])
        assert e.cover_round == 0

    def test_run_until_covered_budget(self):
        e = MultiAgentRotorRouter(ring_graph(64), [1] * 64, [0])
        with pytest.raises(RuntimeError):
            e.run_until_covered(3)

    def test_run_negative_rejected(self):
        with pytest.raises(ValueError):
            triangle_engine().run(-1)


class TestHolds:
    def test_holding_all_freezes(self):
        e = triangle_engine(agents=(0, 0))
        moves = e.step(holds={0: 2})
        assert moves == []
        assert e.positions() == [0, 0]
        assert e.pointers[0] == 0  # pointer untouched

    def test_partial_hold_releases_rest(self):
        e = triangle_engine(agents=(0, 0))
        moves = e.step(holds={0: 1})
        assert moves == [(0, 1, 1)]
        assert sorted(e.positions()) == [0, 1]

    def test_overhold_rejected(self):
        e = triangle_engine(agents=(0,))
        with pytest.raises(ValueError):
            e.step(holds={0: 2})

    def test_negative_hold_rejected(self):
        e = triangle_engine(agents=(0,))
        with pytest.raises(ValueError):
            e.step(holds={0: -1})

    def test_holding_does_not_create_visits(self):
        e = triangle_engine(agents=(0,))
        before = e.visit_counts.copy()
        e.step(holds={0: 1})
        assert np.array_equal(e.visit_counts, before)


class TestArcTraversalLaw:
    """The round-robin law: traversals(v,u) = ceil((e_v - port)/deg)."""

    @given(st.integers(0, 2 ** 30))
    @settings(max_examples=20, deadline=None)
    def test_law_on_random_runs(self, seed):
        rng = make_rng(seed)
        g = grid_2d(3, 4)
        n = g.num_nodes
        agents = [int(rng.integers(0, n)) for _ in range(4)]
        ptrs = [int(rng.integers(0, g.degree(v))) for v in range(n)]
        e = MultiAgentRotorRouter(g, ptrs, agents, track_arcs=True)
        e.run(int(rng.integers(1, 120)))
        for v in range(n):
            for u in g.neighbors(v):
                assert e.measured_arc_traversals(v, u) == \
                    e.expected_arc_traversals(v, u)

    def test_law_with_multi_agent_pileups(self):
        e = MultiAgentRotorRouter(
            clique(5), [0] * 5, [0] * 7, track_arcs=True
        )
        e.run(40)
        for v in range(5):
            for u in e.graph.neighbors(v):
                assert e.measured_arc_traversals(v, u) == \
                    e.expected_arc_traversals(v, u)

    def test_tracking_required(self):
        e = triangle_engine()
        with pytest.raises(RuntimeError):
            e.measured_arc_traversals(0, 1)


class TestSnapshotRestoreClone:
    def test_snapshot_restore_round_trip(self):
        e = MultiAgentRotorRouter(grid_2d(3, 3), [0] * 9, [0, 4])
        e.run(7)
        snap = e.snapshot()
        continuation = [e.step() for _ in range(5)]
        e.restore(snap)
        replay = [e.step() for _ in range(5)]
        assert continuation == replay

    def test_clone_independent(self):
        e = MultiAgentRotorRouter(ring_graph(8), [0] * 8, [0])
        twin = e.clone()
        e.run(10)
        assert twin.round == 0 or twin.round != e.round
        assert twin.state_key() != e.state_key() or e.round == twin.round

    def test_clone_same_trajectory(self):
        e = MultiAgentRotorRouter(grid_2d(3, 3), [1, 0] * 4 + [0], [2, 2])
        e.run(3)
        twin = e.clone()
        for _ in range(10):
            assert e.step() == twin.step()

    def test_state_key_equality(self):
        a = MultiAgentRotorRouter(ring_graph(6), [0] * 6, [1])
        b = MultiAgentRotorRouter(ring_graph(6), [0] * 6, [1])
        assert a.state_key() == b.state_key()
        a.step()
        assert a.state_key() != b.state_key()

    def test_restore_wrong_graph_rejected(self):
        a = MultiAgentRotorRouter(ring_graph(6), [0] * 6, [1])
        b = MultiAgentRotorRouter(ring_graph(8), [0] * 8, [1])
        with pytest.raises(ValueError):
            b.restore(a.snapshot())


class TestKnownCoverFacts:
    def test_single_agent_path_quadraticish(self):
        # All-left pointers from the left end: the classic slow case.
        n = 32
        ports = [0] + [1] * (n - 2) + [0]  # endpoints have one port
        e = MultiAgentRotorRouter(path_graph(n), ports, [0])
        cover = e.run_until_covered(10 * n * n)
        assert cover >= (n - 1) ** 2 / 2  # bouncing exploration is slow
        assert cover <= 4 * n * n

    def test_clique_cover_fast(self):
        e = MultiAgentRotorRouter(clique(10), [0] * 10, [0])
        assert e.run_until_covered(1000) <= 200

    def test_more_agents_never_slower(self):
        # Yanovski et al. / Lemma 1 corollary.
        g = grid_2d(4, 4)
        covers = []
        for k in (1, 2, 4, 8):
            e = MultiAgentRotorRouter(g, [0] * 16, [0] * k)
            covers.append(e.run_until_covered(10_000))
        assert covers == sorted(covers, reverse=True) or all(
            covers[i] >= covers[i + 1] for i in range(len(covers) - 1)
        )
