"""Tests for seeded random graph generators."""

import pytest

from repro.graphs.random_graphs import (
    gnp_random_graph,
    random_regular_graph,
    shuffled_ports,
)
from repro.graphs.ring import ring_graph


class TestGnp:
    def test_deterministic_per_seed(self):
        a = gnp_random_graph(30, 0.3, seed=5)
        b = gnp_random_graph(30, 0.3, seed=5)
        assert a == b

    def test_different_seeds_differ(self):
        a = gnp_random_graph(30, 0.3, seed=1)
        b = gnp_random_graph(30, 0.3, seed=2)
        assert a != b

    def test_connected_by_default(self):
        g = gnp_random_graph(40, 0.25, seed=0)
        assert g.is_connected()

    def test_p_one_is_clique(self):
        g = gnp_random_graph(8, 1.0, seed=0)
        assert g.num_edges == 28

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            gnp_random_graph(10, 1.5)

    def test_impossible_connectivity_raises(self):
        with pytest.raises(RuntimeError):
            gnp_random_graph(20, 0.0, seed=0, require_connected=True)


class TestRandomRegular:
    def test_regularity(self):
        g = random_regular_graph(20, 4, seed=3)
        assert all(g.degree(v) == 4 for v in range(20))

    def test_connected(self):
        assert random_regular_graph(30, 3, seed=1).is_connected()

    def test_deterministic(self):
        assert random_regular_graph(16, 4, seed=9) == random_regular_graph(
            16, 4, seed=9
        )

    def test_odd_total_rejected(self):
        with pytest.raises(ValueError):
            random_regular_graph(5, 3)

    def test_degree_bounds(self):
        with pytest.raises(ValueError):
            random_regular_graph(4, 4)
        with pytest.raises(ValueError):
            random_regular_graph(4, 0)


class TestShuffledPorts:
    def test_same_edge_set(self):
        g = ring_graph(12)
        s = shuffled_ports(g, seed=7)
        assert sorted(s.edges()) == sorted(g.edges())

    def test_deterministic(self):
        g = random_regular_graph(12, 4, seed=0)
        assert shuffled_ports(g, seed=1) == shuffled_ports(g, seed=1)

    def test_actually_shuffles_high_degree(self):
        g = random_regular_graph(16, 6, seed=0)
        s = shuffled_ports(g, seed=2)
        assert any(
            g.neighbors(v) != s.neighbors(v) for v in range(g.num_nodes)
        )
