"""Tests for pointer initializations."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import pointers
from repro.core.ring import RingRotorRouter
from repro.graphs.families import grid_2d
from repro.graphs.ring import ring_distance, ring_graph


class TestTowardNode:
    def test_points_along_shortest_path(self):
        dirs = pointers.ring_toward_node(10, 0)
        assert dirs[1] == -1   # 1 -> 0 anticlockwise
        assert dirs[9] == 1    # 9 -> 0 clockwise
        assert dirs[5] == 1    # antipodal tie resolves clockwise

    def test_at_target_default(self):
        assert pointers.ring_toward_node(8, 3)[3] == 1
        assert pointers.ring_toward_node(8, 3, at_target=-1)[3] == -1

    def test_target_range_checked(self):
        with pytest.raises(ValueError):
            pointers.ring_toward_node(8, 8)

    @given(st.integers(4, 40), st.integers(0, 39))
    @settings(max_examples=30, deadline=None)
    def test_following_pointers_reaches_target(self, n, target):
        target %= n
        dirs = pointers.ring_toward_node(n, target)
        for start in range(n):
            v = start
            for _ in range(n):
                if v == target:
                    break
                v = (v + dirs[v]) % n
            assert v == target


class TestNegative:
    def test_first_visit_reflects(self):
        # The defining property: an agent reaching a fresh node is sent
        # straight back where it came from.
        n = 16
        agents = [0]
        dirs = pointers.ring_negative(n, agents)
        e = RingRotorRouter(n, dirs, agents)
        moves = e.step()          # 0 -> 1 (at_agents default clockwise)
        assert moves == [(0, 1, 1)]
        moves = e.step()          # first visit to 1 must bounce back
        assert moves == [(1, 0, 1)]

    def test_points_toward_nearest_agent(self):
        dirs = pointers.ring_negative(12, [0, 6])
        assert dirs[2] == -1  # nearest agent at 0, anticlockwise
        assert dirs[4] == 1   # nearest agent at 6, clockwise
        assert dirs[8] == -1
        assert dirs[10] == 1

    def test_at_agents_override(self):
        dirs = pointers.ring_negative(8, [3], at_agents=-1)
        assert dirs[3] == -1

    def test_requires_agents(self):
        with pytest.raises(ValueError):
            pointers.ring_negative(8, [])

    def test_agent_range_checked(self):
        with pytest.raises(ValueError):
            pointers.ring_negative(8, [9])

    @given(st.integers(6, 40), st.integers(1, 5))
    @settings(max_examples=25, deadline=None)
    def test_unoccupied_pointers_point_at_nearer_side(self, n, k):
        from repro.util.rng import make_rng

        rng = make_rng(n * 100 + k)
        agents = sorted(
            int(a) for a in rng.choice(n, size=min(k, n), replace=False)
        )
        dirs = pointers.ring_negative(n, agents)
        occupied = set(agents)
        for v in range(n):
            if v in occupied:
                continue
            toward = (v + dirs[v]) % n
            away = (v - dirs[v]) % n
            dist_toward = min(ring_distance(n, toward, a) for a in agents)
            dist_away = min(ring_distance(n, away, a) for a in agents)
            assert dist_toward <= dist_away


class TestPositive:
    def test_mirror_of_negative_off_agents(self):
        agents = [0, 7]
        neg = pointers.ring_negative(15, agents)
        pos = pointers.ring_positive(15, agents)
        for v in range(15):
            if v in agents:
                assert pos[v] == neg[v]
            else:
                assert pos[v] == -neg[v]

    def test_first_visit_propagates(self):
        n = 16
        dirs = pointers.ring_positive(n, [0])
        e = RingRotorRouter(n, dirs, [0])
        e.step()  # 0 -> 1
        moves = e.step()
        assert moves == [(1, 2, 1)]  # continues onward


class TestUniformRandomAlternating:
    def test_uniform(self):
        assert pointers.ring_uniform(5) == [1] * 5
        assert pointers.ring_uniform(5, -1) == [-1] * 5

    def test_uniform_validates(self):
        with pytest.raises(ValueError):
            pointers.ring_uniform(5, 0)

    def test_alternating(self):
        dirs = pointers.ring_alternating(6)
        assert dirs == [1, -1, 1, -1, 1, -1]

    def test_random_deterministic(self):
        assert pointers.ring_random(20, 3) == pointers.ring_random(20, 3)

    def test_random_values(self):
        assert set(pointers.ring_random(50, 1)) == {1, -1}

    def test_explicit_validates(self):
        with pytest.raises(ValueError):
            pointers.ring_explicit([1, 0, -1])
        assert pointers.ring_explicit((1, -1)) == [1, -1]


class TestGeneralGraphPointers:
    def test_zero_ports(self):
        assert pointers.zero_ports(ring_graph(4)) == [0, 0, 0, 0]

    def test_random_ports_in_range(self):
        g = grid_2d(4, 4)
        ports = pointers.random_ports(g, 7)
        assert all(0 <= p < g.degree(v) for v, p in enumerate(ports))

    def test_ports_toward_sources_shortest_paths(self):
        g = grid_2d(4, 4)
        ports = pointers.ports_toward_sources(g, [0])
        distances = g.bfs_distances(0)
        for v in range(1, g.num_nodes):
            parent = g.port_target(v, ports[v])
            assert distances[parent] == distances[v] - 1

    def test_ports_toward_sources_validates(self):
        with pytest.raises(ValueError):
            pointers.ports_toward_sources(ring_graph(5), [])
        with pytest.raises(ValueError):
            pointers.ports_toward_sources(ring_graph(5), [7])

    def test_direction_port_mapping(self):
        assert pointers.ring_direction_to_port(1) == 0
        assert pointers.ring_direction_to_port(-1) == 1
        with pytest.raises(ValueError):
            pointers.ring_direction_to_port(2)

    def test_ring_pointers_to_ports(self):
        assert pointers.ring_pointers_to_ports([1, -1, 1]) == [0, 1, 0]
