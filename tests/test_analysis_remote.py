"""Remote vertices: Definition 2 exactness and Lemma 15 abundance."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.remote import (
    count_remote_vertices,
    is_remote,
    lemma15_lower_bound,
    remote_vertex_mask,
    remote_vertices_far_from_agents,
)
from repro.core import placement
from repro.util.rng import make_rng


class TestMaskVsReference:
    @given(st.integers(0, 2 ** 30))
    @settings(max_examples=30, deadline=None)
    def test_vectorized_matches_definition(self, seed):
        rng = make_rng(seed)
        n = int(rng.integers(10, 120))
        k = int(rng.integers(1, 12))
        starts = [int(s) for s in rng.integers(0, n, size=k)]
        mask = remote_vertex_mask(n, starts)
        for v in range(n):
            assert bool(mask[v]) == is_remote(n, starts, v)

    def test_validation(self):
        with pytest.raises(ValueError):
            remote_vertex_mask(2, [0])
        with pytest.raises(ValueError):
            remote_vertex_mask(10, [])
        with pytest.raises(ValueError):
            remote_vertex_mask(10, [11])
        with pytest.raises(ValueError):
            is_remote(10, [0], 10)


class TestGeometry:
    def test_far_vertices_are_remote_for_single_cluster(self):
        n, k = 200, 8
        starts = placement.all_on_one(k, node=0)
        mask = remote_vertex_mask(n, starts)
        # The antipode is far from the only cluster: remote.
        assert mask[n // 2]
        # Node 0 itself hosts k agents in a zero-width window: for
        # window r=1 the count is k > 1, so it is not remote (k > 1).
        assert not mask[0]

    def test_spread_placement_everything_remote(self):
        # Equally spaced k on large n: every window of r*n/(10k) holds
        # at most ~r/10 + 1 <= r agents.
        n, k = 400, 8
        mask = remote_vertex_mask(n, placement.equally_spaced(n, k))
        assert mask.all()


class TestLemma15:
    @pytest.mark.parametrize(
        "make_placement",
        [
            lambda n, k: placement.all_on_one(k),
            lambda n, k: placement.equally_spaced(n, k),
            lambda n, k: placement.half_ring(n, k),
            lambda n, k: placement.clustered(n, k, max(1, k // 3), seed=5),
            lambda n, k: placement.random_nodes(n, k, seed=9),
        ],
    )
    def test_at_least_80_percent_remote(self, make_placement):
        n, k = 2000, 32
        starts = make_placement(n, k)
        count = count_remote_vertices(n, starts)
        # Lemma 15 is 0.8n - o(n); at n=2000 allow a small slack.
        assert count >= 0.75 * n
        assert lemma15_lower_bound(n) == 1600.0

    @given(st.integers(0, 2 ** 30))
    @settings(max_examples=10, deadline=None)
    def test_random_placements_abundant(self, seed):
        n = 1500
        k = 30
        starts = placement.random_nodes(n, k, seed=seed)
        assert count_remote_vertices(n, starts) >= 0.7 * n


class TestFarRemote:
    def test_far_filter(self):
        n, k = 300, 6
        starts = placement.equally_spaced(n, k)
        far = remote_vertices_far_from_agents(n, starts, n // (9 * k))
        mask = remote_vertex_mask(n, starts)
        from repro.graphs.ring import ring_distance

        for v in far:
            assert mask[v]
            assert all(
                ring_distance(n, v, s) >= n // (9 * k) for s in starts
            )

    def test_theorem4_ingredient_exists(self):
        # For every battery placement there is a far remote vertex.
        n, k = 1000, 10
        for starts in (
            placement.all_on_one(k),
            placement.equally_spaced(n, k),
            placement.random_nodes(n, k, seed=0),
        ):
            far = remote_vertices_far_from_agents(n, starts, n // (9 * k))
            assert far


class TestCountsDtypes:
    def test_multiplicity_counted(self):
        n = 100
        # 5 agents stacked: window r=1 around the stack sees 5 > 1.
        mask = remote_vertex_mask(n, [10] * 5)
        assert not mask[10]

    def test_mask_is_bool(self):
        mask = remote_vertex_mask(50, [0])
        assert mask.dtype == np.bool_
