"""Tests for the cover-estimate harness and visit-gap statistics."""

import numpy as np
import pytest

from repro.randomwalk.cover import estimate_cover_time
from repro.randomwalk.ring_walk import RingRandomWalks
from repro.randomwalk.visits import (
    GapStatistics,
    ring_walk_gap_statistics,
)


class TestEstimateCoverTime:
    def test_deterministic_given_base_seed(self):
        def factory(seed):
            return RingRandomWalks(16, [0], seed=seed)

        a = estimate_cover_time(factory, repetitions=5, base_seed=1)
        b = estimate_cover_time(factory, repetitions=5, base_seed=1)
        assert a.samples == b.samples

    def test_repetition_count(self):
        est = estimate_cover_time(
            lambda seed: RingRandomWalks(12, [0], seed=seed), repetitions=7
        )
        assert est.summary.count == 7
        assert len(est.samples) == 7

    def test_ci_contains_mean(self):
        est = estimate_cover_time(
            lambda seed: RingRandomWalks(16, [0], seed=seed), repetitions=10
        )
        assert est.ci_low <= est.mean <= est.ci_high

    def test_single_repetition_degenerate_ci(self):
        est = estimate_cover_time(
            lambda seed: RingRandomWalks(12, [0], seed=seed), repetitions=1
        )
        assert est.ci_low == est.ci_high == est.mean

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_cover_time(lambda s: None, repetitions=0)

    def test_works_with_deterministic_system(self):
        from repro.core.ring import RingRotorRouter

        est = estimate_cover_time(
            lambda _seed: RingRotorRouter(12, [1] * 12, [0],
                                          track_counts=False),
            repetitions=3,
        )
        assert est.summary.std == 0.0


class TestGapStatistics:
    def test_from_visit_rounds(self):
        stats = GapStatistics.from_visit_rounds(np.array([0, 3, 4, 10]))
        assert stats.count == 3
        assert stats.mean == pytest.approx((3 + 1 + 6) / 3)
        assert stats.maximum == 6.0

    def test_requires_two_visits(self):
        with pytest.raises(ValueError):
            GapStatistics.from_visit_rounds(np.array([5]))

    def test_ring_gap_statistics_mean_near_fair_share(self):
        n, k = 48, 4
        stats = ring_walk_gap_statistics(
            n, k, node=0, observation_rounds=400 * n, burn_in=4 * n, seed=0
        )
        assert abs(stats.mean - n / k) / (n / k) < 0.2

    def test_max_far_exceeds_mean(self):
        # The paper's §4 point: heavy upper tail for the walk.
        n, k = 48, 4
        stats = ring_walk_gap_statistics(
            n, k, node=1, observation_rounds=600 * n, burn_in=4 * n, seed=1
        )
        assert stats.maximum > 4 * stats.mean

    def test_validation(self):
        with pytest.raises(ValueError):
            ring_walk_gap_statistics(16, 2, node=16, observation_rounds=100)
        with pytest.raises(ValueError):
            ring_walk_gap_statistics(16, 2, node=0, observation_rounds=-1)
        with pytest.raises(ValueError):  # ring minimum, as the harness had
            ring_walk_gap_statistics(2, 1, node=0, observation_rounds=100)


def _gap_statistics_reference(n, k, node, observation_rounds, burn_in, seed):
    """The historical implementation: RingRandomWalks + visit_rounds_of.

    Kept verbatim as the equivalence reference for the vectorized
    :func:`ring_walk_gap_statistics`.
    """
    from repro.core.placement import equally_spaced
    from repro.util.rng import derive_seed

    walks = RingRandomWalks(
        n, equally_spaced(n, k), seed=derive_seed(seed, "gaps", n, k, node)
    )
    if burn_in:
        walks.run(burn_in)
    rounds = walks.visit_rounds_of(node, observation_rounds)
    return GapStatistics.from_visit_rounds(rounds)


class TestVectorizedGapEquivalence:
    """The numpy gap kernel is visit-for-visit the harness-based one."""

    @pytest.mark.parametrize(
        "n,k,node,window_factor,burn_factor,seed",
        [
            (16, 1, 0, 40, 0, 0),
            (16, 2, 7, 40, 4, 1),
            (24, 3, 11, 60, 2, 2),
            (32, 4, 0, 50, 4, 3),
            (48, 4, 23, 30, 1, 4),
            (33, 5, 16, 45, 3, 5),  # odd ring, uneven spacing
            (24, 2, 1, 100, 0, 6),  # no burn-in
            (20, 6, 10, 35, 5, 7),
        ],
    )
    def test_seeded_configs_match(
        self, n, k, node, window_factor, burn_factor, seed
    ):
        observation = window_factor * n
        burn_in = burn_factor * n
        fast = ring_walk_gap_statistics(
            n, k, node=node, observation_rounds=observation,
            burn_in=burn_in, seed=seed,
        )
        reference = _gap_statistics_reference(
            n, k, node, observation, burn_in, seed
        )
        assert fast == reference  # identical counts, moments and extremes

    def test_window_longer_than_block_size(self):
        # Multi-block paths (> 1024 rounds) must stay stream-aligned.
        n, k = 16, 2
        fast = ring_walk_gap_statistics(
            n, k, node=3, observation_rounds=5000, burn_in=1500, seed=9
        )
        reference = _gap_statistics_reference(n, k, 3, 5000, 1500, 9)
        assert fast == reference
