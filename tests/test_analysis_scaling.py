"""Tests for power-law fits and flatness verification."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.scaling import (
    fit_power_law,
    flatness,
    is_shape_match,
    normalized,
)


class TestPowerLaw:
    def test_exact_recovery(self):
        xs = [1.0, 2.0, 4.0, 8.0, 16.0]
        ys = [3.0 * x ** 2 for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(2.0)
        assert fit.prefactor == pytest.approx(3.0)
        assert fit.r_squared == pytest.approx(1.0)

    @given(
        st.floats(-2.0, 3.0),
        st.floats(0.1, 10.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_recovers_random_power_laws(self, exponent, prefactor):
        xs = np.array([1.0, 2.0, 3.0, 5.0, 9.0, 17.0])
        ys = prefactor * xs ** exponent
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(exponent, abs=1e-9)

    def test_noise_tolerated(self):
        rng = np.random.default_rng(0)
        xs = np.logspace(0, 3, 30)
        ys = 5.0 * xs ** 1.5 * np.exp(rng.normal(0, 0.05, 30))
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(1.5, abs=0.1)
        assert fit.r_squared > 0.98

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_power_law([1.0], [1.0])
        with pytest.raises(ValueError):
            fit_power_law([1.0, 2.0], [1.0])
        with pytest.raises(ValueError):
            fit_power_law([1.0, -2.0], [1.0, 2.0])


class TestNormalizedFlatness:
    def test_normalized(self):
        assert normalized([10.0, 20.0], [5.0, 10.0]) == [2.0, 2.0]

    def test_normalized_validation(self):
        with pytest.raises(ValueError):
            normalized([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            normalized([1.0], [0.0])

    def test_flatness_perfect(self):
        assert flatness([3.0, 3.0]) == 1.0

    def test_shape_match(self):
        measured = [10.0, 40.0, 160.0]
        predicted = [1.0, 4.0, 16.0]
        assert is_shape_match(measured, predicted, tolerance=1.01)

    def test_shape_mismatch(self):
        measured = [10.0, 40.0, 160.0]
        predicted = [1.0, 2.0, 3.0]
        assert not is_shape_match(measured, predicted, tolerance=2.0)

    def test_tolerance_validated(self):
        with pytest.raises(ValueError):
            is_shape_match([1.0], [1.0], tolerance=0.5)
