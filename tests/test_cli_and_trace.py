"""Tests for the experiments CLI and the trace/rendering module."""

import pytest

from repro.cli import EXPERIMENTS, main
from repro.core import placement, pointers
from repro.core.domains import VisitTypeTracker, domain_snapshot
from repro.core.ring import RingRotorRouter
from repro.core.trace import (
    RunRecorder,
    render_configuration,
    render_domains,
)


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_unknown_experiment(self, capsys):
        assert main(["run", "nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_every_registered_module_resolves(self):
        import importlib

        for name, (module_name, _) in EXPERIMENTS.items():
            module = importlib.import_module(module_name)
            if name == "figures":
                assert hasattr(module, "run_figure1")
                assert hasattr(module, "run_figure2")
            else:
                assert hasattr(module, f"run_{name}")

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_run_rejects_bad_backend(self):
        with pytest.raises(SystemExit):
            main(["run", "table1", "--backend", "gpu"])


class TestCliBackendAccounting:
    """`run` and `sweep` both end with a computed=X cached=Y line."""

    def test_run_second_invocation_reports_zero_computed(
        self, tmp_path, capsys
    ):
        cache = str(tmp_path / "cache")
        args = [
            "run", "stabilization", "--quick", "--backend", "batch",
            "--cache", cache,
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "computed=8 cached=0" in first
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "computed=0 cached=8" in second
        # Cached rerun renders the identical report.
        assert first.split("computed=")[0] == second.split("computed=")[0]

    def test_run_reference_backend_matches_batch(self, capsys):
        assert main(["run", "stabilization", "--quick", "--cache", "none"]) == 0
        batch = capsys.readouterr().out
        assert main(
            ["run", "stabilization", "--quick", "--backend", "reference"]
        ) == 0
        reference = capsys.readouterr().out
        assert batch.split("backend=")[0] == reference.split("backend=")[0]

    def test_sweep_second_invocation_reports_zero_computed(
        self, tmp_path, capsys
    ):
        cache = str(tmp_path / "sweep-cache")
        args = ["sweep", "table1", "--quick", "--cache", cache]
        assert main(args) == 0
        assert "computed=6 cached=0" in capsys.readouterr().out
        assert main(args) == 0
        assert "computed=0 cached=6" in capsys.readouterr().out


class TestRenderConfiguration:
    def test_glyphs(self):
        e = RingRotorRouter(6, [1, -1, 1, 1, 1, 1], [0, 0, 3])
        text = render_configuration(e)
        assert len(text) == 6
        assert text[0] == "2"     # two agents
        assert text[3] == "1"     # one agent
        assert text[1] == "."     # unvisited
        e.step()
        text = render_configuration(e)
        assert set(text) <= set("123456789*><.")

    def test_pointer_arrows(self):
        e = RingRotorRouter(4, [1, 1, -1, 1], [0])
        e.step()  # leaves node 0, flips its pointer to -1
        text = render_configuration(e)
        assert text[0] == "<"

    def test_ten_plus_agents_star(self):
        e = RingRotorRouter(4, [1] * 4, [1] * 12)
        assert render_configuration(e)[1] == "*"


class TestRenderDomains:
    def _snapshot(self):
        n, k = 48, 3
        agents = placement.equally_spaced(n, k)
        e = RingRotorRouter(n, pointers.ring_negative(n, agents), agents)
        tracker = VisitTypeTracker(e)
        for _ in range(400):
            tracker.advance()
        return domain_snapshot(e, tracker)

    def test_full_width(self):
        snapshot = self._snapshot()
        text = render_domains(snapshot)
        assert len(text) == snapshot.n
        # three domains -> letters a, b, c with capitals at anchors
        assert set(text.lower()) <= {"a", "b", "c", "."}
        assert sum(ch.isupper() for ch in text) == 3

    def test_downsampled(self):
        snapshot = self._snapshot()
        assert len(render_domains(snapshot, width=20)) == 20


class TestRunRecorder:
    def test_records_rounds(self):
        e = RingRotorRouter(12, [1] * 12, [0, 6], track_counts=False)
        recorder = RunRecorder(e)
        recorder.advance(10)
        assert len(recorder.records) == 10
        assert recorder.records[-1].round == 10
        assert all(len(r.positions) == 2 for r in recorder.records)

    def test_capacity_trimming(self):
        e = RingRotorRouter(12, [1] * 12, [0], track_counts=False)
        recorder = RunRecorder(e, capacity=5)
        recorder.advance(12)
        assert len(recorder.records) == 5
        assert recorder.records[-1].round == 12
        assert recorder.records[0].round == 8

    def test_node_visit_rounds(self):
        e = RingRotorRouter(8, [1] * 8, [0], track_counts=False)
        recorder = RunRecorder(e)
        recorder.advance(8)
        # Uniform clockwise pointers: node v first visited at round v.
        assert recorder.node_visit_rounds(3)[0] == 3

    def test_timeline_shape(self):
        e = RingRotorRouter(10, [1] * 10, [0, 5], track_counts=False)
        recorder = RunRecorder(e)
        recorder.advance(6)
        lines = recorder.timeline(last=4).splitlines()
        assert len(lines) == 4
        assert all("#" in line for line in lines)

    def test_validation(self):
        e = RingRotorRouter(8, [1] * 8, [0], track_counts=False)
        with pytest.raises(ValueError):
            RunRecorder(e, capacity=0)
        recorder = RunRecorder(e)
        with pytest.raises(ValueError):
            recorder.advance(-1)
