"""Executor semantics: metrics, caching, parallelism, progress."""

import json
import os

import pytest

from repro.analysis.cover_time import ring_rotor_cover_time
from repro.analysis.return_time import ring_rotor_return_time_exact
from repro.randomwalk.ring_walk import RingRandomWalks
from repro.sweep.executor import (
    ResultCache,
    _plan_chunks,
    compute_chunk,
    run_sweep,
)
from repro.sweep.spec import InitFamily, ScenarioSpec, SweepConfig


def _cover_spec(**overrides):
    base = dict(
        name="exec-test",
        ns=(16, 24),
        ks=(2, 3),
        families=(
            InitFamily("all_on_one", "toward_node0"),
            InitFamily("equally_spaced", "negative"),
        ),
        metrics=("cover",),
    )
    base.update(overrides)
    return ScenarioSpec(**base)


class TestMetrics:
    def test_cover_matches_reference_harness(self):
        result = run_sweep(_cover_spec())
        assert len(result.results) == _cover_spec().num_configs
        for cell in result.results:
            config = cell.config
            agents, directions = config.build()
            assert cell.metrics["cover"] == ring_rotor_cover_time(
                config.n, agents, directions
            )

    def test_stabilization_and_return_match_reference(self):
        spec = _cover_spec(
            ns=(16,), ks=(2,), metrics=("stabilization", "return")
        )
        result = run_sweep(spec)
        for cell in result.results:
            config = cell.config
            agents, directions = config.build()
            ref = ring_rotor_return_time_exact(config.n, agents, directions)
            assert cell.metrics["preperiod"] == ref.preperiod
            assert cell.metrics["period"] == ref.period
            assert cell.metrics["worst_gap"] == ref.worst_gap
            assert cell.metrics["best_gap"] == ref.best_gap

    def test_truncated_stabilization_records_nulls(self):
        # An exhausted round budget must yield None metrics, not a crash.
        spec = _cover_spec(
            ns=(16,), ks=(4,),
            families=(InitFamily("all_on_one", "toward_node0"),),
            metrics=("stabilization", "return"),
        )
        config = spec.configs()[0].to_dict()
        config["max_rounds"] = 2
        payload = {
            "model": "rotor",
            "n": 16,
            "max_rounds": 2,
            "metrics": ["stabilization", "return"],
            "configs": [config],
        }
        [(_, metrics)] = compute_chunk(payload)
        assert metrics == {
            "preperiod": None,
            "period": None,
            "worst_gap": None,
            "best_gap": None,
        }

    def test_return_metrics_with_mixed_resolved_and_truncated_lanes(self):
        """Regression for the `lanes` shadowing in _compute_rotor_chunk:
        one chunk mixing resolved and truncated lanes must report exact
        gaps for the resolved lanes and nulls for the truncated ones."""
        n = 16
        fast = SweepConfig(
            n=n, k=2, placement="equally_spaced", pointer="positive",
            seed=0, metrics=("stabilization", "return"), max_rounds=64,
        )
        slow = SweepConfig(
            n=n, k=4, placement="all_on_one", pointer="toward_node0",
            seed=0, metrics=("stabilization", "return"), max_rounds=64,
        )
        payload = {
            "model": "rotor",
            "n": n,
            "max_rounds": 64,
            "metrics": ["stabilization", "return"],
            "configs": [slow.to_dict(), fast.to_dict(), slow.to_dict()],
        }
        results = dict(compute_chunk(payload))
        agents, directions = fast.build()
        ref = ring_rotor_return_time_exact(n, agents, directions)
        fast_metrics = results[fast.config_hash]
        assert fast_metrics["preperiod"] == ref.preperiod
        assert fast_metrics["period"] == ref.period
        assert fast_metrics["worst_gap"] == ref.worst_gap
        assert fast_metrics["best_gap"] == ref.best_gap
        slow_metrics = results[slow.config_hash]
        assert slow_metrics == {
            "preperiod": None, "period": None,
            "worst_gap": None, "best_gap": None,
        }

    def test_table_layout(self):
        result = run_sweep(_cover_spec())
        table = result.table()
        assert "cover" in table.columns
        assert len(table.rows) == len(result.results)

    def test_small_chunks_cover_all_cells(self):
        serial = run_sweep(_cover_spec())
        chunked = run_sweep(_cover_spec(), chunk_lanes=2)
        assert [c.metrics for c in serial.results] == [
            c.metrics for c in chunked.results
        ]


class TestWalkModel:
    def _walk_spec(self, **overrides):
        base = dict(
            name="walk-test",
            ns=(16,),
            ks=(2, 3),
            families=(InitFamily("all_on_one", "toward_node0"),),
            metrics=("cover",),
            models=("walk",),
            repetitions=3,
        )
        base.update(overrides)
        return ScenarioSpec(**base)

    def test_walk_cells_pin_reference_repetitions(self):
        # The headline guarantee: a walk cell's mean is the exact mean
        # of standalone RingRandomWalks runs on the cell's derived seeds.
        result = run_sweep(self._walk_spec())
        for cell in result.results:
            config = cell.config
            agents = config.build_agents()
            samples = [
                RingRandomWalks(config.n, agents, seed=seed).run_until_covered(
                    config.max_rounds
                )
                for seed in config.rep_seeds()
            ]
            assert cell.metrics["cover"] == pytest.approx(
                sum(samples) / len(samples)
            )
            assert cell.metrics["cover_reps"] == config.repetitions
            assert cell.metrics["cover_truncated"] == 0
            assert (
                cell.metrics["cover_ci_low"]
                <= cell.metrics["cover"]
                <= cell.metrics["cover_ci_high"]
            )

    def test_both_models_in_one_sweep(self):
        spec = self._walk_spec(models=("rotor", "walk"))
        result = run_sweep(spec)
        models = {cell.config.model for cell in result.results}
        assert models == {"rotor", "walk"}
        for cell in result.results:
            if cell.config.model == "rotor":
                agents, directions = cell.config.build()
                assert cell.metrics["cover"] == ring_rotor_cover_time(
                    cell.config.n, agents, directions
                )

    def test_truncated_walk_cell_records_nulls(self):
        config = self._walk_spec().configs()[0].to_dict()
        config["max_rounds"] = 2
        payload = {
            "model": "walk",
            "n": 16,
            "max_rounds": 2,
            "metrics": ["cover"],
            "configs": [config],
        }
        [(_, metrics)] = compute_chunk(payload)
        assert metrics["cover"] is None
        assert metrics["cover_ci_low"] is None
        assert metrics["cover_truncated"] == 3

    def test_walk_results_cache_and_parallelize(self, tmp_path):
        spec = self._walk_spec(models=("rotor", "walk"))
        cache_dir = str(tmp_path / "cache")
        first = run_sweep(spec, jobs=2, cache_dir=cache_dir, chunk_lanes=2)
        assert first.cache_misses == spec.num_configs
        second = run_sweep(spec, cache_dir=cache_dir)
        assert second.cache_hits == spec.num_configs
        assert [c.metrics for c in first.results] == [
            c.metrics for c in second.results
        ]

    def test_walk_chunks_split_by_walker_budget(self):
        spec = self._walk_spec(ks=(2, 3, 4, 5))
        payloads = _plan_chunks(
            spec.configs(), chunk_lanes=64, walk_chunk_walkers=20
        )
        assert len(payloads) > 1
        for payload in payloads:
            weight = sum(
                c["k"] * c["repetitions"] for c in payload["configs"]
            )
            # single-config chunks may exceed the budget; multi-config
            # chunks never do
            assert len(payload["configs"]) == 1 or weight <= 20
        seen = [c["k"] for p in payloads for c in p["configs"]]
        assert sorted(seen) == [2, 3, 4, 5]


class TestSchedulingKnobs:
    def test_walk_chunk_walkers_override_preserves_results(self):
        spec = ScenarioSpec(
            name="walkers-test",
            ns=(16,),
            ks=(2, 3),
            families=(InitFamily("all_on_one", "toward_node0"),),
            metrics=("cover",),
            models=("walk",),
            repetitions=3,
        )
        default = run_sweep(spec)
        tiny = run_sweep(spec, walk_chunk_walkers=4)
        assert [c.metrics for c in default.results] == [
            c.metrics for c in tiny.results
        ]

    def test_compact_ratio_override_preserves_results(self):
        spec = _cover_spec(
            ns=(16,), metrics=("stabilization", "return")
        )
        default = run_sweep(spec)
        for ratio in (0.0, 1.0):
            tuned = run_sweep(spec, compact_ratio=ratio)
            assert [c.metrics for c in default.results] == [
                c.metrics for c in tuned.results
            ]

    def test_spec_hints_are_used_and_results_identical(self):
        plain = _cover_spec(ns=(16,))
        hinted = _cover_spec(
            ns=(16,), chunk_lanes=2, walk_chunk_walkers=8,
            compact_ratio=1.0,
        )
        assert [c.metrics for c in run_sweep(plain).results] == [
            c.metrics for c in run_sweep(hinted).results
        ]

    def test_explicit_argument_beats_spec_hint(self):
        # chunk_lanes=1 hint would make one chunk per cell; the
        # explicit override must win.  Chunking is observable through
        # the progress callback: one call up front plus one per chunk.
        spec = _cover_spec(ns=(16,), chunk_lanes=1)
        calls: list[tuple[int, int]] = []
        run_sweep(spec, chunk_lanes=64, progress=lambda d, t: calls.append((d, t)))
        assert len(calls) == 2  # initial report + the single 64-lane chunk
        calls.clear()
        run_sweep(spec, progress=lambda d, t: calls.append((d, t)))
        assert len(calls) == 1 + spec.num_configs  # hint: one cell per chunk

    def test_invalid_values_rejected(self):
        spec = _cover_spec(ns=(16,))
        with pytest.raises(ValueError):
            run_sweep(spec, chunk_lanes=0)
        with pytest.raises(ValueError):
            run_sweep(spec, walk_chunk_walkers=0)
        with pytest.raises(ValueError):
            run_sweep(spec, compact_ratio=1.5)


class TestChunkPlanning:
    def test_heterogeneous_metrics_group_separately(self):
        # Regression: chunks used to group by (n, max_rounds) only and
        # stamp chunk[0].metrics on the whole payload — a mixed-metric
        # miss list silently computed the wrong metric set for some
        # cells.
        cover = _cover_spec(ns=(16,), metrics=("cover",)).configs()
        stab = _cover_spec(ns=(16,), metrics=("stabilization",)).configs()
        payloads = _plan_chunks(cover + stab, chunk_lanes=64)
        assert len(payloads) == 2
        for payload in payloads:
            for config in payload["configs"]:
                assert payload["metrics"] == config["metrics"]

    def test_heterogeneous_misses_compute_their_own_metrics(self):
        # End to end: every cell of a mixed-metric miss list comes back
        # with exactly the metric keys its own config requested.
        cover = _cover_spec(ns=(16,), ks=(2,), metrics=("cover",)).configs()
        stab = _cover_spec(
            ns=(16,), ks=(2,), metrics=("stabilization",)
        ).configs()
        by_hash = {c.config_hash: c for c in cover + stab}
        results = {}
        for payload in _plan_chunks(cover + stab, chunk_lanes=64):
            results.update(dict(compute_chunk(payload)))
        for config_hash, metrics in results.items():
            config = by_hash[config_hash]
            if "cover" in config.metrics:
                assert set(metrics) == {"cover"}
            else:
                assert set(metrics) == {"preperiod", "period"}

    def test_models_group_separately(self):
        rotor = _cover_spec(ns=(16,), ks=(2,)).configs()
        walk = _cover_spec(
            ns=(16,), ks=(2,), models=("walk",), repetitions=2
        ).configs()
        payloads = _plan_chunks(rotor + walk, chunk_lanes=64)
        assert sorted(p["model"] for p in payloads) == ["rotor", "walk"]


def _general_cells(graphs, ks=(1, 2), seeds=(0,)):
    from repro.sweep.cells import GeneralRotorCell
    from repro.sweep.spec import general_instance

    cells = []
    for graph in graphs:
        for k in ks:
            for seed in seeds:
                agents, ports = general_instance(graph, k, seed)
                cells.append(
                    GeneralRotorCell.from_graph(graph, agents, ports, 50_000)
                )
    return cells


class TestGeneralChunkPlanning:
    def test_one_shared_chunk_with_digest_keyed_graph_table(self):
        from repro.graphs import hypercube, star, torus_2d

        graphs = [torus_2d(4, 4), star(6), hypercube(4)]
        cells = _general_cells(graphs, ks=(1, 2, 5), seeds=(0, 1))
        payloads = _plan_chunks(cells, chunk_lanes=4)
        # jobs=1: the whole general group shares one kernel invocation,
        # regardless of chunk_lanes or differing budgets/graph sizes.
        assert len(payloads) == 1
        payload = payloads[0]
        assert payload["model"] == "rotor-general"
        # The graph table carries each distinct graph exactly once,
        # keyed by digest — not once per cell.
        assert set(payload["graphs"]) == {
            graph.to_csr().digest for graph in graphs
        }
        # Cells serialize compactly: digests, not port lists.
        for data in payload["configs"]:
            assert "graph_ports" not in data
            assert data["graph"] in payload["graphs"]
        # Cells are clustered by graph digest.
        digests = [data["graph"] for data in payload["configs"]]
        assert digests == sorted(digests)

    def test_parallel_planning_splits_general_group(self):
        from repro.graphs import torus_2d

        cells = _general_cells([torus_2d(4, 4)], ks=(1, 2, 3, 4),
                               seeds=(0, 1, 2))
        payloads = _plan_chunks(cells, chunk_lanes=2, jobs=3)
        assert len(payloads) > 1
        total = sum(len(p["configs"]) for p in payloads)
        assert total == len(cells)

    def test_general_chunk_results_match_reference_engine(self):
        from repro.core.engine import MultiAgentRotorRouter
        from repro.graphs import lollipop, torus_2d

        graphs = [torus_2d(5, 5), lollipop(5, 4)]
        # Enough total nodes to cross the serial escape hatch and
        # exercise the batched kernel through compute_chunk.
        cells = _general_cells(graphs, ks=(1, 2, 9), seeds=(0, 1, 2))
        assert sum(cell.n for cell in cells) > 256
        (payload,) = _plan_chunks(cells, chunk_lanes=64)
        results = dict(compute_chunk(payload))
        assert len(results) == len(cells)
        for cell in cells:
            graph = next(
                g for g in graphs
                if g.to_csr().digest == cell.graph_digest
            )
            engine = MultiAgentRotorRouter(
                graph, list(cell.ports), list(cell.agents)
            )
            expected = engine.run_until_covered(cell.max_rounds)
            assert results[cell.config_hash] == {"cover": expected}

    def test_small_general_chunks_take_serial_path(self):
        from repro.graphs import star
        from repro.sweep.executor import GENERAL_SERIAL_NODES

        cells = _general_cells([star(5)], ks=(1, 2), seeds=(0,))
        assert sum(cell.n for cell in cells) <= GENERAL_SERIAL_NODES
        (payload,) = _plan_chunks(cells, chunk_lanes=64)
        results = dict(compute_chunk(payload))
        # Identity-neutral: the escape hatch computes the same covers.
        from repro.analysis.cover_time import rotor_cover_time_general

        graph = star(5)
        for cell in cells:
            assert results[cell.config_hash]["cover"] == (
                rotor_cover_time_general(
                    graph, list(cell.agents), list(cell.ports)
                )
            )


class TestCache:
    def test_second_run_is_all_hits(self, tmp_path):
        spec = _cover_spec()
        cache_dir = str(tmp_path / "cache")
        first = run_sweep(spec, cache_dir=cache_dir)
        assert first.cache_hits == 0
        assert first.cache_misses == spec.num_configs
        second = run_sweep(spec, cache_dir=cache_dir)
        assert second.cache_hits == spec.num_configs
        assert second.cache_misses == 0
        assert [c.metrics for c in first.results] == [
            c.metrics for c in second.results
        ]

    def test_resume_computes_only_missing_cells(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        run_sweep(_cover_spec(ns=(16,)), cache_dir=cache_dir)
        grown = run_sweep(_cover_spec(ns=(16, 24)), cache_dir=cache_dir)
        # the n=16 half is served from cache, only n=24 is computed
        assert grown.cache_hits == _cover_spec(ns=(16,)).num_configs
        assert grown.cache_misses == grown.cache_hits

    def test_entries_are_inspectable_json(self, tmp_path):
        spec = _cover_spec(ns=(16,), ks=(2,))
        cache_dir = str(tmp_path / "cache")
        run_sweep(spec, cache_dir=cache_dir)
        cache = ResultCache(cache_dir)
        assert len(cache) == spec.num_configs
        config = spec.configs()[0]
        with open(cache.path(config.config_hash)) as handle:
            entry = json.load(handle)
        assert entry["config"] == config.identity()
        assert entry["metrics"]["cover"] > 0

    def test_corrupt_entry_is_recomputed(self, tmp_path):
        spec = _cover_spec(ns=(16,), ks=(2,))
        cache_dir = str(tmp_path / "cache")
        run_sweep(spec, cache_dir=cache_dir)
        cache = ResultCache(cache_dir)
        victim = cache.path(spec.configs()[0].config_hash)
        with open(victim, "w") as handle:
            handle.write("not json{")
        result = run_sweep(spec, cache_dir=cache_dir)
        assert result.cache_misses == 1
        assert result.cache_hits == spec.num_configs - 1

    def test_mismatched_identity_is_a_miss(self, tmp_path):
        spec = _cover_spec(ns=(16,), ks=(2,))
        cache_dir = str(tmp_path / "cache")
        run_sweep(spec, cache_dir=cache_dir)
        cache = ResultCache(cache_dir)
        victim = cache.path(spec.configs()[0].config_hash)
        with open(victim) as handle:
            entry = json.load(handle)
        entry["config"]["n"] = 999  # hash collision simulation
        with open(victim, "w") as handle:
            json.dump(entry, handle)
        result = run_sweep(spec, cache_dir=cache_dir)
        assert result.cache_misses == 1

    def test_no_cache_dir_means_no_files(self, tmp_path):
        run_sweep(_cover_spec(ns=(16,), ks=(2,)), cache_dir=None)
        assert list(tmp_path.iterdir()) == []

    def test_truncated_json_is_a_miss_and_overwritten(self, tmp_path):
        # A partial write (e.g. a killed process without the atomic
        # rename) must count as a miss and be transparently recomputed.
        spec = _cover_spec(ns=(16,), ks=(2,))
        cache_dir = str(tmp_path / "cache")
        baseline = run_sweep(spec, cache_dir=cache_dir)
        cache = ResultCache(cache_dir)
        victim_config = spec.configs()[0]
        victim = cache.path(victim_config.config_hash)
        with open(victim) as handle:
            intact = handle.read()
        with open(victim, "w") as handle:
            handle.write(intact[: len(intact) // 2])
        assert cache.get(victim_config) is None
        result = run_sweep(spec, cache_dir=cache_dir)
        assert result.cache_misses == 1
        with open(victim) as handle:
            assert json.load(handle)["metrics"] == baseline.results[0].metrics

    def test_entry_mismatching_filename_hash_is_a_miss(self, tmp_path):
        # A valid entry sitting at another config's path (wrong filename
        # hash) must not be served for that config.
        spec = _cover_spec(ns=(16,), ks=(2, 3))
        cache_dir = str(tmp_path / "cache")
        run_sweep(spec, cache_dir=cache_dir)
        cache = ResultCache(cache_dir)
        first, second = spec.configs()[:2]
        with open(cache.path(second.config_hash)) as handle:
            foreign = handle.read()
        with open(cache.path(first.config_hash), "w") as handle:
            handle.write(foreign)
        assert cache.get(first) is None
        result = run_sweep(spec, cache_dir=cache_dir)
        assert result.cache_misses == 1

    def test_leftover_tmp_file_is_ignored_and_recomputed(self, tmp_path):
        # A stale .tmp.<pid> file (crashed writer) in the hash-prefix
        # directory is not an entry: the cell is a miss, recomputed, and
        # the real entry lands next to the leftover.
        spec = _cover_spec(ns=(16,), ks=(2,))
        cache_dir = str(tmp_path / "cache")
        cache = ResultCache(cache_dir)
        config = spec.configs()[0]
        path = cache.path(config.config_hash)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        stale = f"{path}.tmp.99999"
        with open(stale, "w") as handle:
            handle.write('{"config": {}, "metr')
        assert cache.get(config) is None
        assert len(cache) == 0  # tmp files are not entries
        result = run_sweep(spec, cache_dir=cache_dir)
        assert result.cache_misses == spec.num_configs
        with open(path) as handle:
            assert json.load(handle)["config"] == config.identity()

    def test_v1_schema_entries_are_never_served(self, tmp_path):
        # Simulate a pre-bump cache: an entry whose config block carries
        # schema 1 must be a miss even if planted at the current path.
        spec = _cover_spec(ns=(16,), ks=(2,))
        cache_dir = str(tmp_path / "cache")
        cache = ResultCache(cache_dir)
        config = spec.configs()[0]
        stale_identity = dict(config.identity(), schema=1)
        path = cache.path(config.config_hash)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as handle:
            json.dump(
                {"config": stale_identity, "metrics": {"cover": -12345}},
                handle,
            )
        assert cache.get(config) is None
        result = run_sweep(spec, cache_dir=cache_dir)
        assert result.cache_misses == spec.num_configs
        for cell in result.results:
            assert cell.metrics["cover"] != -12345


class TestParallel:
    def test_two_jobs_match_serial(self, tmp_path):
        spec = _cover_spec()
        serial = run_sweep(spec)
        parallel = run_sweep(
            spec, jobs=2, cache_dir=str(tmp_path / "cache"), chunk_lanes=3
        )
        assert [c.metrics for c in serial.results] == [
            c.metrics for c in parallel.results
        ]
        # the parallel run populated the cache for a later serial run
        warm = run_sweep(spec, cache_dir=str(tmp_path / "cache"))
        assert warm.cache_misses == 0

    def test_invalid_jobs(self):
        with pytest.raises(ValueError):
            run_sweep(_cover_spec(), jobs=-1)
        with pytest.raises(ValueError):
            run_sweep(_cover_spec(), chunk_lanes=0)


class TestProgress:
    def test_progress_reaches_total(self):
        calls = []
        spec = _cover_spec(ns=(16,))
        run_sweep(spec, progress=lambda done, total: calls.append((done, total)))
        assert calls[-1] == (spec.num_configs, spec.num_configs)
        assert all(total == spec.num_configs for _, total in calls)

    def test_elapsed_recorded(self):
        result = run_sweep(_cover_spec(ns=(16,), ks=(2,)))
        assert result.elapsed > 0
