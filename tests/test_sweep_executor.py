"""Executor semantics: metrics, caching, parallelism, progress."""

import json
import os

import pytest

from repro.analysis.cover_time import ring_rotor_cover_time
from repro.analysis.return_time import ring_rotor_return_time_exact
from repro.sweep.executor import ResultCache, run_sweep
from repro.sweep.spec import InitFamily, ScenarioSpec


def _cover_spec(**overrides):
    base = dict(
        name="exec-test",
        ns=(16, 24),
        ks=(2, 3),
        families=(
            InitFamily("all_on_one", "toward_node0"),
            InitFamily("equally_spaced", "negative"),
        ),
        metrics=("cover",),
    )
    base.update(overrides)
    return ScenarioSpec(**base)


class TestMetrics:
    def test_cover_matches_reference_harness(self):
        result = run_sweep(_cover_spec())
        assert len(result.results) == _cover_spec().num_configs
        for cell in result.results:
            config = cell.config
            agents, directions = config.build()
            assert cell.metrics["cover"] == ring_rotor_cover_time(
                config.n, agents, directions
            )

    def test_stabilization_and_return_match_reference(self):
        spec = _cover_spec(
            ns=(16,), ks=(2,), metrics=("stabilization", "return")
        )
        result = run_sweep(spec)
        for cell in result.results:
            config = cell.config
            agents, directions = config.build()
            ref = ring_rotor_return_time_exact(config.n, agents, directions)
            assert cell.metrics["preperiod"] == ref.preperiod
            assert cell.metrics["period"] == ref.period
            assert cell.metrics["worst_gap"] == ref.worst_gap
            assert cell.metrics["best_gap"] == ref.best_gap

    def test_truncated_stabilization_records_nulls(self):
        # An exhausted round budget must yield None metrics, not a crash.
        from repro.sweep.executor import compute_chunk

        spec = _cover_spec(
            ns=(16,), ks=(4,),
            families=(InitFamily("all_on_one", "toward_node0"),),
            metrics=("stabilization", "return"),
        )
        config = spec.configs()[0].to_dict()
        config["max_rounds"] = 2
        payload = {
            "n": 16,
            "max_rounds": 2,
            "metrics": ["stabilization", "return"],
            "configs": [config],
        }
        [(_, metrics)] = compute_chunk(payload)
        assert metrics == {
            "preperiod": None,
            "period": None,
            "worst_gap": None,
            "best_gap": None,
        }

    def test_table_layout(self):
        result = run_sweep(_cover_spec())
        table = result.table()
        assert "cover" in table.columns
        assert len(table.rows) == len(result.results)

    def test_small_chunks_cover_all_cells(self):
        serial = run_sweep(_cover_spec())
        chunked = run_sweep(_cover_spec(), chunk_lanes=2)
        assert [c.metrics for c in serial.results] == [
            c.metrics for c in chunked.results
        ]


class TestCache:
    def test_second_run_is_all_hits(self, tmp_path):
        spec = _cover_spec()
        cache_dir = str(tmp_path / "cache")
        first = run_sweep(spec, cache_dir=cache_dir)
        assert first.cache_hits == 0
        assert first.cache_misses == spec.num_configs
        second = run_sweep(spec, cache_dir=cache_dir)
        assert second.cache_hits == spec.num_configs
        assert second.cache_misses == 0
        assert [c.metrics for c in first.results] == [
            c.metrics for c in second.results
        ]

    def test_resume_computes_only_missing_cells(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        run_sweep(_cover_spec(ns=(16,)), cache_dir=cache_dir)
        grown = run_sweep(_cover_spec(ns=(16, 24)), cache_dir=cache_dir)
        # the n=16 half is served from cache, only n=24 is computed
        assert grown.cache_hits == _cover_spec(ns=(16,)).num_configs
        assert grown.cache_misses == grown.cache_hits

    def test_entries_are_inspectable_json(self, tmp_path):
        spec = _cover_spec(ns=(16,), ks=(2,))
        cache_dir = str(tmp_path / "cache")
        run_sweep(spec, cache_dir=cache_dir)
        cache = ResultCache(cache_dir)
        assert len(cache) == spec.num_configs
        config = spec.configs()[0]
        with open(cache.path(config.config_hash)) as handle:
            entry = json.load(handle)
        assert entry["config"] == config.identity()
        assert entry["metrics"]["cover"] > 0

    def test_corrupt_entry_is_recomputed(self, tmp_path):
        spec = _cover_spec(ns=(16,), ks=(2,))
        cache_dir = str(tmp_path / "cache")
        run_sweep(spec, cache_dir=cache_dir)
        cache = ResultCache(cache_dir)
        victim = cache.path(spec.configs()[0].config_hash)
        with open(victim, "w") as handle:
            handle.write("not json{")
        result = run_sweep(spec, cache_dir=cache_dir)
        assert result.cache_misses == 1
        assert result.cache_hits == spec.num_configs - 1

    def test_mismatched_identity_is_a_miss(self, tmp_path):
        spec = _cover_spec(ns=(16,), ks=(2,))
        cache_dir = str(tmp_path / "cache")
        run_sweep(spec, cache_dir=cache_dir)
        cache = ResultCache(cache_dir)
        victim = cache.path(spec.configs()[0].config_hash)
        with open(victim) as handle:
            entry = json.load(handle)
        entry["config"]["n"] = 999  # hash collision simulation
        with open(victim, "w") as handle:
            json.dump(entry, handle)
        result = run_sweep(spec, cache_dir=cache_dir)
        assert result.cache_misses == 1

    def test_no_cache_dir_means_no_files(self, tmp_path):
        run_sweep(_cover_spec(ns=(16,), ks=(2,)), cache_dir=None)
        assert list(tmp_path.iterdir()) == []


class TestParallel:
    def test_two_jobs_match_serial(self, tmp_path):
        spec = _cover_spec()
        serial = run_sweep(spec)
        parallel = run_sweep(
            spec, jobs=2, cache_dir=str(tmp_path / "cache"), chunk_lanes=3
        )
        assert [c.metrics for c in serial.results] == [
            c.metrics for c in parallel.results
        ]
        # the parallel run populated the cache for a later serial run
        warm = run_sweep(spec, cache_dir=str(tmp_path / "cache"))
        assert warm.cache_misses == 0

    def test_invalid_jobs(self):
        with pytest.raises(ValueError):
            run_sweep(_cover_spec(), jobs=-1)
        with pytest.raises(ValueError):
            run_sweep(_cover_spec(), chunk_lanes=0)


class TestProgress:
    def test_progress_reaches_total(self):
        calls = []
        spec = _cover_spec(ns=(16,))
        run_sweep(spec, progress=lambda done, total: calls.append((done, total)))
        assert calls[-1] == (spec.num_configs, spec.num_configs)
        assert all(total == spec.num_configs for _, total in calls)

    def test_elapsed_recorded(self):
        result = run_sweep(_cover_spec(ns=(16,), ks=(2,)))
        assert result.elapsed > 0
