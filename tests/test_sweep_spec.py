"""Grid expansion and deterministic hashing of sweep specs."""

import pytest

from repro.sweep.spec import (
    PLACEMENTS,
    POINTERS,
    SCHEMA_VERSION,
    WALK_POINTER,
    InitFamily,
    ScenarioSpec,
    SweepConfig,
)


def _spec(**overrides):
    base = dict(
        name="t",
        ns=(16, 32),
        ks=(2, 4),
        families=(
            InitFamily("all_on_one", "toward_node0"),
            InitFamily("random", "random"),
        ),
        metrics=("cover",),
        seeds=(0, 1),
    )
    base.update(overrides)
    return ScenarioSpec(**base)


class TestExpansion:
    def test_grid_size_with_seed_collapse(self):
        spec = _spec()
        configs = spec.configs()
        # deterministic family: 1 seed; random family: 2 seeds
        assert len(configs) == 2 * 2 * (1 + 2)
        assert spec.num_configs == len(configs)

    def test_duplicate_grid_entries_expand_once(self):
        spec = _spec(ns=(16, 16), families=(
            InitFamily("all_on_one", "toward_node0"),
            InitFamily("all_on_one", "toward_node0"),
        ))
        configs = spec.configs()
        assert len(configs) == len({c.config_hash for c in configs})
        assert len(configs) == 2  # n=16 x k in (2, 4)

    def test_deterministic_order_and_budget(self):
        spec = _spec()
        configs = spec.configs()
        assert configs == spec.configs()
        for config in configs:
            assert config.max_rounds == spec.budget(config.n)
            assert config.metrics == ("cover",)

    def test_build_matches_named_initializers(self):
        config = _spec().configs()[0]
        agents, directions = config.build()
        assert agents == [0] * config.k
        assert len(directions) == config.n
        assert all(d in (1, -1) for d in directions)

    def test_random_family_seeds_differ(self):
        spec = _spec(families=(InitFamily("random", "random"),))
        by_seed = {}
        for config in spec.configs():
            if config.n == 16 and config.k == 4:
                by_seed[config.seed] = config.build()
        assert by_seed[0] != by_seed[1]
        # and are reproducible
        again = {
            config.seed: config.build()
            for config in spec.configs()
            if config.n == 16 and config.k == 4
        }
        assert by_seed == again

    def test_every_named_initializer_builds(self):
        n, k = 16, 3
        for placement_name in PLACEMENTS:
            for pointer_name in POINTERS:
                config = SweepConfig(
                    n=n,
                    k=k,
                    placement=placement_name,
                    pointer=pointer_name,
                    seed=0,
                    metrics=("cover",),
                    max_rounds=100,
                )
                agents, directions = config.build()
                assert len(agents) == k
                assert len(directions) == n


class TestModelAxis:
    def test_schema_version_bumped_for_model_axis(self):
        # v2 added model + repetitions; pre-bump cache entries must
        # never hash-collide with current identities.
        assert SCHEMA_VERSION == 2

    def test_default_expansion_is_rotor_only(self):
        for config in _spec().configs():
            assert config.model == "rotor"
            assert config.repetitions == 1

    def test_walk_cells_normalize_pointer_and_carry_repetitions(self):
        spec = _spec(
            families=(
                InitFamily("all_on_one", "toward_node0"),
                InitFamily("all_on_one", "positive"),
            ),
            models=("walk",),
            repetitions=7,
        )
        configs = spec.configs()
        # two families sharing a placement collapse to one walk cell
        assert len(configs) == 2 * 2
        for config in configs:
            assert config.model == "walk"
            assert config.pointer == WALK_POINTER
            assert config.repetitions == 7
            assert len(config.rep_seeds()) == 7
            assert len(set(config.rep_seeds())) == 7

    def test_walk_seed_collapse_follows_placement_randomness(self):
        spec = _spec(models=("walk",), repetitions=2)
        walk_seeds = {}
        for config in spec.configs():
            walk_seeds.setdefault(config.placement, set()).add(config.seed)
        assert walk_seeds["all_on_one"] == {0}  # deterministic placement
        assert walk_seeds["random"] == {0, 1}   # placement needs the seed

    def test_both_models_expand_disjoint_cells(self):
        spec = _spec(models=("rotor", "walk"), repetitions=3)
        configs = spec.configs()
        hashes = {c.config_hash for c in configs}
        assert len(hashes) == len(configs)
        models = {c.model for c in configs}
        assert models == {"rotor", "walk"}

    def test_walk_build_is_rotor_only_but_agents_shared(self):
        spec = _spec(models=("rotor", "walk"))
        walk = next(c for c in spec.configs() if c.model == "walk")
        rotor = next(
            c
            for c in spec.configs()
            if c.model == "rotor"
            and (c.n, c.k, c.placement, c.seed)
            == (walk.n, walk.k, walk.placement, walk.seed)
        )
        with pytest.raises(ValueError):
            walk.build()
        assert walk.build_agents() == rotor.build_agents()
        assert rotor.build()[0] == rotor.build_agents()

    def test_identity_round_trips_model_fields(self):
        spec = _spec(models=("walk",), repetitions=4)
        config = spec.configs()[0]
        clone = SweepConfig.from_dict(config.to_dict())
        assert clone == config
        assert clone.config_hash == config.config_hash

    def test_repetitions_change_the_hash(self):
        a = _spec(models=("walk",), repetitions=3).configs()[0]
        b = _spec(models=("walk",), repetitions=5).configs()[0]
        assert a.config_hash != b.config_hash

    def test_invalid_models_and_repetitions(self):
        with pytest.raises(ValueError):
            _spec(models=())
        with pytest.raises(ValueError):
            _spec(models=("nope",))
        with pytest.raises(ValueError):
            _spec(repetitions=0)
        # walks have no rotors: stabilization/return are rotor-only
        with pytest.raises(ValueError):
            _spec(models=("rotor", "walk"), metrics=("stabilization",))


class TestHashing:
    def test_hash_is_stable_and_sensitive(self):
        config = _spec().configs()[0]
        same = SweepConfig.from_dict(config.to_dict())
        assert same.config_hash == config.config_hash
        bumped = SweepConfig(
            n=config.n,
            k=config.k + 1,
            placement=config.placement,
            pointer=config.pointer,
            seed=config.seed,
            metrics=config.metrics,
            max_rounds=config.max_rounds,
        )
        assert bumped.config_hash != config.config_hash

    def test_spec_hash_changes_with_grid(self):
        assert _spec().spec_hash != _spec(ks=(2,)).spec_hash
        assert _spec().spec_hash == _spec().spec_hash

    def test_scheduling_hints_not_part_of_identity(self):
        # chunk_lanes / walk_chunk_walkers / compact_ratio change how
        # the grid is batched, never what a cell computes — so neither
        # cell hashes nor the spec hash may move, and cached results
        # stay shared across schedule settings.
        plain = _spec()
        hinted = _spec(
            chunk_lanes=8, walk_chunk_walkers=128, compact_ratio=1.0
        )
        assert plain.spec_hash == hinted.spec_hash
        assert [c.config_hash for c in plain.configs()] == [
            c.config_hash for c in hinted.configs()
        ]

    def test_scenario_name_not_part_of_identity(self):
        # Two scenarios sharing a cell share its cache entry.
        a = _spec(name="a").configs()[0]
        b = _spec(name="b").configs()[0]
        assert a.config_hash == b.config_hash

    def test_deterministic_cells_normalize_seed(self):
        # Different seed lists must not split deterministic cells'
        # cache identities (the seed is ignored when building them).
        a = _spec(seeds=(0,)).configs()
        b = _spec(seeds=(42,)).configs()
        det_a = [c for c in a if c.placement == "all_on_one"]
        det_b = [c for c in b if c.placement == "all_on_one"]
        assert [c.config_hash for c in det_a] == [
            c.config_hash for c in det_b
        ]
        rnd_a = [c for c in a if c.placement == "random"]
        rnd_b = [c for c in b if c.placement == "random"]
        assert {c.config_hash for c in rnd_a}.isdisjoint(
            c.config_hash for c in rnd_b
        )

    def test_round_trip_rejects_schema_drift(self):
        data = _spec().configs()[0].to_dict()
        data["schema"] = -1
        with pytest.raises(ValueError):
            SweepConfig.from_dict(data)


class TestValidation:
    def test_invalid_scheduling_hints(self):
        with pytest.raises(ValueError):
            _spec(chunk_lanes=0)
        with pytest.raises(ValueError):
            _spec(walk_chunk_walkers=0)
        with pytest.raises(ValueError):
            _spec(compact_ratio=-0.5)
        with pytest.raises(ValueError):
            _spec(compact_ratio=2.0)

    def test_unknown_placement(self):
        with pytest.raises(ValueError):
            InitFamily("nope", "random")

    def test_unknown_pointer(self):
        with pytest.raises(ValueError):
            InitFamily("random", "nope")

    def test_family_randomness_flag(self):
        assert InitFamily("random", "uniform").is_random
        assert InitFamily("all_on_one", "random").is_random
        assert not InitFamily("all_on_one", "uniform").is_random

    def test_bad_grids(self):
        with pytest.raises(ValueError):
            _spec(ns=())
        with pytest.raises(ValueError):
            _spec(ns=(2,))
        with pytest.raises(ValueError):
            _spec(ks=(0,))
        with pytest.raises(ValueError):
            _spec(families=())
        with pytest.raises(ValueError):
            _spec(metrics=("nope",))
        with pytest.raises(ValueError):
            _spec(metrics=())
        with pytest.raises(ValueError):
            _spec(seeds=())
        with pytest.raises(ValueError):
            _spec(max_rounds_factor=0)
