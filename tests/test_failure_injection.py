"""Failure injection: malformed inputs fail loudly, never corrupt state.

Production discipline for a simulator: every malformed input must
raise with a clear message *before* mutating state, so a failed call
leaves the engine usable.
"""

import pytest

from repro.core.engine import MultiAgentRotorRouter
from repro.core.ring import RingRotorRouter
from repro.graphs.ring import ring_graph


class TestEngineStateSafetyOnErrors:
    def test_ring_overhold_leaves_state_intact(self):
        e = RingRotorRouter(8, [1] * 8, [0, 0])
        before_positions = e.positions()
        before_ptr = list(e.ptr)
        before_round = e.round
        with pytest.raises(ValueError):
            e.step(holds={0: 5})
        # The engine validates before mutating: nothing changed.
        assert e.positions() == before_positions
        assert e.ptr == before_ptr
        assert e.round == before_round
        # And it still runs.
        e.step()
        assert e.round == before_round + 1

    def test_general_overhold_checked_before_mutation(self):
        e = MultiAgentRotorRouter(ring_graph(8), [0] * 8, [0, 0])
        with pytest.raises(ValueError):
            e.step(holds={0: 5})
        assert e.round == 0
        assert e.positions() == [0, 0]

    def test_negative_hold_at_unoccupied_node(self):
        e = RingRotorRouter(8, [1] * 8, [0])
        with pytest.raises(ValueError):
            e.step(holds={0: -2})

    def test_hold_at_unoccupied_node_is_noop_if_zero(self):
        e = RingRotorRouter(8, [1] * 8, [0])
        e.step(holds={5: 0})
        assert e.round == 1


class TestConstructorRejections:
    @pytest.mark.parametrize(
        "n,ptrs,agents",
        [
            (2, [1, 1], [0]),                  # ring too small
            (4, [1, 1, 1], [0]),               # pointer length
            (4, [1, 2, 1, 1], [0]),            # pointer value
            (4, [1] * 4, []),                  # no agents
            (4, [1] * 4, [-1]),                # agent below range
            (4, [1] * 4, [4]),                 # agent above range
        ],
    )
    def test_ring_constructor(self, n, ptrs, agents):
        with pytest.raises(ValueError):
            RingRotorRouter(n, ptrs, agents)

    def test_engine_graph_mismatch(self):
        with pytest.raises(ValueError):
            MultiAgentRotorRouter(ring_graph(5), [0] * 6, [0])


class TestBudgetsFailLoudly:
    def test_cover_budget_message_includes_counts(self):
        e = RingRotorRouter(64, [1] * 64, [0], track_counts=False)
        with pytest.raises(RuntimeError, match="unvisited"):
            e.run_until_covered(5)

    def test_limit_cycle_budget(self):
        from repro.core.limit import find_limit_cycle

        e = RingRotorRouter(32, [1] * 32, [0], track_counts=False)
        with pytest.raises(RuntimeError, match="limit cycle"):
            find_limit_cycle(e, max_rounds=3)

    def test_walk_budget(self):
        from repro.randomwalk.ring_walk import RingRandomWalks

        w = RingRandomWalks(64, [0], seed=0)
        with pytest.raises(RuntimeError, match="unvisited"):
            w.run_until_covered(4)

    def test_deployment_walk_budget(self):
        from repro.core.delayed import walk_lone_agent

        e = RingRotorRouter(8, [1] * 8, [0])
        with pytest.raises(RuntimeError, match="stop condition"):
            walk_lone_agent(e, 0, lambda *_: False, max_rounds=3)


class TestAnalysisInputValidation:
    def test_scaling_rejects_mismatched(self):
        from repro.analysis.scaling import normalized

        with pytest.raises(ValueError):
            normalized([1.0, 2.0], [1.0])

    def test_remote_rejects_bad_ring(self):
        from repro.analysis.remote import remote_vertex_mask

        with pytest.raises(ValueError):
            remote_vertex_mask(1, [0])

    def test_return_time_rejects_bad_window(self):
        from repro.core.limit import return_time_windowed

        e = RingRotorRouter(8, [1] * 8, [0], track_counts=False)
        with pytest.raises(ValueError):
            return_time_windowed(e, 8, burn_in=0, window=0)

    def test_token_game_illegal_move_keeps_state(self):
        from repro.theory.token_game import IllegalMoveError, TokenGame

        game = TokenGame(3, 5)
        game.heights = [1, 12, 2]
        with pytest.raises(IllegalMoveError):
            game.move(0, 1)
        assert game.heights == [1, 12, 2]
        assert game.moves_played == 0
