"""Tests for the port-labeled graph substrate."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graphs.base import PortLabeledGraph
from repro.graphs.families import grid_2d, path_graph
from repro.graphs.ring import ring_graph


class TestConstruction:
    def test_triangle(self):
        g = PortLabeledGraph([[1, 2], [0, 2], [0, 1]])
        assert g.num_nodes == 3
        assert g.num_edges == 3
        assert g.num_arcs == 6

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            PortLabeledGraph([[0, 1], [0]])

    def test_parallel_edge_rejected(self):
        with pytest.raises(ValueError, match="parallel"):
            PortLabeledGraph([[1, 1], [0, 0]])

    def test_asymmetry_rejected(self):
        with pytest.raises(ValueError, match="asymmetric"):
            PortLabeledGraph([[1], []])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out-of-range"):
            PortLabeledGraph([[5]])

    def test_from_edges_sorted_ports(self):
        g = PortLabeledGraph.from_edges(4, [(0, 3), (0, 1), (1, 2), (2, 3)])
        assert g.neighbors(0) == (1, 3)

    def test_from_edges_rejects_self_loop(self):
        with pytest.raises(ValueError):
            PortLabeledGraph.from_edges(2, [(0, 0)])

    def test_from_networkx_round_trip(self):
        g = ring_graph(8)
        back = PortLabeledGraph.from_networkx(g.to_networkx())
        assert sorted(back.edges()) == sorted(g.edges())


class TestAccessors:
    def test_ports_and_reverse_lookup(self):
        g = ring_graph(6)
        for v in range(6):
            for port, u in enumerate(g.neighbors(v)):
                assert g.port_target(v, port) == u
                assert g.port_to(v, u) == port

    def test_port_to_nonneighbor_raises(self):
        g = ring_graph(6)
        with pytest.raises(ValueError):
            g.port_to(0, 3)

    def test_has_edge(self):
        g = ring_graph(5)
        assert g.has_edge(0, 1)
        assert g.has_edge(0, 4)
        assert not g.has_edge(0, 2)

    def test_arcs_count_matches(self):
        g = grid_2d(3, 4)
        assert len(list(g.arcs())) == g.num_arcs

    def test_edges_are_canonical(self):
        g = grid_2d(3, 3)
        for u, v in g.edges():
            assert u < v

    def test_len(self):
        assert len(ring_graph(9)) == 9

    def test_equality_and_hash(self):
        assert ring_graph(5) == ring_graph(5)
        assert hash(ring_graph(5)) == hash(ring_graph(5))
        assert ring_graph(5) != ring_graph(6)


class TestStructure:
    def test_connected(self):
        assert ring_graph(10).is_connected()

    def test_disconnected(self):
        g = PortLabeledGraph([[1], [0], [3], [2]])
        assert not g.is_connected()

    def test_ring_diameter(self):
        assert ring_graph(10).diameter() == 5
        assert ring_graph(11).diameter() == 5

    def test_path_diameter(self):
        assert path_graph(7).diameter() == 6

    def test_bfs_distances(self):
        g = path_graph(5)
        assert g.bfs_distances(0) == [0, 1, 2, 3, 4]

    def test_bfs_unreachable_is_minus_one(self):
        g = PortLabeledGraph([[1], [0], [3], [2]])
        assert g.bfs_distances(0)[2] == -1

    def test_eccentricity_requires_connectivity(self):
        g = PortLabeledGraph([[1], [0], [3], [2]])
        with pytest.raises(ValueError):
            g.eccentricity(0)

    @given(st.integers(3, 30))
    def test_ring_degree_sum(self, n):
        g = ring_graph(n)
        assert sum(g.degree(v) for v in range(n)) == 2 * g.num_edges
