"""Tests for the Theorem 1 delayed deployment construction."""

import pytest

from repro.experiments.deployments import (
    DeploymentError,
    Theorem1Trace,
    run_theorem1_deployment,
    undelayed_path_cover_time,
)


class TestConstructionRuns:
    @pytest.mark.parametrize("n,k", [(160, 4), (200, 6), (240, 8)])
    def test_deployment_covers_and_sandwiches(self, n, k):
        trace = run_theorem1_deployment(n, k)
        assert trace.cover_round is not None
        tau, total = trace.slow_down_bounds()
        assert 0 < tau <= total
        cover = undelayed_path_cover_time(n, k)
        assert tau <= cover <= total

    def test_ladder_strictly_increasing(self):
        trace = run_theorem1_deployment(200, 5)
        ladder = trace.s_ladder
        assert all(b > a for a, b in zip(ladder, ladder[1:]))
        assert ladder[-1] <= 200 - 1

    def test_b1_dominates_b2(self):
        # The proof's accounting: B1 ∈ Ω(B2).
        trace = run_theorem1_deployment(300, 6)
        assert trace.phase_b1_rounds > trace.phase_b2_rounds

    def test_positions_always_matched(self):
        trace = run_theorem1_deployment(200, 6)
        position_violations = [
            v for v in trace.invariant_violations if "positions" in v
        ]
        assert position_violations == []

    def test_custom_multiplier(self):
        trace = run_theorem1_deployment(160, 4, multiplier=32.0)
        assert trace.multiplier == 32.0
        assert trace.cover_round is not None


class TestValidation:
    def test_k_above_3_required(self):
        with pytest.raises(ValueError):
            run_theorem1_deployment(100, 3)

    def test_path_length_check(self):
        with pytest.raises(ValueError):
            run_theorem1_deployment(20, 6)

    def test_multiplier_positive(self):
        with pytest.raises(ValueError):
            run_theorem1_deployment(160, 4, multiplier=0.0)

    def test_initial_length_bounds(self):
        with pytest.raises(ValueError):
            run_theorem1_deployment(160, 4, initial_length=200)

    def test_bounds_require_cover(self):
        trace = Theorem1Trace(n=10, k=4, multiplier=1.0)
        with pytest.raises(DeploymentError):
            trace.slow_down_bounds()


class TestUndelayedBaseline:
    def test_quadratic_shape(self):
        import math

        covers = {n: undelayed_path_cover_time(n, 6) for n in (80, 160)}
        ratio = covers[160] / covers[80]
        assert 2.5 <= ratio <= 6.0  # ~4 for a quadratic law

    def test_log_speedup_direction(self):
        # More agents help, but only mildly (log k shape).
        c4 = undelayed_path_cover_time(200, 4)
        c16 = undelayed_path_cover_time(200, 16)
        assert c16 < c4
        assert c16 > c4 / 8  # far from linear speed-up
