"""Integration tests: every experiment module produces a sane report.

Small parameters keep the suite fast; the assertions check structure
plus the coarse paper-shape facts each experiment exists to show.
"""

import pytest

from repro.experiments.continuous import (
    run_equilibrium_table,
    run_growth_comparison,
)
from repro.experiments.figures import run_figure1, run_figure2
from repro.experiments.harness import Report
from repro.experiments.table1 import (
    run_cover_table,
    run_return_time_table,
    run_table1,
)
from repro.experiments.theorem2 import run_theorem2
from repro.experiments.theorem3 import run_theorem3, spaced_cover
from repro.experiments.theorem4 import run_theorem4
from repro.experiments.theorem5 import run_theorem5
from repro.experiments.theorem6 import run_theorem6
from repro.experiments.theorem1 import run_k_sweep, run_n_sweep
from repro.util.tables import Table


class TestHarness:
    def test_report_render(self):
        report = Report(title="t", claim="c")
        table = Table(columns=["a"])
        table.add_row(1)
        report.add_table(table)
        report.add_note("n")
        text = report.render()
        assert "== t ==" in text
        assert "paper: c" in text
        assert "note: n" in text

    def test_save_csv(self, tmp_path):
        report = Report(title="demo run")
        table = Table(columns=["x", "y"], caption="data")
        table.add_row(1, 2)
        report.add_table(table)
        paths = report.save_csv(str(tmp_path))
        assert len(paths) == 1
        content = open(paths[0]).read()
        assert "x,y" in content
        assert "1,2" in content

    def test_save_csv_disambiguates_colliding_slugs(self, tmp_path):
        # Regression: captions that slugify identically used to silently
        # overwrite each other's CSV file.
        report = Report(title="collide")
        first = Table(columns=["a"], caption="My Data!")
        first.add_row(1)
        second = Table(columns=["b"], caption="my data")
        second.add_row(2)
        report.add_table(first)
        report.add_table(second)
        paths = report.save_csv(str(tmp_path))
        assert len(paths) == len(set(paths)) == 2
        assert "a" in open(paths[0]).read()
        assert "b" in open(paths[1]).read()

    def test_save_csv_suffix_cannot_shadow_natural_slug(self, tmp_path):
        # 'gaps', 'gaps', 'gaps t1' -> the disambiguated second table
        # ('gaps-t1') must not overwrite the third's natural slug.
        report = Report(title="shadow")
        for caption, value in (("gaps", 1), ("gaps", 2), ("gaps t1", 3)):
            table = Table(columns=["v"], caption=caption)
            table.add_row(value)
            report.add_table(table)
        paths = report.save_csv(str(tmp_path))
        assert len(set(paths)) == 3
        contents = [open(path).read() for path in paths]
        for value in ("1", "2", "3"):
            assert any(value in text for text in contents)

    def test_save_csv_disambiguates_empty_captions(self, tmp_path):
        report = Report(title="anon")
        for value in (1, 2):
            table = Table(columns=["v"])  # no caption at all
            table.add_row(value)
            report.add_table(table)
        paths = report.save_csv(str(tmp_path))
        assert len(set(paths)) == 2


class TestTable1:
    def test_cover_table_structure(self):
        # k >= 4: at k = 2 the log²k factor is < 1 and the asymptotic
        # ordering genuinely does not apply.
        table = run_cover_table(96, ks=(4, 8), repetitions=3)
        assert len(table.rows) == 2
        # Rotor-router best case beats the walks' best case.
        rr_best = table.column("RR best")
        rw_best = table.column("RW best")
        assert all(rr <= rw for rr, rw in zip(rr_best, rw_best))

    def test_return_table_normalized_band(self):
        table = run_return_time_table(64, ks=(2, 4), walk_window_factor=80)
        for value in table.column("RR gap*k/n"):
            assert 1.0 <= value <= 3.0

    def test_full_report(self):
        report = run_table1(n=96, ks=(2, 4), repetitions=2, return_n=64)
        assert len(report.tables) == 2
        assert "Table 1" in report.render()


class TestTheoremReports:
    def test_theorem1_k_sweep_flatish(self):
        table = run_k_sweep(128, ks=(2, 4, 8))
        normalized = table.column("C*log k/n^2")
        assert max(normalized) / min(normalized) < 3.0

    def test_theorem1_n_sweep_quadratic(self):
        table = run_n_sweep((64, 128, 256), k=4)
        assert "n^" in table.caption
        exponent = float(table.caption.split("n^")[-1])
        assert 1.7 <= exponent <= 2.3

    def test_theorem2_battery_bounded(self):
        report = run_theorem2(n=96, ks=(4,), seeds=(0, 1))
        ratios = report.tables[0].column("battery/all-on-one")
        assert all(r <= 1.6 for r in ratios)

    def test_theorem3_normalized_bounded(self):
        report = run_theorem3(n=128, ks=(2, 4, 8), random_seeds=(0,))
        normalized = report.tables[0].column("worst*k^2/n^2")
        assert all(0.05 <= v <= 3.0 for v in normalized)
        assert max(normalized) / min(normalized) < 4.0

    def test_theorem3_pointer_families(self):
        assert spaced_cover(64, 4, "positive") <= spaced_cover(
            64, 4, "negative"
        )

    def test_theorem4_lower_bound_constant(self):
        report = run_theorem4(n=256, ks=(4,), seeds=(0,))
        normalized = report.tables[0].column("C*k^2/n^2")
        assert all(v >= 0.1 for v in normalized)

    def test_theorem5_ordering(self):
        report = run_theorem5(n=128, ks=(4, 8), repetitions=4)
        ratios = report.tables[0].column("RW/RR")
        assert all(r > 1.0 for r in ratios)  # walks lose the best case

    def test_theorem6_band(self):
        report = run_theorem6(n=64, ks=(2, 4), seeds=(0,))
        gaps = report.tables[0].column("gap*k/n")
        assert all(1.0 <= g <= 3.0 for g in gaps)


class TestBackendsAgree:
    """The batch backend renders the exact reports of the serial one."""

    def test_table1_identical_across_backends(self):
        batch = run_table1(n=64, ks=(2, 4), repetitions=2, return_n=48)
        reference = run_table1(
            n=64, ks=(2, 4), repetitions=2, return_n=48, backend="reference"
        )
        assert batch.render() == reference.render()
        assert batch.stats.backend == "batch"
        assert reference.stats.backend == "reference"

    def test_theorem6_identical_across_backends(self):
        batch = run_theorem6(n=48, ks=(2, 4), seeds=(0,))
        reference = run_theorem6(n=48, ks=(2, 4), seeds=(0,), backend="reference")
        assert batch.render() == reference.render()

    def test_theorem5_identical_across_backends(self):
        batch = run_theorem5(n=64, ks=(2, 4), repetitions=3)
        reference = run_theorem5(n=64, ks=(2, 4), repetitions=3,
                                 backend="reference")
        assert batch.render() == reference.render()

    def test_stabilization_identical_across_backends(self):
        from repro.experiments.stabilization import run_stabilization

        batch = run_stabilization(ns=(32, 48), k=4, seeds=(0,))
        reference = run_stabilization(
            ns=(32, 48), k=4, seeds=(0,), backend="reference"
        )
        assert batch.render() == reference.render()

    def test_speedup_graphs_identical_across_backends(self):
        from repro.experiments.speedup_graphs import run_speedup_graphs
        from repro.graphs import ring_graph

        families = {"ring": lambda: ring_graph(32)}
        batch = run_speedup_graphs(ks=(2, 4), seeds=(0,), families=families)
        reference = run_speedup_graphs(
            ks=(2, 4), seeds=(0,), families=families, backend="reference"
        )
        assert batch.render() == reference.render()

    def test_speedup_graphs_quick_grid_identical_across_backends(self):
        # The quick grid's node total crosses the serial escape hatch,
        # so this pins the CSR-batched kernel (mixed families in one
        # chunk) against the reference engine at report granularity.
        from repro.experiments.speedup_graphs import run_speedup_graphs

        batch = run_speedup_graphs(quick=True)
        reference = run_speedup_graphs(quick=True, backend="reference")
        assert batch.render() == reference.render()
        assert batch.stats.computed == reference.stats.computed


class TestFiguresAndContinuous:
    def test_figure1_census(self):
        report = run_figure1(n=64, ks=(4,), burn_in_factor=15,
                             observation_factor=5)
        table = report.tables[0]
        totals = [
            v + e + t
            for v, e, t in zip(
                table.column("vertex-type"),
                table.column("edge-type"),
                table.column("transient"),
            )
        ]
        assert all(total > 0 for total in totals)
        transients = table.column("transient %")
        assert all(pct <= 5.0 for pct in transients)

    def test_figure2_trace(self):
        report = run_figure2(n=160, k=4)
        ladder = report.tables[0]
        assert len(ladder.rows) >= 1
        phases = report.tables[1]
        assert len(phases.rows) == 3

    def test_growth_comparison(self):
        table = run_growth_comparison(n=192, k=4)
        exponents = table.column("growth exponent")
        assert all(abs(e - 0.5) < 0.12 for e in exponents)

    def test_equilibrium_table(self):
        table = run_equilibrium_table(ks=(4, 8))
        drift_equal = table.column("|drift| equal sizes")
        drift_perturbed = table.column("|drift| perturbed")
        assert all(d == pytest.approx(0.0, abs=1e-12) for d in drift_equal)
        assert all(d > 0 for d in drift_perturbed)
