"""Tests for speed-up tables and domain statistics harnesses."""

import pytest

from repro.analysis.domains_stats import (
    border_type_census,
    final_profile_vs_lemma13,
    lemma12_adjacent_difference,
    trace_domains,
)
from repro.analysis.speedup import (
    TABLE1_SHAPES,
    best_matching_shape,
    measure_speedup,
    shape_linear,
    shape_log,
    shape_quadratic,
    shape_quadratic_over_log2,
)
from repro.core import placement, pointers


class TestSpeedupTable:
    def test_measures_against_baseline(self):
        def cover(n, k):
            return n * n / (k * k)  # exactly quadratic speed-up

        table = measure_speedup(cover, 100, [2, 4, 8])
        assert table.speedups() == [4.0, 16.0, 64.0]
        assert table.shape_flatness(shape_quadratic) == pytest.approx(1.0)

    def test_best_matching_shape(self):
        def cover(n, k):
            import math

            return n * n / max(1.0, math.log(k))

        table = measure_speedup(cover, 100, [2, 4, 8, 16])
        name, flat = best_matching_shape(table, TABLE1_SHAPES)
        assert name == "log k"
        assert flat == pytest.approx(1.0)

    def test_shapes(self):
        assert shape_log(1) == 1.0
        assert shape_linear(5) == 5.0
        assert shape_quadratic(3) == 9.0
        assert shape_quadratic_over_log2(1) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            measure_speedup(lambda n, k: 10.0, 10, [])
        with pytest.raises(ValueError):
            measure_speedup(lambda n, k: 0.0, 10, [2])


class TestDomainTraces:
    def test_trace_samples(self):
        n, k = 64, 4
        agents = placement.equally_spaced(n, k)
        trace = trace_domains(
            n, agents, pointers.ring_negative(n, agents),
            total_rounds=300, sample_every=50,
        )
        assert trace.rounds
        assert len(trace.snapshots) == len(trace.rounds)
        assert all(len(s.domains) == k for s in trace.snapshots)

    def test_growth_exponent_half_from_stack(self):
        n, k = 256, 4
        trace = trace_domains(
            n,
            placement.all_on_one(k),
            pointers.ring_toward_node(n, 0),
            total_rounds=n * n // 2,
            sample_every=n // 4,
            stop_at_cover=True,
        )
        assert trace.growth_exponent() == pytest.approx(0.5, abs=0.1)

    def test_lemma12_small_difference(self):
        n, k = 72, 6
        agents = [0, 2, 4, 30, 32, 50]  # deliberately lopsided
        diff = lemma12_adjacent_difference(
            n, agents, pointers.ring_negative(n, agents), rounds=50 * n
        )
        assert diff <= 10

    def test_lemma12_requires_coverage(self):
        n = 64
        with pytest.raises(RuntimeError):
            lemma12_adjacent_difference(
                n, [0], pointers.ring_toward_node(n, 0), rounds=10
            )

    def test_border_census_nonempty(self):
        n, k = 64, 4
        agents = placement.equally_spaced(n, k)
        census = border_type_census(
            n, agents, pointers.ring_negative(n, agents),
            burn_in=10 * n, observation_rounds=4 * n,
        )
        assert sum(census.values()) > 0

    def test_profile_matches_lemma13(self):
        import numpy as np

        measured, predicted = final_profile_vs_lemma13(
            300, 6, rounds_budget=300 * 300
        )
        assert measured.shape == predicted.shape
        correlation = float(np.corrcoef(measured, predicted)[0, 1])
        assert correlation > 0.95

    def test_profile_requires_k_above_3(self):
        with pytest.raises(ValueError):
            final_profile_vs_lemma13(100, 3, rounds_budget=100)

    def test_trace_validation(self):
        with pytest.raises(ValueError):
            trace_domains(32, [0], pointers.ring_uniform(32), 0, 1)
