"""Tests for the deterministic graph families."""

import pytest

from repro.graphs.families import (
    clique,
    grid_2d,
    hypercube,
    lollipop,
    path_graph,
    star,
    torus_2d,
)


class TestPath:
    def test_endpoints_degree_one(self):
        g = path_graph(6)
        assert g.degree(0) == 1
        assert g.degree(5) == 1
        assert all(g.degree(v) == 2 for v in range(1, 5))

    def test_interior_port_order_matches_ring(self):
        g = path_graph(5)
        assert g.neighbors(2) == (3, 1)  # [right, left]

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            path_graph(1)

    def test_connected(self):
        assert path_graph(10).is_connected()


class TestGrid:
    def test_shape(self):
        g = grid_2d(3, 4)
        assert g.num_nodes == 12
        # edges: 3*3 horizontal + 2*4 vertical
        assert g.num_edges == 3 * 3 + 2 * 4

    def test_corner_degree(self):
        g = grid_2d(3, 3)
        assert g.degree(0) == 2
        assert g.degree(4) == 4  # center

    def test_connected(self):
        assert grid_2d(5, 7).is_connected()

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            grid_2d(0, 5)
        with pytest.raises(ValueError):
            grid_2d(1, 1)


class TestTorus:
    def test_regular(self):
        g = torus_2d(4, 5)
        assert all(g.degree(v) == 4 for v in range(20))

    def test_edge_count(self):
        g = torus_2d(4, 4)
        assert g.num_edges == 2 * 16

    def test_small_dims_rejected(self):
        with pytest.raises(ValueError):
            torus_2d(2, 5)

    def test_connected(self):
        assert torus_2d(3, 3).is_connected()


class TestHypercube:
    def test_sizes(self):
        g = hypercube(4)
        assert g.num_nodes == 16
        assert all(g.degree(v) == 4 for v in range(16))
        assert g.num_edges == 16 * 4 // 2

    def test_ports_flip_bits(self):
        g = hypercube(3)
        assert g.port_target(0b101, 1) == 0b111

    def test_diameter_is_dimension(self):
        assert hypercube(5).diameter() == 5

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            hypercube(0)


class TestCliqueStarLollipop:
    def test_clique_complete(self):
        g = clique(6)
        assert g.num_edges == 15
        assert all(g.degree(v) == 5 for v in range(6))

    def test_clique_min_size(self):
        with pytest.raises(ValueError):
            clique(1)

    def test_star_shape(self):
        g = star(5)
        assert g.num_nodes == 6
        assert g.degree(0) == 5
        assert all(g.degree(v) == 1 for v in range(1, 6))

    def test_star_needs_leaf(self):
        with pytest.raises(ValueError):
            star(0)

    def test_lollipop_structure(self):
        g = lollipop(5, 3)
        assert g.num_nodes == 8
        assert g.is_connected()
        assert g.degree(7) == 1  # tail end
        assert g.degree(4) == 5  # attachment node: clique 4 + tail 1

    def test_lollipop_validation(self):
        with pytest.raises(ValueError):
            lollipop(2, 3)
        with pytest.raises(ValueError):
            lollipop(4, 0)
