"""Exact Markov computations vs closed forms and vs simulation."""

import numpy as np
import pytest

from repro.graphs.families import clique, path_graph, star
from repro.graphs.ring import ring_graph
from repro.randomwalk.analytic import ring_cover_time_single, ring_hitting_time
from repro.randomwalk.markov import (
    cover_time_expectation_single,
    expected_return_time,
    hitting_times,
    max_hitting_time,
    stationary_distribution,
    transition_matrix,
)
from repro.randomwalk.walker import ParallelRandomWalks
from repro.util.stats import summarize


class TestTransitionMatrix:
    def test_row_stochastic(self):
        p = transition_matrix(ring_graph(7))
        assert np.allclose(p.sum(axis=1), 1.0)

    def test_entries(self):
        p = transition_matrix(ring_graph(5))
        assert p[0, 1] == 0.5
        assert p[0, 4] == 0.5
        assert p[0, 2] == 0.0


class TestHittingTimes:
    def test_matches_ring_closed_form(self):
        n = 12
        h = hitting_times(ring_graph(n), target=0)
        for d in range(n):
            assert h[d] == pytest.approx(ring_hitting_time(n, d))

    def test_clique_hitting(self):
        # On K_n the hitting time to another node is n-1.
        n = 8
        h = hitting_times(clique(n), target=0)
        for v in range(1, n):
            assert h[v] == pytest.approx(n - 1)

    def test_star_hitting(self):
        # leaf -> center: 1; center -> given leaf: 2*leaves - 1.
        g = star(5)
        h_center = hitting_times(g, target=0)
        assert h_center[1] == pytest.approx(1.0)
        h_leaf = hitting_times(g, target=1)
        assert h_leaf[0] == pytest.approx(2 * 5 - 1)

    def test_max_hitting_ring(self):
        n = 10
        assert max_hitting_time(ring_graph(n)) == pytest.approx(25.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            hitting_times(ring_graph(5), 5)

    def test_simulation_agrees(self):
        g = path_graph(6)
        h = hitting_times(g, target=5)
        samples = []
        for seed in range(300):
            w = ParallelRandomWalks(g, [0], seed=seed)
            t = 0
            while w.positions[0] != 5:
                w.step()
                t += 1
            samples.append(t)
        assert abs(summarize(samples).mean - h[0]) / h[0] < 0.15


class TestStationaryAndReturn:
    def test_stationary_uniform_on_regular(self):
        pi = stationary_distribution(ring_graph(9))
        assert np.allclose(pi, 1.0 / 9.0)

    def test_stationary_degree_weighted(self):
        g = star(4)
        pi = stationary_distribution(g)
        assert pi[0] == pytest.approx(0.5)
        assert pi[1] == pytest.approx(0.125)

    def test_stationary_is_left_eigenvector(self):
        g = path_graph(7)
        pi = stationary_distribution(g)
        p = transition_matrix(g)
        assert np.allclose(pi @ p, pi)

    def test_kac_formula(self):
        g = star(4)
        assert expected_return_time(g, 0) == pytest.approx(2.0)
        assert expected_return_time(g, 1) == pytest.approx(8.0)

    def test_kac_validation(self):
        with pytest.raises(ValueError):
            expected_return_time(ring_graph(5), 5)


class TestExactCover:
    def test_triangle(self):
        # C_3 from any node: first step covers one new node; from there
        # each step covers the last node w.p. 1/2: E = 1 + 2 = 3.
        assert cover_time_expectation_single(
            ring_graph(3), 0
        ) == pytest.approx(3.0)

    def test_matches_ring_formula(self):
        for n in (4, 6, 8):
            exact = cover_time_expectation_single(ring_graph(n), 0)
            assert exact == pytest.approx(ring_cover_time_single(n))

    def test_matches_simulation_on_star(self):
        g = star(4)
        exact = cover_time_expectation_single(g, 0)
        samples = [
            ParallelRandomWalks(g, [0], seed=s).run_until_covered(10 ** 6)
            for s in range(400)
        ]
        mean = summarize(samples).mean
        assert abs(mean - exact) / exact < 0.1

    def test_size_cap(self):
        with pytest.raises(ValueError):
            cover_time_expectation_single(ring_graph(20), 0)

    def test_start_validated(self):
        with pytest.raises(ValueError):
            cover_time_expectation_single(ring_graph(5), 9)
