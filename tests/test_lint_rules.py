"""Fixture tests for the per-file lint rules (D001–D003, T001).

Each rule gets at least one true-positive fixture, one clean-negative
fixture, and one ``# repro: noqa[CODE]`` suppression fixture, exercised
through the real engine (``run_lint``) so path scoping, pragma
handling, and finding layout are all covered together.
"""

import textwrap

import pytest

from repro.lint import run_lint
from repro.lint.engine import PARSE_ERROR_CODE


def lint_source(tmp_path, relpath, source, select):
    """Write ``source`` at ``relpath`` under ``tmp_path`` and lint it.

    ``select`` names the single rule under test, which also keeps the
    repo-level I001 lockfile check out of these per-rule fixtures.
    """
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source))
    return run_lint(
        [str(target)], select=[select], lock_path=str(tmp_path / "lock")
    )


def codes(report):
    return [finding.code for finding in report.findings]


# ---------------------------------------------------------------- D001


class TestUnseededRandomness:
    def test_unseeded_default_rng_is_flagged(self, tmp_path):
        report = lint_source(
            tmp_path, "pkg/model.py",
            """
            import numpy as np

            def draw():
                rng = np.random.default_rng()
                return rng.random()
            """,
            "D001",
        )
        assert codes(report) == ["D001"]
        assert "without a seed" in report.findings[0].message
        assert report.findings[0].line == 5

    def test_legacy_global_numpy_api_is_flagged(self, tmp_path):
        report = lint_source(
            tmp_path, "pkg/model.py",
            """
            import numpy as np

            def draw(n):
                return np.random.rand(n)
            """,
            "D001",
        )
        assert codes(report) == ["D001"]
        assert "legacy global-state RNG" in report.findings[0].message

    def test_stdlib_random_and_unseeded_random_cls(self, tmp_path):
        report = lint_source(
            tmp_path, "pkg/model.py",
            """
            import random

            def draw():
                r = random.Random()
                return random.random() + r.random()
            """,
            "D001",
        )
        assert codes(report) == ["D001", "D001"]

    def test_seeded_constructors_are_clean(self, tmp_path):
        report = lint_source(
            tmp_path, "pkg/model.py",
            """
            import random

            import numpy as np

            def draw(seed):
                rng = np.random.default_rng(seed)
                state = np.random.RandomState(seed=seed)
                twister = random.Random(seed)
                return rng.random() + state.rand() + twister.random()
            """,
            "D001",
        )
        assert codes(report) == []

    def test_explicit_none_seed_is_flagged(self, tmp_path):
        report = lint_source(
            tmp_path, "pkg/model.py",
            """
            import numpy as np

            rng = np.random.default_rng(None)
            """,
            "D001",
        )
        assert codes(report) == ["D001"]

    def test_test_paths_are_exempt(self, tmp_path):
        report = lint_source(
            tmp_path, "tests/test_model.py",
            """
            import numpy as np

            rng = np.random.default_rng()
            """,
            "D001",
        )
        assert codes(report) == []

    def test_noqa_pragma_suppresses(self, tmp_path):
        report = lint_source(
            tmp_path, "pkg/model.py",
            """
            import numpy as np

            rng = np.random.default_rng()  # repro: noqa[D001] entropy on purpose
            """,
            "D001",
        )
        assert codes(report) == []
        assert [f.code for f in report.suppressed] == ["D001"]
        assert report.exit_code == 0

    def test_noqa_for_other_code_does_not_suppress(self, tmp_path):
        report = lint_source(
            tmp_path, "pkg/model.py",
            """
            import numpy as np

            rng = np.random.default_rng()  # repro: noqa[D002]
            """,
            "D001",
        )
        assert codes(report) == ["D001"]
        assert report.exit_code == 1


# ---------------------------------------------------------------- D002


class TestNondeterministicOrdering:
    def test_set_iteration_in_sweep_is_flagged(self, tmp_path):
        report = lint_source(
            tmp_path, "sweep/plan.py",
            """
            def chunks(names):
                for name in set(names):
                    yield name
            """,
            "D002",
        )
        assert codes(report) == ["D002"]
        assert "iterating a set" in report.findings[0].message

    def test_bare_listdir_in_obs_is_flagged(self, tmp_path):
        report = lint_source(
            tmp_path, "obs/merge.py",
            """
            import os

            def shards(d):
                return [n for n in os.listdir(d) if n.endswith(".json")]
            """,
            "D002",
        )
        assert codes(report) == ["D002"]
        assert "sorted()" in report.findings[0].message

    def test_sorted_wrapping_is_clean(self, tmp_path):
        report = lint_source(
            tmp_path, "sweep/plan.py",
            """
            import os

            def shards(d):
                names = sorted(os.listdir(d))
                count = len(os.listdir(d))
                only = sorted(n for n in os.listdir(d) if n)
                for name in sorted({"b", "a"}):
                    pass
                return names, count, only
            """,
            "D002",
        )
        assert codes(report) == []

    def test_rule_is_scoped_to_sweep_and_obs(self, tmp_path):
        report = lint_source(
            tmp_path, "pkg/other.py",
            """
            import os

            def shards(d):
                return list(os.listdir(d))
            """,
            "D002",
        )
        assert codes(report) == []

    def test_noqa_pragma_suppresses(self, tmp_path):
        report = lint_source(
            tmp_path, "sweep/plan.py",
            """
            import os

            def any_shard(d):
                return next(iter(os.listdir(d)))  # repro: noqa[D002] order-free
            """,
            "D002",
        )
        assert codes(report) == []
        assert [f.code for f in report.suppressed] == ["D002"]


# ---------------------------------------------------------------- D003


class TestNondeterminismIntoIdentity:
    def test_wall_clock_in_identity_is_flagged(self, tmp_path):
        report = lint_source(
            tmp_path, "pkg/cache.py",
            """
            import time

            class Cell:
                def identity(self):
                    return {"stamp": time.time()}
            """,
            "D003",
        )
        assert codes(report) == ["D003"]
        assert "varies between runs" in report.findings[0].message

    def test_builtin_hash_in_cache_key_is_flagged(self, tmp_path):
        report = lint_source(
            tmp_path, "pkg/cache.py",
            """
            def cache_key(cfg):
                return hash(cfg)
            """,
            "D003",
        )
        assert codes(report) == ["D003"]
        assert "PYTHONHASHSEED" in report.findings[0].message

    def test_pid_and_id_in_identity_helpers(self, tmp_path):
        report = lint_source(
            tmp_path, "pkg/cache.py",
            """
            import os

            def config_hash(cfg):
                return (os.getpid(), id(cfg))
            """,
            "D003",
        )
        assert codes(report) == ["D003", "D003"]

    def test_wall_clock_outside_identity_is_clean(self, tmp_path):
        report = lint_source(
            tmp_path, "pkg/cache.py",
            """
            import time

            def elapsed(start):
                return time.time() - start
            """,
            "D003",
        )
        assert codes(report) == []

    def test_dunder_hash_is_exempt(self, tmp_path):
        report = lint_source(
            tmp_path, "pkg/cache.py",
            """
            class Graph:
                def __hash__(self):
                    return hash(self._ports)
            """,
            "D003",
        )
        assert codes(report) == []

    def test_noqa_pragma_suppresses(self, tmp_path):
        report = lint_source(
            tmp_path, "pkg/cache.py",
            """
            import time

            def identity(run):
                return {"stamp": time.time()}  # repro: noqa[D003] display only
            """,
            "D003",
        )
        assert codes(report) == []
        assert [f.code for f in report.suppressed] == ["D003"]


# ---------------------------------------------------------------- T001


class TestUnguardedKernelTelemetry:
    def test_convenience_helper_in_kernel_is_flagged(self, tmp_path):
        report = lint_source(
            tmp_path, "sweep/batch_ring.py",
            """
            from repro.obs import count_many

            def step(state):
                count_many({"steps": 1})
            """,
            "T001",
        )
        assert codes(report) == ["T001"]
        assert "hoist" in report.findings[0].message

    def test_inline_active_chain_is_flagged(self, tmp_path):
        report = lint_source(
            tmp_path, "sweep/batch_ring.py",
            """
            from repro.obs.telemetry import active

            def step(state):
                active().count("steps")
            """,
            "T001",
        )
        assert codes(report) == ["T001"]
        assert "active().count" in report.findings[0].message

    def test_hoisted_guard_pattern_is_clean(self, tmp_path):
        report = lint_source(
            tmp_path, "sweep/batch_ring.py",
            """
            from repro.obs.telemetry import active as _telemetry

            def step(state):
                tel = _telemetry()
                if tel is not None:
                    tel.count_many({"steps": 1})
            """,
            "T001",
        )
        assert codes(report) == []

    def test_rule_only_applies_to_kernel_modules(self, tmp_path):
        report = lint_source(
            tmp_path, "sweep/executor.py",
            """
            from repro.obs import count

            def chunk():
                count("chunks")
            """,
            "T001",
        )
        assert codes(report) == []

    def test_noqa_pragma_suppresses(self, tmp_path):
        report = lint_source(
            tmp_path, "sweep/batch_ring.py",
            """
            from repro.obs import count

            def cold_path():
                count("setup")  # repro: noqa[T001] once per process
            """,
            "T001",
        )
        assert codes(report) == []
        assert [f.code for f in report.suppressed] == ["T001"]


# ------------------------------------------------------------- engine


class TestEngine:
    def test_syntax_error_becomes_e001(self, tmp_path):
        report = lint_source(
            tmp_path, "pkg/broken.py", "def broken(:\n", "D001"
        )
        assert codes(report) == [PARSE_ERROR_CODE]
        assert report.exit_code == 1

    def test_unknown_select_code_raises(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("x = 1\n")
        with pytest.raises(ValueError, match="unknown rule code"):
            run_lint([str(target)], select=["Z999"])

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            run_lint([str(tmp_path / "nope")], select=["D001"])

    def test_findings_are_sorted_and_renderable(self, tmp_path):
        report = lint_source(
            tmp_path, "pkg/model.py",
            """
            import numpy as np

            b = np.random.rand(3)
            a = np.random.default_rng()
            """,
            "D001",
        )
        lines = [f.line for f in report.findings]
        assert lines == sorted(lines)
        rendered = report.findings[0].render()
        assert "D001" in rendered and "pkg" in rendered
