"""Tests for general-graph parallel random walks."""

import numpy as np
import pytest

from repro.graphs.families import clique, grid_2d
from repro.graphs.ring import ring_graph
from repro.randomwalk.walker import ParallelRandomWalks
from repro.util.stats import summarize


class TestConstruction:
    def test_requires_walkers(self):
        with pytest.raises(ValueError):
            ParallelRandomWalks(ring_graph(5), [])

    def test_position_range_checked(self):
        with pytest.raises(ValueError):
            ParallelRandomWalks(ring_graph(5), [5])

    def test_initial_cover_state(self):
        w = ParallelRandomWalks(ring_graph(4), [0, 1, 2, 3], seed=0)
        assert w.cover_round == 0


class TestStepping:
    def test_moves_to_neighbors(self):
        w = ParallelRandomWalks(ring_graph(10), [5], seed=1)
        for _ in range(50):
            before = w.positions[0]
            w.step()
            after = w.positions[0]
            assert after in ring_graph(10).neighbors(before)

    def test_deterministic_given_seed(self):
        a = ParallelRandomWalks(grid_2d(4, 4), [0, 5], seed=9)
        b = ParallelRandomWalks(grid_2d(4, 4), [0, 5], seed=9)
        a.run(30)
        b.run(30)
        assert a.positions == b.positions

    def test_walker_count_constant(self):
        w = ParallelRandomWalks(clique(6), [0, 0, 3], seed=2)
        w.run(20)
        assert len(w.positions) == 3

    def test_run_negative_rejected(self):
        w = ParallelRandomWalks(ring_graph(5), [0], seed=0)
        with pytest.raises(ValueError):
            w.run(-1)


class TestCover:
    def test_covers_small_graph(self):
        w = ParallelRandomWalks(ring_graph(8), [0], seed=3)
        cover = w.run_until_covered(100_000)
        assert cover > 0
        assert w.unvisited == 0

    def test_budget_raises(self):
        w = ParallelRandomWalks(ring_graph(30), [0], seed=3)
        with pytest.raises(RuntimeError):
            w.run_until_covered(3)

    def test_more_walkers_cover_faster_on_average(self):
        def mean_cover(k, reps=12):
            samples = []
            for rep in range(reps):
                w = ParallelRandomWalks(
                    ring_graph(24), [0] * k, seed=1000 * k + rep
                )
                samples.append(w.run_until_covered(10 ** 6))
            return summarize(samples).mean

        assert mean_cover(4) < mean_cover(1)

    def test_uniform_visits_in_stationarity(self):
        # The ring walk's stationary distribution is uniform.
        n = 16
        w = ParallelRandomWalks(ring_graph(n), [0], seed=5)
        w.run(40_000)
        counts = w.visit_counts.astype(float)
        counts /= counts.sum()
        assert float(np.abs(counts - 1.0 / n).max()) < 0.02
