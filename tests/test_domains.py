"""Tests for agent domains and lazy domains (paper §2.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import placement, pointers
from repro.core.domains import (
    BorderType,
    DomainError,
    VisitKind,
    VisitTypeTracker,
    classify_borders,
    domain_snapshot,
    o_values,
)
from repro.core.ring import RingRotorRouter
from repro.util.rng import make_rng


def settled_system(n, k, rounds, seed=0):
    """A ring system run well past domain formation, with its tracker."""
    rng = make_rng(seed)
    agents = sorted(int(a) for a in rng.choice(n, size=k, replace=False))
    dirs = pointers.ring_negative(n, agents)
    engine = RingRotorRouter(n, dirs, agents)
    tracker = VisitTypeTracker(engine)
    for _ in range(rounds):
        tracker.advance()
    return engine, tracker


class TestOValues:
    def test_occupied_maps_to_self(self):
        e = RingRotorRouter(10, [1] * 10, [3, 7])
        omap = o_values(e)
        assert omap[3] == 3
        assert omap[7] == 7

    def test_unvisited_is_none(self):
        e = RingRotorRouter(10, [1] * 10, [0])
        omap = o_values(e)
        assert omap[5] is None

    def test_direction_opposite_pointer(self):
        # Agent walked 0 -> 1 -> 2; pointer at 1 now points... the agent
        # moved through 1 (entered from 0, left to 2): pointer at 1 was
        # +1 (allowed passage), flipped to -1.  o(1) looks opposite the
        # pointer: clockwise, finding the agent at 2.
        e = RingRotorRouter(10, [1] * 10, [0])
        e.step()
        e.step()
        assert e.positions() == [2]
        omap = o_values(e)
        assert e.ptr[1] == -1
        assert omap[1] == 2

    def test_single_agent_o_is_agent_position(self):
        # With one agent every visited node was last visited by it, so
        # o(v) must be the agent's current position (Lemma 4, claim 1).
        rng = make_rng(5)
        for _ in range(8):
            n = int(rng.integers(8, 24))
            dirs = [int(d) for d in rng.choice((1, -1), size=n)]
            e = RingRotorRouter(n, dirs, [int(rng.integers(0, n))])
            e.run(int(rng.integers(10, 120)))
            agent_at = e.positions()[0]
            omap = o_values(e)
            for v in range(n):
                if omap[v] is not None:
                    assert omap[v] == agent_at

    def test_lemma4_claim3_path_consistency(self):
        # Claim 3: every node on the path P(v, t) from v to o(v, t)
        # shares the same o-value.
        rng = make_rng(17)
        for _ in range(8):
            n = int(rng.integers(10, 28))
            k = int(rng.integers(2, 5))
            agents = sorted(
                int(a) for a in rng.choice(n, size=k, replace=False)
            )
            dirs = [int(d) for d in rng.choice((1, -1), size=n)]
            e = RingRotorRouter(n, dirs, agents)
            e.run(int(rng.integers(20, 150)))
            if max(e.counts.values()) > 2:
                continue
            omap = o_values(e)
            for v in range(n):
                if omap[v] is None or v in e.counts:
                    continue
                direction = -e.ptr[v]
                w = v
                for _ in range(n):
                    w = (w + direction) % n
                    if w == omap[v]:
                        break
                    assert omap[w] == omap[v]
                else:  # pragma: no cover - defensive
                    pytest.fail("o-target not reached while walking")


class TestVisitTypeTracker:
    def test_negative_init_first_visits_reflect(self):
        n = 20
        agents = [0]
        e = RingRotorRouter(n, pointers.ring_negative(n, agents), agents)
        tracker = VisitTypeTracker(e)
        tracker.advance()  # 0 -> 1, first visit
        assert tracker.kinds[1] == VisitKind.REFLECTION

    def test_positive_init_first_visits_propagate(self):
        n = 20
        agents = [0]
        e = RingRotorRouter(n, pointers.ring_positive(n, agents), agents)
        tracker = VisitTypeTracker(e)
        tracker.advance()
        assert tracker.kinds[1] == VisitKind.PROPAGATION

    def test_simultaneous_arrivals_marked_multiple(self):
        # Two agents both arrive at node 1 in the same round.
        n = 6
        e = RingRotorRouter(n, [1, 1, -1, 1, 1, 1], [0, 2])
        tracker = VisitTypeTracker(e)
        tracker.advance()
        assert e.counts.get(1, 0) == 2
        assert tracker.kinds[1] == VisitKind.MULTIPLE

    def test_initial_positions_marked(self):
        e = RingRotorRouter(8, [1] * 8, [3])
        tracker = VisitTypeTracker(e)
        assert tracker.kinds[3] == VisitKind.INITIAL
        assert tracker.kinds[0] == VisitKind.NEVER

    def test_classification_matches_next_move(self):
        # Whatever the tracker says, the next engine move must agree.
        rng = make_rng(7)
        for _ in range(6):
            n = int(rng.integers(8, 20))
            agents = [int(rng.integers(0, n))]
            dirs = [int(d) for d in rng.choice((1, -1), size=n)]
            e = RingRotorRouter(n, dirs, agents)
            tracker = VisitTypeTracker(e)
            for _ in range(60):
                moves = tracker.advance()
                if len(moves) == 1 and moves[0][2] == 1:
                    src, dst, _ = moves[0]
                    kind = tracker.kinds[dst]
                    next_moves = tracker.advance()
                    back = [m for m in next_moves if m[0] == dst]
                    assert len(back) == 1
                    if kind == VisitKind.REFLECTION:
                        assert back[0][1] == src
                    elif kind == VisitKind.PROPAGATION:
                        assert back[0][1] != src


class TestDomainSnapshot:
    def test_domains_partition_visited_nodes(self):
        engine, tracker = settled_system(60, 4, rounds=600)
        snap = domain_snapshot(engine, tracker)
        all_nodes = []
        for dom in snap.domains:
            all_nodes.extend(dom.nodes(engine.n))
        all_nodes.extend(snap.unvisited)
        assert sorted(all_nodes) == list(range(engine.n))

    def test_domain_count_matches_agents(self):
        engine, tracker = settled_system(60, 4, rounds=600)
        snap = domain_snapshot(engine, tracker)
        assert len(snap.domains) == 4

    def test_anchor_inside_domain(self):
        engine, tracker = settled_system(48, 3, rounds=400, seed=3)
        snap = domain_snapshot(engine, tracker)
        for dom in snap.domains:
            assert dom.contains(engine.n, dom.anchor)

    def test_lazy_subset_of_domain(self):
        engine, tracker = settled_system(60, 5, rounds=700, seed=1)
        snap = domain_snapshot(engine, tracker)
        for dom in snap.domains:
            domain_nodes = set(dom.nodes(engine.n))
            for v in dom.lazy_nodes(engine.n):
                assert v in domain_nodes

    def test_lemma6_lazy_misses_at_most_endpoints(self):
        engine, tracker = settled_system(60, 4, rounds=800, seed=2)
        snap = domain_snapshot(engine, tracker)
        for dom in snap.domains:
            assert dom.lazy_length >= dom.length - 2

    def test_three_agents_on_node_rejected(self):
        e = RingRotorRouter(10, [1] * 10, [0, 0, 0])
        with pytest.raises(DomainError):
            domain_snapshot(e)

    def test_two_agents_same_node_split(self):
        # Force two agents onto one node and check the split rule.
        n = 12
        e = RingRotorRouter(n, [1, 1, -1] + [1] * (n - 3), [0, 2])
        tracker = VisitTypeTracker(e)
        tracker.advance()  # both agents arrive at node 1
        assert e.counts.get(1, 0) == 2
        snap = domain_snapshot(e, tracker)
        assert len(snap.domains) == 2
        anchored = [d for d in snap.domains if d.anchor == 1]
        assert len(anchored) == 2
        # The anchor node belongs to exactly one of the two domains.
        containing = [
            d for d in anchored if d.contains(n, 1) and d.length > 0
        ]
        total_containing = sum(
            1 for d in anchored if any(v == 1 for v in d.nodes(n))
        )
        assert total_containing == 1
        assert containing

    def test_snapshot_without_tracker_has_empty_lazy(self):
        e = RingRotorRouter(12, [1] * 12, [0, 6])
        e.run(30)
        snap = domain_snapshot(e)
        assert all(d.lazy_length == 0 for d in snap.domains)

    @given(st.integers(0, 2 ** 30))
    @settings(max_examples=15, deadline=None)
    def test_domains_contiguous_random(self, seed):
        rng = make_rng(seed)
        n = int(rng.integers(12, 40))
        k = int(rng.integers(2, 5))
        engine, tracker = settled_system(n, k, rounds=300, seed=seed)
        if max(engine.counts.values()) > 2:
            return
        snap = domain_snapshot(engine, tracker)
        for dom in snap.domains:
            nodes = dom.nodes(n)
            for a, b in zip(nodes, nodes[1:]):
                assert (b - a) % n == 1


class TestBorders:
    def test_settled_borders_are_vertex_or_edge(self):
        engine, tracker = settled_system(64, 4, rounds=1500, seed=4)
        for _ in range(100):
            tracker.advance()
            snap = domain_snapshot(engine, tracker)
            for border in classify_borders(snap):
                assert border in (BorderType.VERTEX, BorderType.EDGE)

    def test_no_borders_with_single_agent(self):
        e = RingRotorRouter(16, [1] * 16, [0])
        tracker = VisitTypeTracker(e)
        for _ in range(100):
            tracker.advance()
        snap = domain_snapshot(e, tracker)
        assert classify_borders(snap) == []

    def test_lemma12_lazy_domains_equalize(self):
        n, k = 96, 6
        agents = placement.equally_spaced(n, k)
        # Perturb the placement so domains start very unequal.
        agents = [0, 1, 2, 40, 41, 70]
        e = RingRotorRouter(n, pointers.ring_negative(n, agents), agents)
        tracker = VisitTypeTracker(e)
        for _ in range(60 * n):
            tracker.advance()
        snap = domain_snapshot(e, tracker)
        assert snap.max_adjacent_lazy_difference() <= 10
