"""Tests for the cover-time and return-time measurement harnesses."""

import pytest

from repro.analysis.cover_time import (
    ring_rotor_cover_time,
    ring_walk_cover_estimate,
    rotor_cover_time_general,
    scenario_cover_function,
    walk_scenario_cover_function,
    worst_over_pointer_seeds,
)
from repro.analysis.return_time import (
    ring_rotor_return_time_exact,
    ring_rotor_return_time_windowed,
)
from repro.core import placement, pointers
from repro.graphs.families import grid_2d


class TestRingRotorCover:
    def test_deterministic(self):
        a = ring_rotor_cover_time(32, [0, 16], pointers.ring_uniform(32))
        b = ring_rotor_cover_time(32, [0, 16], pointers.ring_uniform(32))
        assert a == b

    def test_known_sweep(self):
        # One agent, all pointers clockwise: covers in n-1 rounds.
        assert ring_rotor_cover_time(20, [0], pointers.ring_uniform(20)) == 19

    def test_budget_respected(self):
        with pytest.raises(RuntimeError):
            ring_rotor_cover_time(
                64, [0], pointers.ring_toward_node(64, 0), max_rounds=10
            )

    def test_best_placement_quadratic_in_gap(self):
        n = 128
        covers = {}
        for k in (2, 4, 8):
            agents = placement.equally_spaced(n, k)
            covers[k] = ring_rotor_cover_time(
                n, agents, pointers.ring_negative(n, agents)
            )
        # Quadrupling agents should cut cover ~16x (quadratic shape).
        assert covers[2] / covers[8] > 8


class TestGeneralCover:
    def test_grid_cover(self):
        g = grid_2d(4, 4)
        cover = rotor_cover_time_general(g, [0], pointers.zero_ports(g))
        assert 0 < cover <= 2 * g.diameter() * g.num_edges + g.num_nodes

    def test_worst_over_pointer_seeds(self):
        worst = worst_over_pointer_seeds(48, [0, 24], seeds=range(4))
        single = ring_rotor_cover_time(
            48, [0, 24], pointers.ring_random(48, 0)
        )
        assert worst >= single


class TestWalkCover:
    def test_estimate_reproducible(self):
        a = ring_walk_cover_estimate(24, [0], repetitions=4, base_seed=5)
        b = ring_walk_cover_estimate(24, [0], repetitions=4, base_seed=5)
        assert a.samples == b.samples

    def test_scenario_functions(self):
        rotor = scenario_cover_function(
            lambda n, k: (
                placement.equally_spaced(n, k),
                pointers.ring_negative(n, placement.equally_spaced(n, k)),
            )
        )
        assert rotor(64, 4) > 0
        walk = walk_scenario_cover_function(
            placement.equally_spaced, repetitions=3
        )
        assert walk(64, 4) > 0


class TestReturnTimeHarness:
    def test_exact_normalized_band(self):
        result = ring_rotor_return_time_exact(
            96, placement.equally_spaced(96, 4),
            pointers.ring_negative(96, placement.equally_spaced(96, 4)),
        )
        assert result.n == 96
        assert result.k == 4
        assert 1.0 <= result.normalized <= 3.0
        assert result.period is not None

    def test_windowed_estimate_close_to_exact(self):
        n, k = 64, 4
        agents = placement.equally_spaced(n, k)
        dirs = pointers.ring_negative(n, agents)
        exact = ring_rotor_return_time_exact(n, agents, dirs)
        windowed = ring_rotor_return_time_windowed(
            n, agents, dirs, burn_in=4000, window=2000
        )
        assert windowed.worst_gap <= exact.worst_gap
        assert windowed.worst_gap >= exact.worst_gap * 0.5
        assert windowed.preperiod is None

    def test_theorem6_holds_for_stacked_start(self):
        n, k = 96, 4
        result = ring_rotor_return_time_exact(
            n, placement.all_on_one(k), pointers.ring_toward_node(n, 0)
        )
        assert result.normalized <= 3.0
