"""Join/aggregation layer: speed-up curves and rotor-vs-walk ratios."""

import math

import pytest

from repro.sweep.aggregate import (
    model_ratio_table,
    speedup_curves,
    speedup_table,
    summary_tables,
)
from repro.sweep.executor import ConfigResult, SweepResult, run_sweep
from repro.sweep.spec import InitFamily, ScenarioSpec, SweepConfig


def _spec(**overrides):
    base = dict(
        name="agg-test",
        ns=(16,),
        ks=(1, 2, 4),
        families=(InitFamily("all_on_one", "toward_node0"),),
        metrics=("cover",),
        models=("rotor", "walk"),
        repetitions=3,
    )
    base.update(overrides)
    return ScenarioSpec(**base)


def _synthetic_result(cells):
    """A SweepResult from (model, n, k, placement, metrics[, seed]) tuples."""
    spec = _spec()
    results = []
    for model, n, k, placement, metrics, *rest in cells:
        config = SweepConfig(
            n=n, k=k, placement=placement,
            pointer="toward_node0" if model == "rotor" else "none",
            seed=rest[0] if rest else 0,
            metrics=("cover",), max_rounds=10_000,
            model=model, repetitions=1 if model == "rotor" else 3,
        )
        results.append(ConfigResult(config=config, metrics=metrics, cached=False))
    return SweepResult(spec=spec, results=results, elapsed=0.0)


class TestSpeedupCurves:
    def test_curves_normalize_against_k1(self):
        result = _synthetic_result([
            ("rotor", 16, 1, "all_on_one", {"cover": 120.0}),
            ("rotor", 16, 2, "all_on_one", {"cover": 60.0}),
            ("rotor", 16, 4, "all_on_one", {"cover": 30.0}),
        ])
        curves = speedup_curves(result)
        [curve] = curves.values()
        assert list(curves) == [("rotor", 16, "all_on_one")]
        assert curve.ks() == [1, 2, 4]
        assert curve.speedups() == pytest.approx([1.0, 2.0, 4.0])

    def test_no_baseline_no_curves(self):
        result = _synthetic_result([
            ("rotor", 16, 2, "all_on_one", {"cover": 60.0}),
        ])
        assert speedup_curves(result) == {}
        assert speedup_table(result) is None
        assert summary_tables(result) == []

    def test_seed_siblings_average(self):
        # Random placements fan out over seeds; the curve uses the mean.
        result = _synthetic_result([
            ("rotor", 16, 1, "random", {"cover": 100.0}, 0),
            ("rotor", 16, 1, "random", {"cover": 140.0}, 1),
            ("rotor", 16, 2, "random", {"cover": 60.0}, 0),
        ])
        [curve] = speedup_curves(result).values()
        assert curve.rows[0].cover_time == pytest.approx(120.0)
        assert curve.rows[1].speedup == pytest.approx(2.0)

    def test_truncated_cells_are_skipped(self):
        result = _synthetic_result([
            ("walk", 16, 1, "all_on_one",
             {"cover": None, "cover_ci_low": None, "cover_ci_high": None}),
            ("walk", 16, 2, "all_on_one",
             {"cover": 50.0, "cover_ci_low": 40.0, "cover_ci_high": 60.0}),
        ])
        assert speedup_curves(result) == {}

    def test_rendered_table_reports_best_shape(self):
        result = _synthetic_result([
            ("rotor", 16, k, "all_on_one", {"cover": 1024.0 / (k * k)})
            for k in (1, 2, 4)
        ])
        table = speedup_table(result)
        assert table is not None
        shapes = [value for value in table.column("best shape") if value]
        assert shapes == ["k^2"]


class TestModelRatio:
    def test_pairs_join_on_placement(self):
        result = _synthetic_result([
            ("rotor", 16, 2, "all_on_one", {"cover": 50.0}),
            ("walk", 16, 2, "all_on_one",
             {"cover": 150.0, "cover_ci_low": 100.0, "cover_ci_high": 200.0}),
            ("rotor", 16, 4, "equally_spaced", {"cover": 10.0}),  # unpaired
        ])
        table = model_ratio_table(result)
        assert table is not None
        assert len(table.rows) == 1
        assert table.column("walk/rotor") == pytest.approx([3.0])
        assert table.column("walk CI low") == pytest.approx([100.0])

    def test_single_model_sweep_has_no_ratio_table(self):
        result = _synthetic_result([
            ("rotor", 16, 2, "all_on_one", {"cover": 50.0}),
        ])
        assert model_ratio_table(result) is None


class TestEndToEnd:
    def test_real_sweep_produces_consistent_aggregates(self):
        result = run_sweep(_spec())
        curves = speedup_curves(result)
        # one curve per (model, placement) on the single n
        assert set(curves) == {
            ("rotor", 16, "all_on_one"),
            ("walk", 16, "all_on_one"),
        }
        for curve in curves.values():
            assert curve.rows[0].k == 1
            assert curve.rows[0].speedup == pytest.approx(1.0)
            for row in curve.rows:
                assert row.speedup > 0
                assert math.isfinite(row.speedup)
        ratio = model_ratio_table(result)
        assert ratio is not None
        assert len(ratio.rows) == len(_spec().ks)
        tables = summary_tables(result)
        assert [t.caption.split(" from")[0] for t in tables] == [
            "speed-up S(k) = C(n,1)/C(n,k)",
            "rotor vs random-walk cover times",
        ]
