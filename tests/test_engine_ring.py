"""Tests of the ring-specialized engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ring import RingRotorRouter
from repro.util.rng import make_rng


class TestConstruction:
    def test_min_size(self):
        with pytest.raises(ValueError):
            RingRotorRouter(2, [1, 1], [0])

    def test_pointer_values_checked(self):
        with pytest.raises(ValueError):
            RingRotorRouter(4, [1, 0, 1, 1], [0])

    def test_pointer_length_checked(self):
        with pytest.raises(ValueError):
            RingRotorRouter(4, [1, 1, 1], [0])

    def test_agents_required(self):
        with pytest.raises(ValueError):
            RingRotorRouter(4, [1] * 4, [])

    def test_agent_range_checked(self):
        with pytest.raises(ValueError):
            RingRotorRouter(4, [1] * 4, [4])


class TestStepSemantics:
    def test_single_agent_follows_direction(self):
        e = RingRotorRouter(6, [1] * 6, [0])
        assert e.step() == [(0, 1, 1)]
        assert e.ptr[0] == -1  # flipped after odd exit count

    def test_anticlockwise(self):
        e = RingRotorRouter(6, [-1] * 6, [0])
        assert e.step() == [(0, 5, 1)]

    def test_two_agents_split(self):
        e = RingRotorRouter(6, [1] * 6, [3, 3])
        moves = sorted(e.step())
        assert moves == [(3, 2, 1), (3, 4, 1)]
        assert e.ptr[3] == 1  # two exits: pointer back where it started

    def test_five_agents_split_three_two(self):
        e = RingRotorRouter(6, [1] * 6, [0] * 5)
        moves = dict(((s, d), c) for s, d, c in e.step())
        assert moves[(0, 1)] == 3  # ceil(5/2) along the pointer
        assert moves[(0, 5)] == 2
        assert e.ptr[0] == -1  # odd exits flip

    def test_wraparound(self):
        e = RingRotorRouter(5, [1] * 5, [4])
        assert e.step() == [(4, 0, 1)]

    def test_visit_exit_counters(self):
        e = RingRotorRouter(6, [1] * 6, [0, 0])
        e.step()
        assert e.visit_counts[1] == 1
        assert e.visit_counts[5] == 1
        assert e.exit_counts[0] == 2

    def test_holds(self):
        e = RingRotorRouter(6, [1] * 6, [0, 0])
        moves = e.step(holds={0: 1})
        assert moves == [(0, 1, 1)]
        assert sorted(e.positions()) == [0, 1]

    def test_overhold_rejected(self):
        e = RingRotorRouter(6, [1] * 6, [0])
        with pytest.raises(ValueError):
            e.step(holds={0: 2})


class TestCoverDetection:
    def test_uniform_sweep_covers_in_n_minus_one(self):
        # One agent, all pointers clockwise: a straight sweep.
        n = 20
        e = RingRotorRouter(n, [1] * n, [0], track_counts=False)
        assert e.run_until_covered() == n - 1

    def test_fast_loop_matches_step_loop(self):
        n, k = 48, 4
        dirs = [1 if v % 3 else -1 for v in range(n)]
        agents = [0, 5, 5, 30]
        fast = RingRotorRouter(n, list(dirs), agents, track_counts=False)
        slow = RingRotorRouter(n, list(dirs), agents, track_counts=True)
        assert fast.run_until_covered() == slow.run_until_covered()
        assert fast.positions() == slow.positions()
        assert fast.ptr == slow.ptr

    def test_budget_exhaustion_raises_and_preserves_state(self):
        e = RingRotorRouter(32, [1] * 32, [0], track_counts=False)
        with pytest.raises(RuntimeError):
            e.run_until_covered(5)
        assert e.round == 5
        assert sum(e.counts.values()) == 1

    def test_already_covered_returns_existing(self):
        e = RingRotorRouter(3, [1] * 3, [0, 1, 2])
        assert e.run_until_covered() == 0

    def test_cover_round_is_first_full_visit_round(self):
        n = 10
        e = RingRotorRouter(n, [1] * n, [0], track_counts=False)
        cover = e.run_until_covered()
        e2 = RingRotorRouter(n, [1] * n, [0])
        for _ in range(cover - 1):
            e2.step()
        assert e2.unvisited > 0
        e2.step()
        assert e2.unvisited == 0


class TestStateManagement:
    def test_snapshot_restore(self):
        e = RingRotorRouter(16, [1] * 16, [0, 8])
        e.run(9)
        snap = e.snapshot()
        ahead = [e.step() for _ in range(6)]
        e.restore(snap)
        assert [e.step() for _ in range(6)] == ahead

    def test_clone_same_trajectory(self):
        e = RingRotorRouter(16, [-1] * 16, [3, 3, 9])
        e.run(4)
        twin = e.clone()
        for _ in range(12):
            # Move lists are order-insensitive (dict iteration order may
            # differ between the clone and the original).
            assert sorted(e.step()) == sorted(twin.step())
            assert e.positions() == twin.positions()

    def test_state_key_ignores_round(self):
        a = RingRotorRouter(8, [1] * 8, [0])
        b = RingRotorRouter(8, [1] * 8, [0])
        b.round = 17
        assert a.state_key() == b.state_key()

    def test_restore_size_checked(self):
        a = RingRotorRouter(8, [1] * 8, [0])
        b = RingRotorRouter(10, [1] * 10, [0])
        with pytest.raises(ValueError):
            b.restore(a.snapshot())

    def test_positions_multiset(self):
        e = RingRotorRouter(8, [1] * 8, [5, 2, 5])
        assert e.positions() == [2, 5, 5]


class TestConservation:
    @given(st.integers(0, 2 ** 30))
    @settings(max_examples=30, deadline=None)
    def test_agents_conserved_random_runs(self, seed):
        rng = make_rng(seed)
        n = int(rng.integers(3, 40))
        k = int(rng.integers(1, 8))
        dirs = [int(d) for d in rng.choice((1, -1), size=n)]
        agents = [int(a) for a in rng.integers(0, n, size=k)]
        e = RingRotorRouter(n, dirs, agents)
        for _ in range(60):
            e.step()
        assert sum(e.counts.values()) == k
        assert all(c > 0 for c in e.counts.values())

    @given(st.integers(0, 2 ** 30))
    @settings(max_examples=20, deadline=None)
    def test_visited_monotone(self, seed):
        rng = make_rng(seed)
        n = int(rng.integers(3, 30))
        dirs = [int(d) for d in rng.choice((1, -1), size=n)]
        e = RingRotorRouter(n, dirs, [0])
        seen = set(v for v in range(n) if e.visited[v])
        for _ in range(50):
            e.step()
            now = set(v for v in range(n) if e.visited[v])
            assert seen <= now
            seen = now

    def test_lemma5_at_most_two_agents_preserved(self):
        # Lemma 5: once <= 2 agents per node, always <= 2 per node.
        rng = make_rng(123)
        for _ in range(10):
            n = int(rng.integers(6, 24))
            k = int(rng.integers(2, min(n, 9)))
            agents = sorted(
                int(a) for a in rng.choice(n, size=k, replace=False)
            )
            dirs = [int(d) for d in rng.choice((1, -1), size=n)]
            e = RingRotorRouter(n, dirs, agents)
            for _ in range(200):
                e.step()
                assert max(e.counts.values()) <= 2
