"""Executable versions of the paper's §2.1 lemmas (delayed deployments).

Lemma 1 (monotonicity), Lemma 2 (sandwich) and Lemma 3 (slow-down) are
the analytical backbone of every theorem in the paper; here they are
verified as *runtime properties* of the engine on randomized instances.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.delayed import (
    DelayedRunResult,
    agent_count_at,
    compose_phases,
    delay_table_schedule,
    hold_all_except_one_at,
    hold_everything,
    move_lone_agent,
    occupied_nodes,
    run_with_schedule,
    walk_lone_agent,
)
from repro.core.engine import MultiAgentRotorRouter
from repro.core.ring import RingRotorRouter
from repro.graphs.ring import ring_graph
from repro.util.rng import make_rng


def _random_instance(seed, max_n=24, max_k=5):
    rng = make_rng(seed)
    n = int(rng.integers(4, max_n))
    k = int(rng.integers(1, max_k + 1))
    dirs = [int(d) for d in rng.choice((1, -1), size=n)]
    agents = [int(a) for a in rng.integers(0, n, size=k)]
    return n, dirs, agents, rng


def _random_hold_plan(rng, engine_counts, aggressiveness):
    holds = {}
    for v, c in engine_counts.items():
        if c > 0 and rng.random() < aggressiveness:
            holds[v] = int(rng.integers(1, c + 1))
    return holds


class TestLemma1Monotonicity:
    """More delaying never increases any visit counter n_v(t)."""

    @given(st.integers(0, 2 ** 30))
    @settings(max_examples=30, deadline=None)
    def test_delayed_below_undelayed(self, seed):
        n, dirs, agents, rng = _random_instance(seed)
        delayed = RingRotorRouter(n, list(dirs), agents)
        undelayed = RingRotorRouter(n, list(dirs), agents)
        for _ in range(60):
            holds = _random_hold_plan(rng, delayed.counts, 0.5)
            delayed.step(holds)
            undelayed.step()
            assert np.all(delayed.visit_counts <= undelayed.visit_counts)

    @given(st.integers(0, 2 ** 30))
    @settings(max_examples=20, deadline=None)
    def test_nested_delays_ordered(self, seed):
        # D1 holds a superset of what D2 holds => n^D1 <= n^D2.
        n, dirs, agents, rng = _random_instance(seed)
        more = RingRotorRouter(n, list(dirs), agents)
        less = RingRotorRouter(n, list(dirs), agents)
        for _ in range(60):
            base = _random_hold_plan(rng, less.counts, 0.4)
            less.step(base)
            # The heavier deployment holds `base` plus extra agents.
            heavier = dict(base)
            for v, c in more.counts.items():
                if c > heavier.get(v, 0) and rng.random() < 0.3:
                    heavier[v] = min(c, heavier.get(v, 0) + 1)
            valid = {
                v: min(h, agent_count_at(more, v))
                for v, h in heavier.items()
            }
            more.step({v: h for v, h in valid.items() if h > 0})
            assert np.all(more.visit_counts <= less.visit_counts)

    def test_k_minus_one_below_k(self):
        # The [27] corollary: removing an agent never speeds visits.
        n = 20
        dirs = [1 if v % 2 else -1 for v in range(n)]
        bigger = RingRotorRouter(n, list(dirs), [0, 5, 10])
        smaller = RingRotorRouter(n, list(dirs), [0, 5])
        for _ in range(100):
            bigger.step()
            smaller.step()
        # Compare visits excluding initial occupancy differences at 10.
        for v in range(n):
            if v == 10:
                continue
            assert smaller.visit_counts[v] <= bigger.visit_counts[v]


class TestLemma2Sandwich:
    @given(st.integers(0, 2 ** 30))
    @settings(max_examples=20, deadline=None)
    def test_visit_counts_sandwich(self, seed):
        n, dirs, agents, rng = _random_instance(seed)
        total_rounds = 80
        delayed = RingRotorRouter(n, list(dirs), agents)
        fully_active = 0
        for _ in range(total_rounds):
            holds = _random_hold_plan(rng, delayed.counts, 0.3)
            delayed.step(holds if holds else None)
            if not holds:
                fully_active += 1
        upper = RingRotorRouter(n, list(dirs), agents)
        upper.run(total_rounds)
        lower = RingRotorRouter(n, list(dirs), agents)
        lower.run(fully_active)
        assert np.all(delayed.visit_counts <= upper.visit_counts)
        assert np.all(lower.visit_counts <= delayed.visit_counts)


class TestLemma3SlowDown:
    @given(st.integers(0, 2 ** 30))
    @settings(max_examples=15, deadline=None)
    def test_cover_time_sandwich(self, seed):
        n, dirs, agents, rng = _random_instance(seed, max_n=16, max_k=3)

        def schedule(engine):
            return _random_hold_plan(rng, engine.counts, 0.25)

        delayed = RingRotorRouter(n, list(dirs), agents)
        result = run_with_schedule(delayed, schedule, max_rounds=20_000)
        if result.cover_round is None:
            pytest.skip("delayed run did not cover within budget")
        tau, total = result.slow_down_bounds()
        undelayed = RingRotorRouter(n, list(dirs), agents, track_counts=False)
        cover = undelayed.run_until_covered(20_000)
        assert tau <= cover <= total

    def test_bounds_require_cover(self):
        result = DelayedRunResult(
            total_rounds=10, fully_active_rounds=5, cover_round=None
        )
        with pytest.raises(ValueError):
            result.slow_down_bounds()


class TestPrimitives:
    def test_hold_everything(self):
        e = RingRotorRouter(10, [1] * 10, [2, 2, 7])
        assert hold_everything(e) == {2: 2, 7: 1}

    def test_hold_everything_general_engine(self):
        e = MultiAgentRotorRouter(ring_graph(10), [0] * 10, [2, 2, 7])
        assert hold_everything(e) == {2: 2, 7: 1}

    def test_occupied_nodes_both_engines(self):
        ring = RingRotorRouter(10, [1] * 10, [4, 9])
        general = MultiAgentRotorRouter(ring_graph(10), [0] * 10, [4, 9])
        assert occupied_nodes(ring) == [4, 9]
        assert occupied_nodes(general) == [4, 9]

    def test_hold_all_except_one(self):
        e = RingRotorRouter(10, [1] * 10, [2, 2, 7])
        holds = hold_all_except_one_at(e, 2)
        assert holds == {2: 1, 7: 1}
        holds = hold_all_except_one_at(e, 7)
        assert holds == {2: 2}

    def test_hold_all_except_one_requires_agent(self):
        e = RingRotorRouter(10, [1] * 10, [2])
        with pytest.raises(ValueError):
            hold_all_except_one_at(e, 5)

    def test_move_lone_agent(self):
        e = RingRotorRouter(10, [1] * 10, [0, 5])
        new_pos = move_lone_agent(e, 0)
        assert new_pos == 1
        assert sorted(e.positions()) == [1, 5]  # the other agent froze

    def test_walk_lone_agent_reaches_goal(self):
        n = 16
        e = RingRotorRouter(n, [1] * n, [0, 8])
        final = walk_lone_agent(
            e, 0, should_stop=lambda pos, _steps: pos == 4, max_rounds=100
        )
        assert final == 4

    def test_walk_lone_agent_budget(self):
        e = RingRotorRouter(8, [1] * 8, [0])
        with pytest.raises(RuntimeError):
            walk_lone_agent(
                e, 0, should_stop=lambda *_: False, max_rounds=10
            )


class TestSchedules:
    def test_delay_table(self):
        e = RingRotorRouter(8, [1] * 8, [0, 0])
        schedule = delay_table_schedule({0: {0: 2}, 1: {0: 1}})
        result = run_with_schedule(
            e, schedule, max_rounds=3, stop_when_covered=False
        )
        assert result.total_rounds == 3
        assert result.fully_active_rounds == 1  # only round 2 was free

    def test_run_with_schedule_counts_active_rounds(self):
        e = RingRotorRouter(8, [1] * 8, [0])
        result = run_with_schedule(e, None, max_rounds=5,
                                   stop_when_covered=False)
        assert result.total_rounds == 5
        assert result.fully_active_rounds == 5

    def test_stop_when_covered(self):
        n = 8
        e = RingRotorRouter(n, [1] * n, [0])
        result = run_with_schedule(e, None, max_rounds=1000)
        assert result.cover_round == n - 1
        assert result.total_rounds == n - 1

    def test_compose_phases(self):
        e = RingRotorRouter(8, [1] * 8, [0, 0])
        freeze = hold_everything

        phase1_done = lambda engine: engine.round >= 2  # noqa: E731
        schedule = compose_phases(
            (freeze, phase1_done),
            (None, lambda engine: False),
        )
        result = run_with_schedule(
            e, schedule, max_rounds=6, stop_when_covered=False
        )
        assert result.fully_active_rounds == 4

    def test_compose_requires_phases(self):
        with pytest.raises(ValueError):
            compose_phases()
