"""Result-store backends: protocol, equivalence, migration, tooling."""

import json
import multiprocessing
import os
import random
import sqlite3

import pytest

from repro.cli import main
from repro.sweep.executor import run_sweep
from repro.sweep.spec import InitFamily, ScenarioSpec, SweepConfig
from repro.sweep.store import (
    STORE_SCHEMA_VERSION,
    JsonTreeStore,
    SqliteStore,
    detect_backend,
    format_store_spec,
    migrate_json_to_sqlite,
    open_store,
    parse_store_spec,
    store_info,
    vacuum_store,
)

BACKENDS = {"json": JsonTreeStore, "sqlite": SqliteStore}


def _config(seed: int, **overrides) -> SweepConfig:
    base = dict(
        n=16,
        k=2,
        placement="random",
        pointer="random",
        seed=seed,
        metrics=("cover",),
        max_rounds=4096,
    )
    base.update(overrides)
    return SweepConfig(**base)


def _cover_spec(**overrides) -> ScenarioSpec:
    base = dict(
        name="store-test",
        ns=(16, 24),
        ks=(2, 3),
        families=(
            InitFamily("all_on_one", "toward_node0"),
            InitFamily("equally_spaced", "negative"),
        ),
        metrics=("cover",),
    )
    base.update(overrides)
    return ScenarioSpec(**base)


class TestSpecStrings:
    def test_plain_path_is_json(self):
        assert parse_store_spec("/some/dir") == ("json", "/some/dir")

    def test_prefixed_specs(self):
        assert parse_store_spec("sqlite:///d/c") == ("sqlite", "/d/c")
        assert parse_store_spec("json://rel/c") == ("json", "rel/c")

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError, match="unknown store backend"):
            parse_store_spec("redis://host/db")

    def test_empty_directory_rejected(self):
        with pytest.raises(ValueError, match="names no directory"):
            parse_store_spec("sqlite://")

    def test_format_round_trips(self):
        for backend in BACKENDS:
            spec = format_store_spec(backend, "/d/c")
            assert parse_store_spec(spec) == (backend, "/d/c")
        with pytest.raises(ValueError, match="unknown store backend"):
            format_store_spec("redis", "/d/c")

    def test_open_store_dispatches(self, tmp_path):
        json_store = open_store(str(tmp_path / "a"))
        sqlite_store = open_store(f"sqlite://{tmp_path / 'b'}")
        assert isinstance(json_store, JsonTreeStore)
        assert isinstance(sqlite_store, SqliteStore)
        sqlite_store.close()

    def test_detect_backend(self, tmp_path):
        assert detect_backend(str(tmp_path / "absent")) == "json"
        store = SqliteStore(str(tmp_path / "db"))
        store.put(_config(0), {"cover": 1})
        store.close()
        assert detect_backend(str(tmp_path / "db")) == "sqlite"


@pytest.mark.parametrize("backend", sorted(BACKENDS))
class TestRoundTrip:
    def test_put_many_lookup_many(self, backend, tmp_path):
        store = BACKENDS[backend](str(tmp_path / backend))
        cells = [_config(seed) for seed in range(20)]
        store.put_many([(c, {"cover": c.seed * 3}) for c in cells])
        found, statuses = store.lookup_many(cells)
        assert len(found) == 20
        assert all(status == "hit" for status in statuses.values())
        for cell in cells:
            assert found[cell.config_hash] == {"cover": cell.seed * 3}
        assert store.count() == 20
        assert len(store) == 20
        store.close()

    def test_missing_cells_report_miss(self, backend, tmp_path):
        store = BACKENDS[backend](str(tmp_path / backend))
        present = [_config(seed) for seed in range(4)]
        absent = [_config(seed) for seed in range(100, 104)]
        store.put_many([(c, {"cover": 1}) for c in present])
        found, statuses = store.lookup_many(present + absent)
        assert set(found) == {c.config_hash for c in present}
        for cell in absent:
            assert statuses[cell.config_hash] == "miss"
        store.close()

    def test_duplicate_probes_collapse(self, backend, tmp_path):
        store = BACKENDS[backend](str(tmp_path / backend))
        cell = _config(7)
        store.put(cell, {"cover": 9})
        found, statuses = store.lookup_many([cell, cell, cell])
        assert found == {cell.config_hash: {"cover": 9}}
        assert statuses == {cell.config_hash: "hit"}
        store.close()

    def test_put_replaces(self, backend, tmp_path):
        store = BACKENDS[backend](str(tmp_path / backend))
        cell = _config(1)
        store.put(cell, {"cover": 1})
        store.put(cell, {"cover": 2})
        assert store.get(cell) == {"cover": 2}
        assert store.count() == 1
        store.close()

    def test_close_is_idempotent(self, backend, tmp_path):
        store = BACKENDS[backend](str(tmp_path / backend))
        store.close()
        store.close()


class TestCorruptEntries:
    def test_json_garbage_file_reports_corrupt(self, tmp_path):
        store = JsonTreeStore(str(tmp_path))
        cell = _config(0)
        path = store.put(cell, {"cover": 5})
        with open(path, "w") as handle:
            handle.write("{not json")
        found, statuses = store.lookup_many([cell])
        assert found == {}
        assert statuses == {cell.config_hash: "corrupt"}

    def test_json_identity_mismatch_reports_corrupt(self, tmp_path):
        store = JsonTreeStore(str(tmp_path))
        cell, other = _config(0), _config(1)
        path = store.put(cell, {"cover": 5})
        # An entry filed under cell's hash but carrying other's
        # identity: served to neither.
        entry = {"config": other.identity(), "metrics": {"cover": 5}}
        with open(path, "w") as handle:
            json.dump(entry, handle)
        assert store.lookup(cell) == (None, "corrupt")

    def test_json_non_dict_metrics_reports_corrupt(self, tmp_path):
        store = JsonTreeStore(str(tmp_path))
        cell = _config(0)
        path = store.put(cell, {"cover": 5})
        with open(path, "w") as handle:
            json.dump({"config": cell.identity(), "metrics": [1, 2]}, handle)
        assert store.lookup(cell) == (None, "corrupt")

    def _tamper(self, directory, config_hash, metrics_text):
        store = SqliteStore(directory)
        shard = store.shard_of(config_hash)
        conn = store._conn(shard)
        conn.execute("BEGIN IMMEDIATE")
        conn.execute(
            "UPDATE cells SET metrics = ? WHERE hash = ?",
            (metrics_text, config_hash),
        )
        conn.execute("COMMIT")
        store.close()

    def test_sqlite_unparseable_metrics_reports_corrupt(self, tmp_path):
        cells = [_config(seed) for seed in range(6)]
        store = SqliteStore(str(tmp_path))
        store.put_many([(c, {"cover": c.seed}) for c in cells])
        store.close()
        self._tamper(str(tmp_path), cells[2].config_hash, "{broken")
        store = SqliteStore(str(tmp_path))
        found, statuses = store.lookup_many(cells)
        assert statuses[cells[2].config_hash] == "corrupt"
        assert cells[2].config_hash not in found
        # The other rows are still served.
        for cell in cells:
            if cell is not cells[2]:
                assert statuses[cell.config_hash] == "hit"
                assert found[cell.config_hash] == {"cover": cell.seed}
        store.close()

    def test_sqlite_non_dict_metrics_reports_corrupt(self, tmp_path):
        cells = [_config(seed) for seed in range(6)]
        store = SqliteStore(str(tmp_path))
        store.put_many([(c, {"cover": c.seed}) for c in cells])
        store.close()
        self._tamper(str(tmp_path), cells[4].config_hash, "[1,2,3]")
        store = SqliteStore(str(tmp_path))
        found, statuses = store.lookup_many(cells)
        assert statuses[cells[4].config_hash] == "corrupt"
        assert cells[4].config_hash not in found
        assert len(found) == 5
        store.close()

    def test_sqlite_schema_mismatch_refuses(self, tmp_path):
        store = SqliteStore(str(tmp_path))
        cell = _config(0)
        store.put(cell, {"cover": 1})
        shard_path = store.shard_path(store.shard_of(cell.config_hash))
        store.close()
        conn = sqlite3.connect(shard_path)
        conn.execute(f"PRAGMA user_version = {STORE_SCHEMA_VERSION + 41}")
        conn.close()
        fresh = SqliteStore(str(tmp_path))
        with pytest.raises(ValueError, match="schema"):
            fresh.lookup_many([cell])


class TestStaleTmpSweep:
    def test_dead_writer_tmp_swept_on_open(self, tmp_path):
        store = JsonTreeStore(str(tmp_path))
        cell = _config(0)
        path = store.put(cell, {"cover": 1})
        # Pid 1 is init (not ours, alive) and 2**22+5 is far beyond
        # pid_max defaults — a crashed writer's leftover.
        dead = f"{path}.tmp.{2**22 + 5}"
        with open(dead, "w") as handle:
            handle.write("{partial")
        reopened = JsonTreeStore(str(tmp_path))
        assert reopened.swept_on_open == 1
        assert not os.path.exists(dead)
        assert reopened.get(cell) == {"cover": 1}

    def test_live_writer_tmp_left_alone(self, tmp_path):
        store = JsonTreeStore(str(tmp_path))
        cell = _config(0)
        path = store.put(cell, {"cover": 1})
        live = f"{path}.tmp.{os.getpid()}"
        with open(live, "w") as handle:
            handle.write("{in-flight")
        reopened = JsonTreeStore(str(tmp_path))
        assert reopened.swept_on_open == 0
        assert os.path.exists(live)
        assert reopened.count_tmp() == 1

    def test_foreign_tmp_names_ignored(self, tmp_path):
        store = JsonTreeStore(str(tmp_path))
        cell = _config(0)
        path = store.put(cell, {"cover": 1})
        foreign = f"{path}.tmp.editor-backup"
        with open(foreign, "w") as handle:
            handle.write("x")
        reopened = JsonTreeStore(str(tmp_path))
        assert reopened.swept_on_open == 0
        assert os.path.exists(foreign)


class TestMigration:
    def test_round_trip_identical_lookup(self, tmp_path):
        cells = [_config(seed) for seed in range(30)]
        source = JsonTreeStore(str(tmp_path / "json"))
        source.put_many([(c, {"cover": c.seed + 100}) for c in cells])
        report = migrate_json_to_sqlite(
            str(tmp_path / "json"), str(tmp_path / "db")
        )
        assert report.migrated == 30
        assert report.corrupt == 0
        assert report.summary_line() == "migrated=30 corrupt=0"
        dest = SqliteStore(str(tmp_path / "db"))
        json_view = source.lookup_many(cells)
        sqlite_view = dest.lookup_many(cells)
        assert sqlite_view == json_view
        assert dest.count() == source.count() == 30
        dest.close()

    def test_corrupt_source_entry_skipped_and_counted(self, tmp_path):
        cells = [_config(seed) for seed in range(5)]
        source = JsonTreeStore(str(tmp_path / "json"))
        source.put_many([(c, {"cover": c.seed}) for c in cells])
        # Corrupt one entry in place: its stored identity no longer
        # digests to its filename hash.
        broken = cells[3]
        with open(source.path(broken.config_hash), "w") as handle:
            json.dump(
                {"config": cells[0].identity(), "metrics": {"cover": 0}},
                handle,
            )
        report = migrate_json_to_sqlite(
            str(tmp_path / "json"), str(tmp_path / "db")
        )
        assert report.migrated == 4
        assert report.corrupt == 1
        dest = SqliteStore(str(tmp_path / "db"))
        found, statuses = dest.lookup_many(cells)
        # The corrupt entry was never migrated: a clean miss, to be
        # recomputed.  The valid ones hit identically.
        assert statuses[broken.config_hash] == "miss"
        for cell in cells:
            if cell is not broken:
                assert found[cell.config_hash] == {"cover": cell.seed}
        dest.close()

    def test_unreadable_source_file_counts_corrupt(self, tmp_path):
        source = JsonTreeStore(str(tmp_path / "json"))
        cell = _config(0)
        path = source.put(cell, {"cover": 1})
        with open(path, "w") as handle:
            handle.write("{half a wri")
        report = migrate_json_to_sqlite(
            str(tmp_path / "json"), str(tmp_path / "db")
        )
        assert report.migrated == 0
        assert report.corrupt == 1


class TestBackendEquivalence:
    """Randomized suite: both backends serve byte-identical answers."""

    @pytest.mark.parametrize("trial", range(5))
    def test_randomized_probe_equivalence(self, trial, tmp_path):
        rng = random.Random(1000 + trial)
        pool = [
            _config(
                seed=rng.randrange(10_000),
                n=rng.choice((16, 24, 32)),
                k=rng.choice((2, 3, 4)),
            )
            for _ in range(40)
        ]
        stored = [c for c in pool if rng.random() < 0.6]
        payloads = {
            c.config_hash: {"cover": rng.randrange(10_000), "n": c.n}
            for c in stored
        }
        json_store = JsonTreeStore(str(tmp_path / "json"))
        sqlite_store = SqliteStore(str(tmp_path / "sqlite"))
        for store in (json_store, sqlite_store):
            store.put_many([(c, payloads[c.config_hash]) for c in stored])
        probe = list(pool)
        rng.shuffle(probe)
        json_view = json_store.lookup_many(probe)
        sqlite_view = sqlite_store.lookup_many(probe)
        assert sqlite_view == json_view
        assert json_store.count() == sqlite_store.count()
        hits = sum(1 for s in json_view[1].values() if s == "hit")
        assert hits == len({c.config_hash for c in stored})
        sqlite_store.close()


def _write_slice(args):
    directory, start = args
    store = SqliteStore(directory)
    cells = [_config(seed) for seed in range(start, start + 25)]
    store.put_many([(c, {"cover": c.seed}) for c in cells])
    store.close()
    return len(cells)


class TestConcurrentWriters:
    def test_two_processes_one_store(self, tmp_path):
        # 50 cells across 16 shards guarantee both writers hit the
        # same shard files; WAL + busy timeout serialize them.
        directory = str(tmp_path / "db")
        with multiprocessing.Pool(processes=2) as pool:
            written = pool.map(
                _write_slice, [(directory, 0), (directory, 25)]
            )
        assert written == [25, 25]
        store = SqliteStore(directory)
        cells = [_config(seed) for seed in range(50)]
        found, statuses = store.lookup_many(cells)
        assert len(found) == 50
        assert all(status == "hit" for status in statuses.values())
        for cell in cells:
            assert found[cell.config_hash] == {"cover": cell.seed}
        store.close()


class TestExecutorIntegration:
    def test_run_sweep_sqlite_cache_hits_second_time(self, tmp_path):
        spec = _cover_spec()
        cache = f"sqlite://{tmp_path / 'cache'}"
        first = run_sweep(spec, cache_dir=cache)
        assert first.cache_misses == spec.num_configs
        assert first.cache_hits == 0
        second = run_sweep(spec, cache_dir=cache, jobs=2)
        assert second.cache_misses == 0
        assert second.cache_hits == spec.num_configs

    def test_backends_render_identical_tables(self, tmp_path):
        spec = _cover_spec()
        json_result = run_sweep(spec, cache_dir=str(tmp_path / "json"))
        sqlite_result = run_sweep(
            spec, cache_dir=f"sqlite://{tmp_path / 'db'}", jobs=2
        )
        assert (
            json_result.table().render() == sqlite_result.table().render()
        )
        for a, b in zip(json_result.results, sqlite_result.results):
            assert a.metrics == b.metrics

    def test_warm_sqlite_rerun_serves_from_cache_alone(self, tmp_path):
        spec = _cover_spec(ns=(16,), ks=(2,))
        cache = f"sqlite://{tmp_path / 'cache'}"
        run_sweep(spec, cache_dir=cache)
        warm = run_sweep(spec, cache_dir=cache)
        cold = run_sweep(spec, cache_dir=None)
        for cached, computed in zip(warm.results, cold.results):
            assert cached.cached
            assert cached.metrics == computed.metrics


class TestTooling:
    def test_store_info_both_backends(self, tmp_path):
        cells = [_config(seed) for seed in range(8)]
        json_dir = str(tmp_path / "json")
        JsonTreeStore(json_dir).put_many([(c, {"cover": 1}) for c in cells])
        db_dir = str(tmp_path / "db")
        store = SqliteStore(db_dir)
        store.put_many([(c, {"cover": 1}) for c in cells])
        store.close()
        json_info = store_info(json_dir)
        assert json_info["backend"] == "json"
        assert json_info["entries"] == 8
        assert json_info["tmp_files"] == 0
        db_info = store_info(db_dir)
        assert db_info["backend"] == "sqlite"
        assert db_info["entries"] == 8
        assert db_info["schema"] == STORE_SCHEMA_VERSION
        assert db_info["shards"] >= 1
        assert db_info["bytes"] > 0

    def test_vacuum_both_backends(self, tmp_path):
        cell = _config(0)
        json_dir = str(tmp_path / "json")
        store = JsonTreeStore(json_dir)
        path = store.put(cell, {"cover": 1})
        with open(f"{path}.tmp.{2**22 + 5}", "w") as handle:
            handle.write("{dead")
        assert vacuum_store(json_dir) == {"backend": "json", "swept_tmp": 1}
        db_dir = str(tmp_path / "db")
        db = SqliteStore(db_dir)
        db.put(cell, {"cover": 1})
        db.close()
        assert vacuum_store(db_dir) == {
            "backend": "sqlite",
            "vacuumed_shards": 1,
        }


class TestCacheCli:
    def test_info_and_vacuum(self, tmp_path, capsys):
        directory = str(tmp_path / "cache")
        JsonTreeStore(directory).put(_config(0), {"cover": 1})
        assert main(["cache", "info", directory]) == 0
        out = capsys.readouterr().out
        assert "backend=json" in out
        assert "entries=1" in out
        assert main(["cache", "vacuum", directory]) == 0
        assert "swept_tmp=0" in capsys.readouterr().out

    def test_migrate_then_sqlite_run_is_all_cached(self, tmp_path, capsys):
        json_cache = str(tmp_path / "json")
        db_cache = str(tmp_path / "db")
        args = ["sweep", "table1", "--quick", "--cache", json_cache]
        assert main(args) == 0
        assert "computed=6 cached=0" in capsys.readouterr().out
        assert main(["cache", "migrate", json_cache, db_cache]) == 0
        assert "migrated=6 corrupt=0" in capsys.readouterr().out
        again = [
            "sweep", "table1", "--quick",
            "--cache", db_cache, "--store", "sqlite",
        ]
        assert main(again) == 0
        assert "computed=0 cached=6" in capsys.readouterr().out

    def test_store_flag_renders_identically(self, tmp_path, capsys):
        json_args = [
            "sweep", "table1", "--quick",
            "--cache", str(tmp_path / "a"), "--store", "json",
        ]
        sqlite_args = [
            "sweep", "table1", "--quick",
            "--cache", str(tmp_path / "b"), "--store", "sqlite",
        ]
        assert main(json_args) == 0
        json_out = capsys.readouterr().out
        assert main(sqlite_args) == 0
        sqlite_out = capsys.readouterr().out
        # Identical reports up to the elapsed/cache note line.
        strip = lambda text: [  # noqa: E731
            line for line in text.splitlines()
            if not line.startswith("note: completed")
        ]
        assert strip(json_out) == strip(sqlite_out)

    def test_cache_info_on_missing_store_fails_cleanly(
        self, tmp_path, capsys
    ):
        missing = str(tmp_path / "nope")
        assert main(["cache", "info", missing]) == 0  # reads as empty json
        assert "entries=0" in capsys.readouterr().out
