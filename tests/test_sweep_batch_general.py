"""The CSR-batched general-graph kernel vs the reference engine.

The contract of :mod:`repro.sweep.batch_general` is exactness, not
approximation: for every lane, the cover round *and* the final
``(pointers, counts)`` configuration must equal a standalone
:class:`repro.core.engine.MultiAgentRotorRouter` run bit for bit —
across graph families, mixed degrees, shuffled port orders, agent
counts from 1 to beyond n, truncating budgets, and every scheduling
mode (vector-only, default crossover, scalar-only).
"""

import numpy as np
import pytest

from repro.core.engine import MultiAgentRotorRouter
from repro.core.pointers import random_ports
from repro.graphs import (
    clique,
    gnp_random_graph,
    grid_2d,
    hypercube,
    lollipop,
    path_graph,
    random_regular_graph,
    ring_graph,
    star,
    torus_2d,
)
from repro.graphs.random_graphs import shuffled_ports
from repro.sweep.batch_general import (
    BatchGeneralKernel,
    GeneralLane,
    batch_general_covers,
)
from repro.util.rng import make_rng

#: Every family from graphs.families / graphs.random_graphs, small
#: enough to fan ~20 configurations each and stay fast.  Mixed
#: degrees on purpose: paths/stars have leaves, cliques are dense,
#: lollipops combine both extremes.
FAMILIES = {
    "ring": lambda: ring_graph(12),
    "path": lambda: path_graph(9),
    "grid": lambda: grid_2d(4, 5),
    "torus": lambda: torus_2d(4, 4),
    "hypercube": lambda: hypercube(4),
    "clique": lambda: clique(7),
    "star": lambda: star(8),
    "lollipop": lambda: lollipop(5, 6),
    "gnp": lambda: gnp_random_graph(18, 0.25, seed=4),
    "random-regular": lambda: random_regular_graph(14, 3, seed=4),
}


def reference_run(graph, ports, agents, budget):
    """Cover + final state from the serial engine (state at the cover
    round, or at the budget for truncated runs)."""
    engine = MultiAgentRotorRouter(graph, list(ports), list(agents))
    try:
        cover = engine.run_until_covered(budget)
    except RuntimeError:
        cover = -1
    if cover < 0 and engine.round < budget:
        engine.run(budget - engine.round)
    return cover, list(engine.pointers), engine.counts.tolist()


def build_grid():
    """~130 randomized configurations across every family."""
    lanes, references, graphs = [], [], []
    for index, (name, factory) in enumerate(sorted(FAMILIES.items())):
        base = factory()
        for variant in range(2):
            graph = (
                base if variant == 0 else shuffled_ports(base, seed=index)
            )
            n = graph.num_nodes
            csr = graph.to_csr()
            # k from 1 to beyond n, plus truncating budget lanes.
            cases = [
                (1, 50_000), (2, 50_000), (3, 50_000), (n // 2 + 1, 50_000),
                (n, 50_000), (n + 5, 50_000), (1, 7), (4, 3),
            ]
            for case, (k, budget) in enumerate(cases):
                rng = make_rng((index, variant, case))
                agents = [int(rng.integers(0, n)) for _ in range(k)]
                ports = random_ports(graph, rng)
                lanes.append(GeneralLane(csr, tuple(ports), tuple(agents),
                                         budget))
                references.append(reference_run(graph, ports, agents, budget))
                graphs.append(graph)
    return lanes, references, graphs


GRID = build_grid()


class TestRandomizedEquivalence:
    def test_grid_is_large_and_diverse(self):
        lanes, _, _ = GRID
        assert len(lanes) >= 100
        degrees = {
            int(d) for lane in lanes for d in np.unique(lane.csr.deg)
        }
        assert len(degrees) >= 4  # genuinely mixed degrees
        assert any(len(lane.agents) > lane.csr.num_nodes for lane in lanes)
        assert any(len(lane.agents) == 1 for lane in lanes)

    @pytest.mark.parametrize(
        "tail", [0, 32, 10**9], ids=["vector-only", "crossover", "scalar-only"]
    )
    def test_covers_and_final_states_match_reference(self, tail):
        lanes, references, _ = GRID
        kernel = BatchGeneralKernel(lanes, scalar_tail_pairs=tail)
        covers = kernel.run_until_covered(strict=False)
        for lane_index, (cover, ref_ptr, ref_cnt) in enumerate(references):
            assert covers[lane_index] == cover, lane_index
            pointers, counts = kernel.lane_state(lane_index)
            assert pointers.tolist() == ref_ptr, lane_index
            assert counts.tolist() == ref_cnt, lane_index

    def test_truncated_lanes_report_minus_one(self):
        lanes, references, _ = GRID
        truncated = [
            index for index, (cover, _, _) in enumerate(references)
            if cover < 0
        ]
        assert truncated  # the tiny budgets above must truncate somewhere
        covers = batch_general_covers(lanes, strict=False)
        for index in truncated:
            assert covers[index] == -1

    def test_strict_mode_raises_on_truncation(self):
        lanes, references, _ = GRID
        assert any(cover < 0 for cover, _, _ in references)
        with pytest.raises(RuntimeError, match="not covered"):
            batch_general_covers(lanes, strict=True)


class TestKernelSurface:
    def test_covered_at_round_zero(self):
        graph = clique(5)
        covers = batch_general_covers(
            [(graph.to_csr(), [0] * 5, list(range(5)), 100)]
        )
        assert covers.tolist() == [0]

    def test_heterogeneous_graphs_share_one_kernel(self):
        small, big = star(4), torus_2d(4, 4)
        lanes = []
        expected = []
        for graph, k in ((small, 1), (big, 3), (small, 2), (big, 1)):
            rng = make_rng((graph.num_nodes, k))
            agents = [int(rng.integers(0, graph.num_nodes)) for _ in range(k)]
            ports = random_ports(graph, rng)
            lanes.append((graph.to_csr(), ports, agents, 10_000))
            expected.append(reference_run(graph, ports, agents, 10_000)[0])
        kernel = BatchGeneralKernel(lanes)
        assert kernel.run_until_covered().tolist() == expected

    def test_validation(self):
        csr = torus_2d(3, 3).to_csr()
        with pytest.raises(ValueError, match="at least one lane"):
            BatchGeneralKernel([])
        with pytest.raises(ValueError, match="at least one agent"):
            BatchGeneralKernel([(csr, [0] * 9, [], 10)])
        with pytest.raises(ValueError, match="pointer"):
            BatchGeneralKernel([(csr, [4] * 9, [0], 10)])
        with pytest.raises(ValueError, match="out of range"):
            BatchGeneralKernel([(csr, [0] * 9, [9], 10)])
        with pytest.raises(ValueError, match="pointers"):
            BatchGeneralKernel([(csr, [0] * 5, [0], 10)])
        with pytest.raises(ValueError, match="scalar_tail_pairs"):
            BatchGeneralKernel(
                [(csr, [0] * 9, [0], 10)], scalar_tail_pairs=-1
            )

    def test_lane_state_bounds(self):
        csr = torus_2d(3, 3).to_csr()
        kernel = BatchGeneralKernel([(csr, [0] * 9, [0], 10)])
        with pytest.raises(IndexError):
            kernel.lane_state(1)
