"""Registered scenarios and the `python -m repro sweep` subcommand."""

import pytest

from repro.cli import main
from repro.sweep import registry, run_sweep
from repro.sweep.spec import GeneralScenarioSpec, ScenarioSpec


class TestRegistry:
    def test_expected_scenarios_registered(self):
        names = registry.scenario_names()
        for required in (
            "table1",
            "table1_full",
            "speedup",
            "stabilization",
            "cover_scaling",
        ):
            assert required in names

    def test_every_scenario_builds_both_sizes(self):
        for name in registry.scenario_names():
            for quick in (False, True):
                spec = registry.scenario(name, quick=quick)
                assert isinstance(spec, (ScenarioSpec, GeneralScenarioSpec))
                assert spec.num_configs > 0
                assert registry.scenario_description(name)

    def test_quick_is_smaller(self):
        for name in registry.scenario_names():
            quick = registry.scenario(name, quick=True)
            full = registry.scenario(name, quick=False)
            if isinstance(quick, ScenarioSpec):
                assert max(quick.ns) <= max(full.ns)
            else:
                assert max(g.num_nodes for _, g in quick.graphs) <= max(
                    g.num_nodes for _, g in full.graphs
                )
            assert quick.num_configs <= full.num_configs

    def test_unknown_scenario(self):
        with pytest.raises(KeyError):
            registry.scenario("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            registry.register("table1", "again")(lambda quick: None)

    def test_table1_grid_shape(self):
        spec = registry.scenario("table1")
        assert spec.metrics == ("cover",)
        placements = {family.placement for family in spec.families}
        assert placements == {"all_on_one", "equally_spaced"}

    def test_stabilization_runs_quick(self):
        spec = registry.scenario("stabilization", quick=True)
        result = run_sweep(spec)
        for cell in result.results:
            assert cell.metrics["preperiod"] >= 0
            assert cell.metrics["period"] >= 1
            # Theorem 6 shape: worst in-cycle gap is O(n/k)
            assert cell.metrics["worst_gap"] <= 6 * cell.config.n / cell.config.k

    def test_table1_full_covers_both_models(self):
        spec = registry.scenario("table1_full", quick=True)
        assert set(spec.models) == {"rotor", "walk"}
        assert 1 in spec.ks  # the S(k) baseline
        assert spec.repetitions >= 5
        placements = {family.placement for family in spec.families}
        assert placements == {"all_on_one", "equally_spaced"}

    def test_general_speedup_registered(self):
        assert "general_speedup" in registry.scenario_names()

    def test_general_speedup_runs_quick_with_baseline(self):
        spec = registry.scenario("general_speedup", quick=True)
        assert 1 in spec.ks
        result = run_sweep(spec)
        from repro.analysis.cover_time import rotor_cover_time_general

        for cell in result.results:
            assert cell.config.model == "rotor-general"
            assert cell.metrics["cover"] >= 0
        # Spot-check one cell against the serial reference harness.
        sample = result.results[0].config
        graph = dict(spec.graphs)[sample.placement]
        assert result.results[0].metrics["cover"] == (
            rotor_cover_time_general(
                graph, list(sample.agents), list(sample.ports),
                sample.max_rounds,
            )
        )

    def test_general_speedup_cli_caches(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(
            ["sweep", "general_speedup", "--quick", "--cache", cache_dir]
        ) == 0
        out = capsys.readouterr().out
        assert "speed-up S(k)" in out  # aggregate view joins k=1 baselines
        expected = registry.scenario(
            "general_speedup", quick=True
        ).num_configs
        assert f"computed={expected} cached=0" in out
        assert main(
            ["sweep", "general_speedup", "--quick", "--cache", cache_dir]
        ) == 0
        out = capsys.readouterr().out
        assert f"computed=0 cached={expected}" in out

    def test_speedup_runs_quick_with_baseline(self):
        spec = registry.scenario("speedup", quick=True)
        assert 1 in spec.ks
        result = run_sweep(spec)
        walk_cells = [
            cell for cell in result.results if cell.config.model == "walk"
        ]
        assert walk_cells
        for cell in walk_cells:
            assert cell.metrics["cover_reps"] >= 5
            assert cell.metrics["cover_truncated"] == 0
            assert (
                cell.metrics["cover_ci_low"]
                <= cell.metrics["cover"]
                <= cell.metrics["cover_ci_high"]
            )


class TestCliSweep:
    def test_sweep_runs_and_caches(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(
            ["sweep", "table1", "--quick", "--jobs", "2", "--cache", cache_dir]
        ) == 0
        out = capsys.readouterr().out
        assert "sweep 'table1'" in out
        expected = registry.scenario("table1", quick=True).num_configs
        assert f"computed={expected} cached=0" in out

        assert main(
            ["sweep", "table1", "--quick", "--jobs", "2", "--cache", cache_dir]
        ) == 0
        out = capsys.readouterr().out
        expected = registry.scenario("table1", quick=True).num_configs
        assert f"computed=0 cached={expected}" in out

    def test_sweep_without_cache(self, capsys):
        assert main(
            ["sweep", "table1", "--quick", "--cache", "none"]
        ) == 0
        assert "cache=disabled" in capsys.readouterr().out

    def test_sweep_csv_export(self, tmp_path, capsys):
        csv_dir = str(tmp_path / "csv")
        assert main(
            ["sweep", "table1", "--quick", "--cache", "none", "--csv", csv_dir]
        ) == 0
        out = capsys.readouterr().out
        assert "wrote" in out

    def test_unknown_sweep_name_exits_2(self, capsys):
        # Rejected at the argparse layer: exit code 2, one-line message,
        # no traceback — with or without --quick.
        for argv in (
            ["sweep", "nope", "--cache", "none"],
            ["sweep", "nope", "--quick", "--cache", "none"],
        ):
            with pytest.raises(SystemExit) as excinfo:
                main(argv)
            assert excinfo.value.code == 2
            assert "unknown sweep scenario" in capsys.readouterr().err

    def test_negative_jobs_exits_2(self, capsys):
        # Regression: --jobs -2 used to surface a raw ValueError
        # traceback from run_sweep.
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "table1", "--jobs", "-2", "--cache", "none"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--jobs" in err and "positive" in err

    def test_non_integer_jobs_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "table1", "--jobs", "two", "--cache", "none"])
        assert excinfo.value.code == 2
        assert "--jobs" in capsys.readouterr().err

    def test_invalid_chunk_lanes_exits_2(self, capsys):
        # Validated at the argparse layer like --jobs: bad values exit
        # 2 with a one-line message, never a run_sweep traceback.
        for bad in ("-1", "0", "two"):
            with pytest.raises(SystemExit) as excinfo:
                main(
                    ["sweep", "table1", "--chunk-lanes", bad,
                     "--cache", "none"]
                )
            assert excinfo.value.code == 2
            assert "--chunk-lanes" in capsys.readouterr().err

    def test_chunk_lanes_accepted(self, capsys):
        assert main(
            ["sweep", "table1", "--quick", "--chunk-lanes", "2",
             "--cache", "none"]
        ) == 0
        out = capsys.readouterr().out
        assert "sweep 'table1'" in out

    def test_stabilization_scenario_carries_scheduling_hints(self):
        spec = registry.scenario("stabilization")
        assert spec.chunk_lanes == 256
        assert spec.compact_ratio == 0.5

    def test_table1_full_cli_prints_both_models_and_ratios(
        self, tmp_path, capsys
    ):
        cache_dir = str(tmp_path / "cache")
        assert main(
            ["sweep", "table1_full", "--quick", "--cache", cache_dir]
        ) == 0
        out = capsys.readouterr().out
        assert "rotor" in out and "walk" in out
        assert "cover_ci_low" in out
        assert "speed-up S(k)" in out
        assert "rotor vs random-walk cover times" in out
        # the aggregate tables come from the same (now fully cached) sweep
        assert main(
            ["sweep", "table1_full", "--quick", "--cache", cache_dir]
        ) == 0
        out = capsys.readouterr().out
        expected = registry.scenario("table1_full", quick=True).num_configs
        assert f"computed=0 cached={expected}" in out
        assert "walk/rotor" in out

    def test_list_mentions_sweeps(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in registry.scenario_names():
            assert name in out
