"""Tests for the analysis→sweep bridge (repro.analysis.backend).

The centerpiece is the randomized backend-equivalence grid: >= 100
configurations across n, k, placement and pointer families, asserting
the batch backend reproduces the reference (serial) backend
bit-identically for cover, return and stabilization cells, including
seed-for-seed walk repetition lanes.
"""

import os

import pytest

from repro.analysis.backend import MeasurementPlan
from repro.analysis.cover_time import (
    ring_rotor_cover_time,
    rotor_cover_time_general,
)
from repro.core import placement as placement_mod
from repro.core.pointers import random_ports
from repro.graphs import clique, grid_2d, ring_graph
from repro.sweep.spec import PLACEMENTS, POINTERS
from repro.util.rng import derive_seed, make_rng

PLACEMENT_NAMES = sorted(PLACEMENTS)
POINTER_NAMES = sorted(POINTERS)


def _random_rotor_instance(rng):
    """One random (n, agents, directions) across the named families."""
    n = int(rng.choice((8, 12, 16, 24, 32, 48)))
    k = int(rng.integers(1, 7))
    placement_name = PLACEMENT_NAMES[int(rng.integers(len(PLACEMENT_NAMES)))]
    pointer_name = POINTER_NAMES[int(rng.integers(len(POINTER_NAMES)))]
    seed = int(rng.integers(0, 2**31))
    agents = PLACEMENTS[placement_name](n, k, seed)
    directions = POINTERS[pointer_name](n, agents, seed)
    return n, agents, directions


class TestBackendEquivalenceGrid:
    """batch == reference over a randomized >=100-config grid."""

    def test_cover_return_stabilization_and_walk_lanes(self):
        rng = make_rng(20260728)
        batch = MeasurementPlan(backend="batch")
        reference = MeasurementPlan(backend="reference")

        cover_pairs = []
        for _ in range(80):
            n, agents, directions = _random_rotor_instance(rng)
            cover_pairs.append(
                (
                    batch.rotor_cover(n, agents, directions),
                    reference.rotor_cover(n, agents, directions),
                )
            )

        return_pairs = []
        for _ in range(30):
            n, agents, directions = _random_rotor_instance(rng)
            if n > 32:
                n = 32
                agents = [a % n for a in agents]
                directions = directions[:n]
            return_pairs.append(
                (
                    batch.rotor_return_exact(n, agents, directions),
                    reference.rotor_return_exact(n, agents, directions),
                )
            )

        walk_pairs = []
        for index in range(16):
            n = int(rng.choice((8, 16, 24)))
            k = int(rng.integers(1, 5))
            repetitions = int(rng.integers(1, 4))
            base_seed = derive_seed(7, "equiv-walk", index)
            agents = placement_mod.random_nodes(
                n, k, seed=int(rng.integers(0, 2**31))
            )
            walk_pairs.append(
                (
                    batch.walk_cover(n, agents, repetitions, base_seed),
                    reference.walk_cover(n, agents, repetitions, base_seed),
                )
            )

        total = len(cover_pairs) + len(return_pairs) + len(walk_pairs)
        assert total >= 100
        batch.execute()
        reference.execute()

        for b, r in cover_pairs:
            assert b.value == r.value  # exact ints
        for b, r in return_pairs:
            # Stabilization (preperiod/period) and return gaps,
            # bit-identical.
            assert b.value.preperiod == r.value.preperiod
            assert b.value.period == r.value.period
            assert b.value.worst_gap == r.value.worst_gap
            assert b.value.best_gap == r.value.best_gap
        for b, r in walk_pairs:
            # Seed-for-seed: the raw repetition samples agree, hence
            # every derived statistic does too.
            assert b.value.samples == r.value.samples
            assert b.value.mean == r.value.mean
            assert b.value.ci_low == r.value.ci_low
            assert b.value.ci_high == r.value.ci_high

    def test_cover_kernel_selection_is_identity_neutral(self):
        # The executor routes sparse cover chunks (Σk < n) to the
        # serial dict engine and dense ones to the batch kernel; both
        # paths must return identical metrics for identical cells.
        from repro.sweep.executor import (
            _compute_rotor_chunk,
            _compute_rotor_covers_serial,
            _prefer_serial_covers,
        )
        from repro.sweep.cells import RotorCell

        n = 64
        cells = []
        for k in (2, 4, 8, 16, 32, 64):  # Σk = 126 >= n: kernel path
            agents = placement_mod.equally_spaced(n, k)
            cells.append(
                RotorCell(
                    n=n,
                    agents=tuple(agents),
                    directions=tuple(POINTERS["negative"](n, agents, 0)),
                    metrics=("cover",),
                    max_rounds=8 * n * n + 64,
                )
            )
        assert not _prefer_serial_covers(n, cells)
        assert _prefer_serial_covers(n, cells[:2])  # Σk = 6 < n: serial
        payload = {
            "model": "rotor",
            "n": n,
            "max_rounds": 8 * n * n + 64,
            "metrics": ["cover"],
            "configs": [cell.to_dict() for cell in cells],
        }
        kernel_out = _compute_rotor_chunk(payload)
        serial_out = _compute_rotor_covers_serial(
            n, 8 * n * n + 64, cells
        )
        assert kernel_out == serial_out

    def test_matches_legacy_serial_functions(self):
        # The reference backend is not a reimplementation: spot-check
        # the batch backend directly against the original serial calls.
        plan = MeasurementPlan(backend="batch")
        n, k = 48, 4
        agents = placement_mod.equally_spaced(n, k)
        directions = POINTERS["negative"](n, agents, 0)
        handle = plan.rotor_cover(n, agents, directions)
        plan.execute()
        assert handle.value == ring_rotor_cover_time(n, agents, directions)


class TestWalkGaps:
    def test_batch_equals_reference(self):
        kwargs = dict(n=32, k=3, node=2, observation_rounds=40 * 32,
                      burn_in=64, seed=5)
        values = {}
        for backend in ("batch", "reference"):
            plan = MeasurementPlan(backend=backend)
            handle = plan.walk_gaps(**kwargs)
            plan.execute()
            values[backend] = handle.value
        assert values["batch"] == values["reference"]


class TestGeneralGraphs:
    def test_batch_equals_reference_and_serial(self):
        graphs = [ring_graph(24), grid_2d(5, 5), clique(12)]
        batch = MeasurementPlan(backend="batch")
        reference = MeasurementPlan(backend="reference")
        triples = []
        for index, graph in enumerate(graphs):
            rng = make_rng(derive_seed(3, "general", index))
            agents = [int(rng.integers(0, graph.num_nodes)) for _ in range(3)]
            ports = random_ports(graph, rng)
            triples.append(
                (
                    graph, agents, ports,
                    batch.rotor_cover_general(graph, agents, ports),
                    reference.rotor_cover_general(graph, agents, ports),
                )
            )
        batch.execute()
        reference.execute()
        for graph, agents, ports, b, r in triples:
            serial = rotor_cover_time_general(graph, agents, ports)
            assert b.value == serial
            assert r.value == serial


class TestCachingAndStats:
    def _schedule(self, plan):
        handles = [
            plan.rotor_cover(
                16, [0, 0], POINTERS["toward_node0"](16, [0, 0], 0)
            ),
            plan.rotor_return_exact(
                16, [0, 8], POINTERS["negative"](16, [0, 8], 0)
            ),
            plan.walk_cover(16, [0, 8], repetitions=2, base_seed=9),
        ]
        return handles

    def test_second_execution_fully_cached(self, tmp_path):
        cache = str(tmp_path / "cache")
        first = MeasurementPlan(backend="batch", cache_dir=cache)
        handles_first = self._schedule(first)
        stats_first = first.execute()
        assert stats_first.computed == 3
        assert stats_first.cached == 0

        second = MeasurementPlan(backend="batch", cache_dir=cache)
        handles_second = self._schedule(second)
        stats_second = second.execute()
        assert stats_second.computed == 0
        assert stats_second.cached == 3
        assert handles_second[0].value == handles_first[0].value
        assert handles_second[1].value == handles_first[1].value
        assert handles_second[2].value.samples == handles_first[2].value.samples

    def test_reference_backend_never_caches(self, tmp_path):
        cache = str(tmp_path / "refcache")
        plan = MeasurementPlan(backend="reference", cache_dir=cache)
        self._schedule(plan)
        plan.execute()
        assert not os.path.exists(cache)

    def test_duplicate_requests_collapse(self):
        plan = MeasurementPlan()
        directions = POINTERS["toward_node0"](16, [0], 0)
        a = plan.rotor_cover(16, [0], directions)
        b = plan.rotor_cover(16, [0], directions)
        assert plan.num_cells == 1
        stats = plan.execute()
        assert stats.computed == 1
        assert a.value == b.value

    def test_summary_line_format(self):
        plan = MeasurementPlan()
        plan.rotor_cover(16, [0], POINTERS["uniform"](16, [0], 0))
        stats = plan.execute()
        line = stats.summary_line()
        assert "computed=1" in line
        assert "cached=0" in line

    def test_parallel_execution_matches(self):
        serial = MeasurementPlan(backend="batch", jobs=1)
        parallel = MeasurementPlan(backend="batch", jobs=2, chunk_lanes=2)
        pairs = []
        for k in (1, 2, 3, 4):
            agents = placement_mod.equally_spaced(24, k)
            directions = POINTERS["negative"](24, agents, 0)
            pairs.append(
                (
                    serial.rotor_cover(24, agents, directions),
                    parallel.rotor_cover(24, agents, directions),
                )
            )
        serial.execute()
        parallel.execute()
        for s, p in pairs:
            assert s.value == p.value


class TestPlanLifecycle:
    def test_value_before_execute_raises(self):
        plan = MeasurementPlan()
        handle = plan.rotor_cover(16, [0], POINTERS["uniform"](16, [0], 0))
        with pytest.raises(RuntimeError, match="execute"):
            handle.value

    def test_schedule_after_execute_raises(self):
        plan = MeasurementPlan()
        plan.rotor_cover(16, [0], POINTERS["uniform"](16, [0], 0))
        plan.execute()
        with pytest.raises(RuntimeError, match="already executed"):
            plan.rotor_cover(16, [0], POINTERS["alternating"](16, [0], 0))

    def test_execute_idempotent(self):
        plan = MeasurementPlan()
        plan.rotor_cover(16, [0], POINTERS["uniform"](16, [0], 0))
        assert plan.execute() is plan.execute()

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown backend"):
            MeasurementPlan(backend="gpu")
        with pytest.raises(ValueError, match="jobs"):
            MeasurementPlan(jobs=-1)
        plan = MeasurementPlan()
        with pytest.raises(ValueError, match="repetitions"):
            plan.walk_cover(16, [0], repetitions=0)
        with pytest.raises(RuntimeError, match="not executed"):
            plan.stats
