"""Round-trip and drift tests for the I001 cache-identity lockfile.

The scenarios mirror the workflow the check is designed to enforce:
pin the surface, change an identity without bumping the schema version
(the dangerous, silent case), bump without re-pinning (the stale
case), and finally bump + re-pin (clean again).
"""

import json
import textwrap

import pytest

from repro.lint import (
    DEFAULT_LOCK_NAME,
    LOCK_SCHEMA_VERSION,
    read_lock,
    run_lint,
    write_lock,
)

MODULE = """
SCHEMA_VERSION = {version}


class Thing:
    a: int
    b: int

    def identity(self):
        return {{
            "schema": SCHEMA_VERSION,
            {keys}
        }}
"""


def write_module(tmp_path, version=1, keys=('"a": self.a', '"b": self.b')):
    target = tmp_path / "thing.py"
    target.write_text(
        textwrap.dedent(
            MODULE.format(
                version=version,
                keys="\n            ".join(f"{key}," for key in keys),
            )
        )
    )
    return target


def lint(tmp_path, update_lock=False):
    return run_lint(
        [str(tmp_path / "thing.py")],
        select=["I001"],
        lock_path=str(tmp_path / DEFAULT_LOCK_NAME),
        update_lock=update_lock,
    )


class TestLockRoundTrip:
    def test_missing_lock_is_a_finding(self, tmp_path):
        write_module(tmp_path)
        report = lint(tmp_path)
        assert [f.code for f in report.findings] == ["I001"]
        assert "missing" in report.findings[0].message
        assert "--update-lock" in report.findings[0].message

    def test_update_then_check_is_clean(self, tmp_path):
        write_module(tmp_path)
        report = lint(tmp_path, update_lock=True)
        assert report.lock_written
        assert report.findings == []
        assert lint(tmp_path).findings == []

    def test_lock_layout(self, tmp_path):
        write_module(tmp_path)
        lint(tmp_path, update_lock=True)
        data = json.loads((tmp_path / DEFAULT_LOCK_NAME).read_text())
        assert data["lock_schema"] == LOCK_SCHEMA_VERSION
        entry = data["modules"]["thing.py"]
        assert entry["versions"] == {"SCHEMA_VERSION": 1}
        assert entry["identities"]["Thing"]["keys"] == ["a", "b", "schema"]
        assert entry["identities"]["Thing"]["fields"] == ["a", "b"]

    def test_key_change_without_bump_fails_loudly(self, tmp_path):
        write_module(tmp_path)
        lint(tmp_path, update_lock=True)
        write_module(tmp_path, version=1, keys=('"a": self.a',))
        report = lint(tmp_path)
        messages = [f.message for f in report.findings]
        assert any("WITHOUT a schema-version bump" in m for m in messages)
        assert any("removed b" in m for m in messages)
        assert report.exit_code == 1

    def test_key_change_with_bump_is_only_stale(self, tmp_path):
        write_module(tmp_path)
        lint(tmp_path, update_lock=True)
        write_module(tmp_path, version=2, keys=('"a": self.a',))
        report = lint(tmp_path)
        messages = [f.message for f in report.findings]
        assert any("lockfile is stale" in m for m in messages)
        assert not any("WITHOUT" in m for m in messages)

    def test_version_only_change_still_requires_repin(self, tmp_path):
        write_module(tmp_path)
        lint(tmp_path, update_lock=True)
        write_module(tmp_path, version=2)
        report = lint(tmp_path)
        assert [f.code for f in report.findings] == ["I001"]
        assert "schema version changed" in report.findings[0].message
        assert "1 -> 2" in report.findings[0].message

    def test_bump_and_repin_is_clean_again(self, tmp_path):
        write_module(tmp_path)
        lint(tmp_path, update_lock=True)
        write_module(tmp_path, version=2, keys=('"a": self.a',))
        assert lint(tmp_path, update_lock=True).findings == []
        assert lint(tmp_path).findings == []

    def test_new_identity_module_is_flagged(self, tmp_path):
        write_module(tmp_path)
        lint(tmp_path, update_lock=True)
        other = tmp_path / "other.py"
        other.write_text(
            "class Extra:\n"
            "    def identity(self):\n"
            "        return {\"k\": 1}\n"
        )
        report = run_lint(
            [str(tmp_path / "thing.py"), str(other)],
            select=["I001"],
            lock_path=str(tmp_path / DEFAULT_LOCK_NAME),
        )
        assert [f.code for f in report.findings] == ["I001"]
        assert "not recorded" in report.findings[0].message

    def test_corrupt_lock_is_a_finding_not_a_crash(self, tmp_path):
        write_module(tmp_path)
        (tmp_path / DEFAULT_LOCK_NAME).write_text("{not json")
        report = lint(tmp_path)
        assert [f.code for f in report.findings] == ["I001"]
        assert "unreadable" in report.findings[0].message


class TestLockIO:
    def test_read_lock_missing_returns_none(self, tmp_path):
        assert read_lock(str(tmp_path / "absent.lock")) is None

    def test_write_read_round_trip(self, tmp_path):
        surfaces = {
            "mod.py": {
                "versions": {"SCHEMA_VERSION": 3},
                "identities": {"C": {"keys": ["x"], "fields": ["x"]}},
                "lines": {"C": 4},
            }
        }
        path = str(tmp_path / "roundtrip.lock")
        write_lock(surfaces, path)
        data = read_lock(path)
        assert data["modules"]["mod.py"]["versions"] == {"SCHEMA_VERSION": 3}
        # lines are diagnostic only and never serialized
        assert "lines" not in data["modules"]["mod.py"]

    def test_read_lock_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.lock"
        path.write_text(json.dumps({"lock_schema": 999, "modules": {}}))
        with pytest.raises(ValueError, match="lock_schema"):
            read_lock(str(path))

    def test_dynamic_identity_dicts_abstain(self, tmp_path):
        target = tmp_path / "thing.py"
        target.write_text(
            "class Dyn:\n"
            "    def identity(self):\n"
            "        d = {}\n"
            "        d[\"k\"] = 1\n"
            "        return d\n"
        )
        report = run_lint(
            [str(target)],
            select=["I001"],
            lock_path=str(tmp_path / DEFAULT_LOCK_NAME),
        )
        # no extractable surface -> nothing to lock, nothing to report
        assert report.findings == []
