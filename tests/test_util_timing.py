"""Tests for repro.util.timing."""

import pytest

from repro.util.timing import Stopwatch


class TestStopwatch:
    def test_context_manager_accumulates(self):
        watch = Stopwatch()
        with watch:
            pass
        first = watch.elapsed
        with watch:
            pass
        assert watch.elapsed >= first >= 0.0

    def test_double_start_rejected(self):
        watch = Stopwatch().start()
        with pytest.raises(RuntimeError):
            watch.start()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_reset(self):
        watch = Stopwatch()
        with watch:
            pass
        watch.reset()
        assert watch.elapsed == 0.0
