"""Tests for repro.util.timing."""

import pytest

from repro.util.timing import Stopwatch


class TestStopwatch:
    def test_context_manager_accumulates(self):
        watch = Stopwatch()
        with watch:
            pass
        first = watch.elapsed
        with watch:
            pass
        assert watch.elapsed >= first >= 0.0

    def test_double_start_rejected(self):
        watch = Stopwatch().start()
        with pytest.raises(RuntimeError):
            watch.start()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_reset(self):
        watch = Stopwatch()
        with watch:
            pass
        watch.reset()
        assert watch.elapsed == 0.0

    def test_running_property(self):
        watch = Stopwatch()
        assert not watch.running
        watch.start()
        assert watch.running
        watch.stop()
        assert not watch.running

    def test_split_requires_running(self):
        with pytest.raises(RuntimeError):
            Stopwatch().split()

    def test_split_is_monotonic_and_keeps_running(self):
        watch = Stopwatch().start()
        first = watch.split()
        second = watch.split()
        assert 0.0 <= first <= second
        assert watch.running
        # split includes the in-flight interval, so the final stop
        # reading can only be larger.
        watch.stop()
        assert watch.elapsed >= second

    def test_split_includes_prior_intervals(self):
        watch = Stopwatch()
        with watch:
            pass
        banked = watch.elapsed
        watch.start()
        assert watch.split() >= banked
