"""Tests for limit-cycle detection, return times, Eulerian lock-in."""

import math

import pytest

from repro.core import placement, pointers
from repro.core.engine import MultiAgentRotorRouter
from repro.core.limit import (
    LimitCycle,
    arc_balance_in_cycle,
    eulerian_lockin,
    find_limit_cycle,
    return_time_exact,
    return_time_windowed,
)
from repro.core.ring import RingRotorRouter
from repro.graphs.families import grid_2d, path_graph, star
from repro.graphs.ring import ring_graph


class FakeCycler:
    """Deterministic system with known preperiod/period for testing."""

    def __init__(self, preperiod: int, period: int, state: int = 0):
        self.preperiod = preperiod
        self.period = period
        self.state = state
        self.round = 0

    def step(self, holds=None):
        if self.state < self.preperiod + self.period - 1:
            self.state += 1
        else:
            self.state = self.preperiod
        self.round += 1
        return []

    def clone(self):
        return FakeCycler(self.preperiod, self.period, self.state)

    def state_key(self) -> bytes:
        return self.state.to_bytes(8, "big")


class TestBrent:
    @pytest.mark.parametrize(
        "preperiod,period",
        [(0, 1), (0, 5), (3, 1), (7, 4), (13, 9), (1, 100), (50, 3)],
    )
    def test_recovers_known_cycles(self, preperiod, period):
        cycle = find_limit_cycle(FakeCycler(preperiod, period), 10_000)
        assert cycle == LimitCycle(preperiod=preperiod, period=period)

    def test_budget_enforced(self):
        with pytest.raises(RuntimeError):
            find_limit_cycle(FakeCycler(1000, 1000), 50)

    def test_input_not_mutated(self):
        system = FakeCycler(5, 7)
        find_limit_cycle(system, 1000)
        assert system.state == 0
        assert system.round == 0

    def test_single_agent_ring_cycle(self):
        # One agent on the ring in the limit just orbits: period n
        # (each arc of one orientation traversed once per period... the
        # rotor alternates, giving a full Eulerian circuit of 2n arcs).
        n = 8
        e = RingRotorRouter(n, [1] * n, [0], track_counts=False)
        cycle = find_limit_cycle(e, 100_000)
        assert cycle.period == 2 * n  # Eulerian circuit of the 2n arcs


class TestReturnTimes:
    def test_exact_single_agent(self):
        n = 12
        e = RingRotorRouter(n, [1] * n, [0], track_counts=False)
        result = return_time_exact(e, n, 100_000)
        # One agent, Eulerian behaviour: every node seen twice per 2n
        # rounds; worst gap is at most the period, at least n/2.
        assert result.worst <= 2 * n
        assert result.best >= 1

    def test_theorem6_band_spaced(self):
        n, k = 64, 4
        agents = placement.equally_spaced(n, k)
        e = RingRotorRouter(
            n, pointers.ring_negative(n, agents), agents, track_counts=False
        )
        result = return_time_exact(e, n, 10 ** 6)
        normalized = result.worst * k / n
        assert 1.0 <= normalized <= 3.0

    def test_windowed_lower_bounds_exact(self):
        n, k = 48, 3
        agents = placement.equally_spaced(n, k)
        e = RingRotorRouter(
            n, pointers.ring_negative(n, agents), agents, track_counts=False
        )
        exact = return_time_exact(e, n, 10 ** 6)
        windowed = return_time_windowed(e, n, burn_in=5000, window=4000)
        assert windowed.max() <= exact.worst + 1e-9
        # And with a long window it should actually find the worst gap.
        assert windowed.max() >= exact.worst / 2

    def test_windowed_validates(self):
        e = RingRotorRouter(8, [1] * 8, [0], track_counts=False)
        with pytest.raises(ValueError):
            return_time_windowed(e, 8, burn_in=-1, window=10)
        with pytest.raises(ValueError):
            return_time_windowed(e, 8, burn_in=0, window=0)

    def test_unvisited_node_gap_infinite_in_window(self):
        # A long burn-in-free window on a huge ring: far nodes unvisited.
        n = 64
        e = RingRotorRouter(n, [1] * n, [0], track_counts=False)
        gaps = return_time_windowed(e, n, burn_in=0, window=5)
        assert math.isinf(gaps[n // 2])


class TestEulerianLockIn:
    @pytest.mark.parametrize(
        "graph_factory",
        [
            lambda: ring_graph(8),
            lambda: path_graph(6),
            lambda: star(4),
            lambda: grid_2d(3, 3),
        ],
    )
    def test_yanovski_lockin(self, graph_factory):
        graph = graph_factory()
        engine = MultiAgentRotorRouter(
            graph, [0] * graph.num_nodes, [0]
        )
        result = eulerian_lockin(
            engine, graph.num_arcs, max_rounds=10 * graph.num_arcs ** 2
        )
        assert result.locks_into_euler_cycle
        # Yanovski et al.: lock-in within 2 D |E| rounds.
        bound = 2 * graph.diameter() * graph.num_edges
        assert result.lock_in_round <= bound

    def test_lockin_with_adversarial_ports(self):
        graph = grid_2d(3, 4)
        from repro.core.pointers import ports_toward_sources

        engine = MultiAgentRotorRouter(
            graph, ports_toward_sources(graph, [0]), [0]
        )
        result = eulerian_lockin(
            engine, graph.num_arcs, max_rounds=10 * graph.num_arcs ** 2
        )
        assert result.locks_into_euler_cycle
        assert result.lock_in_round <= 2 * graph.diameter() * graph.num_edges


class TestArcBalance:
    def test_single_agent_perfectly_fair(self):
        graph = grid_2d(3, 3)
        engine = MultiAgentRotorRouter(graph, [0] * 9, [4])
        low, high = arc_balance_in_cycle(
            engine, 100_000, num_arcs=graph.num_arcs
        )
        assert (low, high) == (1, 1)

    def test_multi_agent_similar_frequencies(self):
        # [27]: the multi-agent rotor-router visits all edges a similar
        # number of times in the limit.
        n = 24
        agents = placement.equally_spaced(n, 3)
        e = RingRotorRouter(
            n, pointers.ring_negative(n, agents), agents, track_counts=False
        )
        low, high = arc_balance_in_cycle(e, 10 ** 6, num_arcs=2 * n)
        assert low >= 1
        assert high <= 4 * max(low, 1)
