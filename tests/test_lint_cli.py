"""CLI-level tests for ``repro lint``: exit codes, formats, dogfood.

The dogfood test is the PR's acceptance criterion in executable form:
the shipped tree lints clean against the committed
``cache_identity.lock``, so any identity-surface drift in a future
change fails this test until the schema version is bumped and the
lock regenerated.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[1]


def write_finding_fixture(tmp_path):
    """A file with exactly one D001 finding."""
    target = tmp_path / "model.py"
    target.write_text(
        "import numpy as np\n\nrng = np.random.default_rng()\n"
    )
    return target


def write_clean_fixture(tmp_path):
    target = tmp_path / "model.py"
    target.write_text("def f(seed):\n    return seed + 1\n")
    return target


class TestExitCodes:
    def test_clean_run_exits_zero(self, tmp_path, capsys):
        target = write_clean_fixture(tmp_path)
        lock = str(tmp_path / "lock")
        assert main(["lint", str(target), "--lock", lock]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_findings_exit_one(self, tmp_path, capsys):
        target = write_finding_fixture(tmp_path)
        assert main(["lint", str(target), "--select", "D001"]) == 1
        out = capsys.readouterr().out
        assert "D001" in out

    def test_unknown_select_code_exits_two(self, tmp_path, capsys):
        target = write_clean_fixture(tmp_path)
        assert main(["lint", str(target), "--select", "Z999"]) == 2
        assert "unknown rule code" in capsys.readouterr().err

    def test_empty_select_exits_two(self, tmp_path, capsys):
        target = write_clean_fixture(tmp_path)
        assert main(["lint", str(target), "--select", " , "]) == 2
        assert "at least one code" in capsys.readouterr().err

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "absent")]) == 2
        assert "no such file" in capsys.readouterr().err


class TestFormatsAndSelect:
    def test_json_format_is_parseable(self, tmp_path, capsys):
        target = write_finding_fixture(tmp_path)
        status = main(
            ["lint", str(target), "--select", "D001", "--format", "json"]
        )
        assert status == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == 1
        assert payload["files_checked"] == 1
        assert [f["code"] for f in payload["findings"]] == ["D001"]
        assert payload["suppressed"] == []

    def test_select_excludes_other_rules(self, tmp_path, capsys):
        target = write_finding_fixture(tmp_path)
        # D003 alone: the D001 site is not even checked
        assert main(["lint", str(target), "--select", "D003"]) == 0
        capsys.readouterr()

    def test_update_lock_writes_and_reports(self, tmp_path, capsys):
        target = tmp_path / "thing.py"
        target.write_text(
            "SCHEMA_VERSION = 1\n\n"
            "class Thing:\n"
            "    def identity(self):\n"
            "        return {\"schema\": SCHEMA_VERSION}\n"
        )
        lock = str(tmp_path / "lock")
        status = main(
            ["lint", str(target), "--lock", lock, "--update-lock"]
        )
        assert status == 0
        assert "wrote cache-identity lockfile" in capsys.readouterr().out
        assert os.path.exists(lock)


class TestDogfood:
    def test_shipped_tree_lints_clean(self, capsys):
        """Acceptance criterion: `repro lint src/repro` exits clean
        against the committed lockfile."""
        status = main(
            [
                "lint",
                str(REPO_ROOT / "src" / "repro"),
                "--lock",
                str(REPO_ROOT / "cache_identity.lock"),
            ]
        )
        out = capsys.readouterr().out
        assert status == 0, out
        assert "0 finding(s)" in out

    def test_module_entry_point_smoke(self, tmp_path):
        """`python -m repro lint` works end to end as a subprocess."""
        target = write_clean_fixture(tmp_path)
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro", "lint",
                str(target), "--lock", str(tmp_path / "lock"),
            ],
            capture_output=True, text=True, env=env,
        )
        assert proc.returncode == 0, proc.stderr
        assert "0 finding(s)" in proc.stdout

    def test_help_cross_references(self, capsys):
        for sub in ("sweep", "stats"):
            try:
                main([sub, "--help"])
            except SystemExit:
                pass
            # argparse re-wraps description text; normalize before matching
            out = " ".join(capsys.readouterr().out.split())
            assert "repro lint" in out
