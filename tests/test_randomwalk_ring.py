"""Tests for the vectorized ring random walks."""

import numpy as np
import pytest

from repro.randomwalk.analytic import (
    ring_cover_time_single,
    ring_hitting_time,
)
from repro.randomwalk.ring_walk import RingRandomWalks
from repro.util.stats import summarize


class TestConstruction:
    def test_min_ring(self):
        with pytest.raises(ValueError):
            RingRandomWalks(2, [0])

    def test_requires_walkers(self):
        with pytest.raises(ValueError):
            RingRandomWalks(8, [])

    def test_position_range(self):
        with pytest.raises(ValueError):
            RingRandomWalks(8, [8])

    def test_block_size_validated(self):
        with pytest.raises(ValueError):
            RingRandomWalks(8, [0], block_size=0)


class TestStepAndBlocks:
    def test_single_step_moves_by_one(self):
        w = RingRandomWalks(12, [5], seed=0)
        w.step()
        assert int(w.positions[0]) in (4, 6)

    def test_block_and_step_runs_agree_statistically(self):
        # Not bit-identical (different draw shapes), but displacement
        # variance after T steps must be ~T for both.
        n, trials, horizon = 1001, 200, 64
        step_disp, block_disp = [], []
        for t in range(trials):
            ws = RingRandomWalks(n, [500], seed=t)
            for _ in range(horizon):
                ws.step()
            step_disp.append(((int(ws.positions[0]) - 500 + n // 2) % n) - n // 2)
            wb = RingRandomWalks(n, [500], seed=10_000 + t, block_size=16)
            wb.run(horizon)
            block_disp.append(((int(wb.positions[0]) - 500 + n // 2) % n) - n // 2)
        var_step = float(np.var(step_disp))
        var_block = float(np.var(block_disp))
        assert 0.6 * horizon < var_step < 1.5 * horizon
        assert 0.6 * horizon < var_block < 1.5 * horizon

    def test_run_counts_rounds(self):
        w = RingRandomWalks(20, [0], seed=1, block_size=7)
        w.run(25)
        assert w.round == 25

    def test_first_visit_rounds_monotone_along_run(self):
        w = RingRandomWalks(16, [0], seed=2, block_size=5)
        w.run_until_covered(10 ** 6)
        fv = w.first_visit
        assert fv[0] == 0
        assert np.all(fv >= 0)
        assert int(fv.max()) == w.cover_round


class TestCoverExtraction:
    def test_cover_round_exact_within_block(self):
        # The block version must report the exact first-cover round,
        # not the block boundary: cross-check with a step-wise replay of
        # the same generator draws is impossible (different shapes), so
        # verify via internal consistency on many seeds.
        for seed in range(20):
            w = RingRandomWalks(12, [0], seed=seed, block_size=64)
            cover = w.run_until_covered(10 ** 6)
            assert cover == int(w.first_visit.max())
            assert cover <= w.round
            assert (w.round - cover) < 64  # found within the last block

    def test_budget_raises(self):
        w = RingRandomWalks(64, [0], seed=0, block_size=8)
        with pytest.raises(RuntimeError):
            w.run_until_covered(16)

    def test_mean_single_cover_matches_formula(self):
        # E[C] = n(n-1)/2 on the ring.
        n, reps = 24, 60
        samples = [
            RingRandomWalks(n, [0], seed=s).run_until_covered(10 ** 7)
            for s in range(reps)
        ]
        mean = summarize(samples).mean
        expected = ring_cover_time_single(n)
        assert abs(mean - expected) / expected < 0.25

    def test_mean_hitting_time_matches_formula(self):
        # E[T_hit(d)] = d(n-d): measure via first_visit of the node at
        # distance d.
        n, d, reps = 32, 8, 80
        samples = []
        for s in range(reps):
            w = RingRandomWalks(n, [0], seed=1000 + s)
            w.run_until_covered(10 ** 7)
            samples.append(int(w.first_visit[d]))
        mean = summarize(samples).mean
        expected = ring_hitting_time(n, d)
        assert abs(mean - expected) / expected < 0.3


class TestVisitRounds:
    def test_visit_rounds_are_when_some_walker_is_there(self):
        w = RingRandomWalks(10, [0, 5], seed=4, block_size=8)
        hits = w.visit_rounds_of(3, rounds=200)
        assert np.all(hits >= 1)
        assert np.all(hits <= 200)
        assert np.all(np.diff(hits) >= 1)

    def test_mean_gap_near_n_over_k(self):
        n, k = 40, 4
        from repro.core.placement import equally_spaced

        w = RingRandomWalks(n, equally_spaced(n, k), seed=6)
        w.run(200)  # settle
        hits = w.visit_rounds_of(0, rounds=1200 * n)
        gaps = np.diff(hits)
        # The mean sits slightly above n/k (simultaneous visits by two
        # walkers collapse into one visit round); allow 25%.
        assert abs(float(gaps.mean()) - n / k) / (n / k) < 0.25

    def test_validation(self):
        w = RingRandomWalks(10, [0], seed=0)
        with pytest.raises(ValueError):
            w.visit_rounds_of(10, 5)
        with pytest.raises(ValueError):
            w.visit_rounds_of(0, -1)
