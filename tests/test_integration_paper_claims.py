"""Integration tests of the paper's headline claims (small scale).

Each test crosses module boundaries (engines + placements + pointers +
analysis) and asserts a Table 1 fact end to end.  Sizes are small so
the whole file runs in seconds; the benchmarks repeat these at scale.
"""

import math

import pytest

from repro.analysis.cover_time import (
    ring_rotor_cover_time,
    ring_walk_cover_estimate,
)
from repro.analysis.return_time import ring_rotor_return_time_exact
from repro.core import placement, pointers
from repro.theory import bounds


class TestCoverTimeSpectrum:
    """The full worst-to-best spectrum on one ring."""

    N = 256

    def cover(self, agents, directions):
        return ring_rotor_cover_time(self.N, agents, directions)

    def test_spectrum_ordering(self):
        n, k = self.N, 8
        worst = self.cover(
            placement.all_on_one(k), pointers.ring_toward_node(n, 0)
        )
        spaced = placement.equally_spaced(n, k)
        best_adversarial = self.cover(spaced, pointers.ring_negative(n, spaced))
        best_friendly = self.cover(spaced, pointers.ring_positive(n, spaced))
        # Θ(n²/log k) >> Θ(n²/k²) >> Θ(n/k).
        assert worst > 4 * best_adversarial
        assert best_adversarial > 4 * best_friendly
        # And the absolute shapes.
        assert worst == pytest.approx(
            0.2 * bounds.rotor_cover_worst(n, k), rel=0.5
        )
        assert best_adversarial == pytest.approx(
            0.5 * bounds.rotor_cover_best(n, k), rel=0.3
        )

    def test_single_agent_matches_both_bounds(self):
        # k = 1: worst and best shapes coincide at Θ(n²).
        n = self.N
        worst = self.cover([0], pointers.ring_toward_node(n, 0))
        assert n * n / 4 <= worst <= n * n

    def test_worst_case_speedup_is_logarithmic(self):
        n = self.N
        covers = {
            k: self.cover(
                placement.all_on_one(k), pointers.ring_toward_node(n, 0)
            )
            for k in (1, 4, 16, 64)
        }
        speedups = {k: covers[1] / covers[k] for k in (4, 16, 64)}
        # Quadrupling k adds a roughly constant increment (log shape),
        # far from multiplying the speed-up by 4.
        inc1 = speedups[16] - speedups[4]
        inc2 = speedups[64] - speedups[16]
        assert speedups[64] < 16
        assert 0.3 < inc2 / inc1 < 3.0

    def test_best_case_speedup_is_quadratic(self):
        n = self.N

        def best(k):
            spaced = placement.equally_spaced(n, k)
            return self.cover(spaced, pointers.ring_negative(n, spaced))

        covers = {k: best(k) for k in (1, 2, 4, 8)}
        for k in (2, 4, 8):
            speedup = covers[1] / covers[k]
            assert speedup == pytest.approx(k * k, rel=0.35)


class TestModelComparison:
    """Rotor-router vs random walks, same placements."""

    def test_worst_placement_both_models_agree(self):
        n, k = 192, 8
        rotor = ring_rotor_cover_time(
            n, placement.all_on_one(k), pointers.ring_toward_node(n, 0)
        )
        walk = ring_walk_cover_estimate(
            n, placement.all_on_one(k), repetitions=8, base_seed=3
        ).mean
        # Same Θ(n²/log k): within a small constant of each other.
        assert 0.4 <= rotor / walk <= 2.5

    def test_best_placement_rotor_wins_by_polylog(self):
        n, k = 256, 8
        spaced = placement.equally_spaced(n, k)
        rotor = ring_rotor_cover_time(
            n, spaced, pointers.ring_negative(n, spaced)
        )
        walk = ring_walk_cover_estimate(
            n, spaced, repetitions=8, base_seed=4
        ).mean
        ratio = walk / rotor
        # Theorem 5: the gap is Θ(log²k) = 4.3 at k = 8.
        assert 1.5 <= ratio <= 12.0

    def test_return_time_both_models_fair_share(self):
        n, k = 128, 4
        rotor = ring_rotor_return_time_exact(
            n, placement.all_on_one(k), pointers.ring_toward_node(n, 0)
        )
        assert rotor.worst_gap == 2 * n / k  # exact on the ring
        from repro.randomwalk.visits import ring_walk_gap_statistics

        walk = ring_walk_gap_statistics(
            n, k, node=0, observation_rounds=800 * n, burn_in=4 * n, seed=5
        )
        assert walk.mean == pytest.approx(n / k, rel=0.25)
        assert walk.maximum > rotor.worst_gap  # no deterministic ceiling


class TestRegimeAnnotations:
    def test_paper_regime_max_k_consistent_with_placement_check(self):
        n = 2 ** 23
        k = bounds.paper_regime_max_k(n)
        assert placement.paper_regime_ok(n, k)
        assert not placement.paper_regime_ok(n, k + 1)

    def test_shapes_consistent_with_theorem_statements(self):
        n = 10 ** 4
        for k in (2, 8, 32):
            assert bounds.rotor_cover_worst(n, k) == pytest.approx(
                n * n / math.log(k)
            )
            assert bounds.rotor_cover_best(n, k) * k * k == pytest.approx(
                n * n
            )
            assert bounds.rotor_return_time(n, k) * k == pytest.approx(n)
