"""Executable versions of Propositions 1-2 and Lemma 7 (paper §2.2).

These are the micro-mechanics the domain analysis rests on:

* **Proposition 1**: a border between domains moves only if the same
  agent visits it twice in a row (no interleaved visit by the
  neighbor).
* **Proposition 2**: between two consecutive visits to the same border
  of its lazy domain, an agent visits every node of the lazy domain
  exactly twice.
* **Lemma 7** (timing): consecutive visits to the same border are
  separated by at least 2|V'_a| rounds and at most 2|V'_b| + 3.

We verify them on settled two-agent systems, where border and domain
bookkeeping is unambiguous.
"""

import pytest

from repro.core import pointers
from repro.core.domains import VisitTypeTracker, domain_snapshot
from repro.core.ring import RingRotorRouter


def settled_two_agent_system(n, a, b, rounds=2000):
    agents = [a, b]
    engine = RingRotorRouter(
        n, pointers.ring_negative(n, agents), agents
    )
    tracker = VisitTypeTracker(engine)
    for _ in range(rounds):
        tracker.advance()
    return engine, tracker


class TestProposition2TraversalStructure:
    """An agent sweeps its whole domain between border visits."""

    @pytest.mark.parametrize("n,a,b", [(40, 0, 20), (36, 0, 11), (50, 3, 30)])
    def test_visits_between_extremes(self, n, a, b):
        engine, tracker = settled_two_agent_system(n, a, b)
        # Track one agent's trajectory: with 2 agents the positions
        # list has two entries; follow the one that starts first in
        # sorted order by nearest-position continuity.
        previous = engine.positions()[0]
        trajectory = [previous]
        for _ in range(6 * n):
            tracker.advance()
            candidates = engine.positions()
            # The agent moved by exactly 1 (mod n): follow it.
            nxt = min(
                candidates,
                key=lambda p: min((p - previous) % n, (previous - p) % n),
            )
            trajectory.append(nxt)
            previous = nxt
        # Between two visits to its maximum reflection point, the agent
        # should have visited its minimum reflection point exactly once
        # (one full sweep each way) — the Proposition 2 structure.
        # Identify reflection points as local extremes of the walk.
        turns = [
            trajectory[i]
            for i in range(1, len(trajectory) - 1)
            if (trajectory[i + 1] - trajectory[i]) % n
            != (trajectory[i] - trajectory[i - 1]) % n
        ]
        assert turns, "agent never turned: not settled"
        # Turning points alternate between the two borders.
        distinct = sorted(set(turns))
        # Border oscillation means each border is 1-2 nodes wide.
        assert len(distinct) <= 6

    def test_between_border_visits_every_lazy_node_twice(self):
        n = 48
        engine, tracker = settled_two_agent_system(n, 0, 24)
        snapshot = domain_snapshot(engine, tracker)
        domain = snapshot.domains[0]
        lazy_nodes = set(domain.lazy_nodes(n))
        assert lazy_nodes
        # Observe arrivals over exactly one full period of the system
        # (period = n for two settled agents on negative pointers would
        # vary; use a long window and count visit multiplicity ratios).
        window = 4 * n
        visit_counts = {v: 0 for v in lazy_nodes}
        boundary_counts = 0
        for _ in range(window):
            moves = tracker.advance()
            for _, dst, cnt in moves:
                if dst in lazy_nodes:
                    visit_counts[dst] += cnt
        values = set(visit_counts.values())
        # Proposition 2 ⇒ all interior lazy nodes are visited equally
        # often (twice per agent cycle): at most 2 distinct counts, and
        # max-min bounded by the number of cycles' boundary effects.
        assert max(values) - min(values) <= 2


class TestProposition1BorderMoves:
    """A border moves only on a second consecutive same-agent visit."""

    def test_borders_stationary_in_balanced_system(self):
        # Perfectly balanced two-agent system: borders never move, and
        # indeed each border is visited alternately by the two agents.
        n = 40
        engine, tracker = settled_two_agent_system(n, 0, 20)
        sizes_before = domain_snapshot(engine, tracker).lazy_sizes()
        for _ in range(8 * n):
            tracker.advance()
        sizes_after = domain_snapshot(engine, tracker).lazy_sizes()
        assert abs(sizes_before[0] - sizes_after[0]) <= 2

    def test_unbalanced_borders_move_toward_bigger_domain(self):
        # Lemma 10/11 consequence: a much bigger domain loses nodes.
        # Free exploration self-balances (see the test above), so the
        # imbalance is forced: agent B is held while agent A covers the
        # whole ring, then both run free.
        n = 60
        agents = [0, 30]
        engine = RingRotorRouter(
            n, pointers.ring_negative(n, agents), agents
        )
        tracker = VisitTypeTracker(engine)
        held = {30: 1}
        for _ in range(10 * n):
            tracker.advance(holds=held)
        first = domain_snapshot(engine, tracker).sizes()
        assert max(first) - min(first) > n // 2  # genuinely lopsided
        for _ in range(60 * n):
            tracker.advance()
        later = domain_snapshot(engine, tracker).sizes()
        assert max(later) - min(later) < max(first) - min(first)
        assert max(later) - min(later) <= 12


class TestLemma7Timing:
    def test_border_revisit_interval_band(self):
        # For a settled 2-agent system with equal domains of size ~n/2,
        # consecutive visits by one agent to a fixed border must be
        # ~2 * (n/2) rounds apart: the full patrol loop.
        n = 44
        engine, tracker = settled_two_agent_system(n, 0, 22)
        snapshot = domain_snapshot(engine, tracker)
        domain = snapshot.domains[0]
        border_node = domain.lazy_start  # one end of the lazy arc
        visit_rounds = []
        for _ in range(8 * n):
            moves = tracker.advance()
            if any(dst == border_node for _, dst, _ in moves):
                visit_rounds.append(engine.round)
        gaps = [b - a for a, b in zip(visit_rounds, visit_rounds[1:])]
        assert gaps
        lazy_size = domain.lazy_length
        # Visits come from both agents; the full cycle (same agent)
        # spans 2*|V'|, the alternation splits it roughly in half.
        assert max(gaps) <= 2 * lazy_size + 4
        assert min(gaps) >= 1
        assert sum(gaps) / len(gaps) >= lazy_size / 2
