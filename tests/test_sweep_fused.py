"""Round fusion & shared-memory handoff: bit-identity under scheduling.

Two pillars of the fused execution path are pinned here:

* **Round fusion is identity-neutral.**  Randomized configurations are
  run at ``fuse_rounds`` 1 (the pre-fusion cadence), 7 (odd, misaligned
  with every power-of-two budget) and 64 (wide epochs that overshoot
  most events), and every observable — cover rounds, final pointers and
  counts, stabilization periods, walk visit tables — must be
  bit-identical.  Trials deliberately include lanes that cover *inside*
  a fused epoch and lanes that truncate at ``max_rounds``.
* **The shared-memory worker handoff changes nothing.**  A ``jobs=2``
  sweep must equal the serial run result-for-result and kernel-counter
  for kernel-counter, rerun from its cache with zero recomputation, and
  keep shared-memory naming out of the cache-identity surface (the
  D003 lint section at the bottom).
"""

import textwrap

import numpy as np
import pytest

from repro.lint import run_lint
from repro.obs.manifest import load_manifest, trace_session
from repro.sweep import shm
from repro.sweep.batch_ring import (
    BatchRingKernel,
    batch_limit_cycles,
)
from repro.sweep.batch_walk import BatchRingWalks, WalkLane
from repro.sweep.executor import run_sweep
from repro.sweep.spec import InitFamily, ScenarioSpec

FUSE_GRID = (1, 7, 64)


def _random_ring_config(rng, max_n=40, max_lanes=6):
    """One random (n, pointers, counts) block with >= 1 agent per lane."""
    n = int(rng.integers(5, max_n))
    lanes = int(rng.integers(2, max_lanes))
    pointers = rng.choice(np.array([-1, 1], dtype=np.int64), size=(lanes, n))
    counts = rng.binomial(2, 0.2, size=(lanes, n)).astype(np.int64)
    empty = counts.sum(axis=1) == 0
    counts[empty, rng.integers(0, n, size=int(empty.sum()))] = 1
    return n, pointers, counts


def _ring_state(kernel):
    """Every observable of a finished ring kernel, for equality checks."""
    return (
        kernel.round,
        kernel.cover_rounds.copy(),
        kernel._ptr.copy(),
        kernel._counts.copy(),
    )


def _assert_states_equal(reference, candidate, context):
    ref_round, ref_cover, ref_ptr, ref_counts = reference
    got_round, got_cover, got_ptr, got_counts = candidate
    assert got_round == ref_round, context
    np.testing.assert_array_equal(got_cover, ref_cover, err_msg=context)
    np.testing.assert_array_equal(got_ptr, ref_ptr, err_msg=context)
    np.testing.assert_array_equal(got_counts, ref_counts, err_msg=context)


class TestRingFusionEquivalence:
    """Fused ring cover runs replay to bit-identical results."""

    @pytest.mark.parametrize("trial", range(40))
    def test_cover_and_final_state_match_across_fusion(self, trial):
        rng = np.random.default_rng(1000 + trial)
        n, pointers, counts = _random_ring_config(rng)
        # Mix horizons: generous (all lanes cover, many inside one wide
        # epoch) and starved (truncation lanes report -1).
        max_rounds = int(rng.choice([8, 64, 16 * n * n]))
        kernels = []
        for fuse in FUSE_GRID:
            kernel = BatchRingKernel(n, pointers, counts, fuse_rounds=fuse)
            kernel.run_until_covered(max_rounds, strict=False)
            kernels.append(kernel)
        # Wider epochs may stop later (cover is only *checked* at epoch
        # boundaries; the recorded cover rounds are exact regardless).
        # Advance everyone to the latest stopping round and the full
        # configurations must coincide bit for bit.
        horizon = max(kernel.round for kernel in kernels)
        states = []
        for kernel in kernels:
            kernel.step_rounds(horizon - kernel.round)
            states.append(_ring_state(kernel))
        for fuse, state in zip(FUSE_GRID[1:], states[1:]):
            _assert_states_equal(
                states[0], state,
                f"trial={trial} n={n} max_rounds={max_rounds} fuse={fuse}",
            )

    @pytest.mark.parametrize("trial", range(10))
    def test_step_rounds_matches_across_fusion(self, trial):
        rng = np.random.default_rng(2000 + trial)
        n, pointers, counts = _random_ring_config(rng)
        rounds = int(rng.integers(1, 200))
        states = []
        for fuse in FUSE_GRID:
            kernel = BatchRingKernel(n, pointers, counts, fuse_rounds=fuse)
            kernel.step_rounds(rounds)
            states.append(_ring_state(kernel))
        for fuse, state in zip(FUSE_GRID[1:], states[1:]):
            _assert_states_equal(
                states[0], state, f"trial={trial} rounds={rounds} fuse={fuse}"
            )

    def test_cover_inside_first_wide_epoch_is_exact(self):
        # A single rotor walker fighting outward-pointing rotors covers
        # the n=40 ring around round 780 — deep inside a 64-round-fused
        # epoch (64 * 32 = 2048 rounds) but 25 windows into the
        # unfused run.  Replay must pin the exact round, not the epoch
        # boundary the lane was first *detected* covered at.
        n = 40
        pointers = np.array(
            [[1 if i < n // 2 else -1 for i in range(n)]], dtype=np.int64
        )
        counts = np.zeros((1, n), dtype=np.int64)
        counts[0, n // 2] = 1
        reference = BatchRingKernel(n, pointers, counts, fuse_rounds=1)
        fused = BatchRingKernel(n, pointers, counts, fuse_rounds=64)
        np.testing.assert_array_equal(
            fused.run_until_covered(10_000),
            reference.run_until_covered(10_000),
        )
        assert int(fused.cover_rounds[0]) == 780
        assert fused._epochs == 1 < reference._epochs


class TestLimitFusionEquivalence:
    """Fused Brent phase 1 resolves identical periods and preperiods."""

    @pytest.mark.parametrize("trial", range(30))
    def test_periods_and_preperiods_match_across_fusion(self, trial):
        rng = np.random.default_rng(3000 + trial)
        n, pointers, counts = _random_ring_config(rng, max_n=24, max_lanes=5)
        # Starve a third of the trials so truncation lanes (-1) are
        # compared too.
        max_rounds = 40 if trial % 3 == 0 else 64 * n * n
        results = [
            batch_limit_cycles(
                n, pointers, counts, max_rounds, strict=False,
                fuse_rounds=fuse,
            )
            for fuse in FUSE_GRID
        ]
        for fuse, result in zip(FUSE_GRID[1:], results[1:]):
            context = f"trial={trial} n={n} fuse={fuse}"
            np.testing.assert_array_equal(
                result.periods, results[0].periods, err_msg=context
            )
            np.testing.assert_array_equal(
                result.preperiods, results[0].preperiods, err_msg=context
            )


class TestWalkFusionEquivalence:
    """Fused walk epochs draw the same streams, visit for visit."""

    @staticmethod
    def _random_walk_lanes(rng, n):
        lanes = []
        for _ in range(int(rng.integers(2, 5))):
            walkers = int(rng.integers(1, 4))
            positions = tuple(
                int(p) for p in rng.integers(0, n, size=walkers)
            )
            lanes.append(WalkLane(positions, seed=int(rng.integers(2**31))))
        return lanes

    @pytest.mark.parametrize("trial", range(30))
    def test_visit_tables_match_across_fusion(self, trial):
        rng = np.random.default_rng(4000 + trial)
        n = int(rng.integers(5, 24))
        lanes = self._random_walk_lanes(rng, n)
        max_rounds = int(rng.choice([48, 20 * n * n]))
        tables = []
        for fuse in FUSE_GRID:
            walks = BatchRingWalks(n, lanes, fuse_rounds=fuse)
            walks.run_until_covered(max_rounds, strict=False)
            tables.append(
                (
                    walks.first_visit.copy(),
                    walks.cover_rounds.copy(),
                    [walks.positions_lane(b) for b in range(walks.num_lanes)],
                )
            )
        for fuse, (visits, covers, positions) in zip(FUSE_GRID[1:], tables[1:]):
            context = f"trial={trial} n={n} fuse={fuse}"
            np.testing.assert_array_equal(
                visits, tables[0][0], err_msg=context
            )
            np.testing.assert_array_equal(
                covers, tables[0][1], err_msg=context
            )
            assert positions == tables[0][2], context


# --------------------------------------------------------------- shm


class TestSlabArena:
    def test_roundtrip_preserves_values_and_dtypes(self):
        arena = shm.SlabArena()
        arrays = [
            np.arange(17, dtype=np.int64),
            np.ones((3, 5), dtype=np.uint8),
            np.linspace(0.0, 1.0, 7),
        ]
        descriptors = [arena.add(a) for a in arrays]
        arena.seal()
        try:
            for array, descriptor in zip(arrays, descriptors):
                assert shm.is_descriptor(descriptor)
                view = shm.resolve(descriptor)
                np.testing.assert_array_equal(view, array)
                assert view.dtype == array.dtype
                assert not view.flags.writeable
        finally:
            arena.close()

    def test_descriptors_pick_up_segment_name_at_seal(self):
        arena = shm.SlabArena()
        descriptor = arena.add(np.zeros(4))
        assert descriptor["segment"] is None
        arena.seal()
        try:
            assert descriptor["segment"].startswith("repro-")
        finally:
            arena.close()

    def test_close_is_idempotent_and_add_after_seal_rejected(self):
        arena = shm.SlabArena()
        arena.add(np.zeros(2))
        arena.seal()
        with pytest.raises(RuntimeError):
            arena.add(np.zeros(2))
        with pytest.raises(RuntimeError):
            arena.seal()
        arena.close()
        arena.close()

    def test_csr_roundtrip_is_zero_copy(self):
        from repro.graphs.families import torus_2d

        graph = torus_2d(3, 3).to_csr()
        arena = shm.SlabArena()
        entry = shm.pack_csr(arena, graph)
        arena.seal()
        try:
            assert shm.is_csr_descriptor(entry)
            rebuilt = shm.resolve_csr(entry)
            assert rebuilt.digest == graph.digest
            # Read-only views pass straight through GraphCSR's
            # defensive-copy gate: the rebuilt graph's arrays are the
            # shared pages themselves.
            assert not rebuilt.indptr.flags.owndata
        finally:
            arena.close()


# ---------------------------------------------------- parallel sweeps


def _mixed_spec(**overrides):
    base = dict(
        name="fused-test",
        ns=(16, 24),
        ks=(2, 3),
        families=(
            InitFamily("all_on_one", "toward_node0"),
            InitFamily("equally_spaced", "negative"),
        ),
        metrics=("cover",),
        models=("rotor", "walk"),
        repetitions=2,
    )
    base.update(overrides)
    return ScenarioSpec(**base)


def _kernel_counters(manifest):
    """The deterministic kernel counters: ring.* and walk.* families."""
    return {
        name: value
        for name, value in manifest["counters"].items()
        if name.startswith(("ring.", "walk."))
    }


class TestParallelEquivalence:
    def test_jobs2_shared_memory_matches_serial(self, tmp_path):
        spec = _mixed_spec()
        serial_path = str(tmp_path / "serial.jsonl")
        with trace_session(serial_path):
            serial = run_sweep(spec, jobs=1, chunk_lanes=3)
        parallel_path = str(tmp_path / "parallel.jsonl")
        with trace_session(parallel_path):
            parallel = run_sweep(spec, jobs=2, chunk_lanes=3)

        assert len(parallel.results) == len(serial.results)
        for ours, theirs in zip(parallel.results, serial.results):
            assert ours.config == theirs.config
            assert ours.metrics == theirs.metrics
        # Same kernel work, counter for counter: the shared-memory
        # handoff and chunk scheduling must not change what the
        # kernels computed.  (executor.* counters legitimately differ
        # — the shm segment only exists at jobs>1.)
        serial_counters = _kernel_counters(load_manifest(serial_path))
        parallel_counters = _kernel_counters(load_manifest(parallel_path))
        assert serial_counters == parallel_counters

    def test_jobs2_rotor_lanes_ride_shared_memory(self, tmp_path):
        # Stabilization chunks always take the batch kernel, so their
        # lane slabs are guaranteed to ship through the arena (cover
        # chunks may elect the serial path and skip packing).
        spec = _mixed_spec(
            metrics=("stabilization",), models=("rotor",), repetitions=1
        )
        path = str(tmp_path / "trace.jsonl")
        with trace_session(path):
            parallel = run_sweep(spec, jobs=2, chunk_lanes=3)
        serial = run_sweep(spec, jobs=1, chunk_lanes=3)
        for ours, theirs in zip(parallel.results, serial.results):
            assert ours.metrics == theirs.metrics
        counters = load_manifest(path)["counters"]
        assert counters["executor.shm_segments"] == 1
        assert counters["executor.shm_bytes"] > 0

    def test_jobs2_rerun_is_fully_cached(self, tmp_path):
        spec = _mixed_spec()
        cache_dir = str(tmp_path / "cache")
        first = run_sweep(spec, jobs=2, cache_dir=cache_dir, chunk_lanes=3)
        assert first.cache_hits == 0
        rerun = run_sweep(spec, jobs=2, cache_dir=cache_dir, chunk_lanes=3)
        assert rerun.cache_misses == 0
        assert rerun.cache_hits == len(
            {cell.config.config_hash for cell in first.results}
        )
        for ours, theirs in zip(rerun.results, first.results):
            assert ours.metrics == theirs.metrics

    def test_fuse_rounds_knob_is_identity_neutral(self, tmp_path):
        spec = _mixed_spec(ns=(16,))
        cache_dir = str(tmp_path / "cache")
        baseline = run_sweep(spec, jobs=1, cache_dir=cache_dir)
        # A different fusion factor must revisit the same cache entries
        # (identical hashes) and reproduce identical metrics.
        refused = run_sweep(
            spec, jobs=2, cache_dir=cache_dir, fuse_rounds=16
        )
        assert refused.cache_misses == 0
        for ours, theirs in zip(refused.results, baseline.results):
            assert ours.metrics == theirs.metrics


class TestFuseRoundsHint:
    def test_spec_hint_is_identity_neutral_and_validated(self):
        plain = _mixed_spec()
        hinted = _mixed_spec(fuse_rounds=8)
        assert plain == hinted
        assert hinted.fuse_rounds == 8
        with pytest.raises(ValueError, match="fuse_rounds"):
            _mixed_spec(fuse_rounds=0)

    def test_general_spec_hint_validated(self):
        from repro.graphs.families import star
        from repro.sweep.spec import GeneralScenarioSpec

        spec = GeneralScenarioSpec(
            name="g", graphs=(("star5", star(5)),), ks=(1,), seeds=(0,),
            fuse_rounds=4,
        )
        assert spec.fuse_rounds == 4
        with pytest.raises(ValueError, match="fuse_rounds"):
            GeneralScenarioSpec(
                name="g", graphs=(("star5", star(5)),), ks=(1,), seeds=(0,),
                fuse_rounds=-1,
            )


# ------------------------------------------------------ identity lint


class TestShmIdentitySafety:
    """Segment naming stays outside every identity-producing function."""

    def test_shm_module_is_clean_under_d003(self):
        report = run_lint(["src/repro/sweep/shm.py"], select=["D003"])
        assert report.findings == []

    def test_d003_would_catch_pid_naming_in_identity_code(self, tmp_path):
        # Canary: the rule has teeth over exactly this pattern — moving
        # pid-derived naming into an identity helper is flagged.
        target = tmp_path / "pkg" / "shmlike.py"
        target.parent.mkdir(parents=True)
        target.write_text(textwrap.dedent(
            """
            import os

            def segment_digest(seq):
                return f"repro-{os.getpid()}-{seq}"
            """
        ))
        report = run_lint(
            [str(target)], select=["D003"],
            lock_path=str(tmp_path / "lock"),
        )
        assert [finding.code for finding in report.findings] == ["D003"]
