"""Documentation is executable: README snippets and doctests run.

A reproduction repo lives or dies by its README; this file keeps the
quickstart honest by running the same API calls it shows.
"""

import doctest


class TestReadmeQuickstart:
    """Mirror of the README 'Quickstart' section."""

    def test_quickstart_block_runs(self):
        from repro import RingRotorRouter, RingRandomWalks
        from repro.core import placement, pointers

        n, k = 128, 8

        agents = placement.equally_spaced(n, k)
        engine = RingRotorRouter(
            n, pointers.ring_negative(n, agents), agents
        )
        rotor_cover = engine.run_until_covered()
        assert 0 < rotor_cover < n * n

        walks = RingRandomWalks(n, agents, seed=7)
        walk_cover = walks.run_until_covered()
        assert walk_cover > 0

        engine = RingRotorRouter(
            n, pointers.ring_toward_node(n, 0), placement.all_on_one(k)
        )
        worst_cover = engine.run_until_covered()
        assert worst_cover > rotor_cover

        from repro.analysis.return_time import ring_rotor_return_time_exact

        result = ring_rotor_return_time_exact(
            n, placement.all_on_one(4), pointers.ring_toward_node(n, 0)
        )
        assert result.worst_gap == 2 * n / 4  # "= 2 n/k exactly"

    def test_package_docstring_example_runs(self):
        import repro

        results = doctest.testmod(repro, verbose=False)
        assert results.failed == 0

    def test_timing_doctest(self):
        from repro.util import timing

        results = doctest.testmod(timing, verbose=False)
        assert results.failed == 0


class TestDocsMentionRealFiles:
    def test_design_md_modules_exist(self):
        # Every module path mentioned in DESIGN.md's inventory resolves.
        import importlib
        import re

        with open("DESIGN.md") as handle:
            text = handle.read()
        for match in sorted(set(re.findall(r"`(repro\.[a-z_.]+)`", text))):
            importlib.import_module(match)

    def test_experiments_md_benchmarks_exist(self):
        import os
        import re

        with open("EXPERIMENTS.md") as handle:
            text = handle.read()
        for path in sorted(set(re.findall(r"`(benchmarks/[a-z0-9_]+\.py)`", text))):
            assert os.path.exists(path), path
