"""Tests for repro.util.rng."""

import numpy as np
import pytest

from repro.util.rng import (
    choice_seeded,
    derive_seed,
    make_rng,
    shuffled,
    spawn_rngs,
)


class TestMakeRng:
    def test_int_seed_is_deterministic(self):
        a = make_rng(42).integers(0, 1_000_000, size=10)
        b = make_rng(42).integers(0, 1_000_000, size=10)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = make_rng(1).integers(0, 1_000_000, size=10)
        b = make_rng(2).integers(0, 1_000_000, size=10)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert make_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestDeriveSeed:
    def test_stable(self):
        assert derive_seed(1, "x", 2) == derive_seed(1, "x", 2)

    def test_sensitive_to_labels(self):
        assert derive_seed(1, "x") != derive_seed(1, "y")
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_order_matters(self):
        assert derive_seed(0, "a", "b") != derive_seed(0, "b", "a")

    def test_fits_in_63_bits(self):
        for i in range(50):
            assert 0 <= derive_seed(i, "label") < 2 ** 63

    def test_numeric_vs_string_labels_distinguished_by_position(self):
        # "1:2" vs "12" style collisions must not occur.
        assert derive_seed(1, 23) != derive_seed(12, 3)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5, "ctx")) == 5

    def test_reproducible(self):
        a = [g.integers(0, 10**9) for g in spawn_rngs(7, 3, "ctx")]
        b = [g.integers(0, 10**9) for g in spawn_rngs(7, 3, "ctx")]
        assert a == b

    def test_independent(self):
        values = [g.integers(0, 10**9) for g in spawn_rngs(7, 10, "ctx")]
        assert len(set(int(v) for v in values)) == 10

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestHelpers:
    def test_choice_seeded_uniformish(self):
        rng = make_rng(0)
        picks = [choice_seeded(rng, ["a", "b", "c"]) for _ in range(300)]
        assert set(picks) == {"a", "b", "c"}

    def test_choice_seeded_empty_rejected(self):
        with pytest.raises(ValueError):
            choice_seeded(make_rng(0), [])

    def test_shuffled_is_permutation(self):
        items = list(range(20))
        result = shuffled(make_rng(3), items)
        assert sorted(result) == items
        assert items == list(range(20))  # input untouched

    def test_shuffled_deterministic(self):
        assert shuffled(make_rng(5), range(10)) == shuffled(
            make_rng(5), range(10)
        )
