"""Tests for the stabilization-time extension experiment."""

from repro.experiments.stabilization import (
    run_stabilization,
    stabilization_battery,
)


class TestBattery:
    def test_friendly_init_already_stable(self):
        battery = stabilization_battery(64, 4, seeds=())
        preperiod, period = battery["spaced/positive"]
        assert preperiod == 0
        # The period is a whole number of patrol loops (2 * n/k each).
        assert period % (2 * (64 // 4)) == 0

    def test_periods_are_patrol_multiples(self):
        n, k = 64, 4
        for name, (_pre, period) in stabilization_battery(
            n, k, seeds=(0,)
        ).items():
            assert period % (n // k) == 0, name

    def test_preperiod_below_quadratic(self):
        n, k = 96, 4
        for name, (preperiod, _) in stabilization_battery(
            n, k, seeds=(0, 1)
        ).items():
            assert preperiod <= n * n, name


class TestReport:
    def test_report_structure(self):
        report = run_stabilization(ns=(48, 96), k=4, seeds=(0,))
        table = report.tables[0]
        assert len(table.rows) == 2 * 4  # 2 sizes x 4 initializations
        ratios = table.column("preperiod/n^2")
        assert all(0.0 <= r <= 1.0 for r in ratios)
        normalized_periods = table.column("period/(n/k)")
        assert all(p >= 1.0 for p in normalized_periods)
