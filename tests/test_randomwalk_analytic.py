"""Tests for closed-form walk quantities (and simulation agreement)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.randomwalk.analytic import (
    cover_time_best_k_walks,
    cover_time_worst_k_walks,
    expected_return_gap,
    gambler_ruin_duration,
    gambler_ruin_probability,
    harmonic_number,
    max_hitting_time_ring,
    path_hitting_time_to_end,
    ring_commute_time,
    ring_cover_time_single,
    ring_hitting_time,
)
from repro.util.rng import make_rng


class TestHittingTimes:
    def test_known_values(self):
        assert ring_hitting_time(10, 1) == 9.0
        assert ring_hitting_time(10, 5) == 25.0

    @given(st.integers(3, 100), st.integers(0, 99))
    def test_symmetry_d_and_n_minus_d(self, n, d):
        d %= n
        assert ring_hitting_time(n, d) == ring_hitting_time(n, n - d)

    def test_max_hitting(self):
        assert max_hitting_time_ring(10) == 25.0
        assert max_hitting_time_ring(11) == 30.0

    @given(st.integers(3, 60))
    def test_max_hitting_dominates(self, n):
        assert all(
            ring_hitting_time(n, d) <= max_hitting_time_ring(n)
            for d in range(n)
        )

    def test_commute_is_double(self):
        assert ring_commute_time(12, 3) == 2 * ring_hitting_time(12, 3)

    def test_path_hitting(self):
        assert path_hitting_time_to_end(10, 0) == 100.0
        assert path_hitting_time_to_end(10, 6) == 64.0

    def test_path_hitting_validation(self):
        with pytest.raises(ValueError):
            path_hitting_time_to_end(5, 6)


class TestGamblersRuin:
    def test_probability(self):
        assert gambler_ruin_probability(3, 12) == 0.25

    def test_boundaries(self):
        assert gambler_ruin_probability(0, 5) == 0.0
        assert gambler_ruin_probability(5, 5) == 1.0

    def test_duration(self):
        assert gambler_ruin_duration(3, 12) == 27.0

    def test_validation(self):
        with pytest.raises(ValueError):
            gambler_ruin_probability(6, 5)
        with pytest.raises(ValueError):
            gambler_ruin_duration(-1, 5)

    def test_simulated_probability_agrees(self):
        # Direct Monte Carlo of the +/-1 walk absorbed at 0 and b.
        a, b, trials = 3, 9, 4000
        rng = make_rng(0)
        wins = 0
        for _ in range(trials):
            x = a
            while 0 < x < b:
                x += 1 if rng.random() < 0.5 else -1
            wins += x == b
        assert abs(wins / trials - a / b) < 0.03


class TestCoverFormulas:
    def test_single_cover(self):
        assert ring_cover_time_single(10) == 45.0

    def test_k1_fallbacks(self):
        assert cover_time_worst_k_walks(10, 1) == 45.0
        assert cover_time_best_k_walks(10, 1) == 45.0

    def test_shapes_decrease_in_k(self):
        worst = [cover_time_worst_k_walks(100, k) for k in (2, 4, 8, 16)]
        best = [cover_time_best_k_walks(100, k) for k in (2, 4, 8, 16)]
        assert worst == sorted(worst, reverse=True)
        assert best == sorted(best, reverse=True)

    def test_return_gap(self):
        assert expected_return_gap(30, 3) == 10.0

    def test_harmonic(self):
        assert harmonic_number(0) == 0.0
        assert harmonic_number(3) == pytest.approx(1.0 + 0.5 + 1 / 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            ring_hitting_time(2, 1)
        with pytest.raises(ValueError):
            expected_return_gap(10, 0)
        with pytest.raises(ValueError):
            harmonic_number(-1)
