"""Bench trajectory recording: independent recorders must merge.

``BENCH_sweep.json`` is written by *every* ``bench_sweep_*`` module,
in whatever order pytest runs them (or a developer re-runs one).  The
recorder therefore read-modify-writes the file atomically: a section
recorded by one benchmark must survive another benchmark recording a
different section afterwards — losing sections silently erases the
perf trajectory CI uploads and floors are pinned against.
"""

import importlib.util
import json
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _bench_conftest():
    """The benchmarks' conftest module (not a package; load by path)."""
    spec = importlib.util.spec_from_file_location(
        "bench_conftest", REPO_ROOT / "benchmarks" / "conftest.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestRecordBench:
    def test_two_recorders_with_different_keys_both_survive(self, tmp_path):
        conftest = _bench_conftest()
        path = tmp_path / "BENCH_test.json"
        conftest._record_bench(path, "walk_kernel", {"speedup": 5.1})
        conftest._record_bench(path, "fused_ring_limit", {"speedup": 1.13})
        data = json.loads(path.read_text())
        assert data == {
            "walk_kernel": {"speedup": 5.1},
            "fused_ring_limit": {"speedup": 1.13},
        }

    def test_rerecording_a_key_replaces_only_that_section(self, tmp_path):
        conftest = _bench_conftest()
        path = tmp_path / "BENCH_test.json"
        conftest._record_bench(path, "a", {"v": 1})
        conftest._record_bench(path, "b", {"v": 2})
        conftest._record_bench(path, "a", {"v": 3})
        data = json.loads(path.read_text())
        assert data == {"a": {"v": 3}, "b": {"v": 2}}

    def test_corrupt_existing_file_is_replaced_not_fatal(self, tmp_path):
        conftest = _bench_conftest()
        path = tmp_path / "BENCH_test.json"
        path.write_text("{not json")
        conftest._record_bench(path, "a", {"v": 1})
        assert json.loads(path.read_text()) == {"a": {"v": 1}}

    def test_write_is_atomic_no_temp_residue(self, tmp_path):
        conftest = _bench_conftest()
        path = tmp_path / "BENCH_test.json"
        conftest._record_bench(path, "a", {"v": 1})
        assert [p.name for p in tmp_path.iterdir()] == ["BENCH_test.json"]

    def test_generated_trajectory_retains_every_section(self):
        # The trajectory file is generated (gitignored; CI uploads it
        # as an artifact).  When it exists, whatever benches ran must
        # have *merged* — one section per bench, never a lone survivor
        # from the last writer.
        path = REPO_ROOT / "BENCH_sweep.json"
        if not path.exists():
            import pytest

            pytest.skip("BENCH_sweep.json not generated yet")
        data = json.loads(path.read_text())
        assert isinstance(data, dict) and data
        assert all(isinstance(section, dict) for section in data.values())
