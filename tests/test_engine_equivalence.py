"""Property tests: the specialized engines equal the reference engine.

The ring and path engines are performance specializations; these tests
pin them to the general engine step for step on random initializations
(same positions, same pointers, same move multisets, same counters) —
the strongest correctness guarantee in the suite.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import MultiAgentRotorRouter
from repro.core.path import PathRotorRouter
from repro.core.pointers import ring_pointers_to_ports
from repro.core.ring import RingRotorRouter
from repro.graphs.families import path_graph
from repro.graphs.ring import ring_graph
from repro.util.rng import make_rng


def _dirs_to_path_ports(directions):
    """Path-engine directions -> general-engine port indices.

    Interior nodes use the ring convention (port 0 = right); endpoints
    have a single port 0.
    """
    n = len(directions)
    ports = []
    for v, d in enumerate(directions):
        if v == 0 or v == n - 1:
            ports.append(0)
        else:
            ports.append(0 if d == 1 else 1)
    return ports


@st.composite
def ring_setup(draw):
    n = draw(st.integers(3, 32))
    k = draw(st.integers(1, 6))
    dirs = draw(
        st.lists(st.sampled_from((1, -1)), min_size=n, max_size=n)
    )
    agents = draw(st.lists(st.integers(0, n - 1), min_size=k, max_size=k))
    rounds = draw(st.integers(1, 120))
    return n, dirs, agents, rounds


@st.composite
def path_setup(draw):
    n = draw(st.integers(2, 32))
    k = draw(st.integers(1, 6))
    dirs = draw(
        st.lists(st.sampled_from((1, -1)), min_size=n, max_size=n)
    )
    agents = draw(st.lists(st.integers(0, n - 1), min_size=k, max_size=k))
    rounds = draw(st.integers(1, 120))
    return n, dirs, agents, rounds


class TestRingEquivalence:
    @given(ring_setup())
    @settings(max_examples=60, deadline=None)
    def test_trajectories_match(self, setup):
        n, dirs, agents, rounds = setup
        ring = RingRotorRouter(n, list(dirs), agents)
        general = MultiAgentRotorRouter(
            ring_graph(n), ring_pointers_to_ports(dirs), agents
        )
        for _ in range(rounds):
            ring_moves = sorted(ring.step())
            general_moves = sorted(general.step())
            assert ring_moves == general_moves
            assert ring.positions() == general.positions()
        # Counters agree too.
        for v in range(n):
            assert ring.visit_counts[v] == general.visit_counts[v]
            assert ring.exit_counts[v] == general.exit_counts[v]
        # Pointer states agree under the direction <-> port mapping.
        for v in range(n):
            expected_dir = 1 if general.pointers[v] == 0 else -1
            assert ring.ptr[v] == expected_dir

    @given(ring_setup())
    @settings(max_examples=25, deadline=None)
    def test_cover_times_match(self, setup):
        n, dirs, agents, _rounds = setup
        ring = RingRotorRouter(n, list(dirs), agents, track_counts=False)
        general = MultiAgentRotorRouter(
            ring_graph(n), ring_pointers_to_ports(dirs), agents
        )
        budget = 8 * n * n + 64
        assert ring.run_until_covered(budget) == \
            general.run_until_covered(budget)

    @given(ring_setup(), st.integers(0, 2 ** 20))
    @settings(max_examples=25, deadline=None)
    def test_equivalence_with_random_holds(self, setup, hold_seed):
        n, dirs, agents, rounds = setup
        rng = make_rng(hold_seed)
        ring = RingRotorRouter(n, list(dirs), agents)
        general = MultiAgentRotorRouter(
            ring_graph(n), ring_pointers_to_ports(dirs), agents
        )
        for _ in range(min(rounds, 40)):
            holds = {}
            for v, c in list(ring.counts.items()):
                if c > 0 and rng.random() < 0.4:
                    holds[v] = int(rng.integers(1, c + 1))
            assert sorted(ring.step(holds)) == sorted(general.step(holds))
            assert ring.positions() == general.positions()


class TestPathEquivalence:
    @given(path_setup())
    @settings(max_examples=60, deadline=None)
    def test_trajectories_match(self, setup):
        n, dirs, agents, rounds = setup
        path = PathRotorRouter(n, list(dirs), agents)
        general = MultiAgentRotorRouter(
            path_graph(n), _dirs_to_path_ports(dirs), agents
        )
        for _ in range(rounds):
            assert sorted(path.step()) == sorted(general.step())
            assert path.positions() == general.positions()

    @given(path_setup())
    @settings(max_examples=20, deadline=None)
    def test_cover_times_match(self, setup):
        n, dirs, agents, _rounds = setup
        path = PathRotorRouter(n, list(dirs), agents, track_counts=False)
        general = MultiAgentRotorRouter(
            path_graph(n), _dirs_to_path_ports(dirs), agents
        )
        budget = 8 * n * n + 64
        assert path.run_until_covered(budget) == \
            general.run_until_covered(budget)
