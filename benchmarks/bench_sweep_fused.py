"""[perf] Round-fused kernels vs the per-round dispatch cadence.

Round fusion attacks the last fixed cost of the batch kernels: the
Python dispatch per simulated round (walk kernel: per 1024-round
block).  One fused epoch advances ``fuse_rounds`` rounds/blocks per
trip through the interpreter, with cover/stabilization detection
deferred to the epoch boundary and the exact round recovered by
replaying the final epoch — results are bit-identical at every fusion
factor (asserted here *before* anything is timed; see
``tests/test_sweep_fused.py`` for the randomized version).

Two measurements, both interleaved best-of-3 (A/B alternation, so
machine noise drifts across both sides equally):

* **walk** — the fused batch walk kernel against the serial
  per-config ``RingRandomWalks`` loop a sweep would otherwise run.
  This is the headline: the walk kernel is RNG-throughput-bound, and
  fusing block dispatch is what closed the gap from ~2.7x to >5x.
* **ring limit search** — ``batch_limit_cycles`` at ``fuse_rounds=16``
  against the per-round cadence (``fuse_rounds=1``) on a long-period
  stabilization shape, where deferred fingerprint comparison pays.
  The win is real but modest (~15%), and small shapes that resolve
  inside one epoch regress — which is why the ring kernel's *default*
  stays ``fuse_rounds=1`` and fusion is an opt-in scheduling hint.

``BENCH_SWEEP_QUICK=1`` shrinks shapes and relaxes floors for CI
smoke runners (noisy-neighbor machines); the full shapes carry the
acceptance bars.
"""

import os
import time

import numpy as np

from conftest import record_sweep_bench
from repro.randomwalk.ring_walk import RingRandomWalks
from repro.sweep.batch_ring import batch_limit_cycles
from repro.sweep.batch_walk import BatchRingWalks, WalkLane
from repro.util.rng import derive_seed

QUICK = os.environ.get("BENCH_SWEEP_QUICK", "") not in ("", "0")

# Walk side: the bench_sweep_walk shape (the kernel's sweep workload).
# The quick shape stays large enough that the batch layout's advantage
# (~3x there) clears the smoke floor with margin; shrinking further
# drowns the kernel in fixed per-run costs.
WALK_N = 128 if QUICK else 256
WALK_LANES = 64 if QUICK else 128
WALK_K = 4
WALK_MAX_ROUNDS = 64 * WALK_N * WALK_N
#: CI smoke floor vs the acceptance bar of the fused kernel.
WALK_MIN_SPEEDUP = 2.0 if QUICK else 5.0

# Ring side: a long-period limit-cycle search (periods up to ~2n make
# phase 1 run long enough for deferred comparison to matter).
RING_N = 64 if QUICK else 128
RING_LANES = 32 if QUICK else 64
RING_K = 3
RING_MAX_ROUNDS = 64 * RING_N * RING_N
RING_FUSE = 16
#: Fusion must not regress the ring pipeline on its favourable shape;
#: the measured win (~1.15x full shape) is recorded, not asserted —
#: single-digit percentages drown in smoke-runner noise.
RING_MIN_RATIO = 0.8 if QUICK else 0.9

BEST_OF = 3


def _walk_lanes() -> list[WalkLane]:
    rng = np.random.default_rng(
        derive_seed(0, "bench-sweep-fused-walk", WALK_N, WALK_LANES)
    )
    return [
        WalkLane(
            positions=tuple(
                int(p) for p in rng.integers(0, WALK_N, size=WALK_K)
            ),
            seed=int(rng.integers(0, 2**31)),
        )
        for _ in range(WALK_LANES)
    ]


def _ring_config() -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(
        derive_seed(0, "bench-sweep-fused-ring", RING_N, RING_LANES)
    )
    pointers = rng.choice(
        np.array([-1, 1], dtype=np.int64), size=(RING_LANES, RING_N)
    )
    counts = np.zeros((RING_LANES, RING_N), dtype=np.int64)
    for lane in range(RING_LANES):
        counts[lane, rng.choice(RING_N, size=RING_K, replace=False)] = 1
    return pointers, counts


def _interleaved_best(side_a, side_b, repeats=BEST_OF):
    """Best wall-clock of each side, alternating A/B per repeat."""
    best_a = best_b = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        side_a()
        best_a = min(best_a, time.perf_counter() - started)
        started = time.perf_counter()
        side_b()
        best_b = min(best_b, time.perf_counter() - started)
    return best_a, best_b


def test_fused_walk_vs_reference_loop(benchmark):
    lanes = _walk_lanes()

    def fused():
        kernel = BatchRingWalks(
            WALK_N, [WalkLane(l.positions, l.seed) for l in lanes]
        )
        return kernel.run_until_covered(WALK_MAX_ROUNDS)

    def reference():
        return [
            RingRandomWalks(
                WALK_N, lane.positions, seed=lane.seed
            ).run_until_covered(WALK_MAX_ROUNDS)
            for lane in lanes
        ]

    # Bit-identity before timing: same seeds, same covers, visit for
    # visit — the measured gap is pure dispatch/layout, not less work.
    fused_covers = fused()
    assert [int(c) for c in fused_covers] == reference()

    fused_best, reference_best = _interleaved_best(fused, reference)
    benchmark.pedantic(fused, rounds=1, iterations=1)

    total_rounds = int(fused_covers.sum())
    speedup = reference_best / fused_best
    benchmark.extra_info["speedup vs per-config loop"] = round(speedup, 1)
    benchmark.extra_info["fused walk-rounds/sec"] = round(
        total_rounds / fused_best
    )
    record_sweep_bench(
        "fused_walk",
        {
            "n": WALK_N,
            "lanes": WALK_LANES,
            "k": WALK_K,
            "quick": QUICK,
            "fused_seconds": round(fused_best, 4),
            "reference_seconds": round(reference_best, 4),
            "speedup_vs_reference": round(speedup, 1),
        },
    )
    assert speedup >= WALK_MIN_SPEEDUP, (
        f"fused walk kernel sustains only {speedup:.1f}x the per-config "
        f"loop ({fused_best:.3f}s vs {reference_best:.3f}s)"
    )


def test_fused_ring_limit_search(benchmark):
    pointers, counts = _ring_config()

    def fused():
        return batch_limit_cycles(
            RING_N, pointers, counts, RING_MAX_ROUNDS, strict=False,
            fuse_rounds=RING_FUSE,
        )

    def unfused():
        return batch_limit_cycles(
            RING_N, pointers, counts, RING_MAX_ROUNDS, strict=False,
        )

    fused_result = fused()
    unfused_result = unfused()
    np.testing.assert_array_equal(
        fused_result.periods, unfused_result.periods
    )
    np.testing.assert_array_equal(
        fused_result.preperiods, unfused_result.preperiods
    )

    fused_best, unfused_best = _interleaved_best(fused, unfused)
    benchmark.pedantic(fused, rounds=1, iterations=1)

    ratio = unfused_best / fused_best
    benchmark.extra_info["fused/unfused speedup"] = round(ratio, 2)
    record_sweep_bench(
        "fused_ring_limit",
        {
            "n": RING_N,
            "lanes": RING_LANES,
            "k": RING_K,
            "fuse_rounds": RING_FUSE,
            "quick": QUICK,
            "fused_seconds": round(fused_best, 4),
            "unfused_seconds": round(unfused_best, 4),
            "speedup_vs_unfused": round(ratio, 2),
        },
    )
    assert ratio >= RING_MIN_RATIO, (
        f"fuse_rounds={RING_FUSE} runs at {ratio:.2f}x the per-round "
        f"cadence ({fused_best:.3f}s vs {unfused_best:.3f}s)"
    )
