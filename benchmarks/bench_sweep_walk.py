"""[perf] Batch walk kernel vs a per-config RingRandomWalks loop.

The walk kernel's reason to exist: a sweep's stochastic cells fan out
into hundreds of repetition lanes, and the batched layout pays the
per-block Python overhead (cumsum, modulo, first-visit ``np.unique``)
once for all of them instead of once per lane.  The headline number in
``extra_info`` is walk-rounds/sec of the batch against the same lanes
run as a serial loop of reference systems — the draws are per-lane in
both, so the measured gap is exactly the layout win.
"""

import time

import numpy as np

from conftest import record_sweep_bench
from repro.randomwalk.ring_walk import RingRandomWalks
from repro.sweep.batch_walk import BatchRingWalks, WalkLane
from repro.util.rng import derive_seed

N = 256
LANES = 128
K = 4
MAX_ROUNDS = 64 * N * N


def _lanes() -> list[WalkLane]:
    rng = np.random.default_rng(derive_seed(0, "bench-sweep-walk", N, LANES))
    return [
        WalkLane(
            positions=tuple(int(p) for p in rng.integers(0, N, size=K)),
            seed=int(rng.integers(0, 2**31)),
        )
        for _ in range(LANES)
    ]


def _reference_loop(lanes: list[WalkLane]) -> tuple[list[int], float]:
    """Serial per-config loop: one RingRandomWalks per lane."""
    started = time.perf_counter()
    covers = [
        RingRandomWalks(N, lane.positions, seed=lane.seed).run_until_covered(
            MAX_ROUNDS
        )
        for lane in lanes
    ]
    return covers, time.perf_counter() - started


def test_batch_walk_kernel_throughput(benchmark):
    lanes = _lanes()
    timings: list[float] = []
    results: list[np.ndarray] = []

    def run():
        kernel = BatchRingWalks(N, [WalkLane(l.positions, l.seed) for l in lanes])
        started = time.perf_counter()
        covers = kernel.run_until_covered(MAX_ROUNDS)
        timings.append(time.perf_counter() - started)
        results.append(covers)
        return int(covers.max())

    # Manual timing inside the workload keeps the ratio available even
    # under --benchmark-disable; extra passes give a best-of-3 floor.
    assert benchmark(run) > 0
    while len(timings) < 3:
        run()
    reference_covers, reference_elapsed = _reference_loop(lanes)

    # Same seeds => identical cover rounds; the speedup compares equal work.
    assert [int(c) for c in results[0]] == reference_covers

    total_rounds = int(sum(reference_covers))
    batch_rps = total_rounds / min(timings)
    reference_rps = total_rounds / reference_elapsed
    speedup = batch_rps / reference_rps
    benchmark.extra_info["lanes"] = LANES
    benchmark.extra_info["batch walk-rounds/sec"] = round(batch_rps)
    benchmark.extra_info["reference walk-rounds/sec"] = round(reference_rps)
    benchmark.extra_info["speedup vs per-config loop"] = round(speedup, 1)
    record_sweep_bench(
        "walk_kernel",
        {
            "n": N,
            "lanes": LANES,
            "k": K,
            "walk_rounds_per_sec": round(batch_rps),
            "reference_rounds_per_sec": round(reference_rps),
            "speedup_vs_reference": round(speedup, 1),
        },
    )
    # The interval-event + round-fused kernel sustains ~5x on this
    # shape; 3x leaves headroom for noisy-neighbor CI runners while
    # still catching any regression to the pre-fusion cadence (~2.7x).
    assert speedup >= 3.0, (
        f"batch walk kernel sustains only {speedup:.1f}x the per-config "
        f"loop ({batch_rps:,.0f} vs {reference_rps:,.0f} rounds/sec)"
    )
