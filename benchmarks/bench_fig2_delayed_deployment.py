"""[F2.phaseB] Figure 2 / Theorem 1 proof deployment on the path.

Executes the Phase A/B1/B2 construction, checks the desirable-
configuration ladder grows monotonically, that B1 (full activity)
dominates the runtime as in the proof's accounting, and that the
Lemma 3 sandwich brackets the real undelayed cover time.
"""

from conftest import run_once

from repro.experiments.deployments import (
    run_theorem1_deployment,
    undelayed_path_cover_time,
)

CASES = ((240, 6), (320, 8))


def test_deployment_sandwich(benchmark):
    def execute():
        results = {}
        for n, k in CASES:
            trace = run_theorem1_deployment(n, k)
            cover = undelayed_path_cover_time(n, k)
            results[(n, k)] = (trace, cover)
        return results

    results = run_once(benchmark, execute)
    for (n, k), (trace, cover) in results.items():
        tau, total = trace.slow_down_bounds()
        benchmark.extra_info[f"path n={n} k={k}"] = {
            "tau (B1)": tau,
            "T (total)": total,
            "undelayed C": cover,
            "S ladder": trace.s_ladder,
        }
        assert tau <= cover <= total, f"Lemma 3 sandwich broken at {(n, k)}"
        ladder = trace.s_ladder
        assert all(b > a for a, b in zip(ladder, ladder[1:]))
        assert trace.phase_b1_rounds >= trace.phase_b2_rounds
        assert trace.phase_b1_rounds >= trace.phase_a_rounds / 4


def test_deployment_scales_like_undelayed(benchmark):
    """tau and C share the Θ(n²/log k) shape: their ratio is stable."""

    def execute():
        ratios = []
        for n in (160, 240, 320):
            trace = run_theorem1_deployment(n, 6)
            tau, _ = trace.slow_down_bounds()
            ratios.append(tau / undelayed_path_cover_time(n, 6))
        return ratios

    ratios = run_once(benchmark, execute)
    benchmark.extra_info["tau/C ratios"] = [round(r, 3) for r in ratios]
    assert max(ratios) / min(ratios) < 2.0
    assert all(r <= 1.0 for r in ratios)  # tau is a lower bound
