"""[L12] Lemma 12: adjacent lazy domains converge to within ~10 nodes.

From deliberately lopsided placements, after enough rounds the lazy
domain sizes equalize — the limit-behaviour engine behind Theorem 6.
"""

from conftest import run_once

from repro.analysis.domains_stats import lemma12_adjacent_difference
from repro.core import pointers
from repro.util.rng import make_rng

N = 240


def _lopsided_placement(n, k, seed):
    """Half the agents crowded into a tenth of the ring, rest spread."""
    rng = make_rng(seed)
    crowded = sorted(
        int(v) for v in rng.choice(n // 10, size=k // 2, replace=False)
    )
    spread = [
        n // 5 + (i * 4 * n // 5) // max(1, (k - k // 2))
        for i in range(k - k // 2)
    ]
    return crowded + spread


def test_lazy_domains_equalize(benchmark):
    def sweep():
        diffs = {}
        for k in (4, 6, 8):
            agents = _lopsided_placement(N, k, seed=k)
            diffs[k] = lemma12_adjacent_difference(
                N, agents, pointers.ring_negative(N, agents),
                rounds=80 * N,
            )
        return diffs

    diffs = run_once(benchmark, sweep)
    benchmark.extra_info["max adjacent lazy differences"] = diffs
    for k, diff in diffs.items():
        assert diff <= 10, f"Lemma 12 bound exceeded at k={k}: {diff}"


def test_convergence_is_not_immediate(benchmark):
    """Sanity: early in the run, domains genuinely differ (so the
    equalization above is a real dynamical statement)."""
    from repro.core.domains import VisitTypeTracker, domain_snapshot
    from repro.core.ring import RingRotorRouter

    k = 6
    agents = _lopsided_placement(N, k, seed=11)

    def measure():
        e = RingRotorRouter(
            N, pointers.ring_negative(N, agents), agents, track_counts=False
        )
        tracker = VisitTypeTracker(e)
        while e.unvisited:
            tracker.advance()
        early = domain_snapshot(e, tracker).max_adjacent_lazy_difference()
        for _ in range(80 * N):
            tracker.advance()
        late = domain_snapshot(e, tracker).max_adjacent_lazy_difference()
        return early, late

    early, late = run_once(benchmark, measure)
    benchmark.extra_info["difference at cover"] = early
    benchmark.extra_info["difference after settling"] = late
    assert early > late or early <= 10
    assert late <= 10
