"""[perf] CSR-batched general-graph kernel vs the serial per-cell engine.

Before this kernel, the general-graph cells behind ``speedup_graphs``
(and any :meth:`~repro.analysis.backend.MeasurementPlan.rotor_cover_general`
request) were the last serial compute path in the codebase: the
executor's general chunk ran one
:class:`repro.core.engine.MultiAgentRotorRouter` per cell, round by
round, each round costing an ``np.flatnonzero`` over all n nodes plus
a Python loop over the occupied ones.  The CSR kernel
(:mod:`repro.sweep.batch_general`) instead steps *all* cells of a
chunk — across seeds, k-values and families — as lanes of one sparse
batch: per round a fixed sequence of numpy ops over the occupied
(lane, node) pairs only, plus a scalar pure-Python finisher for the
long straggler tails where numpy dispatch cannot be amortized.

This benchmark pins the delivered speedup on a **speedup_graphs-shaped
grid** — the scaled default families (torus / hypercube / clique /
lollipop / G(n,p); random-regular is left out to keep the bench free
of the optional networkx dependency) over the k-ladder with the k = 1
speed-up baselines and per-family seeds:

* **serial** — the pre-PR ``_compute_general_chunk`` body, kept
  verbatim below: one reference engine per cell;
* **batch** — ``batch_general_covers`` over the same cells as one
  kernel invocation (exactly what the executor's general chunk runs).

Identity gates the timing: every cell's cover round must be
bit-identical across the two paths before a speedup is reported.
Headline numbers land in ``extra_info`` and ``BENCH_sweep.json`` (see
``conftest.record_sweep_bench``), uploaded as the existing CI
artifact.  ``BENCH_SWEEP_QUICK=1`` shrinks the grid for CI smoke runs
(small grids cannot amortize batching, so the quick floor is lower;
the full shape keeps the >= 10x acceptance bar).
"""

import os
import time

from conftest import record_sweep_bench
from repro.core.engine import MultiAgentRotorRouter
from repro.graphs import clique, gnp_random_graph, hypercube, lollipop, torus_2d
from repro.sweep.batch_general import batch_general_covers
from repro.sweep.cells import GeneralRotorCell
from repro.sweep.spec import general_instance

QUICK = os.environ.get("BENCH_SWEEP_QUICK", "") not in ("", "0")

#: CI smoke runners are noisy-neighbor machines and the quick grid is
#: too small to amortize batching; the full shape carries the >= 10x
#: acceptance bar of the migration, the quick shape a floor.
MIN_SPEEDUP = 1.5 if QUICK else 10.0

KS = (1, 2, 4) if QUICK else (1, 2, 4, 8, 16, 32)
SEEDS = (0, 1) if QUICK else (0, 1, 2, 3, 4, 5)


def _families():
    """The speedup_graphs default shape (sans networkx), bench-sized."""
    if QUICK:
        return {
            "torus": torus_2d(8, 8),
            "hypercube": hypercube(6),
            "lollipop": lollipop(10, 12),
            "gnp": gnp_random_graph(64, 0.12, seed=5),
        }
    return {
        "torus": torus_2d(32, 32),
        "hypercube": hypercube(10),
        "clique": clique(128),
        "lollipop": lollipop(48, 80),
        "gnp": gnp_random_graph(512, 0.02, seed=5),
    }


def _grid():
    """Materialize the (family x k x seed) grid as general cells."""
    cells, graphs = [], {}
    for name, graph in sorted(_families().items()):
        budget = 16 * graph.diameter() * graph.num_edges + 64
        graphs[name] = graph
        for k in KS:
            for seed in SEEDS:
                agents, ports = general_instance(graph, k, seed)
                cells.append(
                    (name, GeneralRotorCell.from_graph(
                        graph, agents, ports, budget
                    ))
                )
    return cells, graphs


def _run_serial(cells, graphs):
    """The pre-PR general chunk, verbatim: one engine per cell."""
    covers = []
    for name, cell in cells:
        engine = MultiAgentRotorRouter(
            graphs[name], list(cell.ports), list(cell.agents)
        )
        try:
            cover = engine.run_until_covered(cell.max_rounds)
        except RuntimeError:
            cover = None
        covers.append(cover)
    return covers


def _run_batch(cells):
    """The shipped path: every cell one lane of one kernel invocation."""
    covers = batch_general_covers(
        [
            (cell.csr(), cell.ports, cell.agents, cell.max_rounds)
            for _, cell in cells
        ],
        strict=False,
    )
    return [int(c) if c >= 0 else None for c in covers]


def test_general_kernel_speedup(benchmark):
    cells, graphs = _grid()
    batch_timings: list[float] = []
    serial_timings: list[float] = []
    outputs: dict[str, list] = {}

    def run_batch():
        started = time.perf_counter()
        covers = _run_batch(cells)
        batch_timings.append(time.perf_counter() - started)
        outputs["batch"] = covers
        return covers

    def run_serial():
        started = time.perf_counter()
        covers = _run_serial(cells, graphs)
        serial_timings.append(time.perf_counter() - started)
        outputs["serial"] = covers
        return covers

    # Manual timing inside the workload keeps the ratio available even
    # under --benchmark-disable; the sides run interleaved (batch
    # best-of-3 against serial best-of-2) so thermal and noisy-neighbor
    # effects hit both alike.
    benchmark(run_batch)
    run_serial()
    while len(batch_timings) < 3:
        run_batch()
    run_serial()

    # Identity first: the speedup only counts if every cell's cover
    # round is bit-identical across the two paths.
    assert outputs["batch"] == outputs["serial"]

    elapsed = min(batch_timings)
    serial_elapsed = min(serial_timings)
    speedup = serial_elapsed / elapsed
    payload = {
        "families": sorted(_families()),
        "ks": list(KS),
        "seeds": list(SEEDS),
        "cells": len(cells),
        "quick": QUICK,
        "batch_sec": round(elapsed, 4),
        "serial_sec": round(serial_elapsed, 4),
        "cells_per_sec": round(len(cells) / elapsed, 1),
        "speedup_vs_serial": round(speedup, 2),
    }
    for key, value in payload.items():
        benchmark.extra_info[key] = value
    record_sweep_bench("general_graphs", payload)
    assert speedup >= MIN_SPEEDUP, (
        f"batched general kernel only {speedup:.1f}x the serial per-cell "
        f"engine on the speedup_graphs-shaped grid ({elapsed:.3f}s vs "
        f"{serial_elapsed:.3f}s)"
    )
