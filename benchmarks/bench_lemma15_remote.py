"""[L15] Lemma 15: at least 0.8n - o(n) remote vertices, always."""

from conftest import run_once

from repro.analysis.remote import count_remote_vertices
from repro.core import placement

N = 4000
K = 40


def test_remote_abundance_over_placements(benchmark):
    cases = {
        "all-on-one": placement.all_on_one(K),
        "equally-spaced": placement.equally_spaced(N, K),
        "half-ring": placement.half_ring(N, K),
        "clustered": placement.clustered(N, K, 5, seed=1),
        "random-0": placement.random_nodes(N, K, seed=0),
        "random-1": placement.random_nodes(N, K, seed=1),
    }

    def count_all():
        return {name: count_remote_vertices(N, starts)
                for name, starts in cases.items()}

    counts = run_once(benchmark, count_all)
    benchmark.extra_info["remote counts (n=4000)"] = counts
    benchmark.extra_info["lemma bound 0.8n"] = int(0.8 * N)
    for name, count in counts.items():
        # 0.8n - o(n): at n=4000 allow modest slack for the o(n) term.
        assert count >= 0.75 * N, f"too few remote vertices for {name}"


def test_adversarial_clumping_cannot_defeat_lemma(benchmark):
    """A placement engineered against the windows still leaves >=75%."""

    def adversarial_counts():
        # Geometric clumps: window densities spike at several scales.
        starts = []
        position = 0
        gap = 1
        while len(starts) < K:
            starts.append(position % N)
            position += gap
            gap = min(gap * 2, N // 8)
        return count_remote_vertices(N, starts)

    count = run_once(benchmark, adversarial_counts)
    benchmark.extra_info["geometric clumps count"] = count
    assert count >= 0.75 * N
