"""[perf] Telemetry overhead: the observability layer must stay cheap.

Two pinned contracts for ``repro.obs`` on a Table-1-shaped rotor sweep:

* **disabled** — with no ambient telemetry, an instrumented site costs
  one module-global read and a None check.  The per-guard cost is
  measured directly and scaled by the number of guarded sites a sweep
  actually executes (taken from the enabled run's own counters);
  the projected overhead must stay under **2%** of the sweep's wall
  clock.
* **enabled** — a full trace session (spans, kernel counters, shard
  files, manifest checkpoints) must cost under **10%** against the
  untraced sweep, interleaved best-of-N on the same grid.

Both runs must produce identical metrics: tracing observes, never
perturbs.
"""

import os
import time

from conftest import record_sweep_bench
from repro.obs import telemetry
from repro.obs.manifest import trace_session
from repro.sweep import run_sweep
from repro.sweep.spec import InitFamily, ScenarioSpec

QUICK = os.environ.get("BENCH_SWEEP_QUICK", "") not in ("", "0")

#: Table-1 shape at reduced scale: one ring size, the k ladder, both
#: canonical init families, rotor cover times.
SPEC = ScenarioSpec(
    name="obs-overhead",
    ns=(128,) if QUICK else (256,),
    ks=(2, 4, 8, 16),
    families=(
        InitFamily("all_on_one", "toward_node0"),
        InitFamily("equally_spaced", "negative"),
    ),
    metrics=("cover",),
)

SAMPLES = 3

#: Ceilings asserted below and recorded into BENCH_sweep.json.
DISABLED_LIMIT = 0.02
ENABLED_LIMIT = 0.10

#: Guarded-site cost is measured over this many iterations.
GUARD_ITERATIONS = 200_000


def _time_sweep(trace_path=None):
    started = time.perf_counter()
    if trace_path is None:
        result = run_sweep(SPEC)
    else:
        with trace_session(str(trace_path)):
            result = run_sweep(SPEC)
    return time.perf_counter() - started, result


def _guard_cost_ns() -> float:
    """Nanoseconds per disabled guarded site (``active()`` + check)."""
    assert telemetry.active() is None
    active = telemetry.active
    best = float("inf")
    for _ in range(3):
        started = time.perf_counter()
        for _ in range(GUARD_ITERATIONS):
            tel = active()
            if tel is not None:  # pragma: no cover - telemetry is off
                tel.count("unreachable")
        best = min(best, time.perf_counter() - started)
    return best / GUARD_ITERATIONS * 1e9


def _guarded_sites(counters: dict) -> int:
    """Guarded emissions one sweep of SPEC executes, from its counters.

    Kernels emit once per invocation, the serial fallbacks once per
    cell batch, the executor a handful of spans/counter merges per
    ``run_cells`` plus one ``cache.put`` span per chunk.  Doubled for
    headroom — the bound should survive instrumentation growth.
    """
    kernels = sum(
        counters.get(f"{prefix}.invocations", 0)
        for prefix in ("ring", "limit", "gaps", "walk", "general")
    )
    serial = counters.get("ring.serial_cells", 0) + counters.get(
        "general.serial_cells", 0
    )
    chunks = counters.get("executor.chunks", 0)
    return 2 * (kernels + serial + 2 * chunks + 10)


def test_obs_overhead(benchmark, tmp_path):
    assert telemetry.active() is None

    off_times, on_times = [], []
    off_result = on_result = None
    for sample in range(SAMPLES):  # interleaved: shared noise cancels
        t_off, off_result = _time_sweep()
        off_times.append(t_off)
        t_on, on_result = _time_sweep(tmp_path / f"trace{sample}.jsonl")
        on_times.append(t_on)

    def traced_run():
        elapsed, _ = _time_sweep(tmp_path / "trace-bench.jsonl")
        on_times.append(elapsed)

    benchmark(traced_run)

    # Tracing must not change a single metric.
    assert [c.metrics for c in off_result.results] == [
        c.metrics for c in on_result.results
    ]

    t_off = min(off_times)
    t_on = min(on_times)
    enabled_overhead = t_on / t_off - 1.0

    from repro.obs.manifest import load_manifest

    counters = load_manifest(str(tmp_path / "trace0.jsonl"))["counters"]
    guard_ns = _guard_cost_ns()
    sites = _guarded_sites(counters)
    disabled_overhead = sites * guard_ns * 1e-9 / t_off

    benchmark.extra_info["sweep wall (untraced, s)"] = round(t_off, 4)
    benchmark.extra_info["sweep wall (traced, s)"] = round(t_on, 4)
    benchmark.extra_info["enabled overhead"] = round(enabled_overhead, 4)
    benchmark.extra_info["guard cost (ns)"] = round(guard_ns, 1)
    benchmark.extra_info["guarded sites"] = sites
    benchmark.extra_info["disabled overhead"] = round(disabled_overhead, 6)
    record_sweep_bench(
        "obs_overhead",
        {
            "grid": "n=256, k in (2,4,8,16), 2 families, cover",
            "wall_untraced_s": round(t_off, 4),
            "wall_traced_s": round(t_on, 4),
            "enabled_overhead": round(enabled_overhead, 4),
            "enabled_limit": ENABLED_LIMIT,
            "guard_cost_ns": round(guard_ns, 1),
            "guarded_sites": sites,
            "disabled_overhead": round(disabled_overhead, 6),
            "disabled_limit": DISABLED_LIMIT,
        },
    )

    assert disabled_overhead < DISABLED_LIMIT, (
        f"disabled-path overhead {disabled_overhead:.2%} exceeds "
        f"{DISABLED_LIMIT:.0%} ({sites} sites x {guard_ns:.0f}ns "
        f"against {t_off:.3f}s)"
    )
    assert enabled_overhead < ENABLED_LIMIT, (
        f"enabled tracing overhead {enabled_overhead:.2%} exceeds "
        f"{ENABLED_LIMIT:.0%} (traced {t_on:.3f}s vs {t_off:.3f}s)"
    )
