"""[X.single] Single-agent facts the paper builds on ([27], [6]).

* Eulerian lock-in: the agent enters an Eulerian circuit of the
  directed symmetric graph within 2 D |E| rounds (period exactly 2|E|);
* ring cover Θ(n²) under the adversarial initialization;
* perfect arc fairness within the limit cycle.
"""

from conftest import run_once

from repro.analysis.scaling import fit_power_law
from repro.core import pointers
from repro.core.engine import MultiAgentRotorRouter
from repro.core.limit import arc_balance_in_cycle, eulerian_lockin
from repro.core.ring import RingRotorRouter
from repro.graphs.families import grid_2d, hypercube, lollipop
from repro.graphs.random_graphs import random_regular_graph
from repro.graphs.ring import ring_graph


def test_eulerian_lockin_across_graphs(benchmark):
    graphs = {
        "ring-24": ring_graph(24),
        "grid-5x5": grid_2d(5, 5),
        "hypercube-4": hypercube(4),
        "lollipop-8+6": lollipop(8, 6),
        "random-4-regular-20": random_regular_graph(20, 4, seed=2),
    }

    def measure():
        results = {}
        for name, graph in graphs.items():
            engine = MultiAgentRotorRouter(
                graph, pointers.ports_toward_sources(graph, [0]), [0]
            )
            result = eulerian_lockin(
                engine, graph.num_arcs,
                max_rounds=20 * graph.diameter() * graph.num_edges + 1000,
            )
            results[name] = (result, graph)
        return results

    results = run_once(benchmark, measure)
    for name, (result, graph) in results.items():
        bound = 2 * graph.diameter() * graph.num_edges
        benchmark.extra_info[name] = {
            "lock-in": result.lock_in_round,
            "2D|E| bound": bound,
            "period": result.cycle.period,
        }
        assert result.locks_into_euler_cycle, name
        assert result.lock_in_round <= bound, name


def test_single_agent_ring_cover_quadratic(benchmark):
    ns = (64, 128, 256, 512)

    def sweep():
        covers = []
        for n in ns:
            e = RingRotorRouter(
                n, pointers.ring_toward_node(n, 0), [0], track_counts=False
            )
            covers.append(e.run_until_covered(8 * n * n))
        return covers

    covers = run_once(benchmark, sweep)
    fit = fit_power_law(ns, covers)
    benchmark.extra_info["covers"] = dict(zip(ns, covers))
    benchmark.extra_info["exponent"] = round(fit.exponent, 3)
    assert 1.9 <= fit.exponent <= 2.1


def test_arc_fairness_in_limit(benchmark):
    graph = grid_2d(4, 4)

    def measure():
        engine = MultiAgentRotorRouter(graph, [0] * 16, [0])
        return arc_balance_in_cycle(
            engine, 200_000, num_arcs=graph.num_arcs
        )

    low, high = run_once(benchmark, measure)
    benchmark.extra_info["arc traversals per period (min, max)"] = (low, high)
    assert (low, high) == (1, 1)  # an exact Eulerian circuit
