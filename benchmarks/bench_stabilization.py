"""[X.stab] Extension: stabilization (time-to-limit-cycle) is ~ n².

The paper's Theorem 6 applies "after a sufficiently large number of
steps"; this bench quantifies that: worst-case preperiod stays below
n², the period is always a small multiple of n/k, and friendly
initializations stabilize instantly.
"""

from conftest import run_once

from repro.experiments.stabilization import stabilization_battery

K = 4
NS = (64, 128)


def test_stabilization_quadratic_ceiling(benchmark):
    def sweep():
        return {n: stabilization_battery(n, K, seeds=(0, 1)) for n in NS}

    results = run_once(benchmark, sweep)
    for n, battery in results.items():
        for name, (preperiod, period) in battery.items():
            benchmark.extra_info[f"n={n}/{name}"] = {
                "preperiod": preperiod,
                "period": period,
            }
            assert preperiod <= n * n, f"{name} at n={n}"
            # Period is a small multiple of the patrol loop n/k.
            assert period % (n // K) == 0 or period % n == 0
            assert period <= 4 * n

    # Positive (friendly) pointers: already in the limit cycle.
    for n in NS:
        assert results[n]["spaced/positive"][0] == 0

    # Scaling: worst preperiod grows ~4x when n doubles.
    worst = {
        n: max(pre for pre, _ in results[n].values()) for n in NS
    }
    growth = worst[NS[1]] / max(worst[NS[0]], 1)
    benchmark.extra_info["worst preperiod growth (n x2)"] = round(growth, 2)
    assert 2.0 <= growth <= 8.0
