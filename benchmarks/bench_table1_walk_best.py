"""[T1.rw.best] Table 1, equally spaced k walks: Θ((n/k)² log² k).

Theorem 5's two-sided bound, plus the punchline comparison: the
rotor-router beats the walks from the same (best) placement by roughly
the log²k factor.
"""

from conftest import run_once

from repro.analysis.scaling import flatness, normalized
from repro.experiments.table1 import rotor_best_cover, walk_best_cover
from repro.theory import bounds

N = 512
KS = (4, 8, 16)
REPS = 10


def test_walk_best_k_sweep(benchmark):
    def sweep():
        return {k: walk_best_cover(N, k, REPS) for k in KS}

    covers = run_once(benchmark, sweep)
    norm = normalized(
        [covers[k] for k in KS],
        [bounds.walk_cover_best(N, k) for k in KS],
    )
    benchmark.extra_info["n"] = N
    benchmark.extra_info["mean covers"] = {
        k: round(v, 0) for k, v in covers.items()
    }
    benchmark.extra_info["normalized"] = [round(v, 4) for v in norm]
    benchmark.extra_info["flatness"] = round(flatness(norm), 3)
    # The log²k factor emerges slowly; at these scales allow a wide
    # band but still far tighter than the (n/k)²-only normalization,
    # which would drift by log²16/log²4 ≈ 4x.
    assert flatness(norm) < 3.5


def test_rotor_beats_walks_in_best_case(benchmark):
    def measure():
        return {
            k: (rotor_best_cover(N, k), walk_best_cover(N, k, REPS))
            for k in KS
        }

    pairs = run_once(benchmark, measure)
    ratios = {k: walk / rotor for k, (rotor, walk) in pairs.items()}
    benchmark.extra_info["walk/rotor ratios"] = {
        k: round(r, 2) for k, r in ratios.items()
    }
    # Table 1 ordering: the deterministic system wins for every k >= 4.
    assert all(r > 1.0 for r in ratios.values())
