"""[T1.rr.worst] Table 1, rotor-router worst placement: Θ(n²/log k).

All k agents on one node, pointers toward it.  The normalized column
``C · log k / n²`` must be flat across k, and C must scale ~n² in n.
"""

from conftest import run_once

from repro.analysis.scaling import fit_power_law, flatness, normalized
from repro.experiments.table1 import rotor_worst_cover
from repro.theory import bounds

N = 384
KS = (2, 4, 8, 16, 32)


def test_worst_cover_k_sweep(benchmark):
    def sweep():
        return {k: rotor_worst_cover(N, k) for k in KS}

    covers = run_once(benchmark, sweep)
    norm = normalized(
        [covers[k] for k in KS],
        [bounds.rotor_cover_worst(N, k) for k in KS],
    )
    benchmark.extra_info["n"] = N
    benchmark.extra_info["covers"] = covers
    benchmark.extra_info["normalized C*logk/n^2"] = [round(v, 4) for v in norm]
    benchmark.extra_info["flatness"] = round(flatness(norm), 3)
    # Paper shape: flat within a modest constant across a 16x range of k.
    assert flatness(norm) < 2.0


def test_worst_cover_quadratic_in_n(benchmark):
    ns = (96, 192, 384)
    k = 8

    def sweep():
        return [rotor_worst_cover(n, k) for n in ns]

    covers = run_once(benchmark, sweep)
    fit = fit_power_law(ns, covers)
    benchmark.extra_info["fitted exponent"] = round(fit.exponent, 3)
    assert 1.8 <= fit.exponent <= 2.2
