"""[S2.3] The continuous-time approximation vs the discrete system.

Three postulates of paper §2.3, measured: sqrt(t) growth (ODE and
discrete), the ~1/i domain profile, and uniform domains as the
post-cover equilibrium.
"""

from conftest import run_once

import numpy as np

from repro.analysis.domains_stats import trace_domains
from repro.core import placement, pointers
from repro.theory.ode import equilibrium_check, integrate_domains


def test_sqrt_growth_ode_and_discrete(benchmark):
    n, k = 512, 8

    def measure():
        ode = integrate_domains([1.0] * k, t_final=float(n * n) / 16.0)
        trace = trace_domains(
            n,
            placement.all_on_one(k),
            pointers.ring_toward_node(n, 0),
            total_rounds=n * n,
            sample_every=n // 8,
            stop_at_cover=True,
        )
        return ode.growth_exponent(), trace.growth_exponent()

    ode_exp, discrete_exp = run_once(benchmark, measure)
    benchmark.extra_info["ODE exponent"] = round(ode_exp, 4)
    benchmark.extra_info["discrete exponent"] = round(discrete_exp, 4)
    assert abs(ode_exp - 0.5) < 0.05
    assert abs(discrete_exp - 0.5) < 0.08


def test_ode_profile_matches_lemma13(benchmark):
    """Path-mode ODE (open frontier, mirrored wall) converges to the
    Lemma 13 stationary profile — the lemma's construction, integrated."""
    k = 12

    def measure():
        trajectory = integrate_domains(
            [1.0] * k, t_final=1e7, mirror_right=True
        )
        return trajectory.final_profile()

    profile = run_once(benchmark, measure)
    # Orient so the frontier (largest) domain is first.
    if profile[-1] > profile[0]:
        profile = profile[::-1]
    from repro.theory.sequences import solve_profile

    predicted = np.asarray(solve_profile(k).a[1:], dtype=float)
    predicted /= predicted.sum()
    correlation = float(np.corrcoef(profile, predicted)[0, 1])
    max_error = float(np.abs(profile - predicted).max())
    benchmark.extra_info["ODE/Lemma13 correlation"] = round(correlation, 4)
    benchmark.extra_info["max share error"] = round(max_error, 4)
    assert correlation > 0.99


def test_ring_ode_halves_match_lemma13(benchmark):
    """The ring's symmetric two-frontier profile folds into two copies
    of the Lemma 13 path profile for k/2 agents (the Thm 1 reduction)."""
    k = 12

    def measure():
        trajectory = integrate_domains([1.0] * k, t_final=1e7)
        return trajectory.final_profile()

    profile = run_once(benchmark, measure)
    half = profile[: k // 2]
    half = half / half.sum()
    from repro.theory.sequences import solve_profile

    predicted = np.asarray(solve_profile(k // 2).a[1:], dtype=float)
    predicted /= predicted.sum()
    correlation = float(np.corrcoef(half, predicted)[0, 1])
    benchmark.extra_info["half-profile correlation"] = round(correlation, 4)
    assert correlation > 0.99


def test_equilibrium_uniform(benchmark):
    def measure():
        return (
            equilibrium_check([50.0] * 10),
            equilibrium_check([45.0, 55.0] * 5),
        )

    drift_equal, drift_perturbed = run_once(benchmark, measure)
    benchmark.extra_info["drift at uniform"] = drift_equal
    benchmark.extra_info["drift perturbed"] = drift_perturbed
    assert drift_equal == 0.0
    assert drift_perturbed > 0.0
