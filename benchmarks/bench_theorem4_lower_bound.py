"""[Thm4] For every placement, negative pointers force Ω((n/k)²).

Also verifies the adversary's geometric ingredient: remote vertices
far from all agents exist in abundance (Definition 2 / Lemma 15).
"""

from conftest import run_once

from repro.analysis.remote import (
    count_remote_vertices,
    remote_vertices_far_from_agents,
)
from repro.experiments.theorem4 import adversarial_cover, placements_battery
from repro.theory import bounds

N = 512
KS = (4, 8)


def test_lower_bound_constant_over_placements(benchmark):
    def sweep():
        rows = {}
        for k in KS:
            for name, agents in placements_battery(N, k, seeds=(0, 1)).items():
                cover = adversarial_cover(N, agents)
                rows[f"k={k}/{name}"] = (
                    cover / bounds.rotor_cover_best(N, k),
                    count_remote_vertices(N, agents),
                    len(
                        remote_vertices_far_from_agents(
                            N, agents, max(1, N // (9 * k))
                        )
                    ),
                )
        return rows

    rows = run_once(benchmark, sweep)
    minimum = min(norm for norm, _, _ in rows.values())
    benchmark.extra_info["min normalized cover"] = round(minimum, 3)
    for label, (norm, remote, far) in rows.items():
        benchmark.extra_info[label] = {
            "C*k^2/n^2": round(norm, 3),
            "remote": remote,
            "remote far": far,
        }
        # The Ω((n/k)²) lower bound: a placement-independent constant.
        assert norm >= 0.2, f"lower bound violated for {label}"
        # Lemma 15 abundance (with finite-n slack).
        assert remote >= 0.6 * N
        # Theorem 4's anchor vertex exists.
        assert far >= 1
