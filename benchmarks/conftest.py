"""Shared benchmark configuration.

Each benchmark reproduces one paper artifact at a scaled-down size (so
the whole suite runs in minutes), records its headline measurements in
``benchmark.extra_info`` (visible with ``pytest benchmarks/
--benchmark-only --benchmark-verbose`` and in saved JSON), and asserts
the paper's *shape* claims.  The full-size reproductions live in
``python -m repro.experiments.<name>``.
"""

from __future__ import annotations


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark an experiment function as a single measured run.

    Reproduction experiments are deterministic-or-seeded and expensive;
    one round with one iteration gives a representative wall-clock time
    without re-running the sweep five times.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)
