"""Shared benchmark configuration.

Each benchmark reproduces one paper artifact at a scaled-down size (so
the whole suite runs in minutes), records its headline measurements in
``benchmark.extra_info`` (visible with ``pytest benchmarks/
--benchmark-only --benchmark-verbose`` and in saved JSON), and asserts
the paper's *shape* claims.  The full-size reproductions live in
``python -m repro.experiments.<name>``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

#: Machine-readable perf trajectory of the sweep subsystem: every
#: ``bench_sweep_*`` benchmark merges its headline numbers (rounds/sec,
#: speedup vs reference, workload config) into this file, keyed by
#: benchmark name, so the numbers can be compared across PRs and
#: uploaded as a CI artifact.
BENCH_SWEEP_PATH = Path(__file__).resolve().parent.parent / "BENCH_sweep.json"

#: Perf trajectory of the paper-reproduction experiments (``python -m
#: repro run``) through the batched analysis backend, maintained by
#: ``bench_experiments.py`` with the same merge discipline.
BENCH_EXPERIMENTS_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_experiments.json"
)


def _record_bench(path: Path, name: str, payload: dict) -> Path:
    """Merge one benchmark's results into a JSON trajectory file.

    Read-modify-write with a same-directory temp file and atomic
    replace, so benchmarks running in any order (or interrupted) leave
    a valid JSON document; unreadable existing content is replaced
    rather than crashing the benchmark.
    """
    data: dict = {}
    if path.exists():
        try:
            existing = json.loads(path.read_text())
            if isinstance(existing, dict):
                data = existing
        except (OSError, ValueError):
            pass
    data[name] = payload
    tmp = path.parent / f"{path.name}.tmp.{os.getpid()}"
    tmp.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    tmp.replace(path)
    return path


def record_sweep_bench(name: str, payload: dict) -> Path:
    """Merge one sweep benchmark's results into ``BENCH_sweep.json``."""
    return _record_bench(BENCH_SWEEP_PATH, name, payload)


def record_experiments_bench(name: str, payload: dict) -> Path:
    """Merge one experiment benchmark's results into
    ``BENCH_experiments.json``."""
    return _record_bench(BENCH_EXPERIMENTS_PATH, name, payload)


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark an experiment function as a single measured run.

    Reproduction experiments are deterministic-or-seeded and expensive;
    one round with one iteration gives a representative wall-clock time
    without re-running the sweep five times.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)
