"""[T1.rr.best] Table 1, rotor-router best placement: Θ(n²/k²).

Equally spaced agents with adversarial (negative) pointers.  The
normalized column ``C · k² / n²`` must be flat across k (Theorems 3-4).
"""

from conftest import run_once

from repro.analysis.scaling import flatness, normalized
from repro.experiments.table1 import rotor_best_cover
from repro.theory import bounds

N = 512
KS = (2, 4, 8, 16, 32)


def test_best_cover_k_sweep(benchmark):
    def sweep():
        return {k: rotor_best_cover(N, k) for k in KS}

    covers = run_once(benchmark, sweep)
    norm = normalized(
        [covers[k] for k in KS],
        [bounds.rotor_cover_best(N, k) for k in KS],
    )
    benchmark.extra_info["n"] = N
    benchmark.extra_info["covers"] = covers
    benchmark.extra_info["normalized C*k^2/n^2"] = [round(v, 4) for v in norm]
    benchmark.extra_info["flatness"] = round(flatness(norm), 3)
    assert flatness(norm) < 1.5  # extremely clean in practice (~0.5 each)


def test_best_beats_worst_by_k2_over_logk(benchmark):
    """Cross-check Table 1's rows against each other."""
    from repro.experiments.table1 import rotor_worst_cover

    k = 16

    def measure():
        return rotor_worst_cover(N, k), rotor_best_cover(N, k)

    worst, best = run_once(benchmark, measure)
    gain = worst / best
    benchmark.extra_info["worst/best gain at k=16"] = round(gain, 1)
    # Θ(k²/log k) ≈ 92 at k=16; accept a generous band.
    assert gain > 10
