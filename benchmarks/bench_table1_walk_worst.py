"""[T1.rw.worst] Table 1, k random walks from one node: Θ(n²/log k).

The expected cover time of k walks started together, normalized by
n²/log k, stays within a constant band, and the speed-up over one walk
is logarithmic (Alon et al. [4] — the cycle attains the minimum
possible speed-up).
"""

import math

from conftest import run_once

from repro.analysis.scaling import flatness, normalized
from repro.experiments.table1 import walk_worst_cover
from repro.theory import bounds

N = 256
KS = (4, 8, 16, 32)
REPS = 8


def test_walk_worst_k_sweep(benchmark):
    def sweep():
        return {k: walk_worst_cover(N, k, REPS) for k in KS}

    covers = run_once(benchmark, sweep)
    norm = normalized(
        [covers[k] for k in KS],
        [bounds.walk_cover_worst(N, k) for k in KS],
    )
    benchmark.extra_info["n"] = N
    benchmark.extra_info["mean covers"] = {
        k: round(v, 0) for k, v in covers.items()
    }
    benchmark.extra_info["normalized C*logk/n^2"] = [round(v, 4) for v in norm]
    benchmark.extra_info["flatness"] = round(flatness(norm), 3)
    assert flatness(norm) < 2.5  # stochastic: a looser band than rotor


def test_walk_worst_speedup_is_logarithmic(benchmark):
    def measure():
        single = walk_worst_cover(N, 1, REPS)
        many = walk_worst_cover(N, 32, REPS)
        return single, many

    single, many = run_once(benchmark, measure)
    speedup = single / many
    benchmark.extra_info["speedup at k=32"] = round(speedup, 2)
    # log(32) ~ 3.5 with a constant of a few: the speed-up must be
    # mild and nowhere near linear (32x).
    assert 1.5 < speedup < 18.0
