"""[Thm2] No initialization exceeds the Theorem 1 adversary by more
than a constant: cover is O(n²/log k) universally."""

from conftest import run_once

from repro.experiments.table1 import rotor_worst_cover
from repro.experiments.theorem2 import initialization_battery

N = 256
KS = (4, 8, 16)


def test_battery_never_beats_all_on_one_materially(benchmark):
    def sweep():
        out = {}
        for k in KS:
            battery = initialization_battery(N, k, seeds=(0, 1, 2, 3))
            out[k] = (max(battery.values()), rotor_worst_cover(N, k))
        return out

    results = run_once(benchmark, sweep)
    for k, (battery_worst, reference) in results.items():
        ratio = battery_worst / reference
        benchmark.extra_info[f"k={k}"] = {
            "battery worst": battery_worst,
            "all-on-one": reference,
            "ratio": round(ratio, 3),
        }
        assert ratio <= 1.5, (
            f"an initialization beat the Theorem 1 adversary at k={k}"
        )
