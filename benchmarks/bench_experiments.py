"""[perf] Paper-reproduction experiments through the batched backend.

``python -m repro run table1`` historically measured every (n, k,
placement, model) cell with serial per-config loops: one Python
``RingRotorRouter`` stepped round by round per rotor cell, one
``RingRandomWalks`` per walk repetition, one serial Brent search per
return-time cell.  The analysis backend
(:mod:`repro.analysis.backend`) packs the same cells into
``BatchRingKernel`` / ``BatchRingWalks`` lanes via the sweep executor,
so the whole grid advances with shared vectorized rounds.

This benchmark pins the delivered end-to-end speedup on the
**table1-shape grid**: every measured column of Table 1 — rotor
worst/best covers, walk worst/best repetition lanes, and the
return-time column (batched Brent limit cycles vs serial Brent) —
scheduled by the same ``plan_cover_table`` / ``plan_return_time_table``
planners ``run_table1`` uses, with the k-ladder at production sweep
density (16 rungs; the serial loops priced that axis out, which is why
the default experiment stops at 5).  One :class:`MeasurementPlan` per
backend, uncached:

* **reference** — ``backend="reference"``: the original serial loops;
* **batch** — ``backend="batch"``: the kernels, single process
  (``jobs=1``), so the measured ratio is pure batching — no
  multiprocessing, no cache hits.

The speedup only counts if the results agree: the benchmark asserts
every rotor cell (cover, preperiod, period, gaps) is **bit-identical**
and every walk cell **seed-for-seed identical** (raw repetition
samples) across backends before timing is reported.

Headline numbers land in ``extra_info`` and ``BENCH_experiments.json``
(see ``conftest.record_experiments_bench``), uploaded as a CI artifact
next to ``BENCH_sweep.json``.  ``BENCH_EXPERIMENTS_QUICK=1`` shrinks
the grid for CI smoke runs (noisy-neighbor machines keep a lower
speedup floor; the full shape keeps the >= 10x acceptance bar).
"""

import os
import time

from conftest import record_experiments_bench
from repro.analysis.backend import MeasurementPlan
from repro.experiments.table1 import (
    plan_cover_table,
    plan_return_time_table,
)

QUICK = os.environ.get("BENCH_EXPERIMENTS_QUICK", "") not in ("", "0")
N = 96 if QUICK else 256
#: The k-ladder.  Table 1 sweeps k at fixed n; the full-size bench
#: runs the ladder at production sweep density (the serial loops
#: priced this axis out — the default experiment stops at 5 rungs).
KS = (
    (2, 4, 8, 16)
    if QUICK
    else (2, 3, 4, 5, 6, 8, 10, 12, 16, 20, 24, 32, 40, 48, 56, 64)
)
REPETITIONS = 3
RETURN_N = 96 if QUICK else 256
WALK_WINDOW_FACTOR = 80 if QUICK else 100
#: CI smoke runners are noisy-neighbor machines and the quick grid is
#: too small to amortize batching; the full shape keeps the >= 10x
#: acceptance bar of the migration, the quick shape a floor.
MIN_SPEEDUP = 1.5 if QUICK else 10.0


def _schedule(plan: MeasurementPlan):
    """The table1-shape grid: exactly what ``run_table1`` schedules."""
    build_cover = plan_cover_table(plan, N, KS, REPETITIONS, seed=0)
    build_return = plan_return_time_table(
        plan, RETURN_N, KS, walk_window_factor=WALK_WINDOW_FACTOR, seed=0
    )
    return build_cover, build_return


def _run(backend: str):
    """Schedule + execute one uncached plan; returns (elapsed, tables)."""
    plan = MeasurementPlan(backend=backend, jobs=1, cache_dir=None)
    builders = _schedule(plan)
    started = time.perf_counter()
    plan.execute()
    elapsed = time.perf_counter() - started
    return elapsed, [build() for build in builders], plan


def _raw_values(plan: MeasurementPlan):
    """Every cell's raw metrics, keyed by config hash, for identity
    assertions (covers, samples, preperiods, periods, gaps)."""
    return {
        config_hash: dict(sorted(metrics.items()))
        for config_hash, metrics in plan._results.items()
    }


def test_experiments_backend_speedup(benchmark):
    batch_timings: list[float] = []
    reference_timings: list[float] = []
    outputs: dict[str, tuple] = {}

    def run_batch():
        elapsed, tables, plan = _run("batch")
        batch_timings.append(elapsed)
        outputs["batch"] = (tables, _raw_values(plan))
        return tables

    def run_reference():
        elapsed, tables, plan = _run("reference")
        reference_timings.append(elapsed)
        outputs["reference"] = (tables, _raw_values(plan))
        return tables

    # Manual timing inside the workload keeps the ratio available even
    # under --benchmark-disable; the sides run interleaved (batch
    # best-of-3 against reference best-of-2) so thermal and
    # noisy-neighbor effects hit both alike.
    benchmark(run_batch)
    run_reference()
    while len(batch_timings) < 3:
        run_batch()
    run_reference()

    batch_tables, batch_raw = outputs["batch"]
    reference_tables, reference_raw = outputs["reference"]

    # Identity first: the speedup only counts if the reproduction is
    # unchanged.  Cell level: identical hashes, and per cell identical
    # rotor metrics (bit-exact ints/floats) and walk samples
    # (seed-for-seed ints).
    assert set(batch_raw) == set(reference_raw)
    for config_hash, metrics in batch_raw.items():
        assert metrics == reference_raw[config_hash], config_hash
    # Table level: the rendered report rows agree verbatim.
    for mine, theirs in zip(batch_tables, reference_tables):
        assert mine.render() == theirs.render()

    elapsed = min(batch_timings)
    reference_elapsed = min(reference_timings)
    speedup = reference_elapsed / elapsed
    cells = len(batch_raw)
    payload = {
        "n": N,
        "ks": list(KS),
        "repetitions": REPETITIONS,
        "return_n": RETURN_N,
        "walk_window_factor": WALK_WINDOW_FACTOR,
        "cells": cells,
        "quick": QUICK,
        "batch_sec": round(elapsed, 4),
        "reference_sec": round(reference_elapsed, 4),
        "cells_per_sec": round(cells / elapsed, 1),
        "speedup_vs_reference": round(speedup, 2),
    }
    for key, value in payload.items():
        benchmark.extra_info[key] = value
    record_experiments_bench("table1_grid", payload)
    assert speedup >= MIN_SPEEDUP, (
        f"batched backend only {speedup:.1f}x the serial reference on "
        f"the table1-shape grid ({elapsed:.3f}s vs "
        f"{reference_elapsed:.3f}s)"
    )
