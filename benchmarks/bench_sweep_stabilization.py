"""[perf] Array-native limit-cycle pipeline vs per-lane Python bookkeeping.

The stabilization sweep's hot path is ``batch_limit_cycles`` +
``batch_return_gaps``.  Before the array-native rewrite, the kernel
stepped all lanes with one vectorized round but then dropped into
Python: byte keys per pending lane (``state_keys`` built a
``dict[int, bytes]`` every round), a per-lane Brent ``(power, lam)``
loop, and a gap scan allocating full-batch temporaries for
``periods.max()`` rounds.  The rewrite moves all of that into numpy —
uint64 word fingerprints (one wrapping matmul per round), byte-exact
confirmation only on fingerprint hits, lane compaction, sorted-prefix
schedules — and threads tunable chunk scheduling through the executor.

This benchmark pins the delivered speedup on the stabilization
scenario shape (n=512, 256 lanes, mixed initialization families) as
the sweep actually executes it:

* **before** — the pre-PR pipeline (kept verbatim below) over the
  pre-PR executor chunking (fixed ``DEFAULT_CHUNK_LANES = 64``, the
  only option the executor had);
* **after** — the array-native pipeline over the scenario's scheduling
  hints (one 256-lane chunk, ``compact_ratio=1.0``).

The whole-batch legacy time is recorded too, isolating the pipeline
win from the scheduling win.  The workload is the scenario's k-axis
ladder over patrol families (``equally_spaced`` under positive /
uniform / alternating pointers, plus ``half_ring`` and ``clustered``
placements), whose limit cycles span periods 16..2n — the long-period
tail is thin, exactly where the old full-width gap scan burned
``periods.max()`` full-batch rounds.  Both implementations do
identical work per lane and must return identical results; the
measured gap is bookkeeping and scheduling overhead only.

Headline numbers land in ``extra_info`` and in ``BENCH_sweep.json``
(see ``conftest.record_sweep_bench``) so the perf trajectory is
tracked across PRs.  ``BENCH_SWEEP_QUICK=1`` shrinks the shape for CI
smoke runs.
"""

import os
import time

import numpy as np

from conftest import record_sweep_bench
from repro.core import placement, pointers
from repro.sweep.batch_ring import (
    BatchLimitCycles,
    BatchRingKernel,
    batch_limit_cycles,
    batch_return_gaps,
    lanes_from_configs,
)

QUICK = os.environ.get("BENCH_SWEEP_QUICK", "") not in ("", "0")
N = 128 if QUICK else 512
LANES = 64 if QUICK else 256
MAX_ROUNDS = 1024 if QUICK else 4096
#: Pre-PR executor chunk size (DEFAULT_CHUNK_LANES at the time).
LEGACY_CHUNK_LANES = 16 if QUICK else 64
#: CI smoke runners are noisy-neighbor machines; the full shape keeps
#: the acceptance bar of the rewrite, the quick shape a floor.
MIN_SPEEDUP = 2.0 if QUICK else 5.0


# ----------------------------------------------------------------------
# pre-PR reference implementation (verbatim), the benchmark baseline
# ----------------------------------------------------------------------
def _legacy_batch_limit_cycles(n, ptr, cnt, max_rounds, strict=True):
    hare = BatchRingKernel(n, ptr, cnt, track_cover=False)
    num_lanes = hare.num_lanes
    saved = hare.state_keys()  # tortoise snapshots (initial configuration)
    power = np.ones(num_lanes, dtype=np.int64)
    lam = np.zeros(num_lanes, dtype=np.int64)
    periods = np.zeros(num_lanes, dtype=np.int64)
    pending = list(range(num_lanes))
    pending_mask = np.ones(num_lanes, dtype=bool)
    steps = 0
    while pending:
        if steps >= max_rounds:
            if strict:
                raise RuntimeError(
                    f"{len(pending)} lanes have no limit cycle confirmed "
                    f"within {max_rounds} rounds"
                )
            periods[pending] = -1
            break
        hare.step(lane_mask=pending_mask, need_visits=False)
        steps += 1
        keys = hare.state_keys(pending)
        still = []
        for b in pending:
            lam[b] += 1
            if keys[b] == saved[b]:
                periods[b] = lam[b]
                pending_mask[b] = False
            else:
                if lam[b] == power[b]:
                    saved[b] = keys[b]
                    power[b] *= 2
                    lam[b] = 0
                still.append(b)
        pending = still

    tortoise = BatchRingKernel(n, ptr, cnt, track_cover=False)
    hare = BatchRingKernel(n, ptr, cnt, track_cover=False)
    for t in range(int(periods.max())):
        hare.step(lane_mask=periods > t, need_visits=False)
    preperiods = np.zeros(num_lanes, dtype=np.int64)
    resolved = periods > 0
    tortoise_keys = tortoise.state_keys()
    hare_keys = hare.state_keys()
    unmatched = np.array(
        [
            resolved[b] and tortoise_keys[b] != hare_keys[b]
            for b in range(num_lanes)
        ]
    )
    steps = 0
    while unmatched.any():
        if steps > max_rounds:
            raise RuntimeError(
                f"preperiod exceeds {max_rounds} rounds (inconsistent state)"
            )
        tortoise.step(lane_mask=unmatched, need_visits=False)
        hare.step(lane_mask=unmatched, need_visits=False)
        steps += 1
        preperiods[unmatched] += 1
        open_lanes = np.flatnonzero(unmatched)
        tortoise_keys = tortoise.state_keys(open_lanes)
        hare_keys = hare.state_keys(open_lanes)
        for b in open_lanes:
            if tortoise_keys[b] == hare_keys[b]:
                unmatched[b] = False
    preperiods[~resolved] = -1
    return BatchLimitCycles(preperiods=preperiods, periods=periods)


def _legacy_batch_return_gaps(n, ptr, cnt, cycles):
    runner = BatchRingKernel(n, ptr, cnt, track_cover=False)
    num_lanes = runner.num_lanes
    preperiods, periods = cycles.preperiods, cycles.periods
    for t in range(int(preperiods.max())):
        runner.step(lane_mask=preperiods > t, need_visits=False)
    first = np.full((num_lanes, n), -1, dtype=np.int64)
    last = np.full((num_lanes, n), -1, dtype=np.int64)
    max_gap = np.zeros((num_lanes, n), dtype=np.int64)
    for t in range(int(periods.max())):
        visits = runner.step(lane_mask=periods > t)
        seen_before = visits & (last >= 0)
        gaps = t - last
        np.maximum(max_gap, np.where(seen_before, gaps, 0), out=max_gap)
        first[visits & (first < 0)] = t
        last[visits] = t
    wrap = first + periods[:, np.newaxis] - last
    gaps = np.maximum(max_gap, wrap).astype(float)
    gaps[first < 0] = np.inf
    return gaps.max(axis=1), gaps.min(axis=1)


def _workload():
    """The scenario's k-ladder over patrol families at (N, LANES).

    Periods span 2N/k for k in the ladder up to the thin 2N tail
    (``alternating`` pointers at a non-divisor k); preperiods stay
    small, so the run is dominated by the Brent search over many
    concurrently-live lanes plus the one-period gap scan — the two
    paths this PR vectorizes.
    """
    configs = []
    for lane in range(LANES):
        r = lane % 16
        if r < 6:
            k = (16, 32, 64, 32, 16, 64)[r]
            agents = placement.equally_spaced(N, k)
            dirs = pointers.ring_positive(N, agents)
        elif r < 12:
            k = (16, 32, 64, 64, 32, 16)[r - 6]
            agents = placement.equally_spaced(N, k)
            dirs = pointers.ring_uniform(N)
        elif r == 12:
            agents = placement.half_ring(N, 2)
            dirs = pointers.ring_positive(N, agents)
        elif r == 13:
            agents = placement.clustered(N, 2, 1, seed=lane)
            dirs = pointers.ring_positive(N, agents)
        elif r == 14:
            agents = placement.equally_spaced(N, 64)
            dirs = pointers.ring_alternating(N)
        else:
            # the thin long-period tail: period 2N at this k
            agents = placement.equally_spaced(N, 57 if not QUICK else 29)
            dirs = pointers.ring_alternating(N)
        configs.append((dirs, agents))
    return configs


def _run_pipeline(impl_cycles, impl_gaps, configs, **cycle_kwargs):
    """One chunk through limit cycles + gaps; returns stacked results."""
    ptr, cnt = lanes_from_configs(N, configs)
    cycles = impl_cycles(N, ptr, cnt, MAX_ROUNDS, strict=False, **cycle_kwargs)
    lanes = np.flatnonzero(cycles.periods > 0)
    worst = np.full(len(configs), np.nan)
    best = np.full(len(configs), np.nan)
    if lanes.size:
        worst[lanes], best[lanes] = impl_gaps(
            N, ptr[lanes], cnt[lanes],
            BatchLimitCycles(
                preperiods=cycles.preperiods[lanes],
                periods=cycles.periods[lanes],
            ),
        )
    return cycles.preperiods, cycles.periods, worst, best


def _run_new(configs):
    # The scenario's post-PR scheduling: one full-width chunk
    # (chunk_lanes hint 256) with eager lane compaction.
    return _run_pipeline(
        batch_limit_cycles, batch_return_gaps, configs, compact_ratio=1.0
    )


def _run_legacy(configs, chunk_lanes):
    parts = [
        _run_pipeline(
            _legacy_batch_limit_cycles, _legacy_batch_return_gaps,
            configs[start:start + chunk_lanes],
        )
        for start in range(0, len(configs), chunk_lanes)
    ]
    return tuple(np.concatenate(column) for column in zip(*parts))


def _prewarm_allocator():
    """Put glibc's allocator in its steady state before timing.

    Whether MB-scale numpy temporaries come from the heap or fresh
    mmaps depends on allocator history (glibc raises its dynamic mmap
    threshold when large blocks are freed); a few sub-cap alloc/free
    cycles pin that state so the measured ratio does not depend on
    what ran earlier in the process.
    """
    for _ in range(4):
        block = np.zeros(8 * 1024 * 1024, dtype=np.uint8)
        del block


def test_stabilization_pipeline_speedup(benchmark):
    configs = _workload()
    _prewarm_allocator()
    new_timings: list[float] = []
    legacy_timings: list[float] = []
    whole_timings: list[float] = []

    def run_new():
        started = time.perf_counter()
        out = _run_new(configs)
        new_timings.append(time.perf_counter() - started)
        return out

    def run_legacy():
        started = time.perf_counter()
        out = _run_legacy(configs, LEGACY_CHUNK_LANES)
        legacy_timings.append(time.perf_counter() - started)
        return out

    # Manual timing inside the workload keeps the ratio available even
    # under --benchmark-disable; the two sides run interleaved with a
    # best-of-3 floor so thermal / allocator / noisy-neighbor effects
    # hit both alike.
    new_out = benchmark(run_new)
    legacy_out = run_legacy()
    while len(new_timings) < 3:
        run_new()
        run_legacy()
    # One whole-batch legacy pass isolates the pipeline win from the
    # chunk-scheduling win (recorded, not asserted).
    started = time.perf_counter()
    whole_out = _run_legacy(configs, LANES)
    whole_timings.append(time.perf_counter() - started)

    # Exactness first: the speedup only counts if the results are
    # identical — preperiods, periods, gaps, truncated (-1) lanes.
    for mine, theirs in zip(new_out, legacy_out):
        assert np.array_equal(mine, theirs, equal_nan=True)
    for mine, theirs in zip(new_out, whole_out):
        assert np.array_equal(mine, theirs, equal_nan=True)

    elapsed = min(new_timings)
    legacy_elapsed = min(legacy_timings)
    speedup = legacy_elapsed / elapsed
    preperiods, periods = new_out[0], new_out[1]
    resolved = periods > 0
    lane_rounds = int(
        (preperiods[resolved] + 2 * periods[resolved]).sum()
        + (~resolved).sum() * MAX_ROUNDS
    )
    payload = {
        "n": N,
        "lanes": LANES,
        "max_rounds": MAX_ROUNDS,
        "legacy_chunk_lanes": LEGACY_CHUNK_LANES,
        "resolved_lanes": int(resolved.sum()),
        "quick": QUICK,
        "pipeline_sec": round(elapsed, 4),
        "legacy_sec": round(legacy_elapsed, 4),
        "legacy_whole_batch_sec": round(min(whole_timings), 4),
        "lane_rounds_per_sec": round(lane_rounds / elapsed),
        "speedup_vs_reference": round(speedup, 2),
        "speedup_vs_whole_batch_reference": round(
            min(whole_timings) / elapsed, 2
        ),
    }
    for key, value in payload.items():
        benchmark.extra_info[key] = value
    record_sweep_bench("stabilization", payload)
    assert speedup >= MIN_SPEEDUP, (
        f"array-native limit-cycle pipeline only {speedup:.1f}x the "
        f"Python-bookkeeping reference ({elapsed:.3f}s vs "
        f"{legacy_elapsed:.3f}s)"
    )
