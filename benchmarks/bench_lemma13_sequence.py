"""[L13] Lemma 13: the profile sequence exists with properties (1)-(6),
and the discrete worst-case run follows it (correlation ~1)."""

from conftest import run_once

import numpy as np

from repro.analysis.domains_stats import final_profile_vs_lemma13
from repro.theory.bounds import harmonic_number
from repro.theory.sequences import solve_profile


def test_profile_properties_across_k(benchmark):
    ks = (4, 8, 16, 32, 64, 128, 256)

    def solve_all():
        return {k: solve_profile(k) for k in ks}

    profiles = run_once(benchmark, solve_all)
    for k, profile in profiles.items():
        h_k = harmonic_number(k)
        assert abs(sum(profile.a[1:]) - 1.0) < 1e-9           # (3)
        assert all(
            profile.a[i] > profile.a[i + 1] for i in range(1, k)
        )                                                      # (2)
        assert 1 / (4 * (h_k + 1)) <= profile.a[1] <= 1 / h_k  # (5)
        assert all(
            profile.a[i] >= 1 / (4 * i * (h_k + 1))
            for i in range(1, k + 1)
        )                                                      # (6)
        assert max(
            abs(profile.residual(i)) for i in range(1, k + 1)
        ) < 1e-6                                               # (4)
    benchmark.extra_info["a1 values"] = {
        k: round(p.a[1], 4) for k, p in profiles.items()
    }


def test_discrete_run_matches_profile(benchmark):
    n, k = 400, 8

    def measure():
        return final_profile_vs_lemma13(n, k, rounds_budget=n * n)

    measured, predicted = run_once(benchmark, measure)
    correlation = float(np.corrcoef(measured, predicted)[0, 1])
    max_error = float(np.abs(measured - predicted).max())
    benchmark.extra_info["correlation"] = round(correlation, 4)
    benchmark.extra_info["max share error"] = round(max_error, 4)
    assert correlation > 0.99
    assert max_error < 0.05
