"""[perf] Supervisor overhead: the fault-tolerant dispatcher is free.

The supervising dispatcher (per-chunk retry/timeout/bisection
bookkeeping, ``apply_async`` handles polled in a scheduling loop)
replaced the historical bare dispatch loops.  This benchmark keeps the
pre-supervisor loops alive verbatim — a plain in-process ``for`` loop
over chunk payloads, and ``Pool.imap_unordered`` for workers — and
races them against :class:`repro.sweep.executor._Supervisor` with no
faults injected, on a compute-dominated grid.

Headline number (pinned into ``BENCH_sweep.json``): supervisor
wall-clock over baseline wall-clock, interleaved best-of-N, required
<= 1.05 in-process.  The pool path is reported alongside with a
looser bound: its poll interval (20ms) adds bounded completion-
detection latency that the serial path does not have.
"""

import os
import time

from conftest import record_sweep_bench
from repro.sweep.executor import (
    FailureReport,
    _plan_chunks,
    _Supervisor,
    compute_chunk,
)
from repro.sweep.spec import InitFamily, ScenarioSpec

QUICK = bool(os.environ.get("BENCH_FAULTS_QUICK"))

#: Interleaved timing samples per dispatcher (min is reported).
SAMPLES = 2 if QUICK else 3

#: Pool-path overhead allowance: poll-interval completion-detection
#: latency, bounded by POLL_INTERVAL per chunk, amortized over
#: compute-dominated chunks.
POOL_RATIO_LIMIT = 1.15


def _payloads() -> list[dict]:
    """A compute-dominated grid: few chunks, each hundreds of ms."""
    spec = ScenarioSpec(
        name="bench-faults",
        ns=(192, 256) if QUICK else (384, 512),
        ks=(2, 3, 4),
        families=(
            InitFamily("all_on_one", "toward_node0"),
            InitFamily("equally_spaced", "negative"),
        ),
        metrics=("cover",),
    )
    return _plan_chunks(spec.configs(), chunk_lanes=3, jobs=2)


def _run_baseline_serial(payloads: list[dict]) -> dict:
    """The pre-supervisor in-process dispatch loop, verbatim."""
    results: dict[str, dict] = {}
    for payload in payloads:
        for config_hash, metrics in compute_chunk(payload):
            results[config_hash] = metrics
    return results


def _run_baseline_pool(payloads: list[dict], jobs: int) -> dict:
    """The pre-supervisor ``Pool.imap_unordered`` loop, verbatim."""
    import multiprocessing

    results: dict[str, dict] = {}
    with multiprocessing.Pool(processes=jobs) as pool:
        for pairs in pool.imap_unordered(compute_chunk, payloads):
            for config_hash, metrics in pairs:
                results[config_hash] = metrics
    return results


def _run_supervised(payloads: list[dict], jobs: int) -> dict:
    results: dict[str, dict] = {}
    report = FailureReport()
    supervisor = _Supervisor(
        jobs=jobs,
        commit=lambda pairs: results.update(pairs),
        quarantine=report.quarantined.setdefault,
        report=report,
        max_retries=2,
        chunk_timeout=600.0 if jobs > 1 else None,
        retry_backoff=0.1,
    )
    supervisor.run(payloads)
    assert report.clean, report.quarantined
    return results


def _race(payloads: list[dict], baseline, supervised) -> tuple[float, float]:
    """Interleaved best-of-``SAMPLES`` wall clock for both dispatchers.

    Interleaving (A, B, A, B, ...) rather than timing each side in a
    block keeps slow-machine drift (thermal throttling, a noisy CI
    neighbor arriving mid-benchmark) from landing entirely on one side
    of the ratio.
    """
    expected = baseline(payloads)  # warm-up: allocators, imports
    best_base = best_sup = float("inf")
    for _ in range(SAMPLES):
        started = time.perf_counter()
        assert baseline(payloads) == expected
        best_base = min(best_base, time.perf_counter() - started)
        started = time.perf_counter()
        assert supervised(payloads) == expected
        best_sup = min(best_sup, time.perf_counter() - started)
    return best_base, best_sup


def test_supervisor_overhead_serial(benchmark):
    """In-process supervision costs < 5% over the bare loop."""
    payloads = _payloads()
    base, sup = benchmark.pedantic(
        _race,
        args=(payloads, _run_baseline_serial,
              lambda p: _run_supervised(p, jobs=1)),
        rounds=1,
        iterations=1,
    )
    ratio = sup / base
    benchmark.extra_info["chunks"] = len(payloads)
    benchmark.extra_info["baseline sec"] = round(base, 3)
    benchmark.extra_info["supervised sec"] = round(sup, 3)
    benchmark.extra_info["overhead ratio"] = round(ratio, 3)
    record_sweep_bench(
        "faults_supervisor_serial",
        {
            "chunks": len(payloads),
            "baseline_sec": round(base, 3),
            "supervised_sec": round(sup, 3),
            "overhead_ratio": round(ratio, 3),
            "limit": 1.05,
        },
    )
    assert ratio <= 1.05, (
        f"serial supervision overhead {ratio:.3f}x exceeds 1.05x "
        f"({sup:.3f}s vs {base:.3f}s over {len(payloads)} chunks)"
    )


def test_supervisor_overhead_pool(benchmark):
    """Supervised workers stay within poll-latency of imap_unordered."""
    payloads = _payloads()
    base, sup = benchmark.pedantic(
        _race,
        args=(payloads, lambda p: _run_baseline_pool(p, jobs=2),
              lambda p: _run_supervised(p, jobs=2)),
        rounds=1,
        iterations=1,
    )
    ratio = sup / base
    benchmark.extra_info["chunks"] = len(payloads)
    benchmark.extra_info["baseline sec"] = round(base, 3)
    benchmark.extra_info["supervised sec"] = round(sup, 3)
    benchmark.extra_info["overhead ratio"] = round(ratio, 3)
    record_sweep_bench(
        "faults_supervisor_pool",
        {
            "jobs": 2,
            "chunks": len(payloads),
            "baseline_sec": round(base, 3),
            "supervised_sec": round(sup, 3),
            "overhead_ratio": round(ratio, 3),
            "limit": POOL_RATIO_LIMIT,
        },
    )
    assert ratio <= POOL_RATIO_LIMIT, (
        f"pool supervision overhead {ratio:.3f}x exceeds "
        f"{POOL_RATIO_LIMIT}x "
        f"({sup:.3f}s vs {base:.3f}s over {len(payloads)} chunks)"
    )
