"""[perf] Sharded SQLite result store vs the one-file-per-cell JSON tree.

The store exists because ROADMAP-scale sweeps make the cache the wall:
a warm rerun through the JSON tree pays one ``open``/``json.load``/
identity-check per cell, while the SQLite backend answers the same
whole-plan probe with a few indexed ``IN (...)`` queries per shard.
This bench builds a >=20k-cell synthetic grid, then times cold-write,
warm-read and mixed (half hit / half miss) workloads on both backends
through the same batched ``CacheStore`` API.  The asserted headline is
the acceptance floor: the batched SQLite warm read must beat the
historical per-cell JSON path by >=10x.

``BENCH_STORE_QUICK=1`` shrinks the grid and relaxes the floor for CI
smoke runners, where a small grid undersells the batched probe (fixed
per-query overhead dominates) and noisy neighbors blur timings.
"""

import os
import time

from conftest import record_sweep_bench
from repro.sweep.spec import SweepConfig
from repro.sweep.store import JsonTreeStore, SqliteStore

QUICK = os.environ.get("BENCH_STORE_QUICK", "") not in ("", "0")

CELLS = 2_000 if QUICK else 20_000
#: Cells per put_many call — the executor commits one chunk at a time,
#: so the cold-write numbers reflect its transaction cadence.
PUT_CHUNK = 512
MIN_WARM_SPEEDUP = 3.0 if QUICK else 10.0


def _grid() -> list[SweepConfig]:
    """``CELLS`` distinct cells: identity varies only by seed/n/k."""
    return [
        SweepConfig(
            n=64 + (i % 7),
            k=2 + (i % 5),
            placement="random",
            pointer="random",
            seed=i,
            metrics=("cover",),
            max_rounds=10_000,
        )
        for i in range(CELLS)
    ]


def _metrics(i: int) -> dict:
    # The shape of a real rotor-cell entry: {"cover": <round count>}.
    return {"cover": 2 * i + 1}


def _cold_write(store, cells) -> float:
    started = time.perf_counter()
    for at in range(0, len(cells), PUT_CHUNK):
        chunk = cells[at:at + PUT_CHUNK]
        store.put_many(
            [(cell, _metrics(at + j)) for j, cell in enumerate(chunk)]
        )
    return time.perf_counter() - started


def _warm_read(store, cells) -> tuple[float, int]:
    started = time.perf_counter()
    found, _ = store.lookup_many(cells)
    return time.perf_counter() - started, len(found)


def _per_cell_read(store, cells) -> tuple[float, int]:
    """The historical executor probe: one lookup per cell."""
    started = time.perf_counter()
    hits = sum(
        1 for cell in cells if store.lookup(cell)[0] is not None
    )
    return time.perf_counter() - started, hits


def test_store_backends_throughput(benchmark, tmp_path):
    cells = _grid()
    half = cells[: CELLS // 2]

    facts: dict[str, dict] = {}
    for backend, factory in (
        ("json", JsonTreeStore),
        ("sqlite", SqliteStore),
    ):
        store = factory(str(tmp_path / backend))
        write_s = _cold_write(store, cells)
        warm_s, warm_hits = _warm_read(store, cells)
        assert warm_hits == CELLS
        facts[backend] = {
            "cold_write_s": round(write_s, 4),
            "warm_read_s": round(warm_s, 4),
            "warm_cells_per_sec": round(CELLS / warm_s),
        }
        store.close()

    # Mixed workload: a store holding only half the grid is probed for
    # all of it — the planner's everyday shape on a resumed sweep.
    for backend, factory in (
        ("json", JsonTreeStore),
        ("sqlite", SqliteStore),
    ):
        store = factory(str(tmp_path / f"{backend}-mixed"))
        _cold_write(store, half)
        mixed_s, mixed_hits = _warm_read(store, cells)
        assert mixed_hits == len(half)
        facts[backend]["mixed_read_s"] = round(mixed_s, 4)
        store.close()

    # The asserted ratio: batched SQLite probe vs the per-cell JSON
    # path run_cells used before the store refactor.  Best-of-3 on the
    # SQLite side smooths allocator/page-cache jitter.
    json_store = JsonTreeStore(str(tmp_path / "json"))
    per_cell_s, per_cell_hits = _per_cell_read(json_store, cells)
    assert per_cell_hits == CELLS

    sqlite_store = SqliteStore(str(tmp_path / "sqlite"))
    timings: list[float] = []

    def probe() -> int:
        warm_s, hits = _warm_read(sqlite_store, cells)
        timings.append(warm_s)
        return hits

    assert benchmark(probe) == CELLS
    while len(timings) < 3:
        probe()
    sqlite_store.close()

    batched_s = min(timings)
    speedup = per_cell_s / batched_s
    benchmark.extra_info["cells"] = CELLS
    benchmark.extra_info["sqlite batched warm-read s"] = round(batched_s, 4)
    benchmark.extra_info["json per-cell warm-read s"] = round(per_cell_s, 4)
    benchmark.extra_info["speedup vs per-cell json"] = round(speedup, 1)
    record_sweep_bench(
        "store",
        {
            "cells": CELLS,
            "put_chunk": PUT_CHUNK,
            "quick": QUICK,
            "backends": facts,
            "json_per_cell_read_s": round(per_cell_s, 4),
            "sqlite_batched_read_s": round(batched_s, 4),
            "warm_read_speedup_vs_per_cell_json": round(speedup, 1),
            "floor": MIN_WARM_SPEEDUP,
        },
    )
    assert speedup >= MIN_WARM_SPEEDUP, (
        f"batched sqlite warm read is only {speedup:.1f}x the per-cell "
        f"json path ({batched_s:.3f}s vs {per_cell_s:.3f}s for "
        f"{CELLS} cells; floor {MIN_WARM_SPEEDUP}x)"
    )
