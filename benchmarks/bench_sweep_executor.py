"""[perf] Sweep subsystem: batch-kernel throughput and cache speedup.

Two headline numbers for the perf trajectory, both in ``extra_info``:

* **batch kernel throughput** — configs x rounds per second of
  :class:`repro.sweep.batch_ring.BatchRingKernel` at ``n=1024,
  B=256``, against the single-config rounds/sec of the reference
  engine (:class:`repro.core.engine.MultiAgentRotorRouter`) on the
  same ring; the sweep subsystem's reason to exist is this ratio
  (required: >= 20x).
* **cache speedup** — a repeated sweep must be served from the
  on-disk cache at least 10x faster than the computing run.
"""

import time

import numpy as np
import pytest

from conftest import record_sweep_bench
from repro.core.engine import MultiAgentRotorRouter
from repro.core.pointers import ring_pointers_to_ports, ring_random
from repro.graphs.ring import ring_graph
from repro.sweep import BatchRingKernel, run_sweep, scenario
from repro.util.rng import derive_seed

N = 1024
LANES = 256
K = 8
ROUNDS = 400


def _reference_rounds_per_sec() -> float:
    """Single-config rounds/sec of the reference engine at (N, K).

    Best of three samples: the measurement is only ~10ms, so a single
    sample on a shared CI runner is one noisy-neighbor hiccup away
    from tanking the speedup ratio asserted below.
    """
    graph = ring_graph(N)
    ports = ring_pointers_to_ports(ring_random(N, seed=1))
    agents = [(i * N) // K for i in range(K)]
    engine = MultiAgentRotorRouter(graph, ports, agents)
    engine.run(20)  # warm up caches and allocation paths
    best = float("inf")
    for _ in range(3):
        started = time.perf_counter()
        engine.run(ROUNDS)
        best = min(best, time.perf_counter() - started)
    return ROUNDS / best


def _batch_inputs() -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(derive_seed(0, "bench-sweep", N, LANES))
    pointers = rng.choice(np.array([1, -1], dtype=np.int8), size=(LANES, N))
    counts = np.zeros((LANES, N), dtype=np.int64)
    for lane in range(LANES):
        starts = rng.integers(0, N, size=K)
        for a in starts:
            counts[lane, a] += 1
    return pointers, counts


def test_batch_kernel_throughput(benchmark):
    pointers, counts = _batch_inputs()
    timings: list[float] = []

    def run():
        kernel = BatchRingKernel(N, pointers, counts)
        started = time.perf_counter()
        kernel.run(ROUNDS)
        timings.append(time.perf_counter() - started)
        return kernel.round

    # Manual timing inside the workload keeps the ratio available even
    # under --benchmark-disable (the CI smoke mode); extra passes give
    # a best-of-3 floor when the benchmark fixture only calls once.
    assert benchmark(run) == ROUNDS
    while len(timings) < 3:
        run()
    batch_rps = LANES * ROUNDS / min(timings)
    reference_rps = _reference_rounds_per_sec()
    speedup = batch_rps / reference_rps
    benchmark.extra_info["batch config-rounds/sec"] = round(batch_rps)
    benchmark.extra_info["reference rounds/sec"] = round(reference_rps)
    benchmark.extra_info["speedup vs reference"] = round(speedup, 1)
    record_sweep_bench(
        "executor_kernel",
        {
            "n": N,
            "lanes": LANES,
            "k": K,
            "rounds": ROUNDS,
            "config_rounds_per_sec": round(batch_rps),
            "reference_rounds_per_sec": round(reference_rps),
            "speedup_vs_reference": round(speedup, 1),
        },
    )
    assert speedup >= 20, (
        f"batch kernel sustains only {speedup:.1f}x the reference engine "
        f"({batch_rps:,.0f} vs {reference_rps:,.0f} rounds/sec)"
    )


def test_sweep_cache_speedup(benchmark, tmp_path):
    """A repeated sweep is served from the on-disk cache >= 10x faster."""
    spec = scenario("table1")
    cache_dir = str(tmp_path / "cache")

    cold = run_sweep(spec, jobs=1, cache_dir=cache_dir)
    assert cold.cache_misses == spec.num_configs

    warm = benchmark.pedantic(
        run_sweep,
        args=(spec,),
        kwargs={"jobs": 1, "cache_dir": cache_dir},
        rounds=1,
        iterations=1,
    )
    assert warm.cache_hits == spec.num_configs
    assert warm.cache_misses == 0
    speedup = cold.elapsed / warm.elapsed
    benchmark.extra_info["cold sweep sec"] = round(cold.elapsed, 3)
    benchmark.extra_info["warm sweep sec"] = round(warm.elapsed, 4)
    benchmark.extra_info["cache speedup"] = round(speedup, 1)
    assert speedup >= 10, (
        f"cached sweep only {speedup:.1f}x faster "
        f"({cold.elapsed:.3f}s vs {warm.elapsed:.3f}s)"
    )


@pytest.mark.parametrize("jobs", [1, 2])
def test_sweep_executor_scales(benchmark, tmp_path, jobs):
    """Executor wall-clock with 1 vs 2 workers on the quick grid."""
    spec = scenario("cover_scaling", quick=True)

    result = benchmark.pedantic(
        run_sweep,
        args=(spec,),
        kwargs={"jobs": jobs, "cache_dir": str(tmp_path / f"cache{jobs}")},
        rounds=1,
        iterations=1,
    )
    assert result.cache_misses == spec.num_configs
    benchmark.extra_info["configs"] = spec.num_configs
    benchmark.extra_info["jobs"] = jobs
