"""[T1.return] Table 1, return time: Θ(n/k) for both models (Thm 6).

The rotor-router's exact limit-cycle worst gap normalizes to ~2 x n/k
for every initialization; the random walks' mean gap is n/k but their
max gap over a finite window dwarfs it (no deterministic ceiling).
"""

from conftest import run_once

from repro.analysis.return_time import ring_rotor_return_time_exact
from repro.core import placement, pointers
from repro.randomwalk.visits import ring_walk_gap_statistics

N = 192
KS = (2, 4, 8, 16)


def test_rotor_return_time_band(benchmark):
    def sweep():
        results = {}
        for k in KS:
            worst_init = ring_rotor_return_time_exact(
                N, placement.all_on_one(k), pointers.ring_toward_node(N, 0)
            )
            spaced = placement.equally_spaced(N, k)
            best_init = ring_rotor_return_time_exact(
                N, spaced, pointers.ring_negative(N, spaced)
            )
            results[k] = (worst_init.normalized, best_init.normalized)
        return results

    results = run_once(benchmark, sweep)
    benchmark.extra_info["normalized gaps (worst-init, spaced-init)"] = {
        k: (round(a, 2), round(b, 2)) for k, (a, b) in results.items()
    }
    for k, (a, b) in results.items():
        assert 1.0 <= a <= 3.0, f"worst-init gap*k/n out of band at k={k}"
        assert 1.0 <= b <= 3.0, f"spaced-init gap*k/n out of band at k={k}"


def test_walk_gaps_mean_fair_but_unbounded(benchmark):
    k = 8

    def measure():
        return ring_walk_gap_statistics(
            N, k, node=0, observation_rounds=600 * N, burn_in=4 * N, seed=0
        )

    stats = run_once(benchmark, measure)
    benchmark.extra_info["walk mean gap"] = round(stats.mean, 2)
    benchmark.extra_info["walk max gap"] = stats.maximum
    benchmark.extra_info["fair share n/k"] = N / k
    assert abs(stats.mean - N / k) / (N / k) < 0.35
    assert stats.maximum > 5 * (N / k)  # the heavy tail
