"""[X.load] Rotor-router load balancing (paper §1.2 related work).

From the worst imbalance (all tokens on one node), the rotor-router
drives the per-node discrepancy down to a small constant and keeps it
there — deterministically.
"""

from conftest import run_once

from repro.graphs.families import torus_2d
from repro.graphs.ring import ring_graph
from repro.loadbalance.diffusion import RotorDiffusion, random_walk_diffusion
from repro.loadbalance.discrepancy import discrepancy_trace, uniform_discrepancy


def test_rotor_discrepancy_settles(benchmark):
    per_node = 8
    cases = {
        "ring-64": ring_graph(64),
        "torus-8x8": torus_2d(8, 8),
    }

    def measure():
        results = {}
        for name, graph in cases.items():
            tokens = [0] * (per_node * graph.num_nodes)
            diffusion = RotorDiffusion(graph, tokens)
            diffusion.run(30 * graph.num_nodes)
            late = discrepancy_trace(
                diffusion, total_rounds=2 * graph.num_nodes, sample_every=8
            )
            results[name] = late.peak
        return results

    peaks = run_once(benchmark, measure)
    benchmark.extra_info["late-run discrepancy peaks"] = peaks
    for name, peak in peaks.items():
        # Settled discrepancy stays within ~2x the per-node fair share
        # (parity confinement on bipartite graphs costs one fair share).
        assert peak <= 2.5 * per_node, name


def test_rotor_competitive_with_walk(benchmark):
    graph = torus_2d(8, 8)
    tokens = [0] * (8 * graph.num_nodes)
    rounds = 20 * graph.num_nodes

    def measure():
        rotor = RotorDiffusion(graph, list(tokens))
        rotor.run(rounds)
        walk_loads = random_walk_diffusion(
            graph, list(tokens), rounds=rounds, seed=5
        )
        return (
            uniform_discrepancy(rotor.loads()),
            uniform_discrepancy(walk_loads),
        )

    rotor_disc, walk_disc = run_once(benchmark, measure)
    benchmark.extra_info["rotor discrepancy"] = rotor_disc
    benchmark.extra_info["walk discrepancy"] = walk_disc
    assert rotor_disc <= walk_disc + 8
