"""[ablation] Engine kernels: sparse dict vs dense numpy vs reference.

DESIGN.md's data-layout ablation: the O(k)-per-round sparse ring
engine wins for k << n; the O(n) dense engine wins when agents are
dense (the load-balancing regime); the general-graph reference engine
pays for its generality.  These benchmarks use normal multi-round
timing (they measure kernels, not experiments).
"""

import pytest

from repro.core.engine import MultiAgentRotorRouter
from repro.core.pointers import ring_pointers_to_ports, ring_random
from repro.core.ring import RingRotorRouter
from repro.core.ring_dense import DenseRingRotorRouter
from repro.graphs.ring import ring_graph

N = 1024
SPARSE_K = 8
DENSE_K = 4 * N
ROUNDS = 400


def _agents(k: int) -> list[int]:
    return [((i * N) // k) % N for i in range(k)]


@pytest.fixture(scope="module")
def directions():
    return ring_random(N, seed=1)


def test_sparse_engine_sparse_agents(benchmark, directions):
    def run():
        engine = RingRotorRouter(
            N, list(directions), _agents(SPARSE_K), track_counts=False
        )
        engine.run(ROUNDS)
        return engine.round

    assert benchmark(run) == ROUNDS


def test_dense_engine_sparse_agents(benchmark, directions):
    def run():
        engine = DenseRingRotorRouter(N, list(directions), _agents(SPARSE_K))
        engine.run(ROUNDS)
        return engine.round

    assert benchmark(run) == ROUNDS


def test_general_engine_sparse_agents(benchmark, directions):
    graph = ring_graph(N)
    ports = ring_pointers_to_ports(directions)

    def run():
        engine = MultiAgentRotorRouter(graph, list(ports), _agents(SPARSE_K))
        engine.run(ROUNDS)
        return engine.round

    assert benchmark(run) == ROUNDS


def test_sparse_engine_dense_tokens(benchmark, directions):
    def run():
        engine = RingRotorRouter(
            N, list(directions), _agents(DENSE_K), track_counts=False
        )
        engine.run(ROUNDS // 4)
        return engine.round

    assert benchmark(run) == ROUNDS // 4


def test_dense_engine_dense_tokens(benchmark, directions):
    def run():
        engine = DenseRingRotorRouter(N, list(directions), _agents(DENSE_K))
        engine.run(ROUNDS // 4)
        return engine.round

    assert benchmark(run) == ROUNDS // 4


def test_cover_kernel_fast_loop(benchmark):
    """The inlined run_until_covered loop on a worst-case instance."""
    from repro.core.pointers import ring_toward_node

    def run():
        engine = RingRotorRouter(
            N, ring_toward_node(N, 0), [0] * SPARSE_K, track_counts=False
        )
        return engine.run_until_covered()

    cover = benchmark(run)
    benchmark.extra_info["cover time"] = cover
    assert cover > 0
