"""[F1.borders] Figure 1: borders are vertex-type or edge-type.

Census over a stabilized run: (almost) every border between adjacent
lazy domains is one of Figure 1's two shapes; transients (wider gaps,
possible only for a step right after a first traversal) are rare.
"""

from conftest import run_once

from repro.analysis.domains_stats import border_type_census
from repro.core import placement, pointers
from repro.core.domains import BorderType

N = 192


def test_border_type_census(benchmark):
    def census_all():
        results = {}
        for k, name, agents in (
            (4, "spaced", placement.equally_spaced(N, 4)),
            (8, "spaced", placement.equally_spaced(N, 8)),
            (6, "random", placement.random_nodes(N, 6, seed=3,
                                                 distinct=True)),
            (8, "random", placement.random_nodes(N, 8, seed=5,
                                                 distinct=True)),
        ):
            census = border_type_census(
                N,
                agents,
                pointers.ring_negative(N, agents),
                burn_in=25 * N,
                observation_rounds=10 * N,
            )
            results[f"k={k}/{name}"] = census
        return results

    results = run_once(benchmark, census_all)
    for label, census in results.items():
        vertex = census.get(BorderType.VERTEX, 0)
        edge = census.get(BorderType.EDGE, 0)
        transient = census.get(BorderType.TRANSIENT, 0)
        total = vertex + edge + transient
        benchmark.extra_info[label] = {
            "vertex": vertex, "edge": edge, "transient": transient,
        }
        assert total > 0, f"no borders observed for {label}"
        # Figure 1's claim: the two shapes dominate utterly.
        assert transient <= 0.02 * total, f"too many transients: {label}"
