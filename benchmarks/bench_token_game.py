"""[L8.game] The appendix token game: min stack >= eta - 5k + 5.

Adversarial play at scale: random and draining adversaries hammer the
stacks for many moves; the claim and the partial-sum proof invariant
must survive, and the draining adversary shows the bound is not
vacuous (the minimum genuinely drops).
"""

from conftest import run_once

from repro.theory.token_game import (
    TokenGame,
    play_draining_adversary,
    play_random_adversary,
)


def test_random_adversary_long_run(benchmark):
    k, eta, moves = 12, 300, 60_000

    def play():
        game = TokenGame(k, eta)
        play_random_adversary(game, moves, seed=7)
        return game

    game = run_once(benchmark, play)
    benchmark.extra_info["min height"] = game.min_height()
    benchmark.extra_info["claim bound"] = game.claim_lower_bound()
    assert game.claim_holds()
    assert game.partial_sums_hold()
    assert sum(game.heights) == k * eta


def test_draining_adversary_long_run(benchmark):
    k, eta, moves = 12, 300, 60_000

    def play():
        game = TokenGame(k, eta)
        play_draining_adversary(game, moves)
        return game

    game = run_once(benchmark, play)
    benchmark.extra_info["min height"] = game.min_height()
    benchmark.extra_info["claim bound"] = game.claim_lower_bound()
    assert game.claim_holds()
    assert game.partial_sums_hold()
    # The adversary must achieve real damage (bound not vacuous).
    assert game.min_height() <= eta - 5


def test_claim_shape_in_k(benchmark):
    """The achievable damage grows with k, tracking the 5k shape."""
    eta = 400

    def sweep():
        damages = {}
        for k in (4, 8, 16, 32):
            game = TokenGame(k, eta)
            play_draining_adversary(game, 150_000)
            damages[k] = eta - game.min_height()
        return damages

    damages = run_once(benchmark, sweep)
    benchmark.extra_info["damage by k"] = damages
    ks = sorted(damages)
    assert all(damages[a] <= damages[b] for a, b in zip(ks, ks[1:]))
    for k, damage in damages.items():
        assert damage <= 5 * k - 5
