"""[X.speedup] Yanovski et al.'s experiment: near-linear speed-up on
well-connected graphs, and monotonicity (agents never hurt)."""

from conftest import run_once

from repro.analysis.speedup import TABLE1_SHAPES, best_matching_shape
from repro.experiments.speedup_graphs import (
    default_families,
    mean_cover_over_seeds,
)
from repro.analysis.speedup import measure_speedup

KS = (2, 4, 8)
SEEDS = (0, 1)


def test_speedup_families(benchmark):
    # The well-connected families of the (scaled) default grid; the
    # stress shapes (lollipop, G(n,p)) are exercised by
    # bench_sweep_general.py, and near-linear speed-up is not expected
    # of a lollipop anyway.
    families = default_families()
    chosen = {name: families[name] for name in
              ("torus", "hypercube", "clique")}

    def sweep():
        results = {}
        for name, factory in chosen.items():
            graph = factory()

            def cover(_n, k, graph=graph):
                return mean_cover_over_seeds(graph, k, SEEDS)

            results[name] = measure_speedup(cover, graph.num_nodes, list(KS))
        return results

    results = run_once(benchmark, sweep)
    for name, table in results.items():
        speedups = table.speedups()
        shape, flatness_value = best_matching_shape(table, TABLE1_SHAPES)
        benchmark.extra_info[name] = {
            "S(k)": [round(s, 2) for s in speedups],
            "best shape": shape,
            "flatness": round(flatness_value, 2),
        }
        # [27]'s observations: monotone gains, near-linear on these
        # well-connected graphs.
        assert all(s >= 0.9 for s in speedups)
        assert speedups[-1] >= 0.45 * KS[-1], (
            f"{name}: far from the near-linear regime"
        )
        assert shape in ("k", "k^2/log^2 k"), name


def test_ring_speedup_is_sublinear_for_stacked_start(benchmark):
    """The contrast the paper proves: the ring's worst case gains only
    log k, unlike the near-linear general-graph behaviour."""
    from repro.experiments.table1 import rotor_worst_cover

    n = 256

    def measure():
        base = rotor_worst_cover(n, 1)
        return [base / rotor_worst_cover(n, k) for k in KS]

    speedups = run_once(benchmark, measure)
    benchmark.extra_info["ring worst-case S(k)"] = [
        round(s, 2) for s in speedups
    ]
    assert speedups[-1] < 0.75 * KS[-1]  # clearly sublinear
