"""Discrepancy measurements for token diffusion.

The single-vertex discrepancy of a load vector is the worst deviation
of any node's token count from the fair share ``k/n``.  The
Cooper–Spencer phenomenon: under the rotor-router on grid-like graphs
the discrepancy stays bounded by a small constant *for all time*,
whereas random-walk diffusion fluctuates like sqrt of the loads.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.loadbalance.diffusion import RotorDiffusion


def uniform_discrepancy(loads: np.ndarray) -> float:
    """Max |load_v − mean load| over nodes."""
    loads = np.asarray(loads, dtype=float)
    if loads.size == 0:
        raise ValueError("empty load vector")
    return float(np.abs(loads - loads.mean()).max())


@dataclass(frozen=True)
class DiscrepancyTrace:
    """Discrepancy of a rotor diffusion sampled over time."""

    rounds: tuple[int, ...]
    discrepancies: tuple[float, ...]

    @property
    def peak(self) -> float:
        return max(self.discrepancies)

    @property
    def final(self) -> float:
        return self.discrepancies[-1]


def discrepancy_trace(
    diffusion: RotorDiffusion,
    total_rounds: int,
    sample_every: int = 1,
) -> DiscrepancyTrace:
    """Run ``diffusion`` and record its discrepancy at sampled rounds."""
    if total_rounds < 1 or sample_every < 1:
        raise ValueError("total_rounds and sample_every must be positive")
    rounds: list[int] = []
    values: list[float] = []
    for _ in range(total_rounds):
        diffusion.step()
        if diffusion.round % sample_every == 0:
            rounds.append(diffusion.round)
            values.append(uniform_discrepancy(diffusion.loads()))
    if not rounds:
        raise ValueError("no samples were taken; lower sample_every")
    return DiscrepancyTrace(rounds=tuple(rounds), discrepancies=tuple(values))
