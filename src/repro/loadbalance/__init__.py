"""Rotor-router load balancing (paper §1.2 related work).

With many more tokens than nodes (k >> n), the agents of the parallel
rotor-router are naturally read as units of load being passed around a
processor network.  Cooper and Spencer [12] proved the rotor-router
keeps the token count at every grid node within a *constant* of the
expected count under the random walk; Akbari–Berenbrink [1] and
Berenbrink et al. [8] extended such bounds to hypercubes and general
regular graphs.  This extension package measures that behaviour with
the same engine used everywhere else (tokens are just agents).
"""

from repro.loadbalance.diffusion import RotorDiffusion, random_walk_diffusion
from repro.loadbalance.discrepancy import (
    DiscrepancyTrace,
    discrepancy_trace,
    uniform_discrepancy,
)

__all__ = [
    "RotorDiffusion",
    "random_walk_diffusion",
    "DiscrepancyTrace",
    "discrepancy_trace",
    "uniform_discrepancy",
]
