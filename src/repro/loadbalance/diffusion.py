"""Token diffusion processes: rotor-router vs random walk.

Both processes move k tokens around a graph in synchronous rounds; the
rotor-router splits a node's tokens round-robin over its ports (the
engine's native multi-agent rule), while the random-walk reference
sends each token to an independently uniform neighbor.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.core.engine import MultiAgentRotorRouter
from repro.graphs.base import PortLabeledGraph
from repro.util.rng import make_rng


class RotorDiffusion:
    """Deterministic token diffusion: a thin facade over the engine.

    ``loads()`` exposes the per-node token counts the load-balancing
    literature reasons about.
    """

    def __init__(
        self,
        graph: PortLabeledGraph,
        tokens: Iterable[int],
        ports: Sequence[int] | None = None,
    ) -> None:
        if ports is None:
            ports = [0] * graph.num_nodes
        self.engine = MultiAgentRotorRouter(graph, ports, tokens)
        self.graph = graph

    @property
    def round(self) -> int:
        return self.engine.round

    @property
    def num_tokens(self) -> int:
        return self.engine.num_agents

    def step(self) -> None:
        self.engine.step()

    def run(self, rounds: int) -> None:
        self.engine.run(rounds)

    def loads(self) -> np.ndarray:
        """Current token count per node (copy)."""
        return self.engine.counts.copy()


def random_walk_diffusion(
    graph: PortLabeledGraph,
    tokens: Iterable[int],
    rounds: int,
    seed: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """Token counts after ``rounds`` of independent random-walk moves.

    Vectorized over tokens via per-node multinomial splitting: all
    tokens at a node scatter independently and uniformly over its
    neighbors each round.  Returns the final per-node counts.
    """
    rng = make_rng(seed)
    n = graph.num_nodes
    loads = np.zeros(n, dtype=np.int64)
    for t in tokens:
        if not 0 <= int(t) < n:
            raise ValueError(f"token position {t} out of range")
        loads[int(t)] += 1
    if loads.sum() == 0:
        raise ValueError("at least one token is required")
    if rounds < 0:
        raise ValueError(f"rounds must be non-negative, got {rounds}")
    for _ in range(rounds):
        new_loads = np.zeros(n, dtype=np.int64)
        for v in np.flatnonzero(loads):
            v = int(v)
            neighbors = graph.neighbors(v)
            degree = len(neighbors)
            split = rng.multinomial(int(loads[v]), [1.0 / degree] * degree)
            for neighbor, amount in zip(neighbors, split):
                if amount:
                    new_loads[neighbor] += int(amount)
        loads = new_loads
    return loads
