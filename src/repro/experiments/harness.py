"""Shared experiment-report plumbing.

Keeps experiment modules declarative: they build
:class:`repro.util.tables.Table` objects and wrap them in a
:class:`Report` that renders with a title, the paper's claim, and
notes; ``main()`` functions print reports and optionally save CSVs.
"""

from __future__ import annotations

import csv
import os
from dataclasses import dataclass, field

from repro.util.tables import Table


@dataclass
class Report:
    """A titled bundle of tables plus free-form notes.

    ``stats`` optionally carries the measurement backend's execution
    accounting (a :class:`repro.analysis.backend.BackendStats`); the
    CLI prints its one-line ``computed=X cached=Y`` summary after the
    report.
    """

    title: str
    claim: str = ""
    tables: list[Table] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    stats: object | None = None

    def add_table(self, table: Table) -> Table:
        self.tables.append(table)
        return table

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        parts = [f"== {self.title} =="]
        if self.claim:
            parts.append(f"paper: {self.claim}")
        for table in self.tables:
            parts.append("")
            parts.append(table.render())
        if self.notes:
            parts.append("")
            parts.extend(f"note: {note}" for note in self.notes)
        return "\n".join(parts)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()

    def save_csv(self, directory: str) -> list[str]:
        """Write each table as a CSV file; returns the paths written.

        Captions that slugify identically (or emptily) are
        disambiguated with the table index, so no table ever silently
        overwrites another within one report.
        """
        os.makedirs(directory, exist_ok=True)
        base = [_slugify(table.caption) or f"table{i}"
                for i, table in enumerate(self.tables)]
        natural = set(base)
        used: set[str] = set()
        slugs = []
        for index, slug in enumerate(base):
            if base.count(slug) > 1 or slug in used:
                slug = f"{slug}-t{index}"
                # A disambiguated name may itself match another
                # table's natural slug; keep extending until unique
                # (terminates: every pass strictly lengthens it).
                while slug in natural or slug in used:
                    slug = f"{slug}-t{index}"
            used.add(slug)
            slugs.append(slug)
        written = []
        for slug, table in zip(slugs, self.tables):
            path = os.path.join(directory, f"{_slugify(self.title)}_{slug}.csv")
            with open(path, "w", newline="") as handle:
                writer = csv.writer(handle)
                writer.writerow(table.columns)
                writer.writerows(table.rows)
            written.append(path)
        return written


def _slugify(text: str) -> str:
    keep = []
    for ch in text.lower():
        if ch.isalnum():
            keep.append(ch)
        elif keep and keep[-1] != "-":
            keep.append("-")
    return "".join(keep).strip("-")[:60]
