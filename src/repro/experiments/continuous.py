"""§2.3 continuous-time approximation vs the discrete system.

The paper postulates, from the ODE model, that in the all-on-one worst
case (a) the covered region grows like sqrt(t) and (b) the relative
domain sizes follow the Lemma 13 profile a_i ~ 1/(i H_k).  The
reproduction measures both on the discrete simulator and integrates
the ODE itself as a cross-check:

* ODE growth exponent ~ 0.5 and discrete growth exponent ~ 0.5;
* the discrete end-state profile correlates with the Lemma 13 profile;
* after coverage, equal domain sizes are an ODE equilibrium and the
  discrete system's lazy domains equalize (Lemma 12's statement).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.domains_stats import (
    final_profile_vs_lemma13,
    trace_domains,
)
from repro.core import placement, pointers
from repro.experiments.harness import Report
from repro.theory.ode import equilibrium_check, integrate_domains
from repro.util.tables import Table


def run_growth_comparison(n: int = 1024, k: int = 8) -> Table:
    """sqrt-growth: ODE vs discrete covered-region size."""
    trajectory = integrate_domains([1.0] * k, t_final=float(n * n) / 16.0)
    ode_exponent = trajectory.growth_exponent()

    directions = pointers.ring_toward_node(n, 0)
    trace = trace_domains(
        n,
        placement.all_on_one(k),
        directions,
        total_rounds=n * n,
        sample_every=max(1, n // 8),
        stop_at_cover=True,
    )
    discrete_exponent = trace.growth_exponent()
    table = Table(
        columns=["model", "growth exponent", "target"],
        caption=f"Covered-region growth from all-on-one start (n={n}, k={k})",
        formats=[None, ".3f", None],
    )
    table.add_row("ODE (§2.3)", ode_exponent, "0.5")
    table.add_row("discrete rotor-router", discrete_exponent, "0.5")
    return table


def run_profile_comparison(n: int = 1024, k: int = 8) -> Table:
    """Domain-size profile vs the Lemma 13 prediction."""
    measured, predicted = final_profile_vs_lemma13(n, k, rounds_budget=n * n)
    table = Table(
        columns=["domain i", "measured share", "Lemma 13 share"],
        caption=f"Normalized domain profile near cover (n={n}, k={k}); "
        "largest (frontier) first",
        formats=["d", ".4f", ".4f"],
    )
    for i, (m, p) in enumerate(zip(measured, predicted), start=1):
        table.add_row(i, float(m), float(p))
    correlation = float(np.corrcoef(measured, predicted)[0, 1])
    table.caption += f" | correlation {correlation:.3f}"
    return table


def run_equilibrium_table(ks: tuple[int, ...] = (4, 8, 16)) -> Table:
    """Equal domains are the covered-phase ODE equilibrium."""
    table = Table(
        columns=["k", "|drift| equal sizes", "|drift| perturbed"],
        caption="ODE drift at the uniform profile vs a 10% perturbation",
        formats=["d", ".2e", ".2e"],
    )
    for k in ks:
        equal = [100.0] * k
        perturbed = [100.0 + (10.0 if i % 2 else -10.0) for i in range(k)]
        table.add_row(k, equilibrium_check(equal), equilibrium_check(perturbed))
    return table


def run_continuous(n: int = 1024, k: int = 8) -> Report:
    report = Report(
        title="§2.3 continuous-time approximation vs discrete simulation",
        claim=(
            "covered region grows ~ sqrt(t); domain sizes follow the "
            "Lemma 13 profile; equal domains are the post-cover equilibrium"
        ),
    )
    report.add_table(run_growth_comparison(n, k))
    report.add_table(run_profile_comparison(n, k))
    report.add_table(run_equilibrium_table())
    return report


def main() -> None:  # pragma: no cover - manual entry point
    print(run_continuous().render())


if __name__ == "__main__":  # pragma: no cover
    main()
