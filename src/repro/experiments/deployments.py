"""The Theorem 1 delayed deployment, executed (paper §3.1, Figure 2).

The proof of Theorem 1 *constructs* a delayed deployment of the k-agent
rotor-router on the path (all agents start at the left endpoint,
pointers toward it) that maintains *desirable configurations*: agent i
parked at position ``p_i * S`` (``p_i = a_i + ... + a_k`` from the
Lemma 13 profile), every visited node's pointer pointing left.  The
deployment alternates:

* **Phase A** — build the first desirable configuration of length S0 by
  releasing agents one at a time;
* **Phase B1** — release everyone for ``ceil(2 a_k S multiplier)``
  rounds (the paper uses ``multiplier = k^4``; it is a parameter here
  because the proof's constants assume k >= 10^6 while experiments run
  k in the tens);
* **Phase B2** — re-park the agents one at a time at the next desirable
  configuration of length ``S + ceil(a_1 a_k multiplier) + 12 k``.

Because only B1 rounds are fully active, Lemma 3 sandwiches the real
(undelayed) cover time between the B1 total and the deployment total —
an executable proof skeleton.  :func:`run_theorem1_deployment` returns
the full trace (S_j ladder, phase durations, violations of the
desirable-configuration invariants) and the sandwich verdict.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.delayed import hold_all_except_one_at
from repro.core.path import PathRotorRouter
from repro.theory.sequences import ProfileSequence, solve_profile


class DeploymentError(RuntimeError):
    """The construction left its expected envelope (budget/invariant)."""


@dataclass
class Theorem1Trace:
    """Execution trace of the Theorem 1 deployment on the path."""

    n: int
    k: int
    multiplier: float
    s_ladder: list[int] = field(default_factory=list)
    phase_a_rounds: int = 0
    phase_b1_rounds: int = 0
    phase_b2_rounds: int = 0
    cover_round: int | None = None
    invariant_violations: list[str] = field(default_factory=list)

    @property
    def total_rounds(self) -> int:
        return self.phase_a_rounds + self.phase_b1_rounds + self.phase_b2_rounds

    def slow_down_bounds(self) -> tuple[int, int]:
        """Lemma 3: (tau, T) bracketing the undelayed cover time.

        Only B1 rounds are fully active, so tau = B1 total.
        """
        if self.cover_round is None:
            raise DeploymentError("deployment did not cover the path")
        return self.phase_b1_rounds, self.total_rounds


def _walk_agent_to(
    engine: PathRotorRouter,
    start: int,
    target: int,
    budget: int,
) -> int:
    """Release one agent at ``start``; walk it until it stands on
    ``target`` having just moved rightward.  Returns rounds used.

    A rightward arrival guarantees the pointers behind the agent point
    left, preserving the desirable-configuration invariant.  The agent
    bounces within its domain, so the stop condition is eventually
    reached whether the target lies ahead of or behind the start.
    """
    if start == target:
        return 0
    position = start
    previous = start
    for used in range(1, budget + 1):
        holds = hold_all_except_one_at(engine, position)
        moves = engine.step(holds)
        released = [m for m in moves if m[0] == position and m[2] >= 1]
        if len(released) != 1:
            raise DeploymentError(
                f"expected one released agent at {position}, moves={moves}"
            )
        previous, position = position, released[0][1]
        if position == target and position == previous + 1:
            return used
    raise DeploymentError(
        f"agent failed to reach {target} from {start} within {budget} rounds"
    )


def _agent_positions_desc(engine: PathRotorRouter) -> list[int]:
    """Agent positions, largest first (agent 1 = frontier agent)."""
    return sorted(engine.positions(), reverse=True)


def _targets(profile: ProfileSequence, length: int) -> list[int]:
    """Desirable-configuration positions v_i = round(p_i * length),
    for i = 1..k (descending: index 0 is the frontier agent)."""
    p = profile.p
    targets = [max(1, round(p[i] * length)) for i in range(1, profile.k + 1)]
    # Enforce strictly decreasing positions (integer rounding can
    # collide at small S; the paper's S is large enough not to).
    for i in range(1, len(targets)):
        if targets[i] >= targets[i - 1]:
            targets[i] = targets[i - 1] - 1
    if targets[-1] < 1:
        raise DeploymentError(
            f"length {length} too small to park {profile.k} distinct agents"
        )
    return targets


def _check_desirable(
    engine: PathRotorRouter,
    targets: list[int],
    trace: Theorem1Trace,
    label: str,
) -> None:
    """Record any deviation from the desirable-configuration invariants."""
    positions = _agent_positions_desc(engine)
    if positions != targets:
        trace.invariant_violations.append(
            f"{label}: positions {positions} != targets {targets}"
        )
    frontier = targets[0]
    bad_pointers = [
        v for v in range(1, frontier) if engine.ptr[v] != -1
        and v not in engine.counts
    ]
    if bad_pointers:
        trace.invariant_violations.append(
            f"{label}: {len(bad_pointers)} visited pointers not leftward "
            f"(first: {bad_pointers[:5]})"
        )


def run_theorem1_deployment(
    n: int,
    k: int,
    multiplier: float | None = None,
    initial_length: int | None = None,
    max_total_rounds: int = 50_000_000,
) -> Theorem1Trace:
    """Execute the Theorem 1 deployment on the n-node path with k agents.

    ``multiplier`` plays the role of the paper's ``k^4`` (default:
    ``k**4`` capped to keep small-instance runs practical);
    ``initial_length`` is the paper's ``S_0 = n / sqrt(k log k)``.
    """
    if k <= 3:
        raise ValueError(f"the Lemma 13 profile requires k > 3, got {k}")
    if n < 8 * k:
        raise ValueError(f"path too short: n={n} for k={k}")
    profile = solve_profile(k)
    if multiplier is None:
        multiplier = float(min(k ** 4, 16 * k * k))
    if multiplier <= 0:
        raise ValueError(f"multiplier must be positive, got {multiplier}")

    if initial_length is None:
        initial_length = max(
            int(n / math.sqrt(k * max(math.log(k), 1.0))),
            int(math.ceil(3.0 / profile.a[k])),
        )
    if initial_length >= n:
        raise ValueError(
            f"initial length {initial_length} must be below n={n}"
        )

    # All agents at the left endpoint; every pointer toward it
    # ("negatively initialized": first visits reflect).
    directions = [-1] * n
    engine = PathRotorRouter(n, directions, [0] * k, track_counts=False)
    trace = Theorem1Trace(n=n, k=k, multiplier=multiplier)

    # ------------------------------------------------------------ Phase A
    s_value = initial_length
    targets = _targets(profile, s_value)
    round_before = engine.round
    for i in range(k):
        budget = 4 * (targets[i] + 2) ** 2 + 64
        _walk_agent_to(engine, 0, targets[i], budget)
    trace.phase_a_rounds = engine.round - round_before
    trace.s_ladder.append(s_value)
    _check_desirable(engine, targets, trace, f"phase A (S={s_value})")

    # ------------------------------------------------------------ Phase B
    a1, ak = profile.a[1], profile.a[k]
    increment = max(1, math.ceil(a1 * ak * multiplier)) + 12 * k
    while engine.unvisited > 0:
        if engine.round > max_total_rounds:
            raise DeploymentError(
                f"deployment exceeded {max_total_rounds} rounds"
            )
        # B1: everyone runs for ceil(2 a_k S multiplier) rounds.
        b1_rounds = int(math.ceil(2.0 * ak * s_value * multiplier))
        before = engine.round
        for _ in range(b1_rounds):
            engine.step()
            if engine.unvisited == 0:
                break
        trace.phase_b1_rounds += engine.round - before
        if engine.unvisited == 0:
            break

        # B2: re-park at the next desirable configuration.
        s_next = min(s_value + increment, n - 1)
        targets = _targets(profile, s_next)
        before = engine.round
        current = _agent_positions_desc(engine)
        for i in range(k):
            budget = 16 * (s_next + 2) * (i + 2) * (increment + 26 * k) + 256
            _walk_agent_to(engine, current[i], targets[i], budget)
            current = _agent_positions_desc(engine)
        trace.phase_b2_rounds += engine.round - before
        _check_desirable(engine, targets, trace, f"phase B2 (S={s_next})")
        s_value = s_next
        trace.s_ladder.append(s_value)

    trace.cover_round = engine.cover_round
    return trace


def undelayed_path_cover_time(n: int, k: int, max_rounds: int | None = None) -> int:
    """Cover time of the *undelayed* system from the same initialization
    (all agents at node 0, pointers toward it) — the quantity that
    Theorem 1 bounds and Lemma 3 sandwiches against the deployment."""
    engine = PathRotorRouter(n, [-1] * n, [0] * k, track_counts=False)
    budget = max_rounds if max_rounds is not None else 8 * n * n + 64
    return engine.run_until_covered(budget)
