"""Theorem 6: the stabilized rotor-router visits every node each Θ(n/k).

For k in O(n^(1/6)) the k-agent rotor-router on the ring, *however
initialized*, stabilizes so that every node is visited at least once
every Θ(n/k) rounds.  The reproduction finds the exact limit cycle
(Brent) for a battery of initializations and reports the worst and
best per-node visit gaps, normalized by n/k; Theorem 6 predicts the
normalized values live in a constant band (about [1, 2] empirically —
an agent patrolling a domain of length n/k returns after ~2·n/k).

The random-walk contrast (no deterministic ceiling; expected gap n/k
with heavy tails) is reported by the Table 1 module.

The initialization battery is declared once and its limit-cycle cells
run through the batched pipeline of one
:class:`repro.analysis.backend.MeasurementPlan`.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.backend import MeasurementPlan
from repro.analysis.return_time import (
    RingReturnTime,
    ring_rotor_return_time_exact,
)
from repro.core import placement, pointers
from repro.experiments.harness import Report
from repro.util.rng import derive_seed
from repro.util.tables import Table


def battery_instances(
    n: int, k: int, seeds: Sequence[int]
) -> dict[str, tuple[list[int], list[int]]]:
    """Named ``(agents, directions)`` initializations of the battery."""
    one = placement.all_on_one(k)
    spaced = placement.equally_spaced(n, k)
    instances = {
        "all-on-one/toward": (one, pointers.ring_toward_node(n, 0)),
        "spaced/negative": (spaced, pointers.ring_negative(n, spaced)),
        "spaced/positive": (spaced, pointers.ring_positive(n, spaced)),
    }
    for seed in seeds:
        instances[f"random/seed{seed}"] = (
            placement.random_nodes(
                n, k, seed=derive_seed(seed, "t6-place", n, k)
            ),
            pointers.ring_random(n, seed=derive_seed(seed, "t6-ptr", n, k)),
        )
    return instances


def return_time_battery(
    n: int, k: int, seeds: Sequence[int]
) -> dict[str, RingReturnTime]:
    """Exact return times over the battery (serial reference helper)."""
    return {
        name: ring_rotor_return_time_exact(n, agents, directions)
        for name, (agents, directions) in battery_instances(
            n, k, seeds
        ).items()
    }


def run_theorem6(
    n: int = 256,
    ks: Sequence[int] = (2, 4, 8, 16),
    seeds: Sequence[int] = (0, 1, 2),
    backend: str = "batch",
    jobs: int = 1,
    cache_dir: str | None = None,
    quick: bool = False,
) -> Report:
    if quick:
        n, ks, seeds = 128, (2, 4, 8), (0, 1)
    plan = MeasurementPlan(backend=backend, jobs=jobs, cache_dir=cache_dir)
    report = Report(
        title="Theorem 6: return time Θ(n/k) regardless of initialization",
        claim=(
            "after stabilization every node is visited once every Θ(n/k) "
            "rounds, for k in O(n^(1/6))"
        ),
    )
    scheduled = [
        (
            k,
            [
                (name, plan.rotor_return_exact(n, agents, directions))
                for name, (agents, directions) in battery_instances(
                    n, k, seeds
                ).items()
            ],
        )
        for k in ks
    ]
    report.stats = plan.execute()

    table = Table(
        columns=[
            "k",
            "init",
            "preperiod",
            "period",
            "worst gap",
            "gap*k/n",
        ],
        caption=f"Exact limit-cycle return times on the n={n} ring",
        formats=["d", None, "d", "d", ".0f", ".2f"],
    )
    normalized: list[float] = []
    for k, cells in scheduled:
        for name, handle in cells:
            result = handle.value
            normalized.append(result.normalized)
            table.add_row(
                k,
                name,
                result.preperiod,
                result.period,
                result.worst_gap,
                result.normalized,
            )
    report.add_table(table)
    report.add_note(
        f"normalized gaps span [{min(normalized):.2f}, "
        f"{max(normalized):.2f}] — a constant band around 2, "
        "independent of n, k and the initialization"
    )
    return report


def main() -> None:  # pragma: no cover - manual entry point
    print(run_theorem6().render())


if __name__ == "__main__":  # pragma: no cover
    main()
