"""Theorem 3: equally spaced agents cover in O(n²/k²), any pointers.

The theorem's content is adversary-proof speed: *regardless of the
initial pointer arrangement*, a placement on points splitting the ring
into arcs of length <= n/k covers within O((n/k)²).  We sweep k for
fixed n under several pointer arrangements — including the Theorem 4
adversary (negative) and randomized ones — and verify the normalized
column ``C · k² / n²`` stays flat and bounded.

The (k x pointer-family x seed) grid is scheduled on one
:class:`repro.analysis.backend.MeasurementPlan` and executed in a
single batched pass.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.analysis.backend import MeasurementPlan
from repro.analysis.cover_time import ring_rotor_cover_time
from repro.core import placement, pointers
from repro.experiments.harness import Report
from repro.theory import bounds
from repro.util.rng import derive_seed
from repro.util.tables import Table

PointerFactory = Callable[[int, Sequence[int], int], list[int]]


def _negative(n: int, agents: Sequence[int], _seed: int) -> list[int]:
    return pointers.ring_negative(n, agents)


def _positive(n: int, agents: Sequence[int], _seed: int) -> list[int]:
    return pointers.ring_positive(n, agents)


def _uniform(n: int, _agents: Sequence[int], _seed: int) -> list[int]:
    return pointers.ring_uniform(n)


def _random(n: int, _agents: Sequence[int], seed: int) -> list[int]:
    return pointers.ring_random(n, seed)


POINTER_FAMILIES: dict[str, PointerFactory] = {
    "negative": _negative,
    "positive": _positive,
    "uniform": _uniform,
    "random": _random,
}


def spaced_cover(
    n: int, k: int, pointer_family: str = "negative", seed: int = 0
) -> int:
    """Cover time with equally spaced agents under a pointer family."""
    agents = placement.equally_spaced(n, k)
    factory = POINTER_FAMILIES[pointer_family]
    return ring_rotor_cover_time(n, agents, factory(n, agents, seed))


def _spaced_handle(
    plan: MeasurementPlan, n: int, k: int, pointer_family: str, seed: int = 0
):
    """Schedule the cell :func:`spaced_cover` would measure."""
    agents = placement.equally_spaced(n, k)
    factory = POINTER_FAMILIES[pointer_family]
    return plan.rotor_cover(n, agents, factory(n, agents, seed))


def run_theorem3(
    n: int = 1024,
    ks: Sequence[int] = (2, 4, 8, 16, 32, 64),
    random_seeds: Sequence[int] = (0, 1, 2),
    backend: str = "batch",
    jobs: int = 1,
    cache_dir: str | None = None,
    quick: bool = False,
) -> Report:
    if quick:
        n, ks, random_seeds = 256, (2, 4, 8, 16), (0,)
    plan = MeasurementPlan(backend=backend, jobs=jobs, cache_dir=cache_dir)
    report = Report(
        title="Theorem 3: equally spaced placement covers in O(n²/k²)",
        claim=(
            "agents splitting the ring into <= n/k arcs cover within "
            "O((n/k)²) regardless of the pointer arrangement"
        ),
    )
    scheduled = [
        (
            k,
            _spaced_handle(plan, n, k, "negative"),
            _spaced_handle(plan, n, k, "positive"),
            _spaced_handle(plan, n, k, "uniform"),
            [
                _spaced_handle(plan, n, k, "random", derive_seed(s, "t3", n, k))
                for s in random_seeds
            ],
        )
        for k in ks
    ]
    report.stats = plan.execute()

    table = Table(
        columns=[
            "k",
            "C negative",
            "C positive",
            "C uniform",
            "C random(max)",
            "worst*k^2/n^2",
        ],
        caption=f"Equally spaced agents on the n={n} ring",
        formats=["d", "d", "d", "d", "d", ".3f"],
    )
    for k, h_negative, h_positive, h_uniform, h_randoms in scheduled:
        negative = h_negative.value
        positive = h_positive.value
        uniform = h_uniform.value
        random_worst = max(handle.value for handle in h_randoms)
        worst = max(negative, positive, uniform, random_worst)
        table.add_row(
            k,
            negative,
            positive,
            uniform,
            random_worst,
            worst / bounds.rotor_cover_best(n, k),
        )
    report.add_table(table)
    report.add_note(
        "the last column (worst over pointer families, normalized by "
        "(n/k)²) should stay bounded and roughly flat in k"
    )
    return report


def main() -> None:  # pragma: no cover - manual entry point
    print(run_theorem3().render())


if __name__ == "__main__":  # pragma: no cover
    main()
