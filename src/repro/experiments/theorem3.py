"""Theorem 3: equally spaced agents cover in O(n²/k²), any pointers.

The theorem's content is adversary-proof speed: *regardless of the
initial pointer arrangement*, a placement on points splitting the ring
into arcs of length <= n/k covers within O((n/k)²).  We sweep k for
fixed n under several pointer arrangements — including the Theorem 4
adversary (negative) and randomized ones — and verify the normalized
column ``C · k² / n²`` stays flat and bounded.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.analysis.cover_time import ring_rotor_cover_time
from repro.core import placement, pointers
from repro.experiments.harness import Report
from repro.theory import bounds
from repro.util.rng import derive_seed
from repro.util.tables import Table

PointerFactory = Callable[[int, Sequence[int], int], list[int]]


def _negative(n: int, agents: Sequence[int], _seed: int) -> list[int]:
    return pointers.ring_negative(n, agents)


def _positive(n: int, agents: Sequence[int], _seed: int) -> list[int]:
    return pointers.ring_positive(n, agents)


def _uniform(n: int, _agents: Sequence[int], _seed: int) -> list[int]:
    return pointers.ring_uniform(n)


def _random(n: int, _agents: Sequence[int], seed: int) -> list[int]:
    return pointers.ring_random(n, seed)


POINTER_FAMILIES: dict[str, PointerFactory] = {
    "negative": _negative,
    "positive": _positive,
    "uniform": _uniform,
    "random": _random,
}


def spaced_cover(
    n: int, k: int, pointer_family: str = "negative", seed: int = 0
) -> int:
    """Cover time with equally spaced agents under a pointer family."""
    agents = placement.equally_spaced(n, k)
    factory = POINTER_FAMILIES[pointer_family]
    return ring_rotor_cover_time(n, agents, factory(n, agents, seed))


def run_theorem3(
    n: int = 1024,
    ks: Sequence[int] = (2, 4, 8, 16, 32, 64),
    random_seeds: Sequence[int] = (0, 1, 2),
) -> Report:
    report = Report(
        title="Theorem 3: equally spaced placement covers in O(n²/k²)",
        claim=(
            "agents splitting the ring into <= n/k arcs cover within "
            "O((n/k)²) regardless of the pointer arrangement"
        ),
    )
    table = Table(
        columns=[
            "k",
            "C negative",
            "C positive",
            "C uniform",
            "C random(max)",
            "worst*k^2/n^2",
        ],
        caption=f"Equally spaced agents on the n={n} ring",
        formats=["d", "d", "d", "d", "d", ".3f"],
    )
    for k in ks:
        negative = spaced_cover(n, k, "negative")
        positive = spaced_cover(n, k, "positive")
        uniform = spaced_cover(n, k, "uniform")
        random_worst = max(
            spaced_cover(n, k, "random", derive_seed(s, "t3", n, k))
            for s in random_seeds
        )
        worst = max(negative, positive, uniform, random_worst)
        table.add_row(
            k,
            negative,
            positive,
            uniform,
            random_worst,
            worst / bounds.rotor_cover_best(n, k),
        )
    report.add_table(table)
    report.add_note(
        "the last column (worst over pointer families, normalized by "
        "(n/k)²) should stay bounded and roughly flat in k"
    )
    return report


def main() -> None:  # pragma: no cover - manual entry point
    print(run_theorem3().render())


if __name__ == "__main__":  # pragma: no cover
    main()
