"""Theorem 4: every placement admits pointers forcing Ω(n²/k²).

The adversary's recipe from the proof: find a *remote vertex* v far
from all agents (Definition 2 / Lemma 15 guarantee one exists at
distance >= n/(9k)), then initialize all pointers negatively (toward
the nearest agent), so every first visit reflects and domains grow one
node per traversal.  Exploration of the n/(10k)-neighborhood of v then
costs Ω((n/k)²).

The reproduction (a) verifies the adversary's geometric ingredient —
remote vertices far from the agents exist for every placement tried —
and (b) measures the cover time under negative pointers for a battery
of placements, checking it stays >= c · (n/k)² with a placement-
independent constant c.  The geometric checks are cheap and computed
inline; the cover cells are scheduled on one
:class:`repro.analysis.backend.MeasurementPlan` and batched.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.backend import MeasurementPlan
from repro.analysis.cover_time import ring_rotor_cover_time
from repro.analysis.remote import (
    count_remote_vertices,
    remote_vertices_far_from_agents,
)
from repro.core import placement, pointers
from repro.experiments.harness import Report
from repro.theory import bounds
from repro.util.rng import derive_seed
from repro.util.tables import Table


def placements_battery(n: int, k: int, seeds: Sequence[int]) -> dict[str, list[int]]:
    """The placements the adversary is tested against."""
    battery = {
        "equally-spaced": placement.equally_spaced(n, k),
        "all-on-one": placement.all_on_one(k),
        "half-ring": placement.half_ring(n, k),
        "clustered": placement.clustered(n, k, max(1, k // 2), seed=11),
    }
    for seed in seeds:
        battery[f"random/seed{seed}"] = placement.random_nodes(
            n, k, seed=derive_seed(seed, "t4-place", n, k)
        )
    return battery


def adversarial_cover(n: int, agents: Sequence[int]) -> int:
    """Cover time under the Theorem 4 adversary (negative pointers)."""
    return ring_rotor_cover_time(n, agents, pointers.ring_negative(n, agents))


def run_theorem4(
    n: int = 1024,
    ks: Sequence[int] = (4, 8, 16),
    seeds: Sequence[int] = (0, 1, 2),
    backend: str = "batch",
    jobs: int = 1,
    cache_dir: str | None = None,
    quick: bool = False,
) -> Report:
    if quick:
        n, ks, seeds = 256, (4, 8), (0,)
    plan = MeasurementPlan(backend=backend, jobs=jobs, cache_dir=cache_dir)
    report = Report(
        title="Theorem 4: pointers forcing Ω(n²/k²) for any placement",
        claim=(
            "for n >= 440k² and any agent placement there is a pointer "
            "arrangement with cover time Ω((n/k)²)"
        ),
    )
    scheduled = [
        (
            k,
            [
                (
                    name,
                    agents,
                    plan.rotor_cover(
                        n, agents, pointers.ring_negative(n, agents)
                    ),
                )
                for name, agents in placements_battery(n, k, seeds).items()
            ],
        )
        for k in ks
    ]
    report.stats = plan.execute()

    table = Table(
        columns=[
            "k",
            "placement",
            "#remote",
            "#remote far",
            "C adversarial",
            "C*k^2/n^2",
        ],
        caption=f"Theorem 4 adversary on the n={n} ring "
        "(negative pointers; remote vertices per Definition 2)",
        formats=["d", None, "d", "d", "d", ".3f"],
    )
    minima: list[float] = []
    for k, cells in scheduled:
        for name, agents, handle in cells:
            remote_count = count_remote_vertices(n, agents)
            far = remote_vertices_far_from_agents(
                n, agents, max(1, n // (9 * k))
            )
            cover = handle.value
            normalized = cover / bounds.rotor_cover_best(n, k)
            minima.append(normalized)
            table.add_row(k, name, remote_count, len(far), cover, normalized)
    report.add_table(table)
    report.add_note(
        f"min normalized cover over the battery: {min(minima):.3f} "
        "(a placement-independent positive constant = the Ω((n/k)²) bound)"
    )
    report.add_note(
        "Lemma 15 check: remote vertices are always plentiful "
        "(>= 0.8n - o(n))"
    )
    return report


def main() -> None:  # pragma: no cover - manual entry point
    print(run_theorem4().render())


if __name__ == "__main__":  # pragma: no cover
    main()
