"""Theorem 1: worst-case placement covers in Θ(n²/log k).

Two reproductions:

1. **Direct measurement** — all k agents on node 0, pointers along the
   shortest path toward it; sweep k for fixed n (and n for fixed k) and
   verify the normalized column ``C · log k / n²`` is flat, i.e. both
   the Θ(n²) growth in n and the 1/log k speed-up in k hold.
2. **The proof's deployment** — run the Phase A/B1/B2 construction of
   :mod:`repro.experiments.deployments` and verify the Lemma 3 sandwich
   ``tau <= C(R[k]) <= T`` on the actual undelayed system.

The k- and n-sweeps schedule their cover cells declaratively on one
:class:`repro.analysis.backend.MeasurementPlan` (the batched kernels
step all lanes together); the deployment sandwich replays the proof's
delayed construction, which is a trace study rather than a grid, and
stays serial.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

from repro.analysis.backend import MeasurementPlan
from repro.analysis.scaling import fit_power_law
from repro.core import placement, pointers
from repro.experiments.deployments import (
    run_theorem1_deployment,
    undelayed_path_cover_time,
)
from repro.experiments.harness import Report
from repro.experiments.table1 import rotor_worst_cover
from repro.theory import bounds
from repro.util.tables import Table

__all__ = [
    "run_k_sweep",
    "run_n_sweep",
    "run_deployment_sandwich",
    "run_theorem1",
    "rotor_worst_cover",
]


def _worst_cover_handle(plan: MeasurementPlan, n: int, k: int):
    """Schedule the Theorem 1 worst-case cell (all-on-one, toward 0)."""
    return plan.rotor_cover(
        n, placement.all_on_one(k), pointers.ring_toward_node(n, 0)
    )


def plan_k_sweep(
    plan: MeasurementPlan, n: int, ks: Sequence[int]
) -> Callable[[], Table]:
    """Fixed n, sweep k: check C * log k / n² flat."""
    baseline = _worst_cover_handle(plan, n, 1)
    handles = [(k, _worst_cover_handle(plan, n, k)) for k in ks]

    def build() -> Table:
        table = Table(
            columns=[
                "k", "cover C", "C/n^2", "C*log k/n^2", "speedup C(1)/C(k)",
            ],
            caption=f"Theorem 1 k-sweep on the n={n} ring (all-on-one start)",
            formats=["d", "d", ".4f", ".4f", ".2f"],
        )
        for k, handle in handles:
            cover = handle.value
            table.add_row(
                k,
                cover,
                cover / (n * n),
                cover / bounds.rotor_cover_worst(n, k),
                baseline.value / cover,
            )
        return table

    return build


def plan_n_sweep(
    plan: MeasurementPlan, ns: Sequence[int], k: int
) -> Callable[[], Table]:
    """Fixed k, sweep n: the exponent of C vs n should be ~2."""
    handles = [(n, _worst_cover_handle(plan, n, k)) for n in ns]

    def build() -> Table:
        table = Table(
            columns=["n", "cover C", "C*log k/n^2"],
            caption=f"Theorem 1 n-sweep with k={k} agents (all-on-one start)",
            formats=["d", "d", ".4f"],
        )
        covers = []
        for n, handle in handles:
            cover = handle.value
            covers.append(cover)
            table.add_row(n, cover, cover / bounds.rotor_cover_worst(n, k))
        fit = fit_power_law(list(ns), covers)
        table.caption += f" | fitted exponent n^{fit.exponent:.3f}"
        return table

    return build


def run_k_sweep(n: int, ks: Sequence[int]) -> Table:
    """Standalone k-sweep (schedules, executes and builds in one go)."""
    plan = MeasurementPlan()
    build = plan_k_sweep(plan, n, ks)
    plan.execute()
    return build()


def run_n_sweep(ns: Sequence[int], k: int) -> Table:
    """Standalone n-sweep (schedules, executes and builds in one go)."""
    plan = MeasurementPlan()
    build = plan_n_sweep(plan, ns, k)
    plan.execute()
    return build()


def run_deployment_sandwich(cases: Sequence[tuple[int, int]]) -> Table:
    """Execute the proof's delayed deployment; verify Lemma 3 bounds."""
    table = Table(
        columns=[
            "path n", "k", "tau (B1)", "T (total)", "C undelayed",
            "tau<=C<=T", "B1*log k/n^2",
        ],
        caption="Theorem 1 proof deployment (path, Phase A/B1/B2) "
        "with the Lemma 3 sandwich",
        formats=["d", "d", "d", "d", "d", None, ".3f"],
    )
    for n, k in cases:
        trace = run_theorem1_deployment(n, k)
        tau, total = trace.slow_down_bounds()
        cover = undelayed_path_cover_time(n, k)
        table.add_row(
            n,
            k,
            tau,
            total,
            cover,
            "yes" if tau <= cover <= total else "NO",
            tau * math.log(k) / (n * n),
        )
    return table


def run_theorem1(
    n: int = 1024,
    ks: Sequence[int] = (2, 4, 8, 16, 32, 64),
    ns: Sequence[int] = (128, 256, 512, 1024),
    sweep_k: int = 8,
    deployment_cases: Sequence[tuple[int, int]] = ((300, 6), (500, 8)),
    backend: str = "batch",
    jobs: int = 1,
    cache_dir: str | None = None,
    quick: bool = False,
) -> Report:
    if quick:
        n, ks = 256, (2, 4, 8, 16)
        ns, sweep_k = (64, 128, 256), 4
        deployment_cases = ((120, 4),)
    plan = MeasurementPlan(backend=backend, jobs=jobs, cache_dir=cache_dir)
    report = Report(
        title="Theorem 1: worst-case placement cover time Θ(n²/log k)",
        claim=(
            "k agents on one node, pointers toward it: cover time "
            "Θ(n²/log k) for k < n^(1/11)"
        ),
    )
    build_ks = plan_k_sweep(plan, n, ks)
    build_ns = plan_n_sweep(plan, ns, sweep_k)
    report.stats = plan.execute()
    report.add_table(build_ks())
    report.add_table(build_ns())
    report.add_table(run_deployment_sandwich(deployment_cases))
    return report


def main() -> None:  # pragma: no cover - manual entry point
    print(run_theorem1().render())


if __name__ == "__main__":  # pragma: no cover
    main()
