"""Theorem 1: worst-case placement covers in Θ(n²/log k).

Two reproductions:

1. **Direct measurement** — all k agents on node 0, pointers along the
   shortest path toward it; sweep k for fixed n (and n for fixed k) and
   verify the normalized column ``C · log k / n²`` is flat, i.e. both
   the Θ(n²) growth in n and the 1/log k speed-up in k hold.
2. **The proof's deployment** — run the Phase A/B1/B2 construction of
   :mod:`repro.experiments.deployments` and verify the Lemma 3 sandwich
   ``tau <= C(R[k]) <= T`` on the actual undelayed system.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.scaling import fit_power_law
from repro.experiments.deployments import (
    run_theorem1_deployment,
    undelayed_path_cover_time,
)
from repro.experiments.harness import Report
from repro.experiments.table1 import rotor_worst_cover
from repro.theory import bounds
from repro.util.tables import Table


def run_k_sweep(n: int, ks: Sequence[int]) -> Table:
    """Fixed n, sweep k: check C * log k / n² flat."""
    table = Table(
        columns=["k", "cover C", "C/n^2", "C*log k/n^2", "speedup C(1)/C(k)"],
        caption=f"Theorem 1 k-sweep on the n={n} ring (all-on-one start)",
        formats=["d", "d", ".4f", ".4f", ".2f"],
    )
    baseline = rotor_worst_cover(n, 1)
    for k in ks:
        cover = rotor_worst_cover(n, k)
        table.add_row(
            k,
            cover,
            cover / (n * n),
            cover / bounds.rotor_cover_worst(n, k),
            baseline / cover,
        )
    return table


def run_n_sweep(ns: Sequence[int], k: int) -> Table:
    """Fixed k, sweep n: the exponent of C vs n should be ~2."""
    table = Table(
        columns=["n", "cover C", "C*log k/n^2"],
        caption=f"Theorem 1 n-sweep with k={k} agents (all-on-one start)",
        formats=["d", "d", ".4f"],
    )
    covers = []
    for n in ns:
        cover = rotor_worst_cover(n, k)
        covers.append(cover)
        table.add_row(n, cover, cover / bounds.rotor_cover_worst(n, k))
    fit = fit_power_law(list(ns), covers)
    table.caption += f" | fitted exponent n^{fit.exponent:.3f}"
    return table


def run_deployment_sandwich(cases: Sequence[tuple[int, int]]) -> Table:
    """Execute the proof's delayed deployment; verify Lemma 3 bounds."""
    table = Table(
        columns=[
            "path n", "k", "tau (B1)", "T (total)", "C undelayed",
            "tau<=C<=T", "B1*log k/n^2",
        ],
        caption="Theorem 1 proof deployment (path, Phase A/B1/B2) "
        "with the Lemma 3 sandwich",
        formats=["d", "d", "d", "d", "d", None, ".3f"],
    )
    import math

    for n, k in cases:
        trace = run_theorem1_deployment(n, k)
        tau, total = trace.slow_down_bounds()
        cover = undelayed_path_cover_time(n, k)
        table.add_row(
            n,
            k,
            tau,
            total,
            cover,
            "yes" if tau <= cover <= total else "NO",
            tau * math.log(k) / (n * n),
        )
    return table


def run_theorem1(
    n: int = 1024,
    ks: Sequence[int] = (2, 4, 8, 16, 32, 64),
    ns: Sequence[int] = (128, 256, 512, 1024),
    sweep_k: int = 8,
    deployment_cases: Sequence[tuple[int, int]] = ((300, 6), (500, 8)),
) -> Report:
    report = Report(
        title="Theorem 1: worst-case placement cover time Θ(n²/log k)",
        claim=(
            "k agents on one node, pointers toward it: cover time "
            "Θ(n²/log k) for k < n^(1/11)"
        ),
    )
    report.add_table(run_k_sweep(n, ks))
    report.add_table(run_n_sweep(ns, sweep_k))
    report.add_table(run_deployment_sandwich(deployment_cases))
    return report


def main() -> None:  # pragma: no cover - manual entry point
    print(run_theorem1().render())


if __name__ == "__main__":  # pragma: no cover
    main()
