"""Table 1 reproduction: cover and return times of both models.

Paper's Table 1 (for k < n^(1/11)):

    model            cover (worst)     cover (best)        return time
    rotor-router     Θ(n²/log k)       Θ(n²/k²)            Θ(n/k)
    k random walks   Θ(n²/log k)       Θ(n²/(k²/log²k))    Θ(n/k)

The reproduction fixes n, sweeps k, and reports measured values next to
the normalized columns (measured / predicted shape); a flat normalized
column across k confirms the Θ-shape.  Orderings to check: the worst
placement is log-k-slow for both models; the rotor-router's best
placement beats the random walks' by the log²k factor; return times
match at n/k.

The grids are built declaratively against a
:class:`repro.analysis.backend.MeasurementPlan`: each ``plan_*``
function schedules every cell of one table and returns a closure that
scatters the measured values into the rendered rows once the plan has
executed, so one batched execution serves all tables of the report.
The per-cell values are bit-identical to the historical serial loops
(``backend="reference"`` runs exactly those loops).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.analysis.backend import MeasurementPlan
from repro.analysis.cover_time import (
    ring_rotor_cover_time,
    ring_walk_cover_estimate,
)
from repro.core import placement, pointers
from repro.experiments.harness import Report
from repro.theory import bounds
from repro.util.rng import derive_seed
from repro.util.tables import Table


@dataclass(frozen=True)
class Table1Cell:
    """One measured cell of Table 1."""

    n: int
    k: int
    measured: float
    predicted: float

    @property
    def normalized(self) -> float:
        return self.measured / self.predicted


def rotor_worst_cover(n: int, k: int) -> int:
    """Worst placement: all agents on node 0, pointers toward it."""
    return ring_rotor_cover_time(
        n, placement.all_on_one(k), pointers.ring_toward_node(n, 0)
    )


def rotor_best_cover(n: int, k: int) -> int:
    """Best placement: equally spaced agents, adversarial (negative)
    pointers — the placement of Theorem 3 with the Theorem 4 adversary."""
    agents = placement.equally_spaced(n, k)
    return ring_rotor_cover_time(n, agents, pointers.ring_negative(n, agents))


def walk_worst_cover(n: int, k: int, repetitions: int, seed: int = 0) -> float:
    """k walks from one node (expectation over repetitions)."""
    estimate = ring_walk_cover_estimate(
        n,
        placement.all_on_one(k),
        repetitions,
        base_seed=derive_seed(seed, "t1-walk-worst", n, k),
    )
    return estimate.mean


def walk_best_cover(n: int, k: int, repetitions: int, seed: int = 0) -> float:
    """k walks equally spaced (expectation over repetitions)."""
    estimate = ring_walk_cover_estimate(
        n,
        placement.equally_spaced(n, k),
        repetitions,
        base_seed=derive_seed(seed, "t1-walk-best", n, k),
    )
    return estimate.mean


def plan_cover_table(
    plan: MeasurementPlan,
    n: int,
    ks: Sequence[int],
    repetitions: int = 10,
    seed: int = 0,
) -> Callable[[], Table]:
    """Schedule the four cover-time columns; returns the table builder.

    The scheduled cells are exactly those of the serial helpers above:
    same placements, same pointer arrays, same walk seed derivations.
    """
    toward0 = pointers.ring_toward_node(n, 0)
    rows = []
    for k in ks:
        spaced = placement.equally_spaced(n, k)
        rows.append(
            (
                k,
                plan.rotor_cover(n, placement.all_on_one(k), toward0),
                plan.rotor_cover(n, spaced, pointers.ring_negative(n, spaced)),
                plan.walk_cover(
                    n,
                    placement.all_on_one(k),
                    repetitions,
                    base_seed=derive_seed(seed, "t1-walk-worst", n, k),
                ),
                plan.walk_cover(
                    n,
                    spaced,
                    repetitions,
                    base_seed=derive_seed(seed, "t1-walk-best", n, k),
                ),
            )
        )

    def build() -> Table:
        table = Table(
            columns=[
                "k",
                "RR worst",
                "/ (n^2/log k)",
                "RR best",
                "/ (n^2/k^2)",
                "RW worst",
                "/ (n^2/log k)",
                "RW best",
                "/ ((n/k)^2 log^2 k)",
            ],
            caption=f"Table 1 cover times on the n={n} ring",
            formats=[
                "d", ".0f", ".3f", ".0f", ".3f", ".0f", ".3f", ".0f", ".3f",
            ],
        )
        for k, rr_worst, rr_best, rw_worst, rw_best in rows:
            table.add_row(
                k,
                rr_worst.value,
                rr_worst.value / bounds.rotor_cover_worst(n, k),
                rr_best.value,
                rr_best.value / bounds.rotor_cover_best(n, k),
                rw_worst.value.mean,
                rw_worst.value.mean / bounds.walk_cover_worst(n, k),
                rw_best.value.mean,
                rw_best.value.mean / bounds.walk_cover_best(n, k),
            )
        return table

    return build


def plan_return_time_table(
    plan: MeasurementPlan,
    n: int,
    ks: Sequence[int],
    walk_window_factor: int = 400,
    seed: int = 0,
) -> Callable[[], Table]:
    """Schedule the return-time column; returns the table builder.

    The rotor-router value is the exact limit-cycle worst gap starting
    from the *worst* initialization (all-on-one, pointers toward it);
    Theorem 6 says it is Θ(n/k) regardless.  The random-walk column is
    the mean gap at a fixed node (expectation n/k) plus its observed
    maximum, illustrating the paper's point that the walk gives no
    deterministic ceiling.
    """
    toward0 = pointers.ring_toward_node(n, 0)
    rows = [
        (
            k,
            plan.rotor_return_exact(n, placement.all_on_one(k), toward0),
            plan.walk_gaps(
                n,
                k,
                node=0,
                observation_rounds=walk_window_factor * n,
                burn_in=4 * n,
                seed=derive_seed(seed, "t1-return", n, k),
            ),
        )
        for k in ks
    ]

    def build() -> Table:
        table = Table(
            columns=[
                "k",
                "RR worst gap",
                "RR gap*k/n",
                "RW mean gap",
                "RW mean*k/n",
                "RW max gap",
            ],
            caption=f"Table 1 return times on the n={n} ring",
            formats=["d", ".0f", ".2f", ".2f", ".2f", ".0f"],
        )
        for k, rotor, walk in rows:
            walk_stats = walk.value
            table.add_row(
                k,
                rotor.value.worst_gap,
                rotor.value.normalized,
                walk_stats.mean,
                walk_stats.mean * k / n,
                walk_stats.maximum,
            )
        return table

    return build


def run_cover_table(
    n: int,
    ks: Sequence[int],
    repetitions: int = 10,
    seed: int = 0,
    plan: MeasurementPlan | None = None,
) -> Table:
    """The four cover-time columns of Table 1 for fixed n, swept over k."""
    if plan is None:
        plan = MeasurementPlan()
    build = plan_cover_table(plan, n, ks, repetitions, seed)
    plan.execute()
    return build()


def run_return_time_table(
    n: int,
    ks: Sequence[int],
    walk_window_factor: int = 400,
    seed: int = 0,
    plan: MeasurementPlan | None = None,
) -> Table:
    """The return-time column: rotor (exact, worst init) vs walks (mean)."""
    if plan is None:
        plan = MeasurementPlan()
    build = plan_return_time_table(plan, n, ks, walk_window_factor, seed)
    plan.execute()
    return build()


def run_table1(
    n: int = 512,
    ks: Sequence[int] = (2, 4, 8, 16, 32),
    repetitions: int = 10,
    return_n: int | None = None,
    seed: int = 0,
    backend: str = "batch",
    jobs: int = 1,
    cache_dir: str | None = None,
    quick: bool = False,
) -> Report:
    """Full Table 1 reproduction (one measurement plan for the report)."""
    if quick:
        n, ks, repetitions, return_n = 128, (2, 4, 8), 3, 64
    plan = MeasurementPlan(backend=backend, jobs=jobs, cache_dir=cache_dir)
    report = Report(
        title="Table 1: multi-agent rotor-router vs k random walks on the ring",
        claim=(
            "cover worst Θ(n²/log k) both models; cover best Θ(n²/k²) "
            "rotor vs Θ((n/k)²log²k) walks; return time Θ(n/k) both"
        ),
    )
    build_cover = plan_cover_table(plan, n, ks, repetitions, seed)
    build_return = plan_return_time_table(
        plan, return_n if return_n else min(n, 256), ks, seed=seed
    )
    report.stats = plan.execute()
    report.add_table(build_cover())
    report.add_table(build_return())
    report.add_note(
        "normalized columns ('/ shape') should be flat in k; absolute "
        "constants are not specified by the Θ-bounds"
    )
    return report


def main() -> None:  # pragma: no cover - manual entry point
    print(run_table1().render())


if __name__ == "__main__":  # pragma: no cover
    main()
