"""Theorem 5: k equally spaced random walks cover in Θ((n/k)² log²k).

Both directions of the theorem are exercised:

* Lemma 16 (upper bound): the measured mean cover time, normalized by
  (n/k)² log² k, stays flat and bounded as k grows;
* Lemma 17/18 (lower bound): the cover time stays *above* a constant
  times (n/k)² log² k — equivalently, k walks are slower than the
  k-agent rotor-router from the same placement by about log² k, the
  paper's punchline for the best-case comparison.

Walk cells (repetition lanes) and rotor cells share one batched
:class:`repro.analysis.backend.MeasurementPlan` execution.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.analysis.backend import MeasurementPlan
from repro.analysis.cover_time import ring_walk_cover_estimate
from repro.core import placement, pointers
from repro.experiments.harness import Report
from repro.theory import bounds
from repro.util.rng import derive_seed
from repro.util.tables import Table


def spaced_walk_cover(
    n: int, k: int, repetitions: int, seed: int = 0
) -> tuple[float, float, float]:
    """(mean, ci_low, ci_high) cover time of equally spaced k walks."""
    estimate = ring_walk_cover_estimate(
        n,
        placement.equally_spaced(n, k),
        repetitions,
        base_seed=derive_seed(seed, "t5", n, k),
    )
    return estimate.mean, estimate.ci_low, estimate.ci_high


def run_theorem5(
    n: int = 1024,
    ks: Sequence[int] = (2, 4, 8, 16, 32),
    repetitions: int = 20,
    seed: int = 0,
    backend: str = "batch",
    jobs: int = 1,
    cache_dir: str | None = None,
    quick: bool = False,
) -> Report:
    if quick:
        n, ks, repetitions = 256, (2, 4, 8), 5
    plan = MeasurementPlan(backend=backend, jobs=jobs, cache_dir=cache_dir)
    report = Report(
        title="Theorem 5: equally spaced k random walks cover in "
        "Θ((n/k)² log² k)",
        claim=(
            "best-case placement for k walks is equal spacing; its cover "
            "time carries a log²k penalty over the rotor-router's (n/k)²"
        ),
    )
    scheduled = []
    for k in ks:
        agents = placement.equally_spaced(n, k)
        scheduled.append(
            (
                k,
                plan.walk_cover(
                    n,
                    agents,
                    repetitions,
                    base_seed=derive_seed(seed, "t5", n, k),
                ),
                plan.rotor_cover(n, agents, pointers.ring_negative(n, agents)),
            )
        )
    report.stats = plan.execute()

    table = Table(
        columns=[
            "k",
            "RW mean cover",
            "95% CI",
            "/(n/k)^2 log^2 k",
            "RR cover",
            "RW/RR",
            "log^2 k",
        ],
        caption=f"Equally spaced walks vs rotor-router on the n={n} ring "
        f"({repetitions} repetitions)",
        formats=["d", ".0f", None, ".3f", "d", ".2f", ".2f"],
    )
    for k, walk_handle, rotor_handle in scheduled:
        estimate = walk_handle.value
        mean, low, high = estimate.mean, estimate.ci_low, estimate.ci_high
        rotor = rotor_handle.value
        table.add_row(
            k,
            mean,
            f"[{low:.0f}, {high:.0f}]",
            mean / bounds.walk_cover_best(n, k),
            rotor,
            mean / rotor,
            math.log(k) ** 2 if k > 1 else 1.0,
        )
    report.add_table(table)
    report.add_note(
        "the RW/RR column should track log²k: the deterministic system "
        "wins the best-case comparison by exactly the polylog factor"
    )
    return report


def main() -> None:  # pragma: no cover - manual entry point
    print(run_theorem5().render())


if __name__ == "__main__":  # pragma: no cover
    main()
