"""Figures 1 and 2 of the paper, as measured data.

**Figure 1** illustrates the two shapes a border between adjacent lazy
domains can take: *vertex-type* (one vertex between the lazy arcs) and
*edge-type* (the arcs touch; the agents swap on the border edge).  The
reproduction runs a stabilized system and censuses border types over a
long window: (almost) every observed border must be one of the two
shapes, with transients (wider gaps right after a first traversal)
rare.

**Figure 2** illustrates one iteration of Phase B of the Theorem 1
deployment.  The reproduction executes the deployment and reports the
S_j ladder — the lengths of the successive desirable configurations —
together with the per-iteration phase durations, which is precisely
what the figure depicts.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.domains_stats import border_type_census
from repro.core import placement, pointers
from repro.core.domains import BorderType
from repro.experiments.deployments import run_theorem1_deployment
from repro.experiments.harness import Report
from repro.util.tables import Table


def run_figure1(
    n: int = 256,
    ks: Sequence[int] = (4, 8, 16),
    burn_in_factor: int = 30,
    observation_factor: int = 20,
) -> Report:
    """Census of lazy-domain border types (Figure 1)."""
    report = Report(
        title="Figure 1: border types between adjacent lazy domains",
        claim=(
            "borders are vertex-type or edge-type; wider gaps occur only "
            "in the one-step special case after a first traversal"
        ),
    )
    table = Table(
        columns=[
            "k", "placement", "vertex-type", "edge-type", "transient",
            "transient %",
        ],
        caption=f"Border census on the n={n} ring (negative pointers); "
        "spaced starts are parity-symmetric (all-vertex borders), random "
        "starts exhibit both Figure 1 shapes",
        formats=["d", None, "d", "d", "d", ".2f"],
    )
    for k in ks:
        cases = {
            "spaced": placement.equally_spaced(n, k),
            "random": placement.random_nodes(n, k, seed=k, distinct=True),
        }
        for name, agents in cases.items():
            census = border_type_census(
                n,
                agents,
                pointers.ring_negative(n, agents),
                burn_in=burn_in_factor * n,
                observation_rounds=observation_factor * n,
            )
            vertex = census.get(BorderType.VERTEX, 0)
            edge = census.get(BorderType.EDGE, 0)
            transient = census.get(BorderType.TRANSIENT, 0)
            total = max(vertex + edge + transient, 1)
            table.add_row(
                k, name, vertex, edge, transient, 100.0 * transient / total
            )
    report.add_table(table)
    return report


def run_figure2(
    n: int = 400,
    k: int = 6,
    multiplier: float | None = None,
) -> Report:
    """One Theorem 1 deployment trace: the S_j ladder (Figure 2)."""
    trace = run_theorem1_deployment(n, k, multiplier=multiplier)
    report = Report(
        title="Figure 2: Phase B iterations of the Theorem 1 deployment",
        claim=(
            "each iteration extends the desirable configuration from "
            "length S_j to S_{j+1} via a full-activity phase B1 and a "
            "re-parking phase B2"
        ),
    )
    ladder = Table(
        columns=["j", "S_j", "increment"],
        caption=f"Desirable-configuration ladder (path n={n}, k={k}, "
        f"multiplier={trace.multiplier:g})",
        formats=["d", "d", None],
    )
    for j, s in enumerate(trace.s_ladder):
        increment = "-" if j == 0 else str(s - trace.s_ladder[j - 1])
        ladder.add_row(j, s, increment)
    report.add_table(ladder)

    phases = Table(
        columns=["phase", "rounds", "share %"],
        caption="Phase durations",
        formats=[None, "d", ".1f"],
    )
    total = trace.total_rounds
    phases.add_row("A (build S_0)", trace.phase_a_rounds,
                   100.0 * trace.phase_a_rounds / total)
    phases.add_row("B1 (full activity)", trace.phase_b1_rounds,
                   100.0 * trace.phase_b1_rounds / total)
    phases.add_row("B2 (re-parking)", trace.phase_b2_rounds,
                   100.0 * trace.phase_b2_rounds / total)
    report.add_table(phases)
    report.add_note(
        f"cover round {trace.cover_round}; B1 dominates, matching the "
        "proof's accounting (B1 ∈ Ω(A), B1 ∈ Ω(B2))"
    )
    if trace.invariant_violations:
        report.add_note(
            f"{len(trace.invariant_violations)} desirable-configuration "
            "deviations recorded (small-scale pointer artifacts; "
            "positions always matched)"
        )
    return report


def main() -> None:  # pragma: no cover - manual entry point
    print(run_figure1().render())
    print()
    print(run_figure2().render())


if __name__ == "__main__":  # pragma: no cover
    main()
