"""Extension experiment: how long until the limit cycle? (§4 prelude)

Theorem 6 characterizes the rotor-router *after* stabilization but the
paper deliberately disregards "the time until the rotor-router enters
its limit cycle".  This extension measures that stabilization time
(the preperiod found by Brent's algorithm) across initializations:

* for a single agent, Yanovski et al. bound it by 2D|E| = n² on the
  ring — measured preperiods sit well below it;
* for k agents, the worst observed stabilization also scales ~ n²
  (consistent with the cover-time upper bound Θ(n²/log k): the system
  cannot settle before covering) while friendly initializations
  stabilize immediately;
* the limit-cycle period itself is always a small multiple of n/k
  (each agent's patrol loop), which is what makes Theorem 6's bound
  tight at 2n/k.

The (n x initialization) grid runs through the batched limit-cycle
pipeline of one :class:`repro.analysis.backend.MeasurementPlan`.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.backend import MeasurementPlan
from repro.analysis.return_time import ring_rotor_return_time_exact
from repro.core import placement, pointers
from repro.experiments.harness import Report
from repro.util.rng import derive_seed
from repro.util.tables import Table


def battery_instances(
    n: int, k: int, seeds: Sequence[int]
) -> dict[str, tuple[list[int], list[int]]]:
    """Named ``(agents, directions)`` initializations of the battery."""
    one = placement.all_on_one(k)
    spaced = placement.equally_spaced(n, k)
    cases = {
        "all-on-one/toward": (one, pointers.ring_toward_node(n, 0)),
        "spaced/negative": (spaced, pointers.ring_negative(n, spaced)),
        "spaced/positive": (spaced, pointers.ring_positive(n, spaced)),
    }
    for seed in seeds:
        cases[f"random/seed{seed}"] = (
            placement.random_nodes(n, k, seed=derive_seed(seed, "stab-p", n, k)),
            pointers.ring_random(n, seed=derive_seed(seed, "stab-d", n, k)),
        )
    return cases


def stabilization_battery(
    n: int, k: int, seeds: Sequence[int]
) -> dict[str, tuple[int, int]]:
    """(preperiod, period) per initialization (serial reference)."""
    results = {}
    for name, (agents, directions) in battery_instances(n, k, seeds).items():
        measured = ring_rotor_return_time_exact(n, agents, directions)
        results[name] = (int(measured.preperiod), int(measured.period))
    return results


def run_stabilization(
    ns: Sequence[int] = (64, 128, 256),
    k: int = 4,
    seeds: Sequence[int] = (0, 1),
    backend: str = "batch",
    jobs: int = 1,
    cache_dir: str | None = None,
    quick: bool = False,
) -> Report:
    if quick:
        ns, seeds = (32, 64), (0,)
    plan = MeasurementPlan(backend=backend, jobs=jobs, cache_dir=cache_dir)
    report = Report(
        title="Stabilization time of the k-agent rotor-router (extension)",
        claim=(
            "the paper disregards time-to-limit-cycle; here it is "
            "measured: worst-case ~ n², friendly cases ~ 0, period "
            "always a small multiple of n/k"
        ),
    )
    scheduled = [
        (
            n,
            [
                (name, plan.rotor_return_exact(n, agents, directions))
                for name, (agents, directions) in battery_instances(
                    n, k, seeds
                ).items()
            ],
        )
        for n in ns
    ]
    report.stats = plan.execute()

    table = Table(
        columns=["n", "init", "preperiod", "preperiod/n^2", "period",
                 "period/(n/k)"],
        caption=f"Exact stabilization (Brent) with k={k} agents",
        formats=["d", None, "d", ".4f", "d", ".2f"],
    )
    worst_ratio = 0.0
    for n, cells in scheduled:
        for name, handle in cells:
            preperiod = int(handle.value.preperiod)
            period = int(handle.value.period)
            ratio = preperiod / (n * n)
            worst_ratio = max(worst_ratio, ratio)
            table.add_row(
                n, name, preperiod, ratio, period, period / (n / k)
            )
    report.add_table(table)
    report.add_note(
        f"worst preperiod/n² observed: {worst_ratio:.3f} — stabilization "
        "is quadratic like the cover time, never worse"
    )
    return report


def main() -> None:  # pragma: no cover - manual entry point
    print(run_stabilization().render())


if __name__ == "__main__":  # pragma: no cover
    main()
