"""Experiment reproductions: one module per paper artifact.

Every module exposes ``run_*`` functions returning data objects /
:class:`repro.util.tables.Table` instances, plus a ``main()`` that
prints the full-size reproduction, so each experiment is runnable as::

    python -m repro.experiments.table1
    python -m repro.experiments.theorem1
    ...

The benchmark suite (``benchmarks/``) calls the same ``run_*``
functions with scaled-down parameters; EXPERIMENTS.md records the
outcomes side by side with the paper's claims.

| Module            | Paper artifact                                   |
|-------------------|--------------------------------------------------|
| table1            | Table 1 (cover & return times, both models)      |
| deployments       | Theorem 1 Phase A/B1/B2 construction (Figure 2)  |
| theorem1          | Worst-case placement cover Θ(n²/log k)           |
| theorem2          | Upper bound for arbitrary initializations        |
| theorem3          | Equally-spaced placement cover O(n²/k²)          |
| theorem4          | Lower bound Ω(n²/k²) via remote vertices         |
| theorem5          | k random walks, best placement Θ((n/k)²log²k)    |
| theorem6          | Return time Θ(n/k)                               |
| figures           | Figure 1 (border types) and Figure 2 (trace)     |
| continuous        | §2.3 ODE vs discrete simulation                  |
| speedup_graphs    | Multi-agent speed-up on general graphs ([27])    |
"""
