"""Theorem 2: every initialization covers within O(n²/log k).

The all-on-one placement of Theorem 1 is the *worst possible* up to
constants.  We stress this empirically: over a battery of adversarial
and random initializations (placements x pointer arrangements), the
measured cover time never exceeds the all-on-one cover time by more
than a small constant factor.

The battery is declared as named ``(agents, directions)`` instances
and scheduled on one :class:`repro.analysis.backend.MeasurementPlan`;
the serial :func:`initialization_battery` remains as the reference
shape of the same grid.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.backend import MeasurementPlan
from repro.analysis.cover_time import ring_rotor_cover_time
from repro.core import placement, pointers
from repro.experiments.harness import Report
from repro.util.rng import derive_seed
from repro.util.tables import Table


def battery_instances(
    n: int, k: int, seeds: Sequence[int]
) -> dict[str, tuple[list[int], list[int]]]:
    """Named ``(agents, directions)`` instances of the battery.

    Includes the structured adversarial cases and, per seed, random
    placements combined with random pointer arrangements — the exact
    instances the serial battery has always measured.
    """
    one = placement.all_on_one(k)
    spaced = placement.equally_spaced(n, k)
    half = placement.half_ring(n, k)
    instances: dict[str, tuple[list[int], list[int]]] = {
        "all-on-one/toward": (one, pointers.ring_toward_node(n, 0)),
        "all-on-one/uniform": (one, pointers.ring_uniform(n)),
        "all-on-one/alternating": (one, pointers.ring_alternating(n)),
        "spaced/negative": (spaced, pointers.ring_negative(n, spaced)),
        "spaced/positive": (spaced, pointers.ring_positive(n, spaced)),
        "half-ring/negative": (half, pointers.ring_negative(n, half)),
    }
    for seed in seeds:
        instances[f"random/seed{seed}"] = (
            placement.random_nodes(
                n, k, seed=derive_seed(seed, "t2-place", n, k)
            ),
            pointers.ring_random(n, seed=derive_seed(seed, "t2-ptr", n, k)),
        )
    return instances


def initialization_battery(
    n: int, k: int, seeds: Sequence[int]
) -> dict[str, int]:
    """Cover times over the battery (serial reference helper)."""
    return {
        name: ring_rotor_cover_time(n, agents, directions)
        for name, (agents, directions) in battery_instances(
            n, k, seeds
        ).items()
    }


def run_theorem2(
    n: int = 512,
    ks: Sequence[int] = (4, 8, 16, 32),
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    backend: str = "batch",
    jobs: int = 1,
    cache_dir: str | None = None,
    quick: bool = False,
) -> Report:
    if quick:
        n, ks, seeds = 128, (4, 8), (0, 1)
    plan = MeasurementPlan(backend=backend, jobs=jobs, cache_dir=cache_dir)
    report = Report(
        title="Theorem 2: any initialization covers in O(n²/log k)",
        claim=(
            "the all-on-one initialization is worst-case up to constants"
        ),
    )
    # Schedule every battery cell of every k, plus the all-on-one
    # reference cells, before a single execution.
    toward0 = pointers.ring_toward_node(n, 0)
    scheduled = []
    for k in ks:
        handles = {
            name: plan.rotor_cover(n, agents, directions)
            for name, (agents, directions) in battery_instances(
                n, k, seeds
            ).items()
        }
        reference = plan.rotor_cover(n, placement.all_on_one(k), toward0)
        scheduled.append((k, handles, reference))
    report.stats = plan.execute()

    table = Table(
        columns=[
            "k",
            "worst over battery",
            "which",
            "all-on-one C",
            "battery/all-on-one",
        ],
        caption=f"Initialization battery on the n={n} ring "
        f"({len(seeds)} random + 6 structured cases per k)",
        formats=["d", "d", None, "d", ".3f"],
    )
    for k, handles, reference_handle in scheduled:
        battery = {name: handle.value for name, handle in handles.items()}
        name = max(battery, key=battery.get)
        worst = battery[name]
        reference = reference_handle.value
        table.add_row(k, worst, name, reference, worst / reference)
    report.add_table(table)
    report.add_note(
        "a ratio <= ~1 everywhere confirms no initialization beats the "
        "Theorem 1 adversary by more than a constant"
    )
    return report


def main() -> None:  # pragma: no cover - manual entry point
    print(run_theorem2().render())


if __name__ == "__main__":  # pragma: no cover
    main()
