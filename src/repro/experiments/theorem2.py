"""Theorem 2: every initialization covers within O(n²/log k).

The all-on-one placement of Theorem 1 is the *worst possible* up to
constants.  We stress this empirically: over a battery of adversarial
and random initializations (placements x pointer arrangements), the
measured cover time never exceeds the all-on-one cover time by more
than a small constant factor.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.cover_time import ring_rotor_cover_time
from repro.core import placement, pointers
from repro.experiments.harness import Report
from repro.experiments.table1 import rotor_worst_cover
from repro.util.rng import derive_seed
from repro.util.tables import Table


def initialization_battery(
    n: int, k: int, seeds: Sequence[int]
) -> dict[str, int]:
    """Cover times over a battery of initializations.

    Includes the structured adversarial cases and, per seed, random
    placements combined with random pointer arrangements.
    """
    results: dict[str, int] = {}
    one = placement.all_on_one(k)
    spaced = placement.equally_spaced(n, k)
    half = placement.half_ring(n, k)

    results["all-on-one/toward"] = ring_rotor_cover_time(
        n, one, pointers.ring_toward_node(n, 0)
    )
    results["all-on-one/uniform"] = ring_rotor_cover_time(
        n, one, pointers.ring_uniform(n)
    )
    results["all-on-one/alternating"] = ring_rotor_cover_time(
        n, one, pointers.ring_alternating(n)
    )
    results["spaced/negative"] = ring_rotor_cover_time(
        n, spaced, pointers.ring_negative(n, spaced)
    )
    results["spaced/positive"] = ring_rotor_cover_time(
        n, spaced, pointers.ring_positive(n, spaced)
    )
    results["half-ring/negative"] = ring_rotor_cover_time(
        n, half, pointers.ring_negative(n, half)
    )
    for seed in seeds:
        agents = placement.random_nodes(
            n, k, seed=derive_seed(seed, "t2-place", n, k)
        )
        directions = pointers.ring_random(
            n, seed=derive_seed(seed, "t2-ptr", n, k)
        )
        results[f"random/seed{seed}"] = ring_rotor_cover_time(
            n, agents, directions
        )
    return results


def run_theorem2(
    n: int = 512,
    ks: Sequence[int] = (4, 8, 16, 32),
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
) -> Report:
    report = Report(
        title="Theorem 2: any initialization covers in O(n²/log k)",
        claim=(
            "the all-on-one initialization is worst-case up to constants"
        ),
    )
    table = Table(
        columns=[
            "k",
            "worst over battery",
            "which",
            "all-on-one C",
            "battery/all-on-one",
        ],
        caption=f"Initialization battery on the n={n} ring "
        f"({len(seeds)} random + 6 structured cases per k)",
        formats=["d", "d", None, "d", ".3f"],
    )
    for k in ks:
        battery = initialization_battery(n, k, seeds)
        name = max(battery, key=battery.get)
        worst = battery[name]
        reference = rotor_worst_cover(n, k)
        table.add_row(k, worst, name, reference, worst / reference)
    report.add_table(table)
    report.add_note(
        "a ratio <= ~1 everywhere confirms no initialization beats the "
        "Theorem 1 adversary by more than a constant"
    )
    return report


def main() -> None:  # pragma: no cover - manual entry point
    print(run_theorem2().render())


if __name__ == "__main__":  # pragma: no cover
    main()
