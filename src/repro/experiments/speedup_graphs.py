"""Multi-agent rotor-router speed-up on general graphs (extension).

Before this paper, the only multi-agent rotor-router study was the
experimental one of Yanovski et al. [27], who reported a *nearly
linear* cover-time speed-up in practical scenarios on general graphs —
in contrast to the ring's Θ(log k)-to-Θ(k²) placement-dependent range
proven here.  This extension experiment reruns that study on the
families in :mod:`repro.graphs` (torus, hypercube, clique, random
regular, lollipop, G(n,p)) with random placements/pointers, reporting
measured speed-up and the best-fitting Table 1 shape.

The whole (family x k x seed) grid schedules onto one
:class:`repro.analysis.backend.MeasurementPlan` and executes through
the CSR-batched kernel of :mod:`repro.sweep.batch_general`: all lanes
— across families — share each round's vectorized dispatches, every
cover cell is cached by its (graph digest, agents, ports) identity,
and chunks spread over worker processes when ``jobs > 1``.  That is
what pays for the 4x node counts and extra seeds relative to the
serial-era grid.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.analysis.backend import MeasurementPlan
from repro.analysis.cover_time import rotor_cover_time_general
from repro.analysis.speedup import (
    TABLE1_SHAPES,
    best_matching_shape,
    measure_speedup,
)
from repro.experiments.harness import Report
from repro.graphs import (
    PortLabeledGraph,
    clique,
    gnp_random_graph,
    hypercube,
    lollipop,
    random_regular_graph,
    torus_2d,
)
from repro.sweep.spec import general_instance
from repro.util.stats import summarize
from repro.util.tables import Table

GraphFactory = Callable[[], PortLabeledGraph]


def default_families(scale: int = 1) -> dict[str, GraphFactory]:
    """Graph families at a size scale (scale=1: ~1024-node graphs).

    4x the node count the serial study could afford (the batched CSR
    kernel's round cost scales with occupied pairs, not graph size),
    plus the two stress shapes the old grid left out: the lollipop
    (the classic bad case for walk-style exploration — its tail makes
    it the slowest family here, so it is kept at a quarter scale) and
    a near-expander G(n, p) sample.
    """
    side = 32 * scale
    n = side * side
    return {
        "torus": lambda: torus_2d(side, side),
        "hypercube": lambda: hypercube(10 if scale == 1 else 12),
        "clique": lambda: clique(4 * side),
        "random-4-regular": lambda: random_regular_graph(n, 4, seed=97),
        "lollipop": lambda: lollipop(3 * side // 2, 5 * side // 2),
        # Mean degree ~8 on n/2 nodes: safely above the connectivity
        # threshold, sparse enough to stay expander-like.
        "gnp": lambda: gnp_random_graph(n // 2, 16.0 / n, seed=101),
    }


def quick_families() -> dict[str, GraphFactory]:
    """CI-sized graph families (~36-64 nodes) for ``--quick`` runs."""
    return {
        "torus": lambda: torus_2d(6, 6),
        "hypercube": lambda: hypercube(6),
        "clique": lambda: clique(16),
        "lollipop": lambda: lollipop(8, 8),
        "gnp": lambda: gnp_random_graph(48, 0.15, seed=101),
    }


def random_instance(
    graph: PortLabeledGraph, k: int, seed: int
) -> tuple[list[int], list[int]]:
    """The seeded (agents, ports) instance of one speed-up sample.

    Delegates to :func:`repro.sweep.spec.general_instance` — the one
    shared derivation, so the ``general_speedup`` sweep scenario and
    this experiment exchange cache entries cell for cell.
    """
    return general_instance(graph, k, seed)


def mean_cover_over_seeds(
    graph: PortLabeledGraph, k: int, seeds: Sequence[int]
) -> float:
    """Mean cover time over random placements + pointer arrangements
    (serial reference helper)."""
    samples = []
    for seed in seeds:
        agents, ports = random_instance(graph, k, seed)
        samples.append(rotor_cover_time_general(graph, agents, ports))
    return summarize(samples).mean


def run_speedup_graphs(
    ks: Sequence[int] = (2, 4, 8, 16, 32),
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    scale: int = 1,
    families: dict[str, GraphFactory] | None = None,
    backend: str = "batch",
    jobs: int = 1,
    cache_dir: str | None = None,
    quick: bool = False,
) -> Report:
    if quick:
        ks, seeds = (2, 4), (0, 1)
        if families is None:
            families = quick_families()
    plan = MeasurementPlan(backend=backend, jobs=jobs, cache_dir=cache_dir)
    report = Report(
        title="Multi-agent rotor-router speed-up on general graphs "
        "(Yanovski et al. [27] experiment)",
        claim=(
            "adding agents never slows exploration; practical speed-up "
            "is nearly linear on well-connected graphs"
        ),
    )
    if families is None:
        families = default_families(scale)
    table = Table(
        columns=["graph", "n", "m"]
        + [f"S({k})" for k in ks]
        + ["best shape", "flatness"],
        caption="Cover-time speed-up S(k) = C(1)/C(k), "
        f"mean over {len(seeds)} random initializations",
        formats=[None, "d", "d"] + [".2f"] * len(ks) + [None, ".2f"],
    )
    # Schedule the whole (family x k x seed) grid, k = 1 included (the
    # speed-up baseline), before a single batched execution.
    all_ks = [1, *[k for k in ks if k != 1]]
    scheduled = []
    for name, factory in families.items():
        graph = factory()
        handles = {
            k: [
                plan.rotor_cover_general(
                    graph, *random_instance(graph, k, seed)
                )
                for seed in seeds
            ]
            for k in all_ks
        }
        scheduled.append((name, graph, handles))
    report.stats = plan.execute()

    for name, graph, handles in scheduled:
        means = {
            k: summarize([h.value for h in per_seed]).mean
            for k, per_seed in handles.items()
        }

        def cover(_n: int, k: int, means=means) -> float:
            return means[k]

        speedup_table = measure_speedup(cover, graph.num_nodes, list(ks))
        shape_name, flatness_value = best_matching_shape(
            speedup_table, TABLE1_SHAPES
        )
        table.add_row(
            name,
            graph.num_nodes,
            graph.num_edges,
            *speedup_table.speedups(),
            shape_name,
            flatness_value,
        )
    report.add_table(table)
    report.add_note(
        "monotonicity (S(k) >= 1, non-decreasing within noise) reproduces "
        "[27]'s observation that extra agents never hurt"
    )
    return report


def main() -> None:  # pragma: no cover - manual entry point
    print(run_speedup_graphs().render())


if __name__ == "__main__":  # pragma: no cover
    main()
