"""Multi-agent rotor-router speed-up on general graphs (extension).

Before this paper, the only multi-agent rotor-router study was the
experimental one of Yanovski et al. [27], who reported a *nearly
linear* cover-time speed-up in practical scenarios on general graphs —
in contrast to the ring's Θ(log k)-to-Θ(k²) placement-dependent range
proven here.  This extension experiment reruns that study on the
families in :mod:`repro.graphs` (grid, torus, hypercube, clique,
random regular) with random placements/pointers, reporting measured
speed-up and the best-fitting Table 1 shape; the ring columns are
included for contrast.

General graphs have no shared vectorized rounds, but the (family x k x
seed) grid still schedules onto one
:class:`repro.analysis.backend.MeasurementPlan`: every cover cell is
cached by its full (graph, agents, ports) identity and the chunks
spread over worker processes when ``jobs > 1``.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.analysis.backend import MeasurementPlan
from repro.analysis.cover_time import rotor_cover_time_general
from repro.analysis.speedup import (
    TABLE1_SHAPES,
    best_matching_shape,
    measure_speedup,
)
from repro.core.pointers import random_ports
from repro.experiments.harness import Report
from repro.graphs import (
    PortLabeledGraph,
    clique,
    grid_2d,
    hypercube,
    random_regular_graph,
    ring_graph,
    torus_2d,
)
from repro.util.rng import derive_seed, make_rng
from repro.util.stats import summarize
from repro.util.tables import Table

GraphFactory = Callable[[], PortLabeledGraph]


def default_families(scale: int = 1) -> dict[str, GraphFactory]:
    """Graph families at a size scale (scale=1: ~256-node graphs)."""
    side = 16 * scale
    return {
        "ring": lambda: ring_graph(side * side),
        "grid": lambda: grid_2d(side, side),
        "torus": lambda: torus_2d(side, side),
        "hypercube": lambda: hypercube(8 if scale == 1 else 10),
        "clique": lambda: clique(4 * side),
        "random-4-regular": lambda: random_regular_graph(
            side * side, 4, seed=97
        ),
    }


def quick_families() -> dict[str, GraphFactory]:
    """CI-sized graph families (~64 nodes) for ``--quick`` runs."""
    side = 8
    return {
        "ring": lambda: ring_graph(side * side),
        "grid": lambda: grid_2d(side, side),
        "hypercube": lambda: hypercube(6),
        "clique": lambda: clique(2 * side),
    }


def random_instance(
    graph: PortLabeledGraph, k: int, seed: int
) -> tuple[list[int], list[int]]:
    """The seeded (agents, ports) instance of one speed-up sample.

    The derivation (one RNG stream drawing agents first, then ports)
    is the historical one, so scheduled cells reproduce the serial
    study sample for sample.
    """
    rng = make_rng(derive_seed(seed, "speedup", graph.num_nodes, k))
    agents = [int(rng.integers(0, graph.num_nodes)) for _ in range(k)]
    ports = random_ports(graph, rng)
    return agents, ports


def mean_cover_over_seeds(
    graph: PortLabeledGraph, k: int, seeds: Sequence[int]
) -> float:
    """Mean cover time over random placements + pointer arrangements
    (serial reference helper)."""
    samples = []
    for seed in seeds:
        agents, ports = random_instance(graph, k, seed)
        samples.append(rotor_cover_time_general(graph, agents, ports))
    return summarize(samples).mean


def run_speedup_graphs(
    ks: Sequence[int] = (2, 4, 8, 16),
    seeds: Sequence[int] = (0, 1, 2),
    scale: int = 1,
    families: dict[str, GraphFactory] | None = None,
    backend: str = "batch",
    jobs: int = 1,
    cache_dir: str | None = None,
    quick: bool = False,
) -> Report:
    if quick:
        ks, seeds = (2, 4), (0, 1)
        if families is None:
            families = quick_families()
    plan = MeasurementPlan(backend=backend, jobs=jobs, cache_dir=cache_dir)
    report = Report(
        title="Multi-agent rotor-router speed-up on general graphs "
        "(Yanovski et al. [27] experiment)",
        claim=(
            "adding agents never slows exploration; practical speed-up "
            "is nearly linear on well-connected graphs"
        ),
    )
    if families is None:
        families = default_families(scale)
    table = Table(
        columns=["graph", "n", "m"]
        + [f"S({k})" for k in ks]
        + ["best shape", "flatness"],
        caption="Cover-time speed-up S(k) = C(1)/C(k), "
        f"mean over {len(seeds)} random initializations",
        formats=[None, "d", "d"] + [".2f"] * len(ks) + [None, ".2f"],
    )
    # Schedule the whole (family x k x seed) grid, k = 1 included (the
    # speed-up baseline), before a single batched execution.
    all_ks = [1, *[k for k in ks if k != 1]]
    scheduled = []
    for name, factory in families.items():
        graph = factory()
        handles = {
            k: [
                plan.rotor_cover_general(
                    graph, *random_instance(graph, k, seed)
                )
                for seed in seeds
            ]
            for k in all_ks
        }
        scheduled.append((name, graph, handles))
    report.stats = plan.execute()

    for name, graph, handles in scheduled:
        means = {
            k: summarize([h.value for h in per_seed]).mean
            for k, per_seed in handles.items()
        }

        def cover(_n: int, k: int, means=means) -> float:
            return means[k]

        speedup_table = measure_speedup(cover, graph.num_nodes, list(ks))
        shape_name, flatness_value = best_matching_shape(
            speedup_table, TABLE1_SHAPES
        )
        table.add_row(
            name,
            graph.num_nodes,
            graph.num_edges,
            *speedup_table.speedups(),
            shape_name,
            flatness_value,
        )
    report.add_table(table)
    report.add_note(
        "monotonicity (S(k) >= 1, non-decreasing within noise) reproduces "
        "[27]'s observation that extra agents never hurt"
    )
    return report


def main() -> None:  # pragma: no cover - manual entry point
    print(run_speedup_graphs().render())


if __name__ == "__main__":  # pragma: no cover
    main()
