"""Command-line interface: run any reproduction experiment.

Usage (after ``pip install -e .``)::

    python -m repro list                 # what can be run
    python -m repro run table1           # one experiment, full size
    python -m repro run theorem6 --csv out/   # also save CSVs
    python -m repro all                  # everything (long)

The CLI is a thin dispatcher over :mod:`repro.experiments`; every
experiment module's ``run_*`` defaults define its "full size".
"""

from __future__ import annotations

import argparse
import importlib
import sys
from typing import Callable

from repro.experiments.harness import Report

EXPERIMENTS: dict[str, tuple[str, str]] = {
    # name -> (module, description)
    "table1": ("repro.experiments.table1", "Table 1: cover & return times"),
    "theorem1": (
        "repro.experiments.theorem1",
        "Thm 1: worst placement Θ(n²/log k) + proof deployment",
    ),
    "theorem2": (
        "repro.experiments.theorem2",
        "Thm 2: any initialization is O(n²/log k)",
    ),
    "theorem3": (
        "repro.experiments.theorem3",
        "Thm 3: equal spacing covers in O(n²/k²)",
    ),
    "theorem4": (
        "repro.experiments.theorem4",
        "Thm 4: pointers forcing Ω(n²/k²) for any placement",
    ),
    "theorem5": (
        "repro.experiments.theorem5",
        "Thm 5: spaced walks Θ((n/k)² log² k)",
    ),
    "theorem6": (
        "repro.experiments.theorem6",
        "Thm 6: return time Θ(n/k)",
    ),
    "figures": (
        "repro.experiments.figures",
        "Figures 1-2: border types, deployment trace",
    ),
    "continuous": (
        "repro.experiments.continuous",
        "§2.3: ODE vs discrete simulation",
    ),
    "speedup_graphs": (
        "repro.experiments.speedup_graphs",
        "extension: speed-up on general graphs",
    ),
    "stabilization": (
        "repro.experiments.stabilization",
        "extension: time-to-limit-cycle across initializations",
    ),
}


def _reports_of(module_name: str) -> list[Report]:
    """Collect the default reports of an experiment module.

    Figures expose two reports (``run_figure1``/``run_figure2``);
    everything else exposes one ``run_<name>``.
    """
    module = importlib.import_module(module_name)
    short = module_name.rsplit(".", 1)[-1]
    runners: list[Callable[[], Report]] = []
    if short == "figures":
        runners = [module.run_figure1, module.run_figure2]
    else:
        runners = [getattr(module, f"run_{short}")]
    return [runner() for runner in runners]


def _cmd_list() -> int:
    width = max(len(name) for name in EXPERIMENTS)
    for name, (_, description) in EXPERIMENTS.items():
        print(f"  {name:<{width}}  {description}")
    return 0


def _cmd_run(name: str, csv_dir: str | None) -> int:
    if name not in EXPERIMENTS:
        print(f"unknown experiment {name!r}; try 'list'", file=sys.stderr)
        return 2
    module_name, _ = EXPERIMENTS[name]
    for report in _reports_of(module_name):
        print(report.render())
        print()
        if csv_dir:
            for path in report.save_csv(csv_dir):
                print(f"wrote {path}")
    return 0


def _cmd_all(csv_dir: str | None) -> int:
    status = 0
    for name in EXPERIMENTS:
        print(f"######## {name} ########")
        status = max(status, _cmd_run(name, csv_dir))
    return status


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduction experiments for the multi-agent "
        "rotor-router paper (PODC 2013).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run_parser = sub.add_parser("run", help="run one experiment")
    run_parser.add_argument("name", help="experiment name (see 'list')")
    run_parser.add_argument(
        "--csv", metavar="DIR", default=None, help="also save CSV tables"
    )
    all_parser = sub.add_parser("all", help="run every experiment")
    all_parser.add_argument(
        "--csv", metavar="DIR", default=None, help="also save CSV tables"
    )
    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args.name, args.csv)
    return _cmd_all(args.csv)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
