"""Command-line interface: run any reproduction experiment or sweep.

Usage (after ``pip install -e .``, which also installs the ``repro``
console script)::

    python -m repro list                 # experiments + sweep scenarios
    python -m repro run table1           # one experiment, batched backend
    python -m repro run theorem1 --quick --backend batch   # CI smoke size
    python -m repro run theorem6 --csv out/   # also save CSVs
    python -m repro run table1 --backend reference   # serial escape hatch
    python -m repro all --quick          # everything, scaled down
    python -m repro sweep table1 --jobs 4     # declarative cached sweep
    python -m repro sweep stabilization --quick --cache out/cache
    python -m repro all --store sqlite   # sharded SQLite result store
    python -m repro cache info .sweep-cache   # store backend & layout
    python -m repro cache migrate .sweep-cache out/db   # JSON -> SQLite
    python -m repro cache verify .sweep-cache --repair  # integrity scan
    python -m repro sweep table1 --jobs 4 --chunk-timeout 60 --max-retries 3
    python -m repro lint src/repro       # determinism static analysis
    python -m repro lint --update-lock   # re-pin cache_identity.lock

``run`` is a thin dispatcher over :mod:`repro.experiments`; every
experiment module's ``run_*`` defaults define its "full size".  The
paper-reproduction grids (Table 1, the theorems, stabilization, the
general-graph speed-up) measure through the batched
:mod:`repro.analysis.backend` by default — ``--backend reference``
selects the original serial loops (bit-identical results), ``--quick``
a scaled-down grid, and ``--jobs``/``--cache`` thread straight to the
sweep executor so experiment cells are parallelized and cached like
sweep cells.  ``sweep`` executes a registered :mod:`repro.sweep`
scenario through the batched kernel and the parallel executor; results
land in an on-disk result store (default ``.sweep-cache``), so
repeating or resuming a sweep only computes the missing cells.
``--store sqlite`` swaps the one-file-per-cell JSON tree for the
sharded SQLite store of :mod:`repro.sweep.store` (batched probes and
commits, bit-identical results); ``python -m repro cache`` inspects,
migrates, compacts and integrity-checks either layout (``verify
[--repair]`` re-digests every row and quarantines corrupt ones).
Both commands end with a one-line ``computed=X cached=Y`` accounting
— plus ``failed=Z`` when the fault-tolerant executor had to
quarantine cells (``--max-retries``/``--chunk-timeout`` tune its
supervision; see :mod:`repro.sweep.faults`).

``--trace PATH`` (on ``run``/``all``/``sweep``) records a
:mod:`repro.obs` manifest — executor spans, kernel counters, cache
traffic, per-worker time — without changing any result; ``python -m
repro stats PATH`` renders it as per-phase, cache and per-kernel
tables.

``python -m repro lint [PATHS]`` runs the determinism &
cache-identity static analysis of :mod:`repro.lint` (rules D001–D003,
T001 and the I001 ``cache_identity.lock`` check) over the source tree;
``--update-lock`` re-pins the identity lockfile after an intentional
schema change.  Exit status 1 means non-suppressed findings.
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import sys
from typing import Callable

from repro.experiments.harness import Report

DEFAULT_SWEEP_CACHE = ".sweep-cache"

EXPERIMENTS: dict[str, tuple[str, str]] = {
    # name -> (module, description)
    "table1": ("repro.experiments.table1", "Table 1: cover & return times"),
    "theorem1": (
        "repro.experiments.theorem1",
        "Thm 1: worst placement Θ(n²/log k) + proof deployment",
    ),
    "theorem2": (
        "repro.experiments.theorem2",
        "Thm 2: any initialization is O(n²/log k)",
    ),
    "theorem3": (
        "repro.experiments.theorem3",
        "Thm 3: equal spacing covers in O(n²/k²)",
    ),
    "theorem4": (
        "repro.experiments.theorem4",
        "Thm 4: pointers forcing Ω(n²/k²) for any placement",
    ),
    "theorem5": (
        "repro.experiments.theorem5",
        "Thm 5: spaced walks Θ((n/k)² log² k)",
    ),
    "theorem6": (
        "repro.experiments.theorem6",
        "Thm 6: return time Θ(n/k)",
    ),
    "figures": (
        "repro.experiments.figures",
        "Figures 1-2: border types, deployment trace",
    ),
    "continuous": (
        "repro.experiments.continuous",
        "§2.3: ODE vs discrete simulation",
    ),
    "speedup_graphs": (
        "repro.experiments.speedup_graphs",
        "extension: speed-up on general graphs",
    ),
    "stabilization": (
        "repro.experiments.stabilization",
        "extension: time-to-limit-cycle across initializations",
    ),
}


def _runners_of(module_name: str) -> list[Callable[..., Report]]:
    """The report runners of an experiment module.

    Figures expose two reports (``run_figure1``/``run_figure2``);
    everything else exposes one ``run_<name>``.
    """
    module = importlib.import_module(module_name)
    short = module_name.rsplit(".", 1)[-1]
    if short == "figures":
        return [module.run_figure1, module.run_figure2]
    return [getattr(module, f"run_{short}")]


def _takes_backend_options(runner: Callable[..., Report]) -> bool:
    """Whether a runner accepts the measurement-backend options.

    Derived from the runner's own signature — the capability lives in
    exactly one place (the experiment module) instead of a parallel
    name registry here.  Runners without a grid (figures, continuous)
    simply don't take ``backend=``.
    """
    return "backend" in inspect.signature(runner).parameters


def _cmd_list() -> int:
    from repro.sweep import registry

    names = list(EXPERIMENTS) + registry.scenario_names()
    width = max(len(name) for name in names)
    print("experiments (python -m repro run <name>):")
    for name, (_, description) in EXPERIMENTS.items():
        print(f"  {name:<{width}}  {description}")
    print()
    print("sweep scenarios (python -m repro sweep <name>):")
    for name in registry.scenario_names():
        print(f"  {name:<{width}}  {registry.scenario_description(name)}")
    return 0


def _cmd_run(
    name: str,
    csv_dir: str | None,
    backend: str = "batch",
    quick: bool = False,
    jobs: int = 1,
    cache_dir: str | None = None,
) -> int:
    if name not in EXPERIMENTS:
        print(f"unknown experiment {name!r}; try 'list'", file=sys.stderr)
        return 2
    module_name, _ = EXPERIMENTS[name]
    runners = _runners_of(module_name)
    if not any(map(_takes_backend_options, runners)) and (
        backend != "batch" or quick or jobs != 1
    ):
        print(
            f"note: {name!r} has no measurement grid; "
            "--backend/--quick/--jobs/--cache are ignored",
            file=sys.stderr,
        )
    reports = [
        runner(backend=backend, quick=quick, jobs=jobs, cache_dir=cache_dir)
        if _takes_backend_options(runner)
        else runner()
        for runner in runners
    ]
    for report in reports:
        print(report.render())
        if report.stats is not None:
            # One-line accounting: how many cells actually simulated.
            print(report.stats.summary_line())
        print()
        if csv_dir:
            for path in report.save_csv(csv_dir):
                print(f"wrote {path}")
    return 0


def _cmd_sweep(
    name: str,
    jobs: int,
    cache_dir: str | None,
    quick: bool,
    csv_dir: str | None,
    chunk_lanes: int | None = None,
    fuse_rounds: int | None = None,
    max_retries: int | None = None,
    chunk_timeout: float | None = None,
) -> int:
    from repro.sweep import registry
    from repro.sweep.aggregate import summary_tables
    from repro.sweep.executor import StderrProgress, run_sweep

    # Unknown names are rejected at the argparse layer in main().
    spec = registry.scenario(name, quick=quick)
    result = run_sweep(
        spec, jobs=jobs, cache_dir=cache_dir, progress=StderrProgress(),
        chunk_lanes=chunk_lanes, fuse_rounds=fuse_rounds,
        max_retries=max_retries, chunk_timeout=chunk_timeout,
    )
    report = Report(
        title=f"sweep '{name}'"
        + (" (quick)" if quick else "")
        + f" — spec {spec.spec_hash[:12]}",
        claim=spec.description,
    )
    report.add_table(result.table())
    # Aggregate views join rotor/walk cells of the same (cached) sweep:
    # speed-up S(k) when a k=1 baseline exists, walk/rotor ratios when
    # both models are present.
    for extra in summary_tables(result):
        report.add_table(extra)
    report.add_note(
        f"completed in {result.elapsed:.2f}s "
        f"(jobs={jobs}, cache={cache_dir or 'disabled'})"
    )
    print(report.render())
    # Quarantine details go to stderr like the progress line; the
    # stdout accounting stays one grep-stable line.
    if result.failure_report is not None:
        for line in result.failure_report.summary_lines():
            print(line, file=sys.stderr)
    # The cell accounting lives on this one standardized line (shared
    # with `run`'s backend summary and grepped by CI).  ``failed`` is
    # appended only when nonzero, so fault-free output is unchanged.
    accounting = (
        f"computed={result.cache_misses} cached={result.cache_hits}"
    )
    if result.failed:
        accounting += f" failed={result.failed}"
    print(accounting)
    if csv_dir:
        for path in report.save_csv(csv_dir):
            print(f"wrote {path}")
    return 0


def _cmd_all(
    csv_dir: str | None,
    backend: str = "batch",
    quick: bool = False,
    jobs: int = 1,
    cache_dir: str | None = None,
) -> int:
    status = 0
    for name in EXPERIMENTS:
        print(f"######## {name} ########")
        status = max(
            status, _cmd_run(name, csv_dir, backend, quick, jobs, cache_dir)
        )
    return status


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.sweep.store import (
        migrate_json_to_sqlite,
        store_info,
        vacuum_store,
        verify_store,
    )

    def show(facts: dict) -> None:
        for key in sorted(facts):
            print(f"{key}={facts[key]}")

    try:
        if args.cache_command == "migrate":
            report = migrate_json_to_sqlite(args.source, args.dest)
            print(report.summary_line())
        elif args.cache_command == "vacuum":
            show(vacuum_store(args.path))
        elif args.cache_command == "verify":
            verify = verify_store(args.path, repair=args.repair)
            print(verify.summary_line())
            # Exit 1 while unrepaired corruption remains, so CI can
            # gate on a clean store (and on --repair having healed it).
            return 0 if verify.ok else 1
        else:
            show(store_info(args.path))
    except (OSError, ValueError) as exc:
        print(f"cache {args.cache_command} failed: {exc}", file=sys.stderr)
        return 2
    return 0


def _cmd_stats(path: str) -> int:
    from repro.obs import load_manifest, render_stats

    try:
        manifest = load_manifest(path)
    except OSError as exc:
        print(f"cannot read manifest: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"invalid manifest {path!r}: {exc}", file=sys.stderr)
        return 2
    print(render_stats(manifest, path=path))
    return 0


def _positive_int_argument(what: str) -> Callable[[str], int]:
    """argparse type factory for positive integer options.

    Validating at the argparse layer means a bad value (``--jobs -2``,
    ``--chunk-lanes 0``) exits 2 with a one-line argparse message
    instead of surfacing a traceback from deep inside ``run_sweep``.
    """

    def parse(text: str) -> int:
        try:
            value = int(text)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"invalid int value: {text!r}"
            ) from None
        if value < 1:
            raise argparse.ArgumentTypeError(
                f"must be a positive {what}, got {value}"
            )
        return value

    return parse


def _nonnegative_int_argument(what: str) -> Callable[[str], int]:
    """argparse type factory for integer options where 0 is valid."""

    def parse(text: str) -> int:
        try:
            value = int(text)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"invalid int value: {text!r}"
            ) from None
        if value < 0:
            raise argparse.ArgumentTypeError(
                f"must be a non-negative {what}, got {value}"
            )
        return value

    return parse


def _positive_float_argument(what: str) -> Callable[[str], float]:
    """argparse type factory for positive float options (seconds)."""

    def parse(text: str) -> float:
        try:
            value = float(text)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"invalid float value: {text!r}"
            ) from None
        if value <= 0:
            raise argparse.ArgumentTypeError(
                f"must be a positive {what}, got {value}"
            )
        return value

    return parse


_jobs_argument = _positive_int_argument("worker count")
_chunk_lanes_argument = _positive_int_argument("lane count")
_fuse_rounds_argument = _positive_int_argument("round count")
_max_retries_argument = _nonnegative_int_argument("retry count")
_chunk_timeout_argument = _positive_float_argument("second count")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduction experiments for the multi-agent "
        "rotor-router paper (PODC 2013).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run_parser = sub.add_parser("run", help="run one experiment")
    run_parser.add_argument("name", help="experiment name (see 'list')")
    all_parser = sub.add_parser("all", help="run every experiment")
    for exp_parser in (run_parser, all_parser):
        exp_parser.add_argument(
            "--csv", metavar="DIR", default=None, help="also save CSV tables"
        )
        exp_parser.add_argument(
            "--backend", choices=("batch", "reference"), default="batch",
            help="measurement backend for the reproduction grids: "
            "'batch' (sweep kernels, cached, default) or 'reference' "
            "(original serial loops; bit-identical results)",
        )
        exp_parser.add_argument(
            "--quick", action="store_true",
            help="scaled-down grids (CI smoke size)",
        )
        exp_parser.add_argument(
            "--jobs", type=_jobs_argument, default=1, metavar="N",
            help="worker processes for batched chunks (default: 1)",
        )
        exp_parser.add_argument(
            "--cache", metavar="DIR", default=DEFAULT_SWEEP_CACHE,
            help="measurement result cache for the batch backend "
            f"(default: {DEFAULT_SWEEP_CACHE}); 'none' disables caching",
        )
        exp_parser.add_argument(
            "--store", choices=("json", "sqlite"), default="json",
            help="result-store backend for --cache: 'json' (one file "
            "per cell, default) or 'sqlite' (sharded, batched I/O); "
            "results are bit-identical across backends",
        )
        exp_parser.add_argument(
            "--trace", metavar="PATH", default=None,
            help="record a telemetry manifest at PATH (inspect with "
            "'stats'); results are unaffected",
        )
        exp_parser.add_argument(
            "--max-retries", type=_max_retries_argument, default=None,
            metavar="N",
            help="redispatches a failing chunk earns before "
            "bisection/quarantine (default: 2); a robustness knob — "
            "results and cache identities are unaffected",
        )
        exp_parser.add_argument(
            "--chunk-timeout", type=_chunk_timeout_argument, default=None,
            metavar="SECONDS",
            help="per-chunk deadline with jobs>1; a hung chunk counts "
            "as a failed attempt and restarts the worker pool "
            "(default: no deadline)",
        )
    sweep_parser = sub.add_parser(
        "sweep", help="run a registered sweep scenario (cached, parallel)",
        description="Run a registered sweep scenario through the batched "
        "kernels and the on-disk result cache.  Cache identities are "
        "schema-versioned and guarded by `repro lint` (rule I001).",
    )
    sweep_parser.add_argument("name", help="scenario name (see 'list')")
    sweep_parser.add_argument(
        "--jobs", type=_jobs_argument, default=1, metavar="N",
        help="worker processes (default: 1, serial)",
    )
    sweep_parser.add_argument(
        "--cache", metavar="DIR", default=DEFAULT_SWEEP_CACHE,
        help=f"result cache directory (default: {DEFAULT_SWEEP_CACHE}); "
        "'none' disables caching",
    )
    sweep_parser.add_argument(
        "--store", choices=("json", "sqlite"), default="json",
        help="result-store backend for --cache: 'json' (one file per "
        "cell, default) or 'sqlite' (sharded, batched I/O); results "
        "are bit-identical across backends",
    )
    sweep_parser.add_argument(
        "--chunk-lanes", type=_chunk_lanes_argument, default=None,
        metavar="B",
        help="lanes per kernel chunk (default: scenario hint, else 64); "
        "a scheduling knob — results and cache entries are unaffected",
    )
    sweep_parser.add_argument(
        "--fuse-rounds", type=_fuse_rounds_argument, default=None,
        metavar="T",
        help="rounds fused per kernel epoch (default: scenario hint, else "
        "each kernel's tuned default); a scheduling knob — results are "
        "bit-identical at every value",
    )
    sweep_parser.add_argument(
        "--max-retries", type=_max_retries_argument, default=None,
        metavar="N",
        help="redispatches a failing chunk earns before "
        "bisection/quarantine (default: 2); a robustness knob — "
        "results and cache identities are unaffected",
    )
    sweep_parser.add_argument(
        "--chunk-timeout", type=_chunk_timeout_argument, default=None,
        metavar="SECONDS",
        help="per-chunk deadline with --jobs>1; a hung chunk counts as "
        "a failed attempt and restarts the worker pool (default: no "
        "deadline)",
    )
    sweep_parser.add_argument(
        "--quick", action="store_true",
        help="scaled-down grid (CI smoke size)",
    )
    sweep_parser.add_argument(
        "--csv", metavar="DIR", default=None, help="also save CSV tables"
    )
    sweep_parser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="record a telemetry manifest at PATH (inspect with "
        "'stats'); results are unaffected",
    )
    cache_parser = sub.add_parser(
        "cache", help="inspect, migrate or compact a result cache",
        description="Maintenance tooling for on-disk result stores: "
        "'info' reports backend/entries/layout, 'migrate' streams a "
        "JSON tree into a sharded SQLite store (verifying every "
        "entry's identity hash on the way), 'vacuum' compacts SQLite "
        "shards / sweeps stale JSON temp files.",
    )
    cache_sub = cache_parser.add_subparsers(dest="cache_command",
                                            required=True)
    cache_info = cache_sub.add_parser(
        "info", help="report a store's backend, entry count and layout"
    )
    cache_info.add_argument("path", help="cache directory")
    cache_migrate = cache_sub.add_parser(
        "migrate",
        help="stream a JSON-tree cache into a sharded SQLite store",
    )
    cache_migrate.add_argument("source", help="JSON-tree cache directory")
    cache_migrate.add_argument(
        "dest", help="destination SQLite store directory"
    )
    cache_vacuum = cache_sub.add_parser(
        "vacuum",
        help="compact SQLite shards / sweep stale JSON temp files",
    )
    cache_vacuum.add_argument("path", help="cache directory")
    cache_verify = cache_sub.add_parser(
        "verify",
        help="re-digest every row; report (or --repair) corrupt entries",
        description="Full integrity scan of a result store, either "
        "backend: every row's config text is re-digested against its "
        "identity hash and checked for well-formed metrics.  Exits 1 "
        "while unrepaired corruption remains; --repair quarantines "
        "the bad rows so the next sweep recomputes them.",
    )
    cache_verify.add_argument("path", help="cache directory")
    cache_verify.add_argument(
        "--repair", action="store_true",
        help="quarantine corrupt rows (the next sweep recomputes them)",
    )
    stats_parser = sub.add_parser(
        "stats", help="inspect a telemetry manifest written by --trace",
        description="Render the per-phase, cache, kernel and worker "
        "tables of a --trace manifest.  (Static-analysis counterpart: "
        "`repro lint` checks the code these numbers come from.)",
    )
    stats_parser.add_argument(
        "path", help="manifest path (the --trace argument of the run)"
    )
    lint_parser = sub.add_parser(
        "lint",
        help="determinism & cache-identity static analysis",
        description="Run the repro.lint rule set (unseeded randomness, "
        "nondeterministic ordering, identity pollution, kernel "
        "telemetry guards, cache-identity lockfile) over the source "
        "tree.  Exits 1 on non-suppressed findings, 2 on usage errors.",
    )
    from repro.lint.cli import configure_parser as _configure_lint

    _configure_lint(lint_parser)
    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "stats":
        return _cmd_stats(args.path)
    if args.command == "lint":
        from repro.lint.cli import run_from_args as _run_lint_args

        return _run_lint_args(args)
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "sweep":
        from repro.sweep import registry

        if args.name not in registry.scenario_names():
            # Reject unknown names here — with or without --quick — so
            # every bad invocation exits 2 with one argparse-style line.
            sweep_parser.error(
                f"unknown sweep scenario {args.name!r}; known: "
                + ", ".join(registry.scenario_names())
            )

    def dispatch() -> int:
        cache_dir = None if args.cache == "none" else args.cache
        if cache_dir is not None and args.store != "json":
            # A plain path means the historical JSON tree; non-default
            # backends travel as a spec prefix so the store choice
            # reaches run_cells through the existing cache_dir plumbing
            # without widening any experiment-runner signature.
            from repro.sweep.store import format_store_spec

            cache_dir = format_store_spec(args.store, cache_dir)
        if args.command == "run":
            return _cmd_run(
                args.name,
                args.csv,
                backend=args.backend,
                quick=args.quick,
                jobs=args.jobs,
                cache_dir=cache_dir,
            )
        if args.command == "sweep":
            return _cmd_sweep(
                args.name, args.jobs, cache_dir, args.quick, args.csv,
                args.chunk_lanes, args.fuse_rounds,
                args.max_retries, args.chunk_timeout,
            )
        return _cmd_all(
            args.csv,
            backend=args.backend,
            quick=args.quick,
            jobs=args.jobs,
            cache_dir=cache_dir,
        )

    def dispatch_with_policy() -> int:
        if args.max_retries is None and args.chunk_timeout is None:
            return dispatch()
        # run/all reach run_cells through the experiment runners, whose
        # signatures stay untouched: the retry/timeout knobs travel as
        # an ambient execution policy instead.  (sweep also passes them
        # explicitly above; explicit arguments win, so both agree.)
        from repro.sweep.faults import ExecutionPolicy, execution_policy

        with execution_policy(ExecutionPolicy(
            max_retries=args.max_retries,
            chunk_timeout=args.chunk_timeout,
        )):
            return dispatch()

    if not args.trace:
        return dispatch_with_policy()
    from repro.obs import trace_session

    meta = {"command": args.command}
    if getattr(args, "name", None):
        meta["name"] = args.name
    # The session wraps the whole command: the executor checkpoints at
    # every run_cells exit and the exit handler writes the final merge.
    with trace_session(args.trace, meta=meta) as session:
        status = dispatch_with_policy()
    # Stdout stays bit-identical with and without --trace; the notice
    # goes to stderr like the progress line.
    print(f"wrote trace manifest {session.path}", file=sys.stderr)
    return status


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
