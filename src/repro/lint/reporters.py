"""Report rendering: compiler-style text and machine-readable JSON.

Both reporters consume one :class:`~repro.lint.engine.LintReport` and
are deterministic for a given report (findings arrive pre-sorted).
The JSON document is what CI uploads as an artifact, so its layout is
versioned like every other serialized format in this repo.
"""

from __future__ import annotations

import json

from repro.lint.engine import LintReport

#: Bump when the JSON report layout changes.
REPORT_SCHEMA_VERSION = 1


def render_text(report: LintReport) -> str:
    """Human-readable report: one line per finding, then a summary."""
    lines = [finding.render() for finding in report.findings]
    if report.suppressed:
        lines.append(
            "suppressed by `# repro: noqa[...]` pragmas "
            f"({len(report.suppressed)}):"
        )
        lines.extend(
            "  " + finding.render() for finding in report.suppressed
        )
    if report.lock_written:
        lines.append(f"wrote cache-identity lockfile {report.lock_path}")
    lines.append(
        f"{len(report.findings)} finding(s), "
        f"{len(report.suppressed)} suppressed, "
        f"{len(report.files)} file(s) checked"
    )
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """The JSON report CI stores as an artifact."""
    payload = {
        "schema": REPORT_SCHEMA_VERSION,
        "files_checked": len(report.files),
        "lock_path": report.lock_path,
        "lock_written": report.lock_written,
        "findings": [finding.to_dict() for finding in report.findings],
        "suppressed": [finding.to_dict() for finding in report.suppressed],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
