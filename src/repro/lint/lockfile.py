"""I001 — the cache-identity lockfile check.

Every on-disk cache entry in this repo is keyed by a SHA-256 over a
canonical ``identity()`` dict, and every identity dict embeds a schema
version (``SCHEMA_VERSION`` in :mod:`repro.sweep.spec`,
``CELL_SCHEMA_VERSION`` in :mod:`repro.sweep.cells`) so stale entries
from older code are never served.  The failure mode that versioning
cannot catch by itself is the *silent* kind: a field is added to (or
dropped from) an identity dict, the version is left alone, and every
previously cached cell now hashes differently — or worse, the same —
without anyone deciding that on purpose.  PRs 2 and 5 each bumped a
schema version by hand exactly because of this.

``cache_identity.lock`` pins the machine-extracted identity surface:
for every linted module that defines a ``*SCHEMA_VERSION`` constant or
a class with an ``identity()`` method returning a dict literal, the
lock records the schema-version values, each class's identity key set,
and its dataclass field names.  The I001 check re-extracts the surface
from source and demands that any drift from the lock comes paired with
a schema-version bump *and* a lockfile regeneration (``python -m repro
lint --update-lock``) — turning "did you mean to change cache
identities?" into a failing check instead of a review comment.

The lock lives next to the code it describes (repo root by default)
and is committed; module keys inside it are paths relative to the
lock's own directory, so the file is location-independent.
"""

from __future__ import annotations

import ast
import json
import os
import re
from typing import Iterable

from repro.lint.findings import Finding

#: Bump when the lockfile layout itself changes.
LOCK_SCHEMA_VERSION = 1

#: Conventional lockfile name, resolved against the working directory
#: by the CLI (``--lock PATH`` overrides).
DEFAULT_LOCK_NAME = "cache_identity.lock"

_CODE = "I001"

_VERSION_NAME = re.compile(r"SCHEMA_VERSION$")


def _finding(path: str, line: int, message: str) -> Finding:
    return Finding(path=path, line=line, col=1, code=_CODE, message=message)


def _identity_keys(func: ast.FunctionDef) -> list[str] | None:
    """The constant string keys of the dict literal ``func`` returns.

    Identity methods in this repo return a single dict display; if a
    future one builds its dict dynamically the extraction abstains
    (returns None) rather than guessing.
    """
    returned: ast.Dict | None = None
    for node in ast.walk(func):
        if isinstance(node, ast.Return) and isinstance(node.value, ast.Dict):
            if returned is not None:
                return None  # multiple dict returns: abstain
            returned = node.value
    if returned is None:
        return None
    keys: list[str] = []
    for key in returned.keys:
        if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
            return None
        keys.append(key.value)
    return sorted(keys)


def _dataclass_fields(cls: ast.ClassDef) -> list[str]:
    """Annotated class-body names — the dataclass field surface."""
    return sorted(
        node.target.id
        for node in cls.body
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name)
    )


def extract_surface(tree: ast.Module) -> dict | None:
    """The identity surface of one module, or None if it has none.

    Returns ``{"versions": {name: value}, "identities": {class:
    {"keys": [...], "fields": [...]}}}``.  A class appears when it
    defines an ``identity`` method whose returned dict literal could
    be extracted; versions are module-level integer ``*SCHEMA_VERSION``
    assignments.
    """
    versions: dict[str, int] = {}
    identities: dict[str, dict] = {}
    lines: dict[str, int] = {}
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Name)
                    and _VERSION_NAME.search(target.id)
                    and isinstance(node.value, ast.Constant)
                    and isinstance(node.value.value, int)
                ):
                    versions[target.id] = node.value.value
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if (
                    isinstance(item, ast.FunctionDef)
                    and item.name == "identity"
                ):
                    keys = _identity_keys(item)
                    if keys is not None:
                        identities[node.name] = {
                            "keys": keys,
                            "fields": _dataclass_fields(node),
                        }
                        lines[node.name] = node.lineno
    if not versions and not identities:
        return None
    return {"versions": versions, "identities": identities, "lines": lines}


def project_surfaces(
    modules: Iterable[tuple[str, ast.Module]], lock_path: str
) -> dict[str, dict]:
    """Identity surfaces of all linted modules, keyed for the lock.

    Keys are forward-slash paths relative to the lock's directory, so
    the lockfile content does not depend on where the linter ran from.
    """
    base = os.path.dirname(os.path.abspath(lock_path)) or "."
    surfaces: dict[str, dict] = {}
    for path, tree in modules:
        surface = extract_surface(tree)
        if surface is None:
            continue
        key = os.path.relpath(os.path.abspath(path), base).replace(
            os.sep, "/"
        )
        surfaces[key] = surface
    return surfaces


def _lock_payload(surfaces: dict[str, dict]) -> dict:
    return {
        "lock_schema": LOCK_SCHEMA_VERSION,
        "modules": {
            key: {
                "versions": surface["versions"],
                "identities": {
                    name: {
                        "keys": entry["keys"],
                        "fields": entry["fields"],
                    }
                    for name, entry in sorted(
                        surface["identities"].items()
                    )
                },
            }
            for key, surface in sorted(surfaces.items())
        },
    }


def write_lock(surfaces: dict[str, dict], lock_path: str) -> str:
    """Serialize ``surfaces`` to ``lock_path`` (sorted, stable JSON)."""
    text = json.dumps(_lock_payload(surfaces), indent=2, sort_keys=True)
    with open(lock_path, "w") as handle:
        handle.write(text + "\n")
    return lock_path


def read_lock(lock_path: str) -> dict | None:
    """The parsed lock, or None when absent.  ``ValueError`` on rot."""
    try:
        with open(lock_path) as handle:
            data = json.load(handle)
    except FileNotFoundError:
        return None
    except ValueError as exc:
        raise ValueError(f"unreadable lockfile {lock_path!r}: {exc}") from None
    if (
        not isinstance(data, dict)
        or data.get("lock_schema") != LOCK_SCHEMA_VERSION
        or not isinstance(data.get("modules"), dict)
    ):
        raise ValueError(
            f"lockfile {lock_path!r} does not carry lock_schema "
            f"{LOCK_SCHEMA_VERSION}"
        )
    return data


_UPDATE_HINT = "run `python -m repro lint --update-lock` to re-pin"


def check_lock(
    surfaces: dict[str, dict], lock_path: str
) -> list[Finding]:
    """Compare current identity surfaces against the lockfile.

    Every drift is an I001 finding; the message distinguishes the
    dangerous case (identity fields changed with *no* schema-version
    bump — the change is invisible to the version gate) from the
    merely-stale case (version bumped, lock not regenerated).
    """
    if not surfaces:
        return []
    first = min(surfaces)
    try:
        lock = read_lock(lock_path)
    except ValueError as exc:
        return [_finding(lock_path, 1, f"{exc}; {_UPDATE_HINT}")]
    if lock is None:
        return [
            _finding(
                first, 1,
                f"cache-identity lockfile {lock_path!r} is missing but "
                f"{len(surfaces)} module(s) define identity surfaces; "
                + _UPDATE_HINT,
            )
        ]
    findings: list[Finding] = []
    locked = lock["modules"]
    for key in sorted(set(locked) - set(surfaces)):
        findings.append(
            _finding(
                lock_path, 1,
                f"lockfile records identity surfaces for {key!r}, which "
                f"no longer defines any; {_UPDATE_HINT}",
            )
        )
    for key in sorted(surfaces):
        surface = surfaces[key]
        if key not in locked:
            findings.append(
                _finding(
                    key, 1,
                    "module defines identity surfaces not recorded in "
                    f"the lockfile; {_UPDATE_HINT}",
                )
            )
            continue
        entry = locked[key]
        bumped = entry.get("versions", {}) != surface["versions"]
        lines = surface.get("lines", {})
        current = surface["identities"]
        recorded = entry.get("identities", {})
        drifted = False
        for name in sorted(set(recorded) | set(current)):
            line = lines.get(name, 1)
            if name not in current:
                drifted = True
                findings.append(
                    _finding(
                        key, 1,
                        f"identity class {name} was removed; {_UPDATE_HINT}",
                    )
                )
                continue
            if name not in recorded:
                drifted = True
                findings.append(
                    _finding(
                        key, line,
                        f"identity class {name} is new and unrecorded; "
                        + _UPDATE_HINT,
                    )
                )
                continue
            for aspect in ("keys", "fields"):
                old = recorded[name].get(aspect, [])
                new = current[name][aspect]
                if old == new:
                    continue
                drifted = True
                added = sorted(set(new) - set(old))
                removed = sorted(set(old) - set(new))
                delta = ", ".join(
                    (["added " + "/".join(added)] if added else [])
                    + (["removed " + "/".join(removed)] if removed else [])
                )
                what = (
                    "identity keys" if aspect == "keys"
                    else "dataclass fields"
                )
                if bumped:
                    findings.append(
                        _finding(
                            key, line,
                            f"{what} of {name} changed ({delta}) and the "
                            f"schema version was bumped, but the lockfile "
                            f"is stale; {_UPDATE_HINT}",
                        )
                    )
                else:
                    findings.append(
                        _finding(
                            key, line,
                            f"{what} of {name} changed ({delta}) WITHOUT a "
                            "schema-version bump: stale cache entries "
                            "would be mis-keyed — bump the module's "
                            f"schema version, then {_UPDATE_HINT}",
                        )
                    )
        if bumped and not drifted:
            old_versions = entry.get("versions", {})
            delta = ", ".join(
                f"{name}: {old_versions.get(name)} -> "
                f"{surface['versions'].get(name)}"
                for name in sorted(
                    set(old_versions) | set(surface["versions"])
                )
                if old_versions.get(name) != surface["versions"].get(name)
            )
            findings.append(
                _finding(
                    key, 1,
                    f"schema version changed ({delta}) but the lockfile "
                    f"still records the old value; {_UPDATE_HINT}",
                )
            )
    return findings
