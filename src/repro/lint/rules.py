"""Checker framework: the rule registry and shared AST machinery.

A rule is a subclass of :class:`Rule` registered under its code
(``D001``, ``T001``, …).  Rules are *file rules*: ``check`` receives
one parsed module at a time and yields :class:`~repro.lint.findings.
Finding` objects.  Repo-level checks that need the whole file set
(the I001 lockfile) live outside this registry, in
:mod:`repro.lint.lockfile`, but share the same finding currency and
pragma handling.

The shared machinery here is what makes the individual rules small:

* :class:`ModuleContext` — a parsed file plus a parent map (ancestor
  walks for "is this call wrapped in ``sorted()``?") and an import
  alias table (so ``import numpy as np`` / ``from repro.obs import
  count as c`` resolve to canonical dotted names before matching);
* path predicates (:func:`is_test_path`, :func:`in_packages`,
  :func:`is_kernel_module`) that scope rules to the module families
  the repo's invariants actually live in.
"""

from __future__ import annotations

import ast
import os
from typing import Iterator

from repro.lint.findings import Finding

#: code -> rule instance.  Populated by :func:`register`; the rule
#: modules are imported by :mod:`repro.lint.engine` so importing the
#: engine is enough to see the full catalogue.
_REGISTRY: dict[str, "Rule"] = {}


def register(rule_cls: type["Rule"]) -> type["Rule"]:
    """Class decorator: instantiate and index a rule by its code."""
    rule = rule_cls()
    if rule.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {rule.code!r}")
    _REGISTRY[rule.code] = rule
    return rule_cls


def all_rules() -> list["Rule"]:
    """Every registered rule, in code order."""
    _load()
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def get_rule(code: str) -> "Rule":
    _load()
    try:
        return _REGISTRY[code]
    except KeyError:
        raise KeyError(
            f"unknown rule code {code!r}; known: {sorted(_REGISTRY)}"
        ) from None


def known_codes() -> frozenset[str]:
    _load()
    return frozenset(_REGISTRY)


def _load() -> None:
    # Import for the registration side effect; idempotent.
    import repro.lint.determinism  # noqa: F401


class Rule:
    """One lint rule: a code, a summary, and a per-module check."""

    code: str = ""
    summary: str = ""

    def applies_to(self, path: str) -> bool:
        """Whether this rule runs on ``path`` at all (default: yes)."""
        return True

    def check(self, context: "ModuleContext") -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, context: "ModuleContext", node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            path=context.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=self.code,
            message=message,
        )


class ModuleContext:
    """One parsed module plus the lookups every rule needs."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self._parents: dict[ast.AST, ast.AST] | None = None
        self._imports: dict[str, str] | None = None

    @property
    def parents(self) -> dict[ast.AST, ast.AST]:
        """child node -> parent node, built lazily once per module."""
        if self._parents is None:
            table: dict[ast.AST, ast.AST] = {}
            for parent in ast.walk(self.tree):
                for child in ast.iter_child_nodes(parent):
                    table[child] = parent
            self._parents = table
        return self._parents

    @property
    def imports(self) -> dict[str, str]:
        """Local name -> canonical dotted module/object it was bound to.

        ``import numpy as np`` maps ``np -> numpy``; ``from repro.obs
        import count as c`` maps ``c -> repro.obs.count``.  Relative
        imports keep their leading dots — the rules only match absolute
        names, so relative bindings simply never match.
        """
        if self._imports is None:
            table: dict[str, str] = {}
            for node in ast.walk(self.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        local = alias.asname or alias.name.split(".")[0]
                        target = (
                            alias.name if alias.asname else
                            alias.name.split(".")[0]
                        )
                        table[local] = target
                elif isinstance(node, ast.ImportFrom):
                    module = "." * node.level + (node.module or "")
                    for alias in node.names:
                        local = alias.asname or alias.name
                        table[local] = f"{module}.{alias.name}"
            self._imports = table
        return self._imports

    def dotted_name(self, node: ast.AST) -> str | None:
        """Resolve a ``Name``/``Attribute`` chain to a canonical dotted
        name through the import table, or None for anything dynamic.

        ``np.random.seed`` resolves to ``numpy.random.seed``; a chain
        whose base name is not an import binding resolves to the chain
        as written (so ``random.random`` still matches when ``random``
        is the conventional stdlib import).
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.imports.get(node.id, node.id)
        parts.append(base)
        return ".".join(reversed(parts))

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Walk from ``node``'s parent up to the module root."""
        parents = self.parents
        while node in parents:
            node = parents[node]
            yield node

    def enclosing_function(
        self, node: ast.AST
    ) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        """The innermost function whose body contains ``node``."""
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None

    def wrapped_by_call(
        self, node: ast.AST, names: frozenset[str]
    ) -> bool:
        """Whether ``node`` sits (at any depth) inside a call to one of
        the builtins in ``names`` within its own statement.

        ``sorted(os.listdir(d))`` and ``sorted(x for x in
        os.listdir(d))`` both count; crossing a statement boundary
        (assignments, returns) stops the walk — a later ``sorted()`` on
        the stored value is invisible to a per-node check and needs a
        restructure or a pragma.
        """
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, ast.stmt):
                return False
            if (
                isinstance(ancestor, ast.Call)
                and isinstance(ancestor.func, ast.Name)
                and ancestor.func.id in names
            ):
                return True
        return False


def path_parts(path: str) -> tuple[str, ...]:
    """Normalized path components (both separators handled)."""
    return tuple(part for part in os.path.normpath(path).replace(
        "\\", "/").split("/") if part not in ("", "."))


def is_test_path(path: str) -> bool:
    """Test/benchmark fixtures: exempt from the runtime-determinism
    rules (they are allowed to roll dice however they like)."""
    parts = path_parts(path)
    name = parts[-1] if parts else ""
    return (
        "tests" in parts
        or "benchmarks" in parts
        or name.startswith("test_")
        or name.startswith("bench_")
        or name == "conftest.py"
    )


def in_packages(path: str, packages: frozenset[str]) -> bool:
    """Whether ``path`` lies under one of the named package dirs."""
    return any(part in packages for part in path_parts(path)[:-1])


def is_kernel_module(path: str) -> bool:
    """The batched kernels: ``batch_*.py`` under a ``sweep`` package."""
    parts = path_parts(path)
    return (
        len(parts) >= 2
        and "sweep" in parts[:-1]
        and parts[-1].startswith("batch_")
        and parts[-1].endswith(".py")
    )
