"""The ``repro lint`` subcommand: argparse wiring over the engine.

Exit codes follow the CLI's existing conventions: 0 for a clean run,
1 when non-suppressed findings remain, 2 for usage errors (unknown
codes, missing paths — argparse itself already exits 2 on bad flags).
"""

from __future__ import annotations

import argparse
import sys

from repro.lint.engine import run_lint
from repro.lint.lockfile import DEFAULT_LOCK_NAME
from repro.lint.reporters import render_json, render_text

#: Default lint target: the package source tree when run from the
#: repo root (the CI invocation), else the current directory.
DEFAULT_TARGET = "src/repro"


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to an (sub)parser."""
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to lint "
        f"(default: {DEFAULT_TARGET} if present, else .)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text); CI stores the json form "
        "as an artifact",
    )
    parser.add_argument(
        "--select", metavar="CODES", default=None,
        help="comma-separated rule codes to run (e.g. D001,I001); "
        "default: all rules",
    )
    parser.add_argument(
        "--lock", metavar="PATH", default=DEFAULT_LOCK_NAME,
        help="cache-identity lockfile for the I001 check "
        f"(default: {DEFAULT_LOCK_NAME})",
    )
    parser.add_argument(
        "--update-lock", action="store_true",
        help="regenerate the cache-identity lockfile from the current "
        "identity surfaces instead of checking against it",
    )


def run_from_args(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the exit status."""
    import os

    paths = list(args.paths)
    if not paths:
        paths = [DEFAULT_TARGET if os.path.isdir(DEFAULT_TARGET) else "."]
    select = None
    if args.select is not None:
        select = [code.strip() for code in args.select.split(",") if code.strip()]
        if not select:
            print("--select needs at least one code", file=sys.stderr)
            return 2
    try:
        report = run_lint(
            paths,
            select=select,
            lock_path=args.lock,
            update_lock=args.update_lock,
        )
    except FileNotFoundError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    render = render_json if args.format == "json" else render_text
    print(render(report))
    return report.exit_code
