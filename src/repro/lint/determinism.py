"""The determinism rules: D001–D003 and T001.

Each rule targets a bug class this repo has actually shipped (and
fixed) by hand — see the per-rule docstrings.  They are deliberately
syntactic: an AST pass cannot prove dataflow, so each rule trades a
little precision for zero dependencies and total predictability, and
the ``# repro: noqa[CODE]`` pragma (with a justification) is the
escape hatch for the sites the heuristic gets wrong.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.rules import (
    ModuleContext,
    Rule,
    in_packages,
    is_kernel_module,
    is_test_path,
    register,
)

#: Consumers that erase iteration order, so an unordered producer
#: directly inside one of them is harmless.
_ORDER_SAFE_WRAPPERS = frozenset(
    {"sorted", "set", "frozenset", "len", "sum", "min", "max", "any", "all"}
)

#: Stdlib ``random`` module functions drawing from the hidden global
#: Mersenne Twister state (unseeded unless someone called
#: ``random.seed`` — which no library code may rely on).
_STDLIB_RANDOM_FNS = frozenset({
    "betavariate", "choice", "choices", "expovariate", "gauss",
    "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
    "randbytes", "randint", "random", "randrange", "sample", "seed",
    "shuffle", "triangular", "uniform", "vonmisesvariate",
    "weibullvariate",
})

#: ``numpy.random`` attributes that are *not* the legacy global-state
#: API: constructing these is fine (seededness of the constructors is
#: checked separately).
_NUMPY_RNG_CONSTRUCTORS = frozenset({
    "default_rng", "Generator", "RandomState", "SeedSequence",
    "BitGenerator", "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
})

#: Constructors that take the seed as their first argument (or a
#: ``seed=`` keyword) and are nondeterministic without one.
_SEED_FIRST_ARG = frozenset({
    "numpy.random.default_rng", "numpy.random.RandomState",
    "random.Random",
})

#: Wall-clock / process-identity / interpreter-identity sources that
#: must never reach an identity or cached-result payload.
_NONDET_SOURCES = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "os.getpid", "os.getppid", "os.urandom",
    "uuid.uuid1", "uuid.uuid4", "secrets.token_hex",
    "secrets.token_bytes", "datetime.datetime.now",
    "datetime.datetime.utcnow", "datetime.date.today",
})

#: Function names that mark a def as identity-producing.  Dunders are
#: exempt (``__hash__`` is Python's in-process protocol, never
#: persisted).
_IDENTITY_EXACT = frozenset({"to_dict", "cache_key"})
_IDENTITY_SUBSTRINGS = ("identity", "hash", "digest")

#: The telemetry conveniences kernels must not call per-site (each one
#: is a function call + module-global read; the kernel contract is one
#: hoisted ``active()`` read per invocation).
_TELEMETRY_CONVENIENCES = frozenset({
    "repro.obs.count", "repro.obs.count_many", "repro.obs.span",
    "repro.obs.telemetry.count", "repro.obs.telemetry.count_many",
    "repro.obs.telemetry.span",
})
_TELEMETRY_ACTIVE = frozenset({"repro.obs.active", "repro.obs.telemetry.active"})


def _call_nodes(context: ModuleContext) -> Iterator[ast.Call]:
    for node in ast.walk(context.tree):
        if isinstance(node, ast.Call):
            yield node


def _first_seed_argument(call: ast.Call) -> ast.expr | None:
    """The seed argument of an RNG constructor call, if any."""
    if call.args:
        return call.args[0]
    for keyword in call.keywords:
        if keyword.arg == "seed":
            return keyword.value
    return None


@register
class UnseededRandomness(Rule):
    """D001 — randomness with no reproducible seed.

    Flags the legacy ``numpy.random.*`` global-state API, bare stdlib
    ``random.*`` calls, and RNG constructors (``default_rng``,
    ``RandomState``, ``random.Random``) invoked with no seed (or an
    explicit ``None``).  A constructor receiving *any* expression is
    accepted — seed plumbing is the caller's concern and
    :func:`repro.util.rng.derive_seed` chains are common.  Test and
    benchmark fixtures are exempt by path.
    """

    code = "D001"
    summary = "unseeded randomness outside test/bench fixtures"

    def applies_to(self, path: str) -> bool:
        return not is_test_path(path)

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for call in _call_nodes(context):
            dotted = context.dotted_name(call.func)
            if dotted is None:
                continue
            if dotted in _SEED_FIRST_ARG:
                seed = _first_seed_argument(call)
                if seed is None or (
                    isinstance(seed, ast.Constant) and seed.value is None
                ):
                    yield self.finding(
                        context, call,
                        f"{dotted}() without a seed is nondeterministic; "
                        "pass an explicit seed (e.g. via "
                        "repro.util.rng.derive_seed)",
                    )
                continue
            if dotted.startswith("numpy.random."):
                attr = dotted.rsplit(".", 1)[1]
                if attr not in _NUMPY_RNG_CONSTRUCTORS:
                    yield self.finding(
                        context, call,
                        f"legacy global-state RNG {dotted}(); use a "
                        "seeded numpy.random.default_rng Generator",
                    )
                continue
            if dotted == "random.SystemRandom":
                yield self.finding(
                    context, call,
                    "random.SystemRandom is nondeterministic by design; "
                    "use a seeded generator",
                )
                continue
            if (
                dotted.startswith("random.")
                and dotted.rsplit(".", 1)[1] in _STDLIB_RANDOM_FNS
            ):
                yield self.finding(
                    context, call,
                    f"stdlib {dotted}() draws from hidden global RNG "
                    "state; use a seeded generator",
                )


@register
class NondeterministicOrdering(Rule):
    """D002 — iteration order that varies between runs or processes.

    Scoped to ``sweep/`` and ``obs/`` packages, whose iteration orders
    feed config hashes, chunk plans and manifest merges.  Two shapes:
    iterating a ``set``/``frozenset`` value (hash-order, perturbed by
    ``PYTHONHASHSEED`` for strings), and consuming ``os.listdir`` /
    ``os.scandir`` / ``glob.*`` / ``Path.iterdir``/``glob``/``rglob``
    results without an order-erasing wrapper (``sorted``, ``len``,
    ``set``, …) in the same expression.
    """

    code = "D002"
    summary = "nondeterministic ordering in hash/merge-feeding modules"

    _LISTING_FNS = frozenset({
        "os.listdir", "os.scandir", "glob.glob", "glob.iglob",
    })
    _LISTING_METHODS = frozenset({"iterdir", "glob", "rglob"})

    def applies_to(self, path: str) -> bool:
        return in_packages(path, frozenset({"sweep", "obs"})) and (
            not is_test_path(path)
        )

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            iters: list[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            for generator in getattr(node, "generators", []):
                iters.append(generator.iter)
            for it in iters:
                if isinstance(it, (ast.Set, ast.SetComp)) or (
                    isinstance(it, ast.Call)
                    and isinstance(it.func, ast.Name)
                    and it.func.id in ("set", "frozenset")
                ):
                    yield self.finding(
                        context, it,
                        "iterating a set has nondeterministic order in a "
                        "hash/merge-feeding module; sort it first",
                    )
        for call in _call_nodes(context):
            dotted = context.dotted_name(call.func)
            listing = dotted in self._LISTING_FNS or (
                isinstance(call.func, ast.Attribute)
                and call.func.attr in self._LISTING_METHODS
                and dotted not in self._LISTING_FNS
            )
            if not listing:
                continue
            if context.wrapped_by_call(call, _ORDER_SAFE_WRAPPERS):
                continue
            name = dotted or call.func.attr  # type: ignore[union-attr]
            yield self.finding(
                context, call,
                f"{name}() returns entries in filesystem order; wrap the "
                "call in sorted() (or another order-erasing consumer) "
                "before use",
            )


@register
class NondeterminismIntoIdentity(Rule):
    """D003 — run-varying values inside identity-producing functions.

    A function named ``identity``/``to_dict``/``cache_key`` or
    containing ``hash``/``digest``/``identity`` (dunders exempt) is
    treated as producing a cache identity or cached payload; inside
    one, wall clocks, pids, ``uuid``s, ``os.urandom``, builtin
    ``id()`` and builtin ``hash()`` (salted per-process via
    ``PYTHONHASHSEED``) are all findings: any of them silently forks
    the cache key space between runs.
    """

    code = "D003"
    summary = "wall-clock/pid/id()/hash() flowing into identities"

    def applies_to(self, path: str) -> bool:
        return not is_test_path(path)

    def _identity_function(self, name: str) -> bool:
        if name.startswith("__") and name.endswith("__"):
            return False
        return name in _IDENTITY_EXACT or any(
            part in name for part in _IDENTITY_SUBSTRINGS
        )

    def _inside_identity_def(
        self, context: ModuleContext, node: ast.AST
    ) -> bool:
        return any(
            isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef))
            and self._identity_function(anc.name)
            for anc in context.ancestors(node)
        )

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for call in _call_nodes(context):
            dotted = context.dotted_name(call.func)
            builtin = (
                isinstance(call.func, ast.Name)
                and call.func.id in ("id", "hash")
                and call.func.id not in context.imports
            )
            if dotted not in _NONDET_SOURCES and not builtin:
                continue
            if not self._inside_identity_def(context, call):
                continue
            name = dotted or f"builtin {call.func.id}"  # type: ignore[union-attr]
            detail = (
                "is salted per-process (PYTHONHASHSEED)"
                if builtin and call.func.id == "hash"  # type: ignore[union-attr]
                else "varies between runs/processes"
            )
            yield self.finding(
                context, call,
                f"{name}() {detail} and must not flow into an "
                "identity-producing function; derive identities from "
                "explicit, stable inputs",
            )


@register
class UnguardedKernelTelemetry(Rule):
    """T001 — telemetry in kernels must use the hoisted-guard pattern.

    The disabled-path contract of :mod:`repro.obs.telemetry` (pinned by
    ``benchmarks/bench_obs_overhead.py``) is one module-global read per
    guarded site::

        tel = active()
        if tel is not None:
            tel.count_many({...})

    In kernel modules (``sweep/batch_*.py``), the per-call convenience
    helpers (``obs.count`` / ``count_many`` / ``span``) and inline
    ``active().count(...)`` chains defeat that contract — each call
    pays a function call on the hot path even when telemetry is off.
    """

    code = "T001"
    summary = "unguarded telemetry call in a kernel module"

    def applies_to(self, path: str) -> bool:
        return is_kernel_module(path)

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for call in _call_nodes(context):
            dotted = context.dotted_name(call.func)
            if dotted in _TELEMETRY_CONVENIENCES:
                yield self.finding(
                    context, call,
                    f"kernel modules must not call {dotted}() per site; "
                    "hoist `tel = active()` once per invocation and "
                    "guard with `if tel is not None`",
                )
                continue
            if (
                isinstance(call.func, ast.Attribute)
                and call.func.attr in ("count", "count_many", "span")
                and isinstance(call.func.value, ast.Call)
                and context.dotted_name(call.func.value.func)
                in _TELEMETRY_ACTIVE
            ):
                yield self.finding(
                    context, call,
                    "inline active().%s(...) re-reads the telemetry "
                    "global per call; hoist `tel = active()` and guard "
                    "with `if tel is not None`" % call.func.attr,
                )
