"""The one currency every checker deals in: :class:`Finding`.

A finding pins a rule code to an exact ``path:line:col`` location with
a human-readable message.  Findings order by location then code, so
reports are deterministic whatever order rules ran in — the linter has
to clear its own D002 bar.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        """The classic compiler-style one-liner."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_dict(self) -> dict:
        """JSON-ready form (the ``--format json`` reporter payload)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }
