"""The lint engine: file discovery, rule dispatch, suppression.

``run_lint`` is the whole programmatic surface: resolve the requested
paths to a deterministic Python file list, parse each file once, run
every selected file rule that applies to it, partition raw findings
into failing vs pragma-suppressed, then run the repo-level I001
lockfile check (or regenerate the lock under ``update_lock=True``).
The CLI in :mod:`repro.lint.cli` is a thin argparse shell over this.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field

from repro.lint import lockfile as _lockfile
from repro.lint.findings import Finding
from repro.lint.pragmas import is_suppressed, suppressions
from repro.lint.rules import ModuleContext, all_rules, known_codes

#: Code attached to files the parser rejects; not a registered rule
#: (it cannot be selected away or suppressed — an unparseable file
#: can't be checked at all).
PARSE_ERROR_CODE = "E001"


@dataclass
class LintReport:
    """Everything one ``run_lint`` invocation produced."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    files: list[str] = field(default_factory=list)
    lock_path: str | None = None
    lock_written: bool = False

    @property
    def exit_code(self) -> int:
        """CLI convention: 1 when any non-suppressed finding remains."""
        return 1 if self.findings else 0


def iter_python_files(paths: list[str]) -> list[str]:
    """Expand files/directories into a sorted, de-duplicated .py list.

    Directory walks sort both subdirectories and filenames, so the
    schedule (and therefore report order) is identical across
    filesystems — the linter clears its own D002 bar.
    """
    found: set[str] = set()
    for path in paths:
        if os.path.isfile(path):
            found.add(os.path.normpath(path))
        elif os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames.sort()
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        found.add(os.path.normpath(os.path.join(dirpath, name)))
        else:
            raise FileNotFoundError(f"no such file or directory: {path!r}")
    return sorted(found)


def _select_codes(select: list[str] | None) -> frozenset[str]:
    known = known_codes() | {_lockfile._CODE}
    if select is None:
        return known
    requested = frozenset(select)
    unknown = requested - known
    if unknown:
        raise ValueError(
            f"unknown rule code(s) {sorted(unknown)}; known: {sorted(known)}"
        )
    return requested


def run_lint(
    paths: list[str],
    select: list[str] | None = None,
    lock_path: str | None = None,
    update_lock: bool = False,
) -> LintReport:
    """Lint ``paths`` and return a :class:`LintReport`.

    ``select`` restricts to the named rule codes (default: all);
    ``lock_path`` locates the I001 cache-identity lockfile (default:
    ``cache_identity.lock`` in the working directory); ``update_lock``
    regenerates that lock from the current identity surfaces instead
    of checking against it.
    """
    selected = _select_codes(select)
    if lock_path is None:
        lock_path = _lockfile.DEFAULT_LOCK_NAME
    report = LintReport(lock_path=lock_path)
    report.files = iter_python_files(paths)
    rules = [rule for rule in all_rules() if rule.code in selected]
    parsed: list[tuple[str, ast.Module]] = []
    for path in report.files:
        with open(path, encoding="utf-8") as handle:
            source = handle.read()
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            report.findings.append(
                Finding(
                    path=path,
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) + 1,
                    code=PARSE_ERROR_CODE,
                    message=f"cannot parse file: {exc.msg}",
                )
            )
            continue
        parsed.append((path, tree))
        context = ModuleContext(path, source, tree)
        pragma_table = suppressions(source)
        for rule in rules:
            if not rule.applies_to(path):
                continue
            for finding in rule.check(context):
                if is_suppressed(pragma_table, finding.line, finding.code):
                    report.suppressed.append(finding)
                else:
                    report.findings.append(finding)
    if _lockfile._CODE in selected:
        surfaces = _lockfile.project_surfaces(parsed, lock_path)
        if update_lock:
            _lockfile.write_lock(surfaces, lock_path)
            report.lock_written = True
        else:
            report.findings.extend(_lockfile.check_lock(surfaces, lock_path))
    report.findings.sort()
    report.suppressed.sort()
    return report
