"""``# repro: noqa[CODE]`` suppression pragmas.

A finding is suppressed by putting the pragma on the *physical line it
fires on* (typically as a trailing comment), naming the suppressed
code explicitly::

    names = os.listdir(path)  # repro: noqa[D002] sorted before use

Several codes may share one pragma (``# repro: noqa[D001,D002]``).
Blanket suppression — a bare ``noqa`` with no code list — is
deliberately *not* supported: every suppression names what it hides,
and the justification text after the bracket is where the "why"
belongs.  Suppressed findings still surface in reports (separately
from failing ones), so suppressions never rot invisibly.
"""

from __future__ import annotations

import re

_PRAGMA = re.compile(
    r"#\s*repro:\s*noqa\[\s*([A-Z]\d{3}(?:\s*,\s*[A-Z]\d{3})*)\s*\]"
)


def suppressions(source: str) -> dict[int, frozenset[str]]:
    """Map 1-based line numbers to the codes suppressed on that line."""
    table: dict[int, frozenset[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        if "repro" not in line:  # cheap pre-filter for the common case
            continue
        match = _PRAGMA.search(line)
        if match:
            codes = frozenset(
                code.strip() for code in match.group(1).split(",")
            )
            table[lineno] = codes
    return table


def is_suppressed(
    table: dict[int, frozenset[str]], line: int, code: str
) -> bool:
    """Whether ``code`` is pragma-suppressed on ``line``."""
    return code in table.get(line, frozenset())
