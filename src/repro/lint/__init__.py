"""``repro.lint``: determinism & cache-identity static analysis.

The repo stakes correctness on reproducibility in three load-bearing
places: SHA-256 cell identities gating the on-disk result cache,
bit-identical batch-vs-reference assertions, and the Brent fingerprint
pipeline whose packed-state hashing is only sound if state packing is
reproducible.  This package turns the invariants those depend on into
machine-checked rules over the stdlib :mod:`ast` — no third-party
dependencies, so it runs anywhere the repo does.

The rule catalogue (see :mod:`repro.lint.determinism` and
:mod:`repro.lint.lockfile` for the fine print):

* **D001** — unseeded randomness (legacy ``np.random.*`` globals, bare
  stdlib ``random.*``, ``default_rng()`` with no seed) outside
  test/benchmark fixtures;
* **D002** — nondeterministic ordering (iterating ``set`` /
  ``frozenset`` values, unsorted ``os.listdir`` / ``glob`` /
  ``Path.iterdir`` results) in ``sweep/`` and ``obs/`` modules, whose
  outputs feed hashes, chunk plans and manifest merges;
* **D003** — wall-clock / pid / ``id()`` / builtin-``hash()`` values
  inside identity-producing functions (``identity``, ``to_dict``,
  anything named ``*hash*`` / ``*digest*``);
* **T001** — telemetry calls in kernel modules (``sweep/batch_*.py``)
  must sit behind the one-module-global-read ``active()`` guard;
* **I001** — cache-identity drift: the checked-in
  ``cache_identity.lock`` manifest records the exact field sets behind
  every schema-versioned identity; changing them without a version
  bump (or without regenerating the lock via ``--update-lock``) fails.

Findings are suppressed line-by-line with ``# repro: noqa[CODE]``
pragmas (a justification comment is expected next to each one).  The
CLI surface is ``python -m repro lint [PATHS] [--format text|json]
[--select CODES] [--update-lock]``.
"""

from repro.lint.engine import LintReport, iter_python_files, run_lint
from repro.lint.findings import Finding
from repro.lint.lockfile import (
    DEFAULT_LOCK_NAME,
    LOCK_SCHEMA_VERSION,
    read_lock,
    write_lock,
)
from repro.lint.reporters import render_json, render_text
from repro.lint.rules import all_rules, get_rule

__all__ = [
    "DEFAULT_LOCK_NAME",
    "Finding",
    "LOCK_SCHEMA_VERSION",
    "LintReport",
    "all_rules",
    "get_rule",
    "iter_python_files",
    "read_lock",
    "render_json",
    "render_text",
    "run_lint",
    "write_lock",
]
