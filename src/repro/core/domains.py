"""Agent domains on the ring (paper §2.2, Lemmas 4-12, Figure 1).

When k agents run on the ring, the visited nodes partition into
*domains*: the domain of an agent is the sub-path of nodes it was the
last to visit.  Formally the paper defines, for a visited node ``v``
not holding an agent, ``o(v, t)`` as the first node containing an agent
in the direction *opposite* to the pointer at ``v``; nodes sharing an
``o``-value form the domain of the agent at ``o(v, t)`` (Lemma 4).

The *lazy* domain ``V'_a(t)`` keeps only nodes whose last visit was by
a single agent and was a *propagation* (the agent moved on, instead of
reflecting back where it came from) — Definition 1.  Lazy domains are
insensitive to the +/-1 oscillation of borders and are the objects
whose sizes the paper proves converge (Lemma 12).

This module provides:

* :class:`VisitTypeTracker` — classifies every visit as propagation /
  reflection / multi-agent, online, in O(k) per round;
* :func:`domain_snapshot` — the exact domain/lazy-domain partition of a
  configuration (O(n));
* :func:`classify_borders` — vertex-type vs edge-type borders between
  adjacent lazy domains (Figure 1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.ring import RingRotorRouter


class VisitKind(enum.IntEnum):
    """Classification of the most recent visit to a node."""

    NEVER = 0          # node not visited yet (dummy domain V_bot)
    INITIAL = 1        # occupied at round 0 and not revisited since
    PROPAGATION = 2    # single agent arrived and will continue onward
    REFLECTION = 3     # single agent arrived and will bounce back
    MULTIPLE = 4       # two+ agents arrived (or arrival met a held agent)


class DomainError(RuntimeError):
    """Raised when domains are not well defined (3+ agents on a node)."""


@dataclass(frozen=True)
class Domain:
    """One agent domain: a contiguous arc of the ring.

    ``start`` is the first node of the arc walking clockwise and
    ``length`` its node count, so the arc is ``start, start+1, ...,
    start+length-1`` (mod n).  ``anchor`` is the agent node that owns
    the domain (the shared ``o``-value).  The lazy sub-arc is given by
    ``lazy_start``/``lazy_length`` (``lazy_length == 0`` when empty).
    """

    anchor: int
    start: int
    length: int
    lazy_start: int
    lazy_length: int

    def nodes(self, n: int) -> list[int]:
        return [(self.start + i) % n for i in range(self.length)]

    def lazy_nodes(self, n: int) -> list[int]:
        return [(self.lazy_start + i) % n for i in range(self.lazy_length)]

    def contains(self, n: int, v: int) -> bool:
        return (v - self.start) % n < self.length


@dataclass(frozen=True)
class DomainSnapshot:
    """The full domain partition of a configuration at one round."""

    round: int
    n: int
    domains: tuple[Domain, ...]   # in clockwise ring order
    unvisited: tuple[int, ...]    # the dummy domain V_bot

    def sizes(self) -> list[int]:
        return [d.length for d in self.domains]

    def lazy_sizes(self) -> list[int]:
        return [d.lazy_length for d in self.domains]

    def max_adjacent_lazy_difference(self) -> int:
        """Largest |size difference| between cyclically adjacent lazy
        domains — the quantity Lemma 12 proves converges to <= 10.

        Only meaningful once the ring is covered (no dummy domain
        separating the extremes)."""
        sizes = self.lazy_sizes()
        if len(sizes) < 2:
            return 0
        return max(
            abs(sizes[i] - sizes[(i + 1) % len(sizes)])
            for i in range(len(sizes))
        )


class VisitTypeTracker:
    """Online propagation/reflection classification for a ring engine.

    Drive the engine through :meth:`advance` (or call :meth:`observe`
    with the moves of every externally-performed step) and the tracker
    maintains, per node, the :class:`VisitKind` of its most recent
    visit plus the round it happened in.

    Classification rule: a visit is the arrival of agents at a node.
    If exactly one agent arrived at ``dst`` (and no held agent sat
    there), the agent's next exit leaves along the current pointer, so
    the visit is a PROPAGATION iff the pointer at ``dst`` now equals the
    agent's direction of travel; otherwise it is a REFLECTION.  Visits
    by two agents at once are MULTIPLE (not lazy-eligible).
    """

    def __init__(self, engine: RingRotorRouter) -> None:
        self.engine = engine
        n = engine.n
        self.kinds = [VisitKind.NEVER] * n
        self.last_visit_round = [-1] * n
        for v in engine.counts:
            self.kinds[v] = VisitKind.INITIAL
            self.last_visit_round[v] = engine.round

    def advance(self, holds: Mapping[int, int] | None = None) -> list:
        """Step the engine one round and classify the arrivals."""
        moves = self.engine.step(holds)
        self.observe(moves)
        return moves

    def run(self, rounds: int) -> None:
        for _ in range(rounds):
            self.advance()

    def observe(self, moves: Sequence[tuple[int, int, int]]) -> None:
        """Classify the arrivals of one already-performed round."""
        engine = self.engine
        n = engine.n
        arrivals: dict[int, tuple[int, int]] = {}
        for src, dst, cnt in moves:
            total, _ = arrivals.get(dst, (0, src))
            arrivals[dst] = (total + cnt, src)
        for dst, (total, src) in arrivals.items():
            if total == 1 and engine.counts.get(dst, 0) == 1:
                direction = 1 if (dst - src) % n == 1 else -1
                if engine.ptr[dst] == direction:
                    kind = VisitKind.PROPAGATION
                else:
                    kind = VisitKind.REFLECTION
            else:
                kind = VisitKind.MULTIPLE
            self.kinds[dst] = kind
            self.last_visit_round[dst] = engine.round


def _nearest_occupied(
    n: int, occupied: set[int]
) -> tuple[list[int], list[int]]:
    """For every node, the nearest occupied node clockwise/anticlockwise.

    A node containing an agent is its own nearest in both directions.
    Two sweeps in each direction handle the cyclic wrap-around.
    """
    nearest_cw = [-1] * n
    current = -1
    for v in range(2 * n - 1, -1, -1):
        idx = v % n
        if idx in occupied:
            current = idx
        nearest_cw[idx] = current
    nearest_acw = [-1] * n
    current = -1
    for v in range(2 * n):
        idx = v % n
        if idx in occupied:
            current = idx
        nearest_acw[idx] = current
    return nearest_cw, nearest_acw


def o_values(engine: RingRotorRouter) -> list[int | None]:
    """The paper's ``o(v, t)`` map for the current configuration.

    ``None`` encodes the undefined value (unvisited node).  An occupied
    node maps to itself; any other visited node maps to the first
    occupied node in the direction opposite to its pointer.
    """
    n = engine.n
    occupied = set(engine.counts)
    if not occupied:
        raise DomainError("no agents on the ring")
    nearest_cw, nearest_acw = _nearest_occupied(n, occupied)
    result: list[int | None] = [None] * n
    for v in range(n):
        if v in occupied:
            result[v] = v
        elif engine.visited[v]:
            # Opposite direction to the pointer: ptr -1 -> clockwise scan.
            result[v] = nearest_cw[v] if engine.ptr[v] == -1 else nearest_acw[v]
    return result


def _lazy_run(
    n: int,
    arc_start: int,
    arc_length: int,
    kinds: Sequence[VisitKind],
) -> tuple[int, int]:
    """Longest run of PROPAGATION nodes inside the arc.

    Lemma 6 guarantees the lazy nodes of a domain form a single run
    (up to endpoints); taking the longest run makes the computation
    total even mid-transient.  Returns ``(start, length)`` with length
    0 when the domain has no propagation-visited node.
    """
    best_start, best_length = arc_start, 0
    run_start, run_length = arc_start, 0
    for i in range(arc_length):
        v = (arc_start + i) % n
        if kinds[v] == VisitKind.PROPAGATION:
            if run_length == 0:
                run_start = v
            run_length += 1
            if run_length > best_length:
                best_start, best_length = run_start, run_length
        else:
            run_length = 0
    return best_start, best_length


def domain_snapshot(
    engine: RingRotorRouter,
    tracker: VisitTypeTracker | None = None,
) -> DomainSnapshot:
    """Compute the exact domain partition of the current configuration.

    Requires at most 2 agents per node (Lemma 5 guarantees this is
    preserved once true); raises :class:`DomainError` otherwise.  When
    ``tracker`` is omitted, lazy domains are reported as empty.
    """
    n = engine.n
    for v, c in engine.counts.items():
        if c > 2:
            raise DomainError(
                f"{c} agents at node {v}: domains are undefined (Lemma 5)"
            )
    omap = o_values(engine)
    kinds = tracker.kinds if tracker is not None else [VisitKind.NEVER] * n

    unvisited = tuple(v for v in range(n) if omap[v] is None)
    domains: list[Domain] = []
    for anchor in sorted(engine.counts):
        # Expand the arc {v : o(v) = anchor} around the anchor.  The arc
        # is contiguous (Lemma 4 / Lemma 6), so expansion terminates at
        # the first node with a different o-value in each direction.
        left = anchor
        steps = 0
        while steps < n - 1:
            candidate = (left - 1) % n
            if omap[candidate] == anchor and candidate != anchor:
                left = candidate
                steps += 1
            else:
                break
        right = anchor
        steps = 0
        while steps < n - 1:
            candidate = (right + 1) % n
            if omap[candidate] == anchor and candidate != anchor:
                right = candidate
                steps += 1
            else:
                break
        arc_start = left
        arc_length = (right - left) % n + 1

        if engine.counts[anchor] == 2:
            # Two agents share the anchor: split the arc at the anchor.
            # With the pointer clockwise, the anchor joins the
            # anticlockwise part (paper §2.2); mirrored otherwise.
            acw_len = (anchor - left) % n  # nodes strictly left of anchor
            cw_len = (right - anchor) % n  # nodes strictly right of anchor
            if engine.ptr[anchor] == 1:
                first = (left, acw_len + 1)   # includes the anchor
                second = ((anchor + 1) % n, cw_len)
            else:
                first = (left, acw_len)
                second = (anchor, cw_len + 1)  # includes the anchor
            for part_start, part_length in (first, second):
                lazy_start, lazy_length = _lazy_run(
                    n, part_start, part_length, kinds
                )
                domains.append(
                    Domain(
                        anchor=anchor,
                        start=part_start,
                        length=part_length,
                        lazy_start=lazy_start,
                        lazy_length=lazy_length,
                    )
                )
        else:
            lazy_start, lazy_length = _lazy_run(n, arc_start, arc_length, kinds)
            domains.append(
                Domain(
                    anchor=anchor,
                    start=arc_start,
                    length=arc_length,
                    lazy_start=lazy_start,
                    lazy_length=lazy_length,
                )
            )

    domains.sort(key=lambda d: d.start)
    return DomainSnapshot(
        round=engine.round,
        n=n,
        domains=tuple(domains),
        unvisited=unvisited,
    )


class BorderType(enum.Enum):
    """Border shapes between adjacent lazy domains (paper Figure 1)."""

    VERTEX = "vertex"     # one vertex separates the two lazy arcs
    EDGE = "edge"         # the lazy arcs are adjacent (swap on the edge)
    TRANSIENT = "transient"  # wider gap: an edge traversed for the first
    # time in the last step or so (paper: "only in one special case")


def classify_borders(snapshot: DomainSnapshot) -> list[BorderType]:
    """Classify the border between each pair of adjacent lazy domains.

    Returns one entry per adjacent pair (cyclically) of *nonempty* lazy
    domains with no unvisited nodes between them.  Matches Figure 1:
    gap 1 -> vertex-type, gap 0 -> edge-type, anything else transient.
    """
    n = snapshot.n
    lazy = [d for d in snapshot.domains if d.lazy_length > 0]
    if len(lazy) < 2:
        return []
    unvisited = set(snapshot.unvisited)
    borders: list[BorderType] = []
    for i, dom in enumerate(lazy):
        nxt = lazy[(i + 1) % len(lazy)]
        if nxt is dom:
            break
        end = (dom.lazy_start + dom.lazy_length - 1) % n
        gap = (nxt.lazy_start - end) % n - 1
        between = [(end + 1 + j) % n for j in range(max(gap, 0))]
        if any(v in unvisited for v in between):
            continue  # border with the dummy domain, not an agent border
        if gap == 1:
            borders.append(BorderType.VERTEX)
        elif gap == 0:
            borders.append(BorderType.EDGE)
        else:
            borders.append(BorderType.TRANSIENT)
    return borders
