"""Agent placements studied in the paper.

The cover time of the k-agent rotor-router on the ring ranges over a
quadratic-to-logarithmic spectrum *purely as a function of the initial
placement* (Table 1):

* :func:`all_on_one` — the worst case (Theorems 1-2): Θ(n²/log k);
* :func:`equally_spaced` — the best case (Theorems 3-4): Θ(n²/k²);
* :func:`random_nodes` — the averaged case;
* :func:`clustered` / :func:`half_ring` — intermediate adversarial
  placements used in stress tests and examples.
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import make_rng


def all_on_one(k: int, node: int = 0) -> list[int]:
    """All ``k`` agents stacked on one node (worst case, Theorem 1)."""
    if k < 1:
        raise ValueError(f"k must be at least 1, got {k}")
    if node < 0:
        raise ValueError(f"node must be non-negative, got {node}")
    return [node] * k


def equally_spaced(n: int, k: int, offset: int = 0) -> list[int]:
    """``k`` agents at (approximately) even spacing on ``n`` nodes.

    Positions are ``offset + floor(i * n / k)``; when ``k`` divides
    ``n`` this is the exact equal spacing of Theorem 3 / Lemma 16.
    """
    _check_n_k(n, k)
    return [(offset + (i * n) // k) % n for i in range(k)]


def random_nodes(
    n: int,
    k: int,
    seed: int | np.random.Generator | None = 0,
    distinct: bool = False,
) -> list[int]:
    """``k`` independent uniform starting nodes (with repetition unless
    ``distinct`` is set, in which case ``k <= n`` is required)."""
    _check_n_k(n, k, allow_k_above_n=not distinct)
    rng = make_rng(seed)
    if distinct:
        return sorted(int(v) for v in rng.choice(n, size=k, replace=False))
    return sorted(int(v) for v in rng.integers(0, n, size=k))


def clustered(
    n: int,
    k: int,
    clusters: int,
    seed: int | np.random.Generator | None = 0,
) -> list[int]:
    """Agents split evenly over ``clusters`` random distinct nodes.

    Interpolates between :func:`all_on_one` (clusters=1) and a spread
    placement (clusters=k).
    """
    _check_n_k(n, k)
    if not 1 <= clusters <= k:
        raise ValueError(f"clusters must be in [1, {k}], got {clusters}")
    if clusters > n:
        raise ValueError(f"cannot place {clusters} clusters on {n} nodes")
    rng = make_rng(seed)
    centers = sorted(int(v) for v in rng.choice(n, size=clusters, replace=False))
    placement = []
    for i in range(k):
        placement.append(centers[i % clusters])
    return sorted(placement)


def half_ring(n: int, k: int) -> list[int]:
    """``k`` agents equally spaced on one half of the ring.

    Leaves an agent-free arc of ~n/2 nodes: an intermediate adversarial
    placement whose cover time sits between the Table 1 extremes.
    """
    _check_n_k(n, k)
    half = max(1, n // 2)
    return sorted((i * half) // k for i in range(k))


def _check_n_k(n: int, k: int, allow_k_above_n: bool = True) -> None:
    if n < 1:
        raise ValueError(f"n must be positive, got {n}")
    if k < 1:
        raise ValueError(f"k must be at least 1, got {k}")
    if not allow_k_above_n and k > n:
        raise ValueError(f"k={k} exceeds n={n} with distinct placement")


def paper_regime_ok(n: int, k: int) -> bool:
    """Whether (n, k) is inside the paper's analysis regime k < n^(1/11).

    Experiments often run outside it (the follow-up paper [21] extends
    the bounds to all k); this predicate lets reports annotate which
    rows are in-regime.
    """
    return 1 <= k and k ** 11 < n
