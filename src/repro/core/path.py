"""Path-specialized multi-agent rotor-router engine.

The Theorem 1 analysis reduces the ring with all agents on one node to
a *path* with half the agents at one endpoint (the configuration stays
mirror-symmetric), and the Phase A/B1/B2 delayed deployment of the
proof — reproduced in :mod:`repro.experiments.deployments` — runs on
the path.  This engine is the O(k)-per-round path counterpart of
:class:`repro.core.ring.RingRotorRouter`:

* interior nodes behave exactly like ring nodes (pointer = direction,
  flip on odd exits);
* endpoint nodes have a single port, so every agent leaves through it
  and the pointer (trivially) never changes.

Pointers are +1 (toward ``v+1``) / -1 (toward ``v-1``); the values at
the endpoints are forced (+1 at node 0, -1 at node n-1).  Equivalence
with the general engine on :func:`repro.graphs.families.path_graph` is
property-tested.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

Move = tuple[int, int, int]


class PathRotorRouter:
    """k-agent rotor-router on the n-node path 0-1-...-(n-1)."""

    def __init__(
        self,
        n: int,
        pointers: Sequence[int],
        agents: Iterable[int],
        track_counts: bool = True,
    ) -> None:
        if n < 2:
            raise ValueError(f"path requires n >= 2, got {n}")
        if len(pointers) != n:
            raise ValueError(
                f"pointers has length {len(pointers)}, path has {n} nodes"
            )
        self.n = n
        self.ptr: list[int] = []
        for v, d in enumerate(pointers):
            if d not in (1, -1):
                raise ValueError(
                    f"pointer at node {v} must be +1 or -1, got {d!r}"
                )
            self.ptr.append(int(d))
        self.ptr[0] = 1
        self.ptr[n - 1] = -1

        self.counts: dict[int, int] = {}
        agent_list = [int(a) for a in agents]
        if not agent_list:
            raise ValueError("at least one agent is required")
        for a in agent_list:
            if not 0 <= a < n:
                raise ValueError(f"agent position {a} out of range")
            self.counts[a] = self.counts.get(a, 0) + 1
        self.num_agents = len(agent_list)

        self.round = 0
        self.visited = bytearray(n)
        for v in self.counts:
            self.visited[v] = 1
        self.unvisited = n - len(self.counts)
        self.cover_round: int | None = 0 if self.unvisited == 0 else None

        self.track_counts = bool(track_counts)
        self.visit_counts: np.ndarray | None = None
        self.exit_counts: np.ndarray | None = None
        if self.track_counts:
            self.visit_counts = np.zeros(n, dtype=np.int64)
            for v, c in self.counts.items():
                self.visit_counts[v] = c
            self.exit_counts = np.zeros(n, dtype=np.int64)

    def step(self, holds: Mapping[int, int] | None = None) -> list[Move]:
        """One synchronous round; returns aggregated (src, dst, count)."""
        n = self.n
        ptr = self.ptr
        if holds is not None:
            # Validate up front so a bad holds mapping cannot leave the
            # engine half-stepped.
            for v, h in holds.items():
                if h < 0:
                    raise ValueError(f"negative hold {h} at node {v}")
                present = self.counts.get(v, 0)
                if h > present:
                    raise ValueError(
                        f"cannot hold {h} agents at node {v}: "
                        f"only {present} present"
                    )
        moves: list[Move] = []
        new_counts: dict[int, int] = {}
        for v, c in self.counts.items():
            held = 0 if holds is None else int(holds.get(v, 0))
            release = c - held
            if held:
                new_counts[v] = new_counts.get(v, 0) + held
            if release == 0:
                continue
            if v == 0 or v == n - 1:
                # Degree-1 endpoint: everyone leaves through the one arc.
                moves.append((v, v + ptr[v], release))
            else:
                d = ptr[v]
                via_pointer = (release + 1) // 2
                moves.append((v, v + d, via_pointer))
                via_other = release - via_pointer
                if via_other:
                    moves.append((v, v - d, via_other))
                if release & 1:
                    ptr[v] = -d
            if self.exit_counts is not None:
                self.exit_counts[v] += release
        visited = self.visited
        for _, dst, cnt in moves:
            new_counts[dst] = new_counts.get(dst, 0) + cnt
            if self.visit_counts is not None:
                self.visit_counts[dst] += cnt
            if not visited[dst]:
                visited[dst] = 1
                self.unvisited -= 1
        self.counts = new_counts
        self.round += 1
        if self.unvisited == 0 and self.cover_round is None:
            self.cover_round = self.round
        return moves

    def run(self, rounds: int) -> None:
        if rounds < 0:
            raise ValueError(f"rounds must be non-negative, got {rounds}")
        for _ in range(rounds):
            self.step()

    def run_until_covered(self, max_rounds: int | None = None) -> int:
        while self.cover_round is None:
            if max_rounds is not None and self.round >= max_rounds:
                raise RuntimeError(
                    f"not covered within {max_rounds} rounds "
                    f"({self.unvisited} nodes unvisited)"
                )
            self.step()
        return self.cover_round

    # ------------------------------------------------------------------
    def positions(self) -> list[int]:
        result: list[int] = []
        for v in sorted(self.counts):
            result.extend([v] * self.counts[v])
        return result

    def pointer_array(self) -> np.ndarray:
        return np.asarray(self.ptr, dtype=np.int8)

    def state_key(self) -> bytes:
        occupancy = ",".join(
            f"{v}:{self.counts[v]}" for v in sorted(self.counts)
        )
        return self.pointer_array().tobytes() + occupancy.encode("ascii")

    def clone(self) -> "PathRotorRouter":
        twin = PathRotorRouter(
            self.n, list(self.ptr), self.positions(),
            track_counts=self.track_counts,
        )
        twin.round = self.round
        twin.visited = bytearray(self.visited)
        twin.unvisited = self.unvisited
        twin.cover_round = self.cover_round
        return twin

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PathRotorRouter(n={self.n}, k={self.num_agents}, "
            f"round={self.round})"
        )
