"""The multi-agent rotor-router: engines, deployments, domain analysis.

This package implements the paper's primary contribution:

* :mod:`repro.core.engine` — the reference engine on arbitrary
  port-labeled graphs (paper §1.3 model definition);
* :mod:`repro.core.ring` — a ring-specialized engine with O(k)-per-round
  stepping, exactly equivalent to the reference engine;
* :mod:`repro.core.pointers` / :mod:`repro.core.placement` — adversarial
  and benign initializations (pointer arrangements, agent placements);
* :mod:`repro.core.delayed` — delayed deployments and the slow-down
  lemma machinery (paper §2.1, Lemmas 1-3);
* :mod:`repro.core.domains` — agent domains, lazy domains, border
  classification on the ring (paper §2.2, Lemmas 4-12, Figure 1);
* :mod:`repro.core.limit` — limit-cycle detection, return times
  (paper §4) and Eulerian lock-in for the single agent.
"""

from repro.core.engine import MultiAgentRotorRouter
from repro.core.ring import RingRotorRouter
from repro.core import placement, pointers

__all__ = [
    "MultiAgentRotorRouter",
    "RingRotorRouter",
    "placement",
    "pointers",
]
