"""Delayed deployments and the slow-down lemma (paper §2.1).

A delayed deployment ``D : V x N -> N`` stops ``D(v, t)`` agents at node
``v`` in round ``t``.  The paper's three structural lemmas about them
are all *executable* here and verified by the test suite:

* **Lemma 1** (monotonicity): delaying more agents never increases any
  visit counter ``n_v(t)``.
* **Lemma 2** (sandwich): if ``tau`` of the first ``T`` rounds were
  fully active, then ``n^{R[k]}_v(tau) <= n^D_v(T) <= n^{R[k]}_v(T)``.
* **Lemma 3** (slow-down lemma): if a delayed deployment covers in
  ``T`` rounds with ``tau`` fully-active rounds, the undelayed cover
  time satisfies ``tau <= C(R[k]) <= T``.

Deployments are represented as *schedules*: callables receiving the
engine before each round and returning the holds mapping for that
round.  :func:`run_with_schedule` runs a schedule while accounting for
fully-active rounds, giving the Lemma 3 sandwich for free.  The module
also provides the single-agent release primitives from which the
Theorem 1/3/4 constructions are assembled in
:mod:`repro.experiments`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Protocol

Holds = Mapping[int, int]


class RotorEngine(Protocol):
    """Minimal engine interface the deployment machinery relies on."""

    round: int
    unvisited: int
    cover_round: int | None
    counts: object  # dict[int, int] (ring) or ndarray (general)

    def step(self, holds: Holds | None = None) -> list:  # pragma: no cover
        ...


Schedule = Callable[[RotorEngine], Holds | None]
"""Per-round delay policy: engine -> holds mapping (None = no delays)."""


@dataclass(frozen=True)
class DelayedRunResult:
    """Outcome of running a schedule (inputs to Lemma 3).

    Attributes
    ----------
    total_rounds:
        ``T`` — rounds executed (from the engine's starting round).
    fully_active_rounds:
        ``tau`` — rounds in which no agent was held.
    cover_round:
        Round at which the deployment covered the graph (None if the
        stop condition fired first).
    """

    total_rounds: int
    fully_active_rounds: int
    cover_round: int | None

    def slow_down_bounds(self) -> tuple[int, int]:
        """Lemma 3: bounds ``(tau, T)`` on the undelayed cover time.

        Only meaningful when the delayed run covered the graph.
        """
        if self.cover_round is None:
            raise ValueError("deployment did not cover the graph")
        return self.fully_active_rounds, self.total_rounds


def agent_count_at(engine: RotorEngine, node: int) -> int:
    """Number of agents currently at ``node`` (engine-agnostic)."""
    counts = engine.counts
    if isinstance(counts, dict):
        return int(counts.get(node, 0))
    return int(counts[node])


def occupied_nodes(engine: RotorEngine) -> list[int]:
    """Sorted nodes currently holding at least one agent."""
    counts = engine.counts
    if isinstance(counts, dict):
        return sorted(v for v, c in counts.items() if c > 0)
    import numpy as np

    return [int(v) for v in np.flatnonzero(counts)]


def hold_everything(engine: RotorEngine) -> dict[int, int]:
    """Holds mapping freezing every agent in place."""
    counts = engine.counts
    if isinstance(counts, dict):
        return {v: c for v, c in counts.items() if c > 0}
    return {v: agent_count_at(engine, v) for v in occupied_nodes(engine)}


def hold_all_except_one_at(engine: RotorEngine, node: int) -> dict[int, int]:
    """Holds mapping releasing exactly one agent, located at ``node``."""
    holds = hold_everything(engine)
    present = holds.get(node, 0)
    if present <= 0:
        raise ValueError(f"no agent to release at node {node}")
    if present == 1:
        del holds[node]
    else:
        holds[node] = present - 1
    return holds


def run_with_schedule(
    engine: RotorEngine,
    schedule: Schedule | None,
    max_rounds: int,
    stop_when_covered: bool = True,
) -> DelayedRunResult:
    """Run ``engine`` under ``schedule`` for at most ``max_rounds``.

    Counts fully-active rounds so the result yields the Lemma 3
    sandwich.  A ``None`` schedule (or a schedule returning falsy holds)
    runs the plain undelayed system.
    """
    if max_rounds < 0:
        raise ValueError(f"max_rounds must be non-negative, got {max_rounds}")
    start_round = engine.round
    fully_active = 0
    while engine.round - start_round < max_rounds:
        if stop_when_covered and engine.unvisited == 0:
            break
        holds = schedule(engine) if schedule is not None else None
        if holds:
            total_held = sum(holds.values())
        else:
            total_held = 0
            holds = None
        engine.step(holds)
        if total_held == 0:
            fully_active += 1
    return DelayedRunResult(
        total_rounds=engine.round - start_round,
        fully_active_rounds=fully_active,
        cover_round=engine.cover_round,
    )


def move_lone_agent(engine: RotorEngine, node: int) -> int:
    """Release exactly one agent from ``node`` for one round.

    Every other agent is held.  Returns the released agent's new
    location.  This is the primitive with which the paper's
    release-one-by-one constructions (Theorem 1 Phase A/B2, Theorem 3,
    Theorem 4) are expressed.
    """
    holds = hold_all_except_one_at(engine, node)
    moves = engine.step(holds)
    released = [(src, dst, cnt) for src, dst, cnt in moves if src == node]
    if len(released) != 1 or released[0][2] != 1:
        raise AssertionError(
            f"expected a single released agent from {node}, got {moves}"
        )
    return released[0][1]


def walk_lone_agent(
    engine: RotorEngine,
    start: int,
    should_stop: Callable[[int, int], bool],
    max_rounds: int,
) -> int:
    """Walk a single released agent until ``should_stop(position, steps)``.

    The predicate is evaluated after every move; the walk starts at
    ``start`` (which must hold an agent).  Returns the final position.
    Raises ``RuntimeError`` if the budget is exhausted, so malformed
    constructions fail loudly instead of spinning.
    """
    position = start
    for steps_taken in range(1, max_rounds + 1):
        position = move_lone_agent(engine, position)
        if should_stop(position, steps_taken):
            return position
    raise RuntimeError(
        f"lone agent did not reach its stop condition within {max_rounds} rounds"
    )


def delay_table_schedule(table: Mapping[int, Holds]) -> Schedule:
    """Schedule from an explicit table ``{round: {node: held}}``.

    Rounds absent from the table are fully active — the direct encoding
    of a ``D(v, t)`` function with finite support.
    """

    def schedule(engine: RotorEngine) -> Holds | None:
        return table.get(engine.round)

    return schedule


def compose_phases(
    *phases: tuple[Schedule | None, Callable[[RotorEngine], bool]],
) -> Schedule:
    """Chain schedules, switching when each phase's ``done`` fires.

    Each phase is ``(schedule, done)``; once ``done(engine)`` is true the
    next phase takes over (evaluated left to right each round, so phases
    complete in order).  Used to express multi-phase constructions such
    as Theorem 1's Phase A / B1 / B2 loop in a readable way.
    """
    if not phases:
        raise ValueError("at least one phase is required")

    def schedule(engine: RotorEngine) -> Holds | None:
        for phase_schedule, done in phases:
            if not done(engine):
                return (
                    phase_schedule(engine)
                    if phase_schedule is not None
                    else None
                )
        return None

    return schedule
