"""Ring-specialized multi-agent rotor-router engine.

On the n-node ring every node has exactly two ports, so a pointer is a
direction: ``+1`` (clockwise, toward ``v+1``) or ``-1`` (anticlockwise,
toward ``v-1``), matching the port convention of
:func:`repro.graphs.ring.ring_graph` (port 0 = clockwise).  With ``c``
agents on a node, ``ceil(c/2)`` leave along the pointer, ``floor(c/2)``
along the other arc, and the pointer flips iff ``c`` is odd — exactly
the round-robin rule of the general engine.

The engine keeps the occupied nodes in a dict, so a round costs O(k)
rather than O(n); ``run_until_covered`` additionally inlines the hot
loop.  Equivalence with :class:`repro.core.engine.MultiAgentRotorRouter`
on :func:`ring_graph` is enforced by property-based tests
(``tests/test_engine_equivalence.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

Move = tuple[int, int, int]
"""One aggregated agent movement: ``(source, destination, agent_count)``."""


@dataclass(frozen=True)
class RingState:
    """Immutable snapshot of a :class:`RingRotorRouter` configuration."""

    round: int
    pointers: bytes  # int8 array of +1/-1
    occupancy: tuple[tuple[int, int], ...]  # sorted (node, count) pairs
    visited: bytes
    unvisited: int
    cover_round: int | None

    @property
    def key(self) -> bytes:
        flat = ",".join(f"{v}:{c}" for v, c in self.occupancy)
        return self.pointers + flat.encode("ascii")


class RingRotorRouter:
    """k-agent rotor-router on the n-node ring (paper's main object).

    Parameters
    ----------
    n:
        Ring size (>= 3).
    pointers:
        Initial pointer directions, one ``+1``/``-1`` per node; see
        :mod:`repro.core.pointers` for the initializations used in the
        paper (negative, toward-a-node, random, ...).
    agents:
        Iterable of starting nodes (with multiplicity).
    track_counts:
        Maintain per-node visit/exit counters (``n_v(t)``/``e_v(t)``)
        needed by the delayed-deployment lemmas; the fast cover loop is
        only available when this is off or accepts the step-loop cost.
    """

    def __init__(
        self,
        n: int,
        pointers: Sequence[int],
        agents: Iterable[int],
        track_counts: bool = True,
    ) -> None:
        if n < 3:
            raise ValueError(f"ring requires n >= 3, got {n}")
        if len(pointers) != n:
            raise ValueError(
                f"pointers has length {len(pointers)}, ring has {n} nodes"
            )
        self.n = n
        self.ptr: list[int] = []
        for v, d in enumerate(pointers):
            if d not in (1, -1):
                raise ValueError(
                    f"pointer at node {v} must be +1 or -1, got {d!r}"
                )
            self.ptr.append(int(d))

        self.counts: dict[int, int] = {}
        agent_list = [int(a) for a in agents]
        if not agent_list:
            raise ValueError("at least one agent is required")
        for a in agent_list:
            if not 0 <= a < n:
                raise ValueError(f"agent position {a} out of range")
            self.counts[a] = self.counts.get(a, 0) + 1
        self.num_agents = len(agent_list)

        self.round = 0
        self.visited = bytearray(n)
        for v in self.counts:
            self.visited[v] = 1
        self.unvisited = n - len(self.counts)
        self.cover_round: int | None = 0 if self.unvisited == 0 else None

        self.track_counts = bool(track_counts)
        self.visit_counts: np.ndarray | None = None
        self.exit_counts: np.ndarray | None = None
        if self.track_counts:
            self.visit_counts = np.zeros(n, dtype=np.int64)
            for v, c in self.counts.items():
                self.visit_counts[v] = c
            self.exit_counts = np.zeros(n, dtype=np.int64)

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------
    def step(self, holds: Mapping[int, int] | None = None) -> list[Move]:
        """Advance one synchronous round; return aggregated moves.

        ``holds[v]`` agents are delayed at ``v`` this round (paper §2.1).
        """
        n = self.n
        ptr = self.ptr
        if holds is not None:
            # Validate up front so a bad holds mapping cannot leave the
            # engine half-stepped.
            for v, h in holds.items():
                if h < 0:
                    raise ValueError(f"negative hold {h} at node {v}")
                present = self.counts.get(v, 0)
                if h > present:
                    raise ValueError(
                        f"cannot hold {h} agents at node {v}: "
                        f"only {present} present"
                    )
        moves: list[Move] = []
        new_counts: dict[int, int] = {}
        for v, c in self.counts.items():
            held = 0 if holds is None else int(holds.get(v, 0))
            release = c - held
            if held:
                new_counts[v] = new_counts.get(v, 0) + held
            if release == 0:
                continue
            d = ptr[v]
            via_pointer = (release + 1) // 2
            moves.append((v, (v + d) % n, via_pointer))
            via_other = release - via_pointer
            if via_other:
                moves.append((v, (v - d) % n, via_other))
            if release & 1:
                ptr[v] = -d
            if self.exit_counts is not None:
                self.exit_counts[v] += release
        visited = self.visited
        for _, dst, cnt in moves:
            new_counts[dst] = new_counts.get(dst, 0) + cnt
            if self.visit_counts is not None:
                self.visit_counts[dst] += cnt
            if not visited[dst]:
                visited[dst] = 1
                self.unvisited -= 1
        self.counts = new_counts
        self.round += 1
        if self.unvisited == 0 and self.cover_round is None:
            self.cover_round = self.round
        return moves

    def run(self, rounds: int) -> None:
        """Advance ``rounds`` undelayed rounds."""
        if rounds < 0:
            raise ValueError(f"rounds must be non-negative, got {rounds}")
        for _ in range(rounds):
            self.step()

    def run_until_covered(self, max_rounds: int | None = None) -> int:
        """Run undelayed until covered; returns the cover time.

        When per-node counters are disabled this uses an inlined loop
        that avoids building move lists, which is what makes the
        Table 1 sweeps practical (O(k) python operations per round).
        """
        if self.cover_round is not None:
            return self.cover_round
        if self.track_counts:
            while self.cover_round is None:
                if max_rounds is not None and self.round >= max_rounds:
                    raise RuntimeError(
                        f"not covered within {max_rounds} rounds "
                        f"({self.unvisited} nodes unvisited)"
                    )
                self.step()
            return self.cover_round

        n = self.n
        ptr = self.ptr
        counts = self.counts
        visited = self.visited
        unvisited = self.unvisited
        rnd = self.round
        limit = max_rounds if max_rounds is not None else float("inf")
        while unvisited:
            if rnd >= limit:
                self.counts = counts
                self.unvisited = unvisited
                self.round = rnd
                raise RuntimeError(
                    f"not covered within {max_rounds} rounds "
                    f"({unvisited} nodes unvisited)"
                )
            new_counts: dict[int, int] = {}
            get = new_counts.get
            for v, c in counts.items():
                d = ptr[v]
                dst = v + d
                if dst >= n:
                    dst -= n
                elif dst < 0:
                    dst += n
                via_pointer = (c + 1) >> 1
                new_counts[dst] = get(dst, 0) + via_pointer
                via_other = c - via_pointer
                if via_other:
                    dst2 = v - d
                    if dst2 >= n:
                        dst2 -= n
                    elif dst2 < 0:
                        dst2 += n
                    new_counts[dst2] = get(dst2, 0) + via_other
                if c & 1:
                    ptr[v] = -d
            for dst in new_counts:
                if not visited[dst]:
                    visited[dst] = 1
                    unvisited -= 1
            counts = new_counts
            rnd += 1
        self.counts = counts
        self.unvisited = unvisited
        self.round = rnd
        self.cover_round = rnd
        return rnd

    # ------------------------------------------------------------------
    # state inspection
    # ------------------------------------------------------------------
    def positions(self) -> list[int]:
        """Sorted agent locations with multiplicity."""
        result: list[int] = []
        for v in sorted(self.counts):
            result.extend([v] * self.counts[v])
        return result

    def pointer_array(self) -> np.ndarray:
        """Pointer directions as an int8 numpy array (copy)."""
        return np.asarray(self.ptr, dtype=np.int8)

    def state_key(self) -> bytes:
        """Compact configuration identity (pointers + agent multiset)."""
        occupancy = ",".join(
            f"{v}:{self.counts[v]}" for v in sorted(self.counts)
        )
        return self.pointer_array().tobytes() + occupancy.encode("ascii")

    def snapshot(self) -> RingState:
        return RingState(
            round=self.round,
            pointers=self.pointer_array().tobytes(),
            occupancy=tuple(sorted(self.counts.items())),
            visited=bytes(self.visited),
            unvisited=self.unvisited,
            cover_round=self.cover_round,
        )

    def restore(self, state: RingState) -> None:
        """Restore a snapshot taken from a same-size ring engine."""
        pointers = np.frombuffer(state.pointers, dtype=np.int8)
        if len(pointers) != self.n:
            raise ValueError("snapshot does not match this ring size")
        self.round = state.round
        self.ptr = [int(d) for d in pointers]
        self.counts = {v: c for v, c in state.occupancy}
        self.visited = bytearray(state.visited)
        self.unvisited = state.unvisited
        self.cover_round = state.cover_round

    def clone(self) -> "RingRotorRouter":
        """Independent engine in the same configuration.

        Analysis counters restart from the cloned configuration.
        """
        twin = RingRotorRouter(
            self.n, list(self.ptr), self.positions(),
            track_counts=self.track_counts,
        )
        twin.round = self.round
        twin.visited = bytearray(self.visited)
        twin.unvisited = self.unvisited
        twin.cover_round = self.cover_round
        return twin

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RingRotorRouter(n={self.n}, k={self.num_agents}, "
            f"round={self.round})"
        )
