"""Run recording and plain-text visualization of ring configurations.

Debugging a deterministic interacting-particle system is mostly about
*seeing* it.  This module provides:

* :class:`RunRecorder` — records per-round positions / pointer
  snapshots / move lists of any ring-like engine, with a bounded
  memory budget;
* :func:`render_configuration` — a one-line ASCII picture of a ring
  configuration (agents, pointers, unvisited nodes);
* :func:`render_domains` — the domain-colored picture used by
  ``examples/domain_dynamics.py``.

The renderers are plain functions over engine state, so they also
serve as cheap golden-output material in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.domains import DomainSnapshot
from repro.core.ring import RingRotorRouter

_AGENT_GLYPHS = "123456789*"
_LETTERS = "abcdefghijklmnopqrstuvwxyz"


def render_configuration(engine: RingRotorRouter) -> str:
    """One-line picture of a ring engine's configuration.

    Per node: a digit = that many agents (``*`` for 10+), ``>``/``<`` =
    empty visited node with a clockwise/anticlockwise pointer, ``.`` =
    unvisited node.
    """
    cells = []
    for v in range(engine.n):
        count = engine.counts.get(v, 0)
        if count > 0:
            cells.append(_AGENT_GLYPHS[min(count, 10) - 1])
        elif engine.visited[v]:
            cells.append(">" if engine.ptr[v] == 1 else "<")
        else:
            cells.append(".")
    return "".join(cells)


def render_domains(snapshot: DomainSnapshot, width: int | None = None) -> str:
    """Domain-colored one-line picture of a :class:`DomainSnapshot`.

    Letters identify domains (capital letter at the anchor node);
    ``.`` marks unvisited nodes.  When ``width`` is given and smaller
    than n, the picture is downsampled by striding.
    """
    n = snapshot.n
    cells = ["."] * n
    for index, domain in enumerate(snapshot.domains):
        letter = _LETTERS[index % len(_LETTERS)]
        for v in domain.nodes(n):
            cells[v] = letter
        cells[domain.anchor] = letter.upper()
    if width is None or n <= width:
        return "".join(cells)
    stride = n / width
    return "".join(cells[int(i * stride)] for i in range(width))


@dataclass
class RunRecord:
    """One recorded round."""

    round: int
    positions: tuple[int, ...]
    moves: tuple[tuple[int, int, int], ...]


@dataclass
class RunRecorder:
    """Bounded-memory recorder of an engine run.

    Drives the engine through :meth:`advance`; keeps at most
    ``capacity`` most recent rounds (a deque would do, but a list with
    trimming keeps slicing simple for reports).
    """

    engine: RingRotorRouter
    capacity: int = 10_000
    records: list[RunRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("capacity must be positive")

    def advance(self, rounds: int = 1) -> None:
        """Step the engine, recording each round."""
        if rounds < 0:
            raise ValueError("rounds must be non-negative")
        for _ in range(rounds):
            moves = self.engine.step()
            self.records.append(
                RunRecord(
                    round=self.engine.round,
                    positions=tuple(self.engine.positions()),
                    moves=tuple(sorted(moves)),
                )
            )
        if len(self.records) > self.capacity:
            del self.records[: len(self.records) - self.capacity]

    def positions_over_time(self) -> list[tuple[int, ...]]:
        return [record.positions for record in self.records]

    def node_visit_rounds(self, node: int) -> list[int]:
        """Rounds (within the recorded window) at which ``node`` was
        visited by at least one agent."""
        result = []
        for record in self.records:
            if any(dst == node for _, dst, _ in record.moves):
                result.append(record.round)
        return result

    def timeline(self, last: int = 20) -> str:
        """Multi-line ASCII timeline of the last recorded rounds."""
        lines = []
        for record in self.records[-last:]:
            marks = ["."] * self.engine.n
            for position in record.positions:
                marks[position] = "#"
            lines.append(f"{record.round:>7} " + "".join(marks))
        return "\n".join(lines)
