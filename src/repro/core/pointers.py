"""Pointer (rotor) initializations — the adversary's lever.

In the rotor-router model the port orders and initial pointers are set
by an adversary (paper §1.3).  On the ring only the pointer arrangement
matters, and the paper's bounds differ *only* through it:

* **toward a node v** — every pointer lies along the shortest path to
  ``v``; with all agents on ``v`` this is the Theorem 1 worst case
  (cover Θ(n²/log k)).
* **negative** — the pointer at every unvisited node sends the first
  visiting agent straight back where it came from.  With agents as the
  BFS sources this means "pointer toward the nearest agent".  Used by
  the Theorem 4 adversary and by the domain analysis of §2.2.
* **positive** — the mirror image: first visits propagate outward.
* **uniform / random / alternating** — benign and averaged cases.

Ring pointers are direction arrays (+1 clockwise / -1 anticlockwise)
for :class:`repro.core.ring.RingRotorRouter`; general-graph helpers
return port-index arrays for the reference engine.  The pointer at an
agent's own starting node is not constrained by the definitions above;
it defaults to clockwise (port 0) and can be overridden.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Sequence

import numpy as np

from repro.graphs.base import PortLabeledGraph
from repro.graphs.ring import CLOCKWISE, clockwise_distance
from repro.util.rng import make_rng


# ----------------------------------------------------------------------
# ring pointer arrays (directions +1 / -1)
# ----------------------------------------------------------------------
def ring_toward_node(n: int, target: int, at_target: int = CLOCKWISE) -> list[int]:
    """Pointers along the shortest path toward ``target`` (Theorem 1).

    Antipodal ties (even ``n``) resolve clockwise.  ``at_target`` sets
    the pointer on ``target`` itself, which the definition leaves free.
    """
    if not 0 <= target < n:
        raise ValueError(f"target {target} out of range for n={n}")
    pointers = []
    for v in range(n):
        if v == target:
            pointers.append(at_target)
            continue
        forward = clockwise_distance(n, v, target)
        pointers.append(+1 if forward <= n - forward else -1)
    return pointers


def ring_negative(
    n: int, agents: Iterable[int], at_agents: int = CLOCKWISE
) -> list[int]:
    """Negative initialization: pointer toward the nearest agent.

    The first agent to reach an unvisited node is sent straight back to
    its previous location (paper §2.2): since exploration reaches a node
    from the side of its nearest agent, the pointer must point toward
    that side.  Ties resolve clockwise; occupied nodes get ``at_agents``.
    """
    sources = sorted(set(int(a) for a in agents))
    if not sources:
        raise ValueError("at least one agent position is required")
    for a in sources:
        if not 0 <= a < n:
            raise ValueError(f"agent position {a} out of range")
    pointers = []
    occupied = set(sources)
    for v in range(n):
        if v in occupied:
            pointers.append(at_agents)
            continue
        clockwise_gap = min(clockwise_distance(n, v, a) for a in sources)
        anticlockwise_gap = min(clockwise_distance(n, a, v) for a in sources)
        pointers.append(+1 if clockwise_gap <= anticlockwise_gap else -1)
    return pointers


def ring_positive(
    n: int, agents: Iterable[int], at_agents: int = CLOCKWISE
) -> list[int]:
    """Positive initialization: pointer away from the nearest agent.

    First visits *propagate*: an agent reaching a fresh node continues
    onward, the friendly counterpart of :func:`ring_negative`.
    """
    negative = ring_negative(n, agents, at_agents=at_agents)
    occupied = {int(a) for a in agents}
    return [d if v in occupied else -d for v, d in enumerate(negative)]


def ring_uniform(n: int, direction: int = CLOCKWISE) -> list[int]:
    """All pointers in the same direction."""
    if direction not in (1, -1):
        raise ValueError(f"direction must be +1 or -1, got {direction}")
    return [direction] * n


def ring_alternating(n: int, first: int = CLOCKWISE) -> list[int]:
    """Pointers alternating around the ring (a symmetric benign case)."""
    if first not in (1, -1):
        raise ValueError(f"first must be +1 or -1, got {first}")
    return [first if v % 2 == 0 else -first for v in range(n)]


def ring_random(
    n: int, seed: int | np.random.Generator | None = 0
) -> list[int]:
    """Independent uniform pointers (averaged-case initialization)."""
    rng = make_rng(seed)
    return [int(d) for d in rng.choice((1, -1), size=n)]


def ring_explicit(directions: Sequence[int]) -> list[int]:
    """Validate and copy an explicit direction sequence."""
    result = []
    for v, d in enumerate(directions):
        if d not in (1, -1):
            raise ValueError(f"pointer at node {v} must be +1 or -1, got {d!r}")
        result.append(int(d))
    return result


# ----------------------------------------------------------------------
# general-graph pointer arrays (port indices)
# ----------------------------------------------------------------------
def zero_ports(graph: PortLabeledGraph) -> list[int]:
    """Every pointer at port 0 (the canonical default)."""
    return [0] * graph.num_nodes


def random_ports(
    graph: PortLabeledGraph, seed: int | np.random.Generator | None = 0
) -> list[int]:
    """Uniform random pointer per node."""
    rng = make_rng(seed)
    return [
        int(rng.integers(0, graph.degree(v)))
        for v in range(graph.num_nodes)
    ]


def ports_toward_sources(
    graph: PortLabeledGraph, sources: Iterable[int]
) -> list[int]:
    """Pointers along BFS shortest paths toward the nearest source.

    The general-graph analogue of :func:`ring_negative` /
    :func:`ring_toward_node`: every node's pointer leads one step closer
    to its nearest source (ties broken by BFS discovery order), so first
    visits reflect back toward the agents.  Sources keep port 0.
    """
    source_list = sorted(set(int(s) for s in sources))
    if not source_list:
        raise ValueError("at least one source is required")
    n = graph.num_nodes
    for s in source_list:
        if not 0 <= s < n:
            raise ValueError(f"source {s} out of range")
    parent: list[int | None] = [None] * n
    seen = [False] * n
    queue = deque(source_list)
    for s in source_list:
        seen[s] = True
    while queue:
        v = queue.popleft()
        for u in graph.neighbors(v):
            if not seen[u]:
                seen[u] = True
                parent[u] = v
                queue.append(u)
    if not all(seen):
        raise ValueError("graph is not connected")
    pointers = []
    for v in range(n):
        if parent[v] is None:
            pointers.append(0)
        else:
            pointers.append(graph.port_to(v, parent[v]))
    return pointers


def ring_direction_to_port(direction: int) -> int:
    """Map a ring direction (+1/-1) to the canonical ring port (0/1)."""
    if direction == 1:
        return 0
    if direction == -1:
        return 1
    raise ValueError(f"direction must be +1 or -1, got {direction}")


def ring_pointers_to_ports(directions: Sequence[int]) -> list[int]:
    """Convert a ring direction array to a port array for the general
    engine on :func:`repro.graphs.ring.ring_graph` (port 0 = clockwise)."""
    return [ring_direction_to_port(d) for d in directions]
