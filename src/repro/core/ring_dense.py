"""Dense-array ring stepping: the O(n)-per-round design alternative.

:class:`repro.core.ring.RingRotorRouter` keeps only the occupied nodes
(a dict), making a round O(k).  The natural alternative — full numpy
arrays over all n nodes, vectorized per round — is asymptotically worse
for k << n but has tiny constants and no per-agent Python overhead,
so it wins when agents are dense (e.g. the load-balancing regime
k >= n).  This module implements that design; the ablation benchmark
``benchmarks/bench_engine_kernels.py`` measures the crossover, and the
test suite pins both engines to identical trajectories.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np


class DenseRingRotorRouter:
    """Vectorized k-agent rotor-router on the n-ring (dense arrays).

    Semantics identical to :class:`repro.core.ring.RingRotorRouter`;
    only the data layout differs: ``counts`` and ``pointers`` are full
    length-n arrays and each round is a constant number of numpy ops.
    """

    def __init__(
        self,
        n: int,
        pointers: Sequence[int],
        agents: Iterable[int],
    ) -> None:
        if n < 3:
            raise ValueError(f"ring requires n >= 3, got {n}")
        if len(pointers) != n:
            raise ValueError(
                f"pointers has length {len(pointers)}, ring has {n} nodes"
            )
        self.n = n
        ptr = np.asarray(pointers, dtype=np.int8)
        if not np.all((ptr == 1) | (ptr == -1)):
            raise ValueError("pointers must be +1 or -1")
        self.ptr = ptr.copy()
        self.counts = np.zeros(n, dtype=np.int64)
        agent_list = [int(a) for a in agents]
        if not agent_list:
            raise ValueError("at least one agent is required")
        for a in agent_list:
            if not 0 <= a < n:
                raise ValueError(f"agent position {a} out of range")
            self.counts[a] += 1
        self.num_agents = len(agent_list)
        self.round = 0
        self.visited = self.counts > 0
        self.unvisited = int(n - np.count_nonzero(self.visited))
        self.cover_round: int | None = 0 if self.unvisited == 0 else None

    def step(self) -> None:
        """One synchronous round, fully vectorized (no move list)."""
        counts = self.counts
        ptr = self.ptr
        via_pointer = (counts + 1) >> 1
        via_other = counts - via_pointer
        forward = np.where(ptr == 1, via_pointer, via_other)
        backward = counts - forward
        arrivals = np.roll(forward, 1) + np.roll(backward, -1)
        # Odd exit counts flip the pointer.
        odd = (counts & 1).astype(bool)
        np.negative(ptr, where=odd, out=ptr)
        self.counts = arrivals
        fresh = (arrivals > 0) & ~self.visited
        if fresh.any():
            self.visited |= fresh
            self.unvisited = int(self.n - np.count_nonzero(self.visited))
        self.round += 1
        if self.unvisited == 0 and self.cover_round is None:
            self.cover_round = self.round

    def run(self, rounds: int) -> None:
        if rounds < 0:
            raise ValueError(f"rounds must be non-negative, got {rounds}")
        for _ in range(rounds):
            self.step()

    def run_until_covered(self, max_rounds: int | None = None) -> int:
        while self.cover_round is None:
            if max_rounds is not None and self.round >= max_rounds:
                raise RuntimeError(
                    f"not covered within {max_rounds} rounds "
                    f"({self.unvisited} nodes unvisited)"
                )
            self.step()
        return self.cover_round

    def positions(self) -> list[int]:
        result: list[int] = []
        for v in np.flatnonzero(self.counts):
            result.extend([int(v)] * int(self.counts[v]))
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DenseRingRotorRouter(n={self.n}, k={self.num_agents}, "
            f"round={self.round})"
        )
