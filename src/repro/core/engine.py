"""Reference multi-agent rotor-router engine on port-labeled graphs.

Implements the model of paper §1.3 verbatim:

* A configuration is ``((rho_v), (pi_v), {r_1..r_k})``: fixed cyclic port
  orders, one port pointer per node, and a multiset of agent locations.
* In every round, each (non-held) agent at node ``v`` leaves along the
  pointer arc and the pointer advances; when ``c`` agents occupy ``v``
  they leave along ports ``pi_v, pi_v + 1, ..., pi_v + c - 1`` (mod
  ``deg(v)``) and the pointer ends at ``pi_v + c``.
* A node is *visited* in round ``t`` when an agent traverses an arc into
  it; initial occupancy counts as a visit at round 0 (``n_v(0)``).

The engine exposes the counters used throughout the paper's analysis:
``visit_counts`` (``n_v(t)``), ``exit_counts`` (``e_v(t)``) and, when
enabled, per-arc traversal counts against which the round-robin law
``ceil((e_v - port_v(u)) / deg(v))`` is verified in the test suite.

Delays are supported directly by :meth:`MultiAgentRotorRouter.step`:
``holds[v]`` agents are kept at ``v`` for the round, which is exactly a
delayed deployment ``D(v, t)`` in the sense of paper §2.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.graphs.base import PortLabeledGraph

Move = tuple[int, int, int]
"""One aggregated agent movement: ``(source, destination, agent_count)``."""


def configuration_key(pointers, counts) -> bytes:
    """Compact configuration identity (pointers + agent multiset).

    The single definition of configuration equality shared by the live
    engine and by snapshots: agents are indistinguishable, so the
    counts vector plus the pointer vector determine the configuration.
    """
    return (
        np.asarray(pointers, dtype=np.int64).tobytes()
        + np.asarray(counts, dtype=np.int64).tobytes()
    )


@dataclass(frozen=True)
class EngineState:
    """An immutable snapshot of the dynamic engine state.

    Port orders are static and not part of the snapshot.  ``key`` is a
    compact byte representation of (pointers, counts) used for limit
    cycle detection: two engines on the same graph are in the same
    configuration iff their keys are equal (agents are indistinguishable,
    so the multiset of locations — i.e. the counts vector — suffices).
    """

    round: int
    pointers: tuple[int, ...]
    counts: tuple[int, ...]
    visited: bytes
    unvisited: int
    cover_round: int | None

    @property
    def key(self) -> bytes:
        return configuration_key(self.pointers, self.counts)


class MultiAgentRotorRouter:
    """k indistinguishable agents moving through one rotor-router system.

    Parameters
    ----------
    graph:
        The port-labeled substrate graph.
    pointers:
        Initial port pointer per node (``0 <= pointers[v] < deg(v)``).
    agents:
        Iterable of starting nodes; repetitions mean several agents on
        the same node (the paper's all-on-one worst case).
    track_arcs:
        When true, maintain per-arc traversal counts (costs memory
        proportional to the number of arcs; used by invariant tests and
        the Eulerian lock-in detector).
    """

    def __init__(
        self,
        graph: PortLabeledGraph,
        pointers: Sequence[int],
        agents: Iterable[int],
        track_arcs: bool = False,
    ) -> None:
        self.graph = graph
        n = graph.num_nodes
        if len(pointers) != n:
            raise ValueError(
                f"pointers has length {len(pointers)}, graph has {n} nodes"
            )
        self.pointers = [int(p) for p in pointers]
        for v, p in enumerate(self.pointers):
            if not 0 <= p < graph.degree(v):
                raise ValueError(
                    f"pointer {p} at node {v} out of range for degree "
                    f"{graph.degree(v)}"
                )
        self.counts = np.zeros(n, dtype=np.int64)
        agent_list = [int(a) for a in agents]
        if not agent_list:
            raise ValueError("at least one agent is required")
        for a in agent_list:
            if not 0 <= a < n:
                raise ValueError(f"agent position {a} out of range")
            self.counts[a] += 1
        self.num_agents = len(agent_list)

        self.round = 0
        self.visited = self.counts > 0
        self.unvisited = int(n - np.count_nonzero(self.visited))
        self.cover_round: int | None = 0 if self.unvisited == 0 else None
        # n_v(0) in the paper: agents present directly after initialization.
        self.visit_counts = self.counts.copy()
        self.exit_counts = np.zeros(n, dtype=np.int64)
        self.initial_pointers = tuple(self.pointers)

        self.track_arcs = bool(track_arcs)
        self.arc_traversals: list[np.ndarray] | None = None
        if self.track_arcs:
            self.arc_traversals = [
                np.zeros(graph.degree(v), dtype=np.int64) for v in range(n)
            ]

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------
    def step(self, holds: Mapping[int, int] | None = None) -> list[Move]:
        """Advance one synchronous round; return aggregated moves.

        ``holds[v]`` agents are delayed at node ``v`` for this round
        (paper §2.1): they neither move nor advance the pointer.  The
        returned list contains one ``(src, dst, count)`` entry per arc
        actually traversed this round.
        """
        graph = self.graph
        counts = self.counts
        pointers = self.pointers
        if holds is not None:
            # Validate up front so a bad holds mapping cannot leave the
            # engine half-stepped.
            for v, h in holds.items():
                if h < 0:
                    raise ValueError(f"negative hold {h} at node {v}")
                present = int(counts[v])
                if h > present:
                    raise ValueError(
                        f"cannot hold {h} agents at node {v}: "
                        f"only {present} present"
                    )
        moves: list[Move] = []
        active = np.flatnonzero(counts)
        for v_raw in active:
            v = int(v_raw)
            c = int(counts[v])
            held = 0 if holds is None else int(holds.get(v, 0))
            release = c - held
            if release == 0:
                continue
            degree = graph.degree(v)
            p = pointers[v]
            neighbors = graph.neighbors(v)
            # Port p + j is used by agents j, j + deg, j + 2*deg, ...
            base, extra = divmod(release, degree)
            for j in range(min(release, degree)):
                port = (p + j) % degree
                count_via_port = base + (1 if j < extra else 0)
                moves.append((v, neighbors[port], count_via_port))
                if self.arc_traversals is not None:
                    self.arc_traversals[v][port] += count_via_port
            pointers[v] = (p + release) % degree
            self.exit_counts[v] += release
            counts[v] = held
        for _, dst, cnt in moves:
            counts[dst] += cnt
            self.visit_counts[dst] += cnt
            if not self.visited[dst]:
                self.visited[dst] = True
                self.unvisited -= 1
        self.round += 1
        if self.unvisited == 0 and self.cover_round is None:
            self.cover_round = self.round
        return moves

    def run(self, rounds: int) -> None:
        """Advance ``rounds`` undelayed rounds."""
        if rounds < 0:
            raise ValueError(f"rounds must be non-negative, got {rounds}")
        for _ in range(rounds):
            self.step()

    def run_until_covered(self, max_rounds: int | None = None) -> int:
        """Run undelayed until every node has been visited.

        Returns the cover time (the round in which the last node was
        first visited).  Raises ``RuntimeError`` when ``max_rounds``
        elapse without covering, so runaway experiments fail loudly.
        """
        while self.cover_round is None:
            if max_rounds is not None and self.round >= max_rounds:
                raise RuntimeError(
                    f"not covered within {max_rounds} rounds "
                    f"({self.unvisited} nodes unvisited)"
                )
            self.step()
        return self.cover_round

    # ------------------------------------------------------------------
    # state inspection
    # ------------------------------------------------------------------
    def positions(self) -> list[int]:
        """Sorted agent locations with multiplicity."""
        return np.repeat(np.arange(self.counts.size), self.counts).tolist()

    def state_key(self) -> bytes:
        """Compact configuration identity (pointers + agent multiset).

        Shares :func:`configuration_key` with :attr:`EngineState.key`
        so engine and limit-cycle detection agree on one definition —
        without materializing a snapshot in Brent's inner loop.
        """
        return configuration_key(self.pointers, self.counts)

    def snapshot(self) -> EngineState:
        return EngineState(
            round=self.round,
            pointers=tuple(self.pointers),
            counts=tuple(int(c) for c in self.counts),
            visited=self.visited.tobytes(),
            unvisited=self.unvisited,
            cover_round=self.cover_round,
        )

    def restore(self, state: EngineState) -> None:
        """Restore a snapshot taken from this engine (same graph)."""
        if len(state.pointers) != self.graph.num_nodes:
            raise ValueError("snapshot does not match this graph")
        self.round = state.round
        self.pointers = list(state.pointers)
        self.counts = np.asarray(state.counts, dtype=np.int64).copy()
        self.visited = np.frombuffer(state.visited, dtype=bool).copy()
        self.unvisited = state.unvisited
        self.cover_round = state.cover_round
        # Visit/exit counters are not part of the configuration; they are
        # monotone analysis counters and intentionally survive a restore.

    def clone(self) -> "MultiAgentRotorRouter":
        """An independent engine in the same configuration.

        Analysis counters (visit/exit/arc counts) restart from the
        cloned configuration rather than carrying history over.
        """
        twin = MultiAgentRotorRouter(
            self.graph,
            self.pointers,
            self.positions(),
            track_arcs=self.track_arcs,
        )
        twin.round = self.round
        twin.visited = self.visited.copy()
        twin.unvisited = self.unvisited
        twin.cover_round = self.cover_round
        return twin

    # ------------------------------------------------------------------
    # invariants from the paper
    # ------------------------------------------------------------------
    def expected_arc_traversals(self, v: int, u: int) -> int:
        """Round-robin traversal law of paper §1.3.

        With port labels assigned so the *initial* pointer at ``v`` has
        label 0, the number of traversals of arc ``(v, u)`` equals
        ``ceil((e_v - port_v(u)) / deg(v))`` where ``e_v`` is the total
        number of agent exits from ``v`` so far.
        """
        degree = self.graph.degree(v)
        raw_port = self.graph.port_to(v, u)
        label = (raw_port - self.initial_pointers[v]) % degree
        exits = int(self.exit_counts[v])
        return max(0, -(-(exits - label) // degree))

    def measured_arc_traversals(self, v: int, u: int) -> int:
        """Actual traversal count of arc ``(v, u)`` (requires track_arcs)."""
        if self.arc_traversals is None:
            raise RuntimeError("engine was created with track_arcs=False")
        return int(self.arc_traversals[v][self.graph.port_to(v, u)])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MultiAgentRotorRouter(n={self.graph.num_nodes}, "
            f"k={self.num_agents}, round={self.round})"
        )
