"""Limit behaviour of the rotor-router: cycles, return times, lock-in.

The rotor-router is a deterministic finite-state system, so from any
initialization it eventually cycles through a finite set of
configurations (paper §4).  This module finds that limit cycle exactly
— via Brent's cycle-finding algorithm over configuration keys, which
needs O(mu + lam) steps and O(1) stored snapshots — and measures:

* the **return time** (paper §4, Theorem 6): the longest interval any
  node stays unvisited within the limit cycle, shown to be Θ(n/k) on
  the ring regardless of initialization;
* the **Eulerian lock-in** of the single-agent rotor-router (Yanovski
  et al. [27], Bampas et al. [6]): after at most 2D|E| steps the agent
  repeats an Eulerian circuit of the directed symmetric graph, i.e. the
  limit cycle has period exactly 2|E| and traverses every arc once;
* **edge traversal balance** within a period (the multi-agent system
  "visits all edges a similar number of times", [27]).

A windowed estimator is provided for instances whose exact period is
too long to enumerate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol

import numpy as np


class CyclingSystem(Protocol):
    """Deterministic system interface required for cycle detection."""

    round: int

    def step(self, holds=None) -> list:  # pragma: no cover - protocol
        ...

    def clone(self):  # pragma: no cover - protocol
        ...

    def state_key(self) -> bytes:  # pragma: no cover - protocol
        ...


@dataclass(frozen=True)
class LimitCycle:
    """The eventual periodic behaviour of a deterministic system.

    ``preperiod`` (mu) counts the rounds before the system enters its
    limit cycle, measured from the configuration it was given in;
    ``period`` (lam) is the cycle length.
    """

    preperiod: int
    period: int


@dataclass(frozen=True)
class ReturnTimeResult:
    """Exact per-node return times within the limit cycle.

    ``max_gap[v]`` is the longest stretch of consecutive rounds in the
    limit cycle during which node ``v`` receives no visit; the paper's
    *return time* is ``worst`` = max over nodes.  A node never visited
    during the cycle has gap ``inf`` (cannot happen on the ring).
    """

    cycle: LimitCycle
    max_gap: np.ndarray

    @property
    def worst(self) -> float:
        return float(self.max_gap.max())

    @property
    def best(self) -> float:
        return float(self.max_gap.min())


def find_limit_cycle(system: CyclingSystem, max_rounds: int) -> LimitCycle:
    """Brent's algorithm over configuration keys.

    The input system is not mutated (all work happens on clones).
    Raises ``RuntimeError`` if no cycle is confirmed within
    ``max_rounds`` steps of the fast pointer.
    """
    if max_rounds < 1:
        raise ValueError(f"max_rounds must be positive, got {max_rounds}")
    # Phase 1: find the period lam.
    power = 1
    lam = 1
    tortoise = system.clone()
    hare = system.clone()
    hare.step()
    steps = 1
    while tortoise.state_key() != hare.state_key():
        if power == lam:
            tortoise = hare.clone()
            power *= 2
            lam = 0
        hare.step()
        steps += 1
        lam += 1
        if steps > max_rounds:
            raise RuntimeError(
                f"no limit cycle confirmed within {max_rounds} rounds"
            )
    # Phase 2: find the preperiod mu with two synchronized walkers.
    tortoise = system.clone()
    hare = system.clone()
    for _ in range(lam):
        hare.step()
    mu = 0
    while tortoise.state_key() != hare.state_key():
        tortoise.step()
        hare.step()
        mu += 1
        if mu > max_rounds:
            raise RuntimeError(
                f"preperiod exceeds {max_rounds} rounds (inconsistent state)"
            )
    return LimitCycle(preperiod=mu, period=lam)


def _gaps_from_run(
    system: CyclingSystem, n: int, window: int, cyclic: bool
) -> np.ndarray:
    """Max per-node visit gaps over ``window`` rounds of ``system``.

    With ``cyclic`` set, the window is treated as one full period: the
    wrap-around gap (last visit -> first visit of the next repetition)
    is included, giving exact limit-cycle return times.
    """
    first_visit = np.full(n, -1, dtype=np.int64)
    last_visit = np.full(n, -1, dtype=np.int64)
    max_gap = np.zeros(n, dtype=np.int64)
    for t in range(window):
        moves = system.step()
        for _, dst, _ in moves:
            if last_visit[dst] >= 0:
                gap = t - last_visit[dst]
                if gap > max_gap[dst]:
                    max_gap[dst] = gap
            else:
                first_visit[dst] = t
            last_visit[dst] = t
    result = max_gap.astype(float)
    never = first_visit < 0
    if cyclic:
        wrap = first_visit + window - last_visit
        result = np.maximum(result, wrap.astype(float))
    else:
        # Open window: the leading/trailing censored gaps still lower-
        # bound the true gap.
        lead = first_visit.astype(float)
        trail = window - 1 - last_visit.astype(float)
        result = np.maximum(result, np.maximum(lead, trail))
    result[never] = math.inf
    return result


def return_time_exact(
    system: CyclingSystem, n: int, max_rounds: int
) -> ReturnTimeResult:
    """Exact return times: find the limit cycle, then scan one period.

    ``n`` is the number of nodes of the underlying graph.  The input
    system is not mutated.
    """
    cycle = find_limit_cycle(system, max_rounds)
    runner = system.clone()
    for _ in range(cycle.preperiod):
        runner.step()
    gaps = _gaps_from_run(runner, n, cycle.period, cyclic=True)
    return ReturnTimeResult(cycle=cycle, max_gap=gaps)


def return_time_windowed(
    system: CyclingSystem, n: int, burn_in: int, window: int
) -> np.ndarray:
    """Approximate per-node return times from a long settled window.

    Runs ``burn_in`` rounds to let the system stabilize, then measures
    max visit gaps over ``window`` further rounds (no wrap-around).
    Converges to the exact value from below as the window grows; used
    when the exact period is too long to enumerate.  The input system
    is not mutated.
    """
    if burn_in < 0 or window < 1:
        raise ValueError("burn_in must be >= 0 and window >= 1")
    runner = system.clone()
    for _ in range(burn_in):
        runner.step()
    return _gaps_from_run(runner, n, window, cyclic=False)


@dataclass(frozen=True)
class LockInResult:
    """Single-agent Eulerian lock-in facts (Yanovski et al. [27])."""

    cycle: LimitCycle
    num_arcs: int

    @property
    def locks_into_euler_cycle(self) -> bool:
        """True iff the limit cycle is a directed Eulerian circuit."""
        return self.cycle.period == self.num_arcs

    @property
    def lock_in_round(self) -> int:
        return self.cycle.preperiod


def eulerian_lockin(system: CyclingSystem, num_arcs: int, max_rounds: int) -> LockInResult:
    """Detect Eulerian lock-in for a single-agent rotor-router.

    Yanovski et al. prove the agent enters an Eulerian circuit of the
    directed symmetric graph within 2D|E| steps; hence the limit cycle
    must have period exactly ``2|E|`` (= ``num_arcs``) and preperiod at
    most ``2 * D * |E|`` — both asserted by the test suite.
    """
    cycle = find_limit_cycle(system, max_rounds)
    return LockInResult(cycle=cycle, num_arcs=num_arcs)


def arc_balance_in_cycle(
    system: CyclingSystem, max_rounds: int, num_arcs: int | None = None
) -> tuple[int, int]:
    """(min, max) arc traversal counts over one limit-cycle period.

    Quantifies the fairness property: in the limit the rotor-router
    traverses all arcs equally often (exactly once per period for a
    single agent; "a similar number of times" for many agents [27]).
    When ``num_arcs`` is given, arcs never traversed during the period
    count as 0 toward the minimum.
    """
    cycle = find_limit_cycle(system, max_rounds)
    runner = system.clone()
    for _ in range(cycle.preperiod):
        runner.step()
    traversals: dict[tuple[int, int], int] = {}
    for _ in range(cycle.period):
        for src, dst, cnt in runner.step():
            traversals[(src, dst)] = traversals.get((src, dst), 0) + cnt
    if not traversals:
        raise RuntimeError("no arcs traversed within the limit cycle")
    values = list(traversals.values())
    lowest = min(values)
    if num_arcs is not None and len(traversals) < num_arcs:
        lowest = 0
    return lowest, max(values)
