"""k independent random walks on a general port-labeled graph.

Each walker moves to a uniformly random neighbor every round,
independently of the others (no interaction whatsoever — contrast with
the rotor-router, where agents interact through the shared pointers).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.graphs.base import PortLabeledGraph
from repro.util.rng import make_rng


class ParallelRandomWalks:
    """Synchronous parallel random walks with cover-time tracking.

    Parameters
    ----------
    graph:
        Substrate graph (port order is irrelevant for random walks).
    positions:
        Starting nodes of the k walkers (with multiplicity).
    seed:
        Seed or generator for the walk randomness.
    """

    def __init__(
        self,
        graph: PortLabeledGraph,
        positions: Iterable[int],
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        self.graph = graph
        self.rng = make_rng(seed)
        self.positions = [int(v) for v in positions]
        if not self.positions:
            raise ValueError("at least one walker is required")
        n = graph.num_nodes
        for v in self.positions:
            if not 0 <= v < n:
                raise ValueError(f"walker position {v} out of range")
        self.num_walkers = len(self.positions)
        self.round = 0
        self.visited = bytearray(n)
        for v in self.positions:
            self.visited[v] = 1
        self.unvisited = n - sum(self.visited)
        self.cover_round: int | None = 0 if self.unvisited == 0 else None
        self.visit_counts = np.zeros(n, dtype=np.int64)
        for v in self.positions:
            self.visit_counts[v] += 1

    def step(self) -> None:
        """Move every walker to a uniform random neighbor."""
        graph = self.graph
        rng = self.rng
        new_positions = []
        for v in self.positions:
            neighbors = graph.neighbors(v)
            dst = neighbors[int(rng.integers(0, len(neighbors)))]
            new_positions.append(dst)
            self.visit_counts[dst] += 1
            if not self.visited[dst]:
                self.visited[dst] = 1
                self.unvisited -= 1
        self.positions = new_positions
        self.round += 1
        if self.unvisited == 0 and self.cover_round is None:
            self.cover_round = self.round

    def run(self, rounds: int) -> None:
        if rounds < 0:
            raise ValueError(f"rounds must be non-negative, got {rounds}")
        for _ in range(rounds):
            self.step()

    def run_until_covered(self, max_rounds: int | None = None) -> int:
        """Run until every node has been visited; return the cover time."""
        while self.cover_round is None:
            if max_rounds is not None and self.round >= max_rounds:
                raise RuntimeError(
                    f"not covered within {max_rounds} rounds "
                    f"({self.unvisited} nodes unvisited)"
                )
            self.step()
        return self.cover_round

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ParallelRandomWalks(n={self.graph.num_nodes}, "
            f"k={self.num_walkers}, round={self.round})"
        )
