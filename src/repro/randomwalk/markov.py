"""Exact Markov-chain computations for simple random walks.

The simulators in this package are stochastic; this module computes
their expectations *exactly* by solving the linear systems of the
walk's Markov chain, giving the test suite non-statistical oracles and
the experiments exact baselines on arbitrary graphs:

* ``hitting_times(graph, target)`` — E[rounds to reach target] from
  every node, via the standard first-step equations
  ``h(v) = 1 + (1/deg v) * sum_u h(u)`` with ``h(target) = 0``;
* ``stationary_distribution(graph)`` — ``deg(v) / 2|E|``;
* ``expected_return_time(graph, v)`` — ``2|E| / deg(v)``
  (Kac's formula);
* ``cover_time_expectation_single(graph, start)`` — exact expected
  cover time by dynamic programming over visited-set states (feasible
  for small graphs; used as a test oracle).
"""

from __future__ import annotations

import numpy as np

from repro.graphs.base import PortLabeledGraph


def transition_matrix(graph: PortLabeledGraph) -> np.ndarray:
    """Row-stochastic transition matrix of the simple random walk."""
    n = graph.num_nodes
    matrix = np.zeros((n, n), dtype=float)
    for v in range(n):
        degree = graph.degree(v)
        if degree == 0:
            raise ValueError(f"node {v} is isolated")
        for u in graph.neighbors(v):
            matrix[v, u] = 1.0 / degree
    return matrix


def hitting_times(graph: PortLabeledGraph, target: int) -> np.ndarray:
    """Exact expected hitting times to ``target`` from every node."""
    n = graph.num_nodes
    if not 0 <= target < n:
        raise ValueError(f"target {target} out of range")
    if not graph.is_connected():
        raise ValueError("graph must be connected")
    p = transition_matrix(graph)
    # Remove the target row/column: (I - Q) h = 1.
    keep = [v for v in range(n) if v != target]
    q = p[np.ix_(keep, keep)]
    rhs = np.ones(len(keep))
    h_rest = np.linalg.solve(np.eye(len(keep)) - q, rhs)
    result = np.zeros(n)
    for index, v in enumerate(keep):
        result[v] = h_rest[index]
    return result


def max_hitting_time(graph: PortLabeledGraph) -> float:
    """max over (u, v) of the exact expected hitting time."""
    return max(
        float(hitting_times(graph, target).max())
        for target in range(graph.num_nodes)
    )


def stationary_distribution(graph: PortLabeledGraph) -> np.ndarray:
    """pi(v) = deg(v) / 2|E| for the simple random walk."""
    degrees = np.array(
        [graph.degree(v) for v in range(graph.num_nodes)], dtype=float
    )
    return degrees / degrees.sum()


def expected_return_time(graph: PortLabeledGraph, v: int) -> float:
    """Kac's formula: E[return to v] = 1/pi(v) = 2|E| / deg(v)."""
    if not 0 <= v < graph.num_nodes:
        raise ValueError(f"node {v} out of range")
    return 2.0 * graph.num_edges / graph.degree(v)


def cover_time_expectation_single(
    graph: PortLabeledGraph, start: int, max_nodes: int = 12
) -> float:
    """Exact E[cover time] of one walk, by visited-set DP.

    States are (current node, visited set).  Within a fixed visited
    set S the walk may wander among S's nodes indefinitely, so the
    expectations for S form a *linear system*: for v in S,

        E[v, S] = 1 + (1/deg v) * ( sum_{u in S}  E[u, S]
                                  + sum_{u not in S} E[u, S+u] ),

    where the second sum is known once all supersets of S are solved.
    Processing sets in decreasing popcount order therefore needs one
    |S| x |S| solve per set — exponential in n overall, so the size is
    capped; this is a test oracle, not a production path.
    """
    n = graph.num_nodes
    if n > max_nodes:
        raise ValueError(
            f"exact cover expectation is exponential; n={n} exceeds "
            f"the {max_nodes}-node limit"
        )
    if not 0 <= start < n:
        raise ValueError(f"start {start} out of range")
    if not graph.is_connected():
        raise ValueError("graph must be connected")
    full = (1 << n) - 1
    start_bit = 1 << start
    expectations: dict[int, np.ndarray] = {full: np.zeros(n)}

    subsets = [
        s for s in range(full + 1) if (s & start_bit) and s != full
    ]
    subsets.sort(key=lambda s: bin(s).count("1"), reverse=True)
    for visited in subsets:
        members = [v for v in range(n) if visited & (1 << v)]
        index_of = {v: i for i, v in enumerate(members)}
        size = len(members)
        coefficients = np.eye(size)
        rhs = np.ones(size)
        for v in members:
            i = index_of[v]
            degree = graph.degree(v)
            for u in graph.neighbors(v):
                if visited & (1 << u):
                    coefficients[i, index_of[u]] -= 1.0 / degree
                else:
                    superset = visited | (1 << u)
                    rhs[i] += expectations[superset][u] / degree
        solution = np.linalg.solve(coefficients, rhs)
        row = np.zeros(n)
        for v in members:
            row[v] = solution[index_of[v]]
        expectations[visited] = row
    return float(expectations[start_bit][start])
