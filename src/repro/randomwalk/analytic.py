"""Closed-form random-walk quantities on rings and paths.

These formulas calibrate the simulators (tests compare measured
expectations against them) and provide the predicted columns of the
Table 1 reproduction:

* hitting time on the n-ring between nodes at distance d: ``d (n - d)``;
* maximum hitting time on the ring: ``floor(n/2) ceil(n/2) ~ n^2/4``;
* cover time of a single walk on the ring: ``n (n - 1) / 2``
  (a classical result; see Lovász's survey);
* gambler's ruin: a +/-1 walk starting at position a in ``(0, b)``
  reaches b before 0 with probability ``a / b`` — the tool used in the
  paper's Lemma 17;
* expected return gap on the ring with k independent walkers: since
  each walk's stationary distribution is uniform, a fixed node is
  visited on average once every ``n / k`` rounds (paper §4).
"""

from __future__ import annotations

import math


def ring_hitting_time(n: int, distance: int) -> float:
    """Expected rounds for one walk to hit a node at ``distance``.

    On the n-cycle, ``E[T_hit] = d * (n - d)`` for distance ``d``
    (classical; equivalent to gambler's ruin duration on a cycle).
    """
    _check_ring(n)
    d = distance % n
    return float(d * (n - d))


def max_hitting_time_ring(n: int) -> float:
    """Maximum hitting time on the n-ring: ``floor(n/2) * ceil(n/2)``."""
    _check_ring(n)
    return float((n // 2) * ((n + 1) // 2))


def ring_commute_time(n: int, distance: int) -> float:
    """Expected round-trip time between nodes at ``distance`` on the ring.

    By symmetry this is twice the hitting time.
    """
    return 2.0 * ring_hitting_time(n, distance)


def ring_cover_time_single(n: int) -> float:
    """Expected cover time of one random walk on the n-ring: n(n-1)/2."""
    _check_ring(n)
    return n * (n - 1) / 2.0


def path_hitting_time_to_end(length: int, start: int) -> float:
    """Expected time for a +/-1 walk reflected at 0 to reach ``length``.

    On the path ``0..length`` with a reflecting barrier at 0, starting
    from ``start``: ``E[T] = length^2 - start^2``.
    """
    if length < 1:
        raise ValueError(f"length must be positive, got {length}")
    if not 0 <= start <= length:
        raise ValueError(f"start {start} outside [0, {length}]")
    return float(length * length - start * start)


def gambler_ruin_probability(a: int, b: int) -> float:
    """P(+/-1 walk from ``a`` reaches ``b`` before 0) = a / b."""
    if b <= 0:
        raise ValueError(f"b must be positive, got {b}")
    if not 0 <= a <= b:
        raise ValueError(f"a={a} outside [0, {b}]")
    return a / b


def gambler_ruin_duration(a: int, b: int) -> float:
    """Expected absorption time of a +/-1 walk from ``a`` in [0, b]:
    ``a * (b - a)``."""
    if b <= 0:
        raise ValueError(f"b must be positive, got {b}")
    if not 0 <= a <= b:
        raise ValueError(f"a={a} outside [0, {b}]")
    return float(a * (b - a))


def expected_return_gap(n: int, k: int) -> float:
    """Expected rounds between visits to a fixed ring node by k walks."""
    _check_ring(n)
    if k < 1:
        raise ValueError(f"k must be at least 1, got {k}")
    return n / k


def harmonic_number(k: int) -> float:
    """H_k = 1 + 1/2 + ... + 1/k (H_0 = 0)."""
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    return sum(1.0 / i for i in range(1, k + 1))


def cover_time_worst_k_walks(n: int, k: int) -> float:
    """Paper-shape prediction Θ(n²/log k) for worst-case placement.

    Normalization only — the asymptotic constant is not specified by
    the theory, so experiments compare *ratios* across k, not absolute
    values.  ``log`` is natural; for k = 1 the single-walk exact value
    is returned.
    """
    _check_ring(n)
    if k < 1:
        raise ValueError(f"k must be at least 1, got {k}")
    if k == 1:
        return ring_cover_time_single(n)
    return n * n / math.log(k)


def cover_time_best_k_walks(n: int, k: int) -> float:
    """Paper-shape prediction Θ((n/k)² log² k) for equal spacing (Thm 5)."""
    _check_ring(n)
    if k < 1:
        raise ValueError(f"k must be at least 1, got {k}")
    if k == 1:
        return ring_cover_time_single(n)
    return (n / k) ** 2 * math.log(k) ** 2


def _check_ring(n: int) -> None:
    if n < 3:
        raise ValueError(f"ring requires n >= 3, got {n}")
