"""Vectorized k random walks on the ring.

Ring cover times at Table 1 scales (n in the thousands, expectations
over tens of repetitions) need millions of walk-steps; this module
simulates them block-wise in numpy.  The exact cover round is still
recovered: within each block the first-visit round of every node is
extracted from the flattened position matrix, so results are identical
to step-by-step simulation with the same random increments.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.util.rng import make_rng


class RingRandomWalks:
    """k independent +/-1 walks on the n-ring with exact cover times."""

    def __init__(
        self,
        n: int,
        positions: Iterable[int],
        seed: int | np.random.Generator | None = 0,
        block_size: int = 1024,
    ) -> None:
        if n < 3:
            raise ValueError(f"ring requires n >= 3, got {n}")
        if block_size < 1:
            raise ValueError(f"block_size must be positive, got {block_size}")
        self.n = n
        self.rng = make_rng(seed)
        self.block_size = block_size
        self.positions = np.asarray(list(positions), dtype=np.int64)
        if self.positions.size == 0:
            raise ValueError("at least one walker is required")
        if np.any((self.positions < 0) | (self.positions >= n)):
            raise ValueError("walker position out of range")
        self.num_walkers = int(self.positions.size)
        self.round = 0
        self.first_visit = np.full(n, -1, dtype=np.int64)
        self.first_visit[self.positions] = 0
        self.unvisited = int(np.count_nonzero(self.first_visit < 0))
        self.cover_round: int | None = 0 if self.unvisited == 0 else None

    def step(self) -> None:
        """One synchronous round (kept for API parity / small tests)."""
        increments = self.rng.choice((-1, 1), size=self.num_walkers)
        self.positions = (self.positions + increments) % self.n
        self.round += 1
        fresh = self.positions[self.first_visit[self.positions] < 0]
        if fresh.size:
            self.first_visit[np.unique(fresh)] = self.round
            self.unvisited = int(np.count_nonzero(self.first_visit < 0))
            if self.unvisited == 0 and self.cover_round is None:
                self.cover_round = self.round

    def _advance_block(self, block: int) -> np.ndarray:
        """Advance ``block`` rounds; return the (block, k) position matrix."""
        increments = self.rng.choice(
            (-1, 1), size=(block, self.num_walkers)
        ).astype(np.int64)
        trajectory = (
            self.positions[None, :] + np.cumsum(increments, axis=0)
        ) % self.n
        self.positions = trajectory[-1].copy()
        return trajectory

    def _mark_first_visits(self, trajectory: np.ndarray) -> None:
        """Record first-visit rounds from a block trajectory."""
        block = trajectory.shape[0]
        flat = trajectory.ravel()  # row-major: round-by-round
        nodes, first_index = np.unique(flat, return_index=True)
        rows = first_index // self.num_walkers  # 0-based round offset
        for node, row in zip(nodes, rows):
            if self.first_visit[node] < 0:
                self.first_visit[node] = self.round + int(row) + 1
        self.round += block
        self.unvisited = int(np.count_nonzero(self.first_visit < 0))
        if self.unvisited == 0 and self.cover_round is None:
            self.cover_round = int(self.first_visit.max())

    def run(self, rounds: int) -> None:
        """Advance ``rounds`` rounds (block-wise)."""
        if rounds < 0:
            raise ValueError(f"rounds must be non-negative, got {rounds}")
        remaining = rounds
        while remaining > 0:
            block = min(self.block_size, remaining)
            self._mark_first_visits(self._advance_block(block))
            remaining -= block

    def run_until_covered(self, max_rounds: int | None = None) -> int:
        """Run until all nodes are visited; return the exact cover round."""
        while self.cover_round is None:
            if max_rounds is not None and self.round >= max_rounds:
                raise RuntimeError(
                    f"not covered within {max_rounds} rounds "
                    f"({self.unvisited} nodes unvisited)"
                )
            block = self.block_size
            if max_rounds is not None:
                block = min(block, max_rounds - self.round)
            self._mark_first_visits(self._advance_block(block))
        return self.cover_round

    def visit_rounds_of(self, node: int, rounds: int) -> np.ndarray:
        """Rounds within the next ``rounds`` at which ``node`` is visited.

        Advances the system.  Used by the return-time comparison: on the
        ring the expected gap between successive visits to a fixed node
        is exactly n/k (uniform stationary distribution), but the gap
        distribution has heavy variance — unlike the rotor-router.
        """
        if not 0 <= node < self.n:
            raise ValueError(f"node {node} out of range")
        if rounds < 0:
            raise ValueError(f"rounds must be non-negative, got {rounds}")
        hits: list[int] = []
        remaining = rounds
        while remaining > 0:
            block = min(self.block_size, remaining)
            base = self.round
            trajectory = self._advance_block(block)
            rows = np.nonzero((trajectory == node).any(axis=1))[0]
            hits.extend(base + int(r) + 1 for r in rows)
            self._mark_first_visits(trajectory)
            remaining -= block
        return np.asarray(hits, dtype=np.int64)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RingRandomWalks(n={self.n}, k={self.num_walkers}, "
            f"round={self.round})"
        )
