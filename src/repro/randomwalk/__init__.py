"""Parallel independent random walks — the paper's comparison baseline.

k agents performing independent, uncoordinated simple random walks in
synchronous rounds (the "parallel random walk" of Alon et al. [4] and
the worst-case initialization setting of the paper's §3.3).  Provides:

* :mod:`repro.randomwalk.walker` — general-graph walkers;
* :mod:`repro.randomwalk.ring_walk` — numpy-vectorized ring walkers
  with block-wise exact cover-time extraction;
* :mod:`repro.randomwalk.analytic` — closed forms on rings and paths
  (gambler's ruin, hitting times d(n-d), single-walk cover n(n-1)/2);
* :mod:`repro.randomwalk.cover` — repetition harness with confidence
  intervals;
* :mod:`repro.randomwalk.visits` — visit-gap statistics for the return
  time comparison (expected gap n/k on the ring).
"""

from repro.randomwalk.analytic import (
    gambler_ruin_probability,
    max_hitting_time_ring,
    ring_commute_time,
    ring_cover_time_single,
    ring_hitting_time,
)
from repro.randomwalk.cover import CoverEstimate, estimate_cover_time
from repro.randomwalk.ring_walk import RingRandomWalks
from repro.randomwalk.walker import ParallelRandomWalks

__all__ = [
    "ParallelRandomWalks",
    "RingRandomWalks",
    "CoverEstimate",
    "estimate_cover_time",
    "ring_hitting_time",
    "ring_commute_time",
    "ring_cover_time_single",
    "max_hitting_time_ring",
    "gambler_ruin_probability",
]
