"""Repetition harness for stochastic cover-time estimation.

Random-walk cover times are random variables; experiments estimate
their expectation by running independent repetitions with derived
seeds and reporting a summary with a confidence interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.util.rng import derive_seed
from repro.util.stats import Summary, normal_ci, summarize

SystemFactory = Callable[[int], object]
"""Builds a fresh walk system from a seed; must expose run_until_covered."""


@dataclass(frozen=True)
class CoverEstimate:
    """Cover-time estimate over independent repetitions."""

    summary: Summary
    ci_low: float
    ci_high: float
    samples: tuple[int, ...]

    @property
    def mean(self) -> float:
        return self.summary.mean

    @classmethod
    def from_samples(
        cls, samples: Sequence[int], confidence: float = 0.95
    ) -> "CoverEstimate":
        """Build the estimate from raw per-repetition cover rounds.

        The single definition of the summary/CI arithmetic: the
        repetition harness below and the batched analysis backend
        (which rebuilds estimates from cached samples) both construct
        through here, so their floats can never drift apart.
        """
        values = [int(value) for value in samples]
        summary = summarize(values)
        if len(values) > 1:
            low, high = normal_ci(values, confidence)
        else:
            low = high = float(values[0])
        return cls(
            summary=summary, ci_low=low, ci_high=high, samples=tuple(values)
        )


def estimate_cover_time(
    factory: SystemFactory,
    repetitions: int,
    base_seed: int = 0,
    max_rounds: int | None = None,
    confidence: float = 0.95,
) -> CoverEstimate:
    """Estimate E[cover time] of the system built by ``factory``.

    ``factory(seed)`` must return an object with ``run_until_covered``;
    each repetition receives an independent seed derived from
    ``base_seed``.  Deterministic systems (the rotor-router) can use
    ``repetitions=1`` — the harness works identically.
    """
    if repetitions < 1:
        raise ValueError(f"repetitions must be positive, got {repetitions}")
    samples: list[int] = []
    for rep in range(repetitions):
        system = factory(derive_seed(base_seed, "cover", rep))
        samples.append(int(system.run_until_covered(max_rounds)))
    return CoverEstimate.from_samples(samples, confidence)
