"""Repetition harness for stochastic cover-time estimation.

Random-walk cover times are random variables; experiments estimate
their expectation by running independent repetitions with derived
seeds and reporting a summary with a confidence interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.util.rng import derive_seed
from repro.util.stats import Summary, normal_ci, summarize

SystemFactory = Callable[[int], object]
"""Builds a fresh walk system from a seed; must expose run_until_covered."""


@dataclass(frozen=True)
class CoverEstimate:
    """Cover-time estimate over independent repetitions."""

    summary: Summary
    ci_low: float
    ci_high: float
    samples: tuple[int, ...]

    @property
    def mean(self) -> float:
        return self.summary.mean


def estimate_cover_time(
    factory: SystemFactory,
    repetitions: int,
    base_seed: int = 0,
    max_rounds: int | None = None,
    confidence: float = 0.95,
) -> CoverEstimate:
    """Estimate E[cover time] of the system built by ``factory``.

    ``factory(seed)`` must return an object with ``run_until_covered``;
    each repetition receives an independent seed derived from
    ``base_seed``.  Deterministic systems (the rotor-router) can use
    ``repetitions=1`` — the harness works identically.
    """
    if repetitions < 1:
        raise ValueError(f"repetitions must be positive, got {repetitions}")
    samples: list[int] = []
    for rep in range(repetitions):
        system = factory(derive_seed(base_seed, "cover", rep))
        samples.append(int(system.run_until_covered(max_rounds)))
    summary = summarize(samples)
    if len(samples) > 1:
        low, high = normal_ci(samples, confidence)
    else:
        low = high = float(samples[0])
    return CoverEstimate(
        summary=summary,
        ci_low=low,
        ci_high=high,
        samples=tuple(samples),
    )
