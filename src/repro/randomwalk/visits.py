"""Visit-gap statistics for the return-time comparison (paper §4).

The paper contrasts the rotor-router's *deterministic* guarantee —
after stabilization every node is visited every Θ(n/k) rounds — with
the k-random-walk behaviour: the expected gap is n/k, but the gap
random variable has high variance and unbounded support.  This module
measures both sides of that comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import derive_seed


@dataclass(frozen=True)
class GapStatistics:
    """Statistics of the gaps between successive visits to one node."""

    count: int
    mean: float
    std: float
    maximum: float
    p99: float

    @classmethod
    def from_visit_rounds(cls, rounds: np.ndarray) -> "GapStatistics":
        if rounds.size < 2:
            raise ValueError(
                "need at least two visits to compute gap statistics"
            )
        gaps = np.diff(np.sort(rounds)).astype(float)
        return cls(
            count=int(gaps.size),
            mean=float(gaps.mean()),
            std=float(gaps.std(ddof=1)) if gaps.size > 1 else 0.0,
            maximum=float(gaps.max()),
            p99=float(np.quantile(gaps, 0.99)),
        )

    def to_metrics(self) -> dict:
        """Flat ``gap_*`` dict form (the sweep cache's metric keys).

        One definition of the mapping, shared by the sweep executor
        and the analysis backend; :meth:`from_metrics` inverts it.
        """
        return {
            "gap_count": self.count,
            "gap_mean": self.mean,
            "gap_std": self.std,
            "gap_max": self.maximum,
            "gap_p99": self.p99,
        }

    @classmethod
    def from_metrics(cls, metrics: dict) -> "GapStatistics":
        return cls(
            count=int(metrics["gap_count"]),
            mean=float(metrics["gap_mean"]),
            std=float(metrics["gap_std"]),
            maximum=float(metrics["gap_max"]),
            p99=float(metrics["gap_p99"]),
        )


def ring_walk_gap_statistics(
    n: int,
    k: int,
    node: int,
    observation_rounds: int,
    burn_in: int = 0,
    seed: int = 0,
) -> GapStatistics:
    """Gap statistics of visits by k ring walkers to ``node``.

    Walkers start equally spaced (the stationary-friendly placement);
    ``burn_in`` rounds are discarded before observation.  The expected
    gap is n/k; the paper's point is that the *maximum* gap keeps
    growing with the observation window, unlike the rotor-router's hard
    Θ(n/k) ceiling.

    The simulation is fully vectorized: blocks of increments become
    trajectories with one cumulative sum and hit rounds with one
    equality scan — no first-visit bookkeeping, no per-step Python.
    The generator is consumed in exactly the block shapes a
    :class:`repro.randomwalk.ring_walk.RingRandomWalks` run would draw
    (``run(burn_in)`` followed by ``visit_rounds_of``), so measured
    gaps match the historical harness-based implementation visit for
    visit; ``tests/test_randomwalk_cover_visits.py`` pins the
    equivalence on seeded configurations.
    """
    from repro.core.placement import equally_spaced
    from repro.util.rng import make_rng

    if n < 3:
        raise ValueError(f"ring requires n >= 3, got {n}")
    if observation_rounds < 0 or burn_in < 0:
        raise ValueError("observation_rounds and burn_in must be >= 0")
    if not 0 <= node < n:
        raise ValueError(f"node {node} out of range")
    rng = make_rng(derive_seed(seed, "gaps", n, k, node))
    positions = np.asarray(equally_spaced(n, k), dtype=np.int64)
    block_size = 1024  # RingRandomWalks default; fixes the draw shapes

    def advance(block: int) -> np.ndarray:
        nonlocal positions
        increments = rng.choice((-1, 1), size=(block, k)).astype(np.int64)
        trajectory = (
            positions[None, :] + np.cumsum(increments, axis=0)
        ) % n
        positions = trajectory[-1].copy()
        return trajectory

    remaining = burn_in
    while remaining > 0:
        advance(min(block_size, remaining))
        remaining -= block_size

    hits: list[np.ndarray] = []
    base = 0
    remaining = observation_rounds
    while remaining > 0:
        block = min(block_size, remaining)
        rows = np.flatnonzero((advance(block) == node).any(axis=1))
        if rows.size:
            hits.append(rows + (base + 1))
        base += block
        remaining -= block

    rounds = (
        np.concatenate(hits) if hits else np.empty(0, dtype=np.int64)
    )
    if rounds.size < 2:
        raise RuntimeError(
            f"node {node} was visited {rounds.size} times in "
            f"{observation_rounds} rounds; increase the window"
        )
    return GapStatistics.from_visit_rounds(rounds)
