"""Visit-gap statistics for the return-time comparison (paper §4).

The paper contrasts the rotor-router's *deterministic* guarantee —
after stabilization every node is visited every Θ(n/k) rounds — with
the k-random-walk behaviour: the expected gap is n/k, but the gap
random variable has high variance and unbounded support.  This module
measures both sides of that comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.randomwalk.ring_walk import RingRandomWalks
from repro.util.rng import derive_seed


@dataclass(frozen=True)
class GapStatistics:
    """Statistics of the gaps between successive visits to one node."""

    count: int
    mean: float
    std: float
    maximum: float
    p99: float

    @classmethod
    def from_visit_rounds(cls, rounds: np.ndarray) -> "GapStatistics":
        if rounds.size < 2:
            raise ValueError(
                "need at least two visits to compute gap statistics"
            )
        gaps = np.diff(np.sort(rounds)).astype(float)
        return cls(
            count=int(gaps.size),
            mean=float(gaps.mean()),
            std=float(gaps.std(ddof=1)) if gaps.size > 1 else 0.0,
            maximum=float(gaps.max()),
            p99=float(np.quantile(gaps, 0.99)),
        )


def ring_walk_gap_statistics(
    n: int,
    k: int,
    node: int,
    observation_rounds: int,
    burn_in: int = 0,
    seed: int = 0,
) -> GapStatistics:
    """Gap statistics of visits by k ring walkers to ``node``.

    Walkers start equally spaced (the stationary-friendly placement);
    ``burn_in`` rounds are discarded before observation.  The expected
    gap is n/k; the paper's point is that the *maximum* gap keeps
    growing with the observation window, unlike the rotor-router's hard
    Θ(n/k) ceiling.
    """
    from repro.core.placement import equally_spaced

    walks = RingRandomWalks(
        n, equally_spaced(n, k), seed=derive_seed(seed, "gaps", n, k, node)
    )
    if burn_in:
        walks.run(burn_in)
    rounds = walks.visit_rounds_of(node, observation_rounds)
    if rounds.size < 2:
        raise RuntimeError(
            f"node {node} was visited {rounds.size} times in "
            f"{observation_rounds} rounds; increase the window"
        )
    return GapStatistics.from_visit_rounds(rounds)
