"""Remote vertices (paper Definition 2) and the Theorem 4 adversary.

A vertex ``v`` of the n-ring is *remote* with respect to the multiset
``S`` of k starting positions if for every ``1 <= r <= k`` the windows
of length ``r * n / (10k)`` on both sides of ``v`` contain at most
``r`` starting positions:

    |[v, v + r*n/(10k)] ∩ S| <= r   and   |[v, v - r*n/(10k)] ∩ S| <= r.

Lemma 15 shows at least ``0.8 n − o(n)`` vertices are remote for
*every* placement; Theorem 4 and Lemma 17/18 build their lower bounds
around remote vertices far from all agents.  Windows are inclusive
integer arcs ``v, v±1, ..., v±floor(r·n/(10k))`` and positions are
counted with multiplicity (the stricter reading; it only strengthens
the experimental check of Lemma 15).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.graphs.ring import ring_distance


def _occupancy(n: int, starts: Sequence[int]) -> np.ndarray:
    counts = np.zeros(n, dtype=np.int64)
    for s in starts:
        if not 0 <= s < n:
            raise ValueError(f"starting position {s} out of range for n={n}")
        counts[s] += 1
    return counts


def remote_vertex_mask(n: int, starts: Sequence[int]) -> np.ndarray:
    """Boolean mask of remote vertices (vectorized over v, loop over r).

    O(n·k) time with numpy inner vectorization; exact per Definition 2.
    """
    if n < 3:
        raise ValueError(f"ring requires n >= 3, got {n}")
    k = len(starts)
    if k < 1:
        raise ValueError("at least one starting position is required")
    counts = _occupancy(n, starts)
    # Cyclic prefix sums over a doubled array: forward window
    # [v, v + w] has count prefix[v + w + 1] - prefix[v].
    doubled = np.concatenate([counts, counts])
    prefix = np.concatenate([[0], np.cumsum(doubled)])
    vs = np.arange(n)
    mask = np.ones(n, dtype=bool)
    for r in range(1, k + 1):
        width = (r * n) // (10 * k)
        window = min(width + 1, n)  # inclusive arc, capped at the ring
        forward = prefix[vs + window] - prefix[vs]
        backward_start = (vs - window + 1) % n
        backward = prefix[backward_start + window] - prefix[backward_start]
        mask &= (forward <= r) & (backward <= r)
        if not mask.any():
            break
    return mask


def is_remote(n: int, starts: Sequence[int], v: int) -> bool:
    """Definition 2 check for a single vertex (reference implementation).

    Deliberately written as a direct transcription of the definition;
    the test suite cross-validates :func:`remote_vertex_mask` against
    it on random instances.
    """
    if not 0 <= v < n:
        raise ValueError(f"vertex {v} out of range for n={n}")
    k = len(starts)
    for r in range(1, k + 1):
        width = (r * n) // (10 * k)
        window = min(width + 1, n)
        forward = sum(
            1 for s in starts if (s - v) % n < window
        )
        backward = sum(
            1 for s in starts if (v - s) % n < window
        )
        if forward > r or backward > r:
            return False
    return True


def count_remote_vertices(n: int, starts: Sequence[int]) -> int:
    """Number of remote vertices (Lemma 15: at least 0.8n − o(n))."""
    return int(remote_vertex_mask(n, starts).sum())


def remote_vertices_far_from_agents(
    n: int, starts: Sequence[int], min_distance: int
) -> list[int]:
    """Remote vertices at ring distance >= ``min_distance`` from every
    starting position — the vertices the Theorem 4 / Lemma 17
    adversaries target (the paper uses ``min_distance = n/(9k)`` and
    ``n/(10k)`` respectively)."""
    mask = remote_vertex_mask(n, starts)
    result = []
    unique_starts = sorted(set(starts))
    for v in range(n):
        if not mask[v]:
            continue
        if all(ring_distance(n, v, s) >= min_distance for s in unique_starts):
            result.append(v)
    return result


def lemma15_lower_bound(n: int) -> float:
    """The Lemma 15 guarantee, ignoring the o(n) slack: 0.8 * n.

    Experiments report the measured count side by side; for finite n
    the o(n) term matters, so assertions use a relaxed constant.
    """
    return 0.8 * n
