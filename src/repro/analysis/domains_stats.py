"""Domain-evolution statistics: Lemma 12, Figure 1, §2.3 growth.

Runs a ring engine with the visit-type tracker and samples domain
snapshots at intervals, producing the data series behind three
reproduction targets:

* **Lemma 12** — once every lazy domain is reasonably large, adjacent
  lazy-domain sizes converge (eventually differing by <= 10);
* **Figure 1** — the borders between adjacent lazy domains are
  vertex-type or edge-type (with rare one-step transients);
* **§2.3** — from the all-on-one worst case, the covered region grows
  like sqrt(t) and domain sizes follow the ~1/i Lemma 13 profile.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.domains import (
    BorderType,
    DomainSnapshot,
    VisitTypeTracker,
    classify_borders,
    domain_snapshot,
)
from repro.core.ring import RingRotorRouter


@dataclass
class DomainTrace:
    """Sampled domain evolution of one rotor-router run."""

    n: int
    k: int
    rounds: list[int] = field(default_factory=list)
    snapshots: list[DomainSnapshot] = field(default_factory=list)

    def covered_sizes(self) -> list[int]:
        """Covered-region size (n - unvisited) at each sample."""
        return [self.n - len(s.unvisited) for s in self.snapshots]

    def lazy_size_matrix(self) -> list[list[int]]:
        return [s.lazy_sizes() for s in self.snapshots]

    def final(self) -> DomainSnapshot:
        if not self.snapshots:
            raise ValueError("trace holds no snapshots")
        return self.snapshots[-1]

    def growth_exponent(self, skip_fraction: float = 0.3) -> float:
        """Log-log slope of covered-region size vs round (expect ~0.5
        while the ring is uncovered, per §2.3)."""
        rounds = np.asarray(self.rounds, dtype=float)
        sizes = np.asarray(self.covered_sizes(), dtype=float)
        keep = (rounds > 0) & (sizes > 0)
        rounds, sizes = rounds[keep], sizes[keep]
        start = int(rounds.size * skip_fraction)
        if rounds.size - start < 2:
            raise ValueError("not enough samples for a growth fit")
        slope, _ = np.polyfit(np.log(rounds[start:]), np.log(sizes[start:]), 1)
        return float(slope)


def trace_domains(
    n: int,
    agents: Sequence[int],
    directions: Sequence[int],
    total_rounds: int,
    sample_every: int,
    stop_at_cover: bool = False,
) -> DomainTrace:
    """Run a k-agent ring rotor-router, sampling domain snapshots.

    Samples are only taken once domains are well defined (<= 2 agents
    per node); earlier sample points are skipped silently, which only
    matters for stacked initial placements.
    """
    if total_rounds < 1 or sample_every < 1:
        raise ValueError("total_rounds and sample_every must be positive")
    engine = RingRotorRouter(n, directions, agents, track_counts=False)
    tracker = VisitTypeTracker(engine)
    trace = DomainTrace(n=n, k=len(list(agents)))
    for _ in range(total_rounds):
        tracker.advance()
        if engine.round % sample_every == 0:
            if max(engine.counts.values(), default=0) <= 2:
                trace.rounds.append(engine.round)
                trace.snapshots.append(domain_snapshot(engine, tracker))
        if stop_at_cover and engine.unvisited == 0:
            break
    return trace


def lemma12_adjacent_difference(
    n: int,
    agents: Sequence[int],
    directions: Sequence[int],
    rounds: int,
) -> int:
    """Max adjacent lazy-domain size difference after ``rounds`` rounds.

    Lemma 12 predicts this settles to at most ~10 once domains are
    established (the paper proves <= 10 for k >= 6 and domains >= 20k).
    """
    engine = RingRotorRouter(n, directions, agents, track_counts=False)
    tracker = VisitTypeTracker(engine)
    for _ in range(rounds):
        tracker.advance()
    snapshot = domain_snapshot(engine, tracker)
    if snapshot.unvisited:
        raise RuntimeError(
            f"ring not covered after {rounds} rounds; increase the budget"
        )
    return snapshot.max_adjacent_lazy_difference()


def border_type_census(
    n: int,
    agents: Sequence[int],
    directions: Sequence[int],
    burn_in: int,
    observation_rounds: int,
    sample_every: int = 1,
) -> Counter:
    """Census of border types between lazy domains (Figure 1 data).

    After ``burn_in`` rounds, classify the borders at every sampled
    round for ``observation_rounds`` rounds.  Figure 1's claim: borders
    are vertex-type or edge-type (transients are rare one-step events
    right after a first traversal).
    """
    engine = RingRotorRouter(n, directions, agents, track_counts=False)
    tracker = VisitTypeTracker(engine)
    for _ in range(burn_in):
        tracker.advance()
    census: Counter = Counter()
    for i in range(observation_rounds):
        tracker.advance()
        if i % sample_every == 0:
            snapshot = domain_snapshot(engine, tracker)
            census.update(classify_borders(snapshot))
    return census


def final_profile_vs_lemma13(
    n: int,
    k: int,
    rounds_budget: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Worst-case run: measured domain profile vs the Lemma 13 profile.

    Runs the Theorem 1 setting directly — k agents at the left endpoint
    of an n-node path, all pointers toward it — until the path is
    nearly covered, and returns ``(measured, predicted)`` normalized
    domain-size profiles ordered from the frontier inward.  On the path
    with all agents released from one endpoint the agents stay ordered,
    so domain i is the interval between agents i+1 and i and its size
    is the position difference.  §2.3 postulates measured ~ predicted
    ~ 1/(i H_k).
    """
    from repro.core.path import PathRotorRouter
    from repro.theory.sequences import solve_profile

    if k <= 3:
        raise ValueError(f"Lemma 13 requires k > 3, got {k}")
    engine = PathRotorRouter(n, [-1] * n, [0] * k, track_counts=False)
    for _ in range(rounds_budget):
        if engine.unvisited <= max(2, n // 50):
            break
        engine.step()
    if sorted(engine.positions(), reverse=True)[0] <= k:
        raise RuntimeError("agents did not spread within the budget")
    # Agents oscillate inside their domains; the domain right endpoint
    # of rank i is the maximum of the i-th largest position over a
    # window of a few sweeps.
    window = 4 * n
    right_ends = [0] * k
    for _ in range(window):
        engine.step()
        for i, position in enumerate(sorted(engine.positions(), reverse=True)):
            if position > right_ends[i]:
                right_ends[i] = position
    boundaries = right_ends + [0]
    sizes = np.asarray(
        [boundaries[i] - boundaries[i + 1] for i in range(k)], dtype=float
    )
    sizes = np.maximum(sizes, 1e-9)
    measured = sizes / sizes.sum()
    profile = solve_profile(k)
    predicted = np.asarray(profile.a[1:k + 1], dtype=float)
    predicted = predicted / predicted.sum()
    return measured, predicted
