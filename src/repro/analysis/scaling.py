"""Shape verification: power-law fits and flatness of normalized columns.

The paper's results are Θ-bounds, so the reproduction never asserts
absolute constants.  Instead every experiment produces a *normalized
column* — measured value divided by the predicted shape — and verifies
it is flat (bounded max/min ratio) across the sweep, and/or fits a
power law and checks the exponent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.util.stats import max_abs_deviation_ratio


@dataclass(frozen=True)
class PowerLawFit:
    """Least-squares fit of ``y = prefactor * x**exponent``."""

    exponent: float
    prefactor: float
    r_squared: float


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> PowerLawFit:
    """Fit a power law through (xs, ys) by log-log least squares."""
    x = np.asarray(list(xs), dtype=float)
    y = np.asarray(list(ys), dtype=float)
    if x.size != y.size:
        raise ValueError("xs and ys must have equal length")
    if x.size < 2:
        raise ValueError("need at least two points to fit a power law")
    if np.any(x <= 0) or np.any(y <= 0):
        raise ValueError("power-law fits require positive data")
    lx, ly = np.log(x), np.log(y)
    slope, intercept = np.polyfit(lx, ly, 1)
    predicted = slope * lx + intercept
    ss_res = float(np.sum((ly - predicted) ** 2))
    ss_tot = float(np.sum((ly - ly.mean()) ** 2))
    r_squared = 1.0 if ss_tot == 0.0 else 1.0 - ss_res / ss_tot
    return PowerLawFit(
        exponent=float(slope),
        prefactor=float(np.exp(intercept)),
        r_squared=r_squared,
    )


def normalized(
    measured: Sequence[float], predicted: Sequence[float]
) -> list[float]:
    """Element-wise measured/predicted ratios (the normalized column)."""
    ms = list(measured)
    ps = list(predicted)
    if len(ms) != len(ps):
        raise ValueError("measured and predicted must have equal length")
    result = []
    for m, p in zip(ms, ps):
        if p <= 0:
            raise ValueError(f"predicted value must be positive, got {p}")
        result.append(m / p)
    return result


def flatness(values: Sequence[float]) -> float:
    """max/min of a positive sequence; 1.0 means perfectly flat.

    A normalized column with flatness <= F means the measured data
    matches the predicted Θ-shape within a constant factor F across
    the sweep.
    """
    return max_abs_deviation_ratio(values)


def is_shape_match(
    measured: Sequence[float],
    predicted: Sequence[float],
    tolerance: float,
) -> bool:
    """True iff measured/predicted is flat within ``tolerance``."""
    if tolerance < 1.0:
        raise ValueError(f"tolerance must be >= 1, got {tolerance}")
    return flatness(normalized(measured, predicted)) <= tolerance
