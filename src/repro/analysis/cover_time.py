"""Cover-time measurement for rotor-routers and random walks.

Thin, explicit harnesses: each function builds a fresh system from a
declarative description (n, k, placement, pointer initialization) and
measures its cover time.  The rotor-router is deterministic — one run
per configuration; random walks go through the repetition harness of
:mod:`repro.randomwalk.cover`.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.core.ring import RingRotorRouter
from repro.core.engine import MultiAgentRotorRouter
from repro.core import pointers as pointer_init
from repro.graphs.base import PortLabeledGraph
from repro.randomwalk.cover import CoverEstimate, estimate_cover_time
from repro.randomwalk.ring_walk import RingRandomWalks
from repro.util.rng import derive_seed


def ring_rotor_cover_time(
    n: int,
    agents: Sequence[int],
    directions: Sequence[int],
    max_rounds: int | None = None,
) -> int:
    """Cover time of the k-agent rotor-router on the n-ring.

    Deterministic: the result is fully determined by the inputs.  Uses
    the fast counter-free engine.
    """
    engine = RingRotorRouter(n, directions, agents, track_counts=False)
    budget = max_rounds if max_rounds is not None else 8 * n * n + 64
    return engine.run_until_covered(budget)


def rotor_cover_time_general(
    graph: PortLabeledGraph,
    agents: Sequence[int],
    ports: Sequence[int],
    max_rounds: int | None = None,
) -> int:
    """Cover time of the rotor-router on an arbitrary graph."""
    engine = MultiAgentRotorRouter(graph, ports, agents)
    if max_rounds is None:
        # Yanovski et al.: a single agent covers within O(D * m) and
        # extra agents never hurt; leave generous slack for bad ports.
        max_rounds = 16 * graph.diameter() * graph.num_edges + 64
    return engine.run_until_covered(max_rounds)


def worst_over_pointer_seeds(
    n: int,
    agents: Sequence[int],
    seeds: Iterable[int],
    max_rounds: int | None = None,
) -> int:
    """Max rotor-router cover time over random pointer initializations.

    An empirical stand-in for the adversarial sup over pointer
    arrangements (used alongside the explicit adversarial
    constructions, which dominate it).
    """
    worst = 0
    for seed in seeds:
        directions = pointer_init.ring_random(n, seed)
        worst = max(
            worst, ring_rotor_cover_time(n, agents, directions, max_rounds)
        )
    return worst


def ring_walk_cover_estimate(
    n: int,
    agents: Sequence[int],
    repetitions: int,
    base_seed: int = 0,
    max_rounds: int | None = None,
) -> CoverEstimate:
    """Mean cover time of k independent ring walks from ``agents``."""

    def factory(seed: int) -> RingRandomWalks:
        return RingRandomWalks(n, agents, seed=seed)

    budget = max_rounds if max_rounds is not None else 64 * n * n
    return estimate_cover_time(
        factory, repetitions, base_seed=base_seed, max_rounds=budget
    )


def scenario_cover_function(
    builder: Callable[[int, int], tuple[Sequence[int], Sequence[int]]],
) -> Callable[[int, int], int]:
    """Lift a (placement, pointers) builder into a cover-time function.

    ``builder(n, k)`` returns ``(agents, directions)``; the result maps
    ``(n, k)`` to the deterministic rotor cover time.  Used by the
    speed-up tables.
    """

    def cover(n: int, k: int) -> int:
        agents, directions = builder(n, k)
        return ring_rotor_cover_time(n, agents, directions)

    return cover


def walk_scenario_cover_function(
    placement: Callable[[int, int], Sequence[int]],
    repetitions: int,
    base_seed: int = 0,
) -> Callable[[int, int], float]:
    """Mean-cover-time function for random-walk scenarios."""

    def cover(n: int, k: int) -> float:
        agents = placement(n, k)
        estimate = ring_walk_cover_estimate(
            n,
            agents,
            repetitions,
            base_seed=derive_seed(base_seed, "walk-scenario", n, k),
        )
        return estimate.mean

    return cover
