"""Return-time measurements (paper §4, Theorem 6).

Theorem 6: once the k-agent rotor-router on the ring stabilizes, every
node is visited at least once every Θ(n/k) rounds, *regardless of the
initialization*.  We measure this two ways:

* **exactly** — find the limit cycle (Brent) and scan one period for
  the worst per-node visit gap, including the wrap-around gap;
* **windowed** — for instances with long stabilization, burn in and
  record gaps over a finite window (a lower bound converging from
  below).

For the random-walk column of Table 1, the expected gap is exactly
``n/k`` (uniform stationary distribution), measured via
:mod:`repro.randomwalk.visits`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.limit import (
    ReturnTimeResult,
    return_time_exact,
    return_time_windowed,
)
from repro.core.ring import RingRotorRouter


@dataclass(frozen=True)
class RingReturnTime:
    """Measured rotor-router return time on the ring, with context."""

    n: int
    k: int
    worst_gap: float
    best_gap: float
    preperiod: int | None  # None for windowed estimates
    period: int | None

    @property
    def normalized(self) -> float:
        """worst_gap / (n/k): Theorem 6 predicts a bounded constant."""
        return self.worst_gap * self.k / self.n


def ring_rotor_return_time_exact(
    n: int,
    agents: Sequence[int],
    directions: Sequence[int],
    max_rounds: int | None = None,
) -> RingReturnTime:
    """Exact return time via limit-cycle detection.

    ``max_rounds`` bounds Brent's search (stabilization + period); the
    default is generous: stabilization is at most O(n²) on the ring.
    """
    engine = RingRotorRouter(n, directions, agents, track_counts=False)
    budget = max_rounds if max_rounds is not None else 16 * n * n + 1024
    result: ReturnTimeResult = return_time_exact(engine, n, budget)
    return RingReturnTime(
        n=n,
        k=len(agents),
        worst_gap=result.worst,
        best_gap=result.best,
        preperiod=result.cycle.preperiod,
        period=result.cycle.period,
    )


def ring_rotor_return_time_windowed(
    n: int,
    agents: Sequence[int],
    directions: Sequence[int],
    burn_in: int,
    window: int,
) -> RingReturnTime:
    """Windowed return-time estimate (for large instances)."""
    engine = RingRotorRouter(n, directions, agents, track_counts=False)
    gaps = return_time_windowed(engine, n, burn_in, window)
    return RingReturnTime(
        n=n,
        k=len(agents),
        worst_gap=float(gaps.max()),
        best_gap=float(gaps.min()),
        preperiod=None,
        period=None,
    )
