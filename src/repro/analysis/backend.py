"""The analysis → sweep bridge: batched measurement plans.

The paper-reproduction experiments (``python -m repro run table1``,
``theorem1..6``, ``stabilization``, ``speedup_graphs``) are
embarrassingly parallel grids of small measurements — exactly the
workload the batched sweep kernels were built for — but historically
they measured one cell at a time through the serial harnesses of
:mod:`repro.analysis.cover_time` and friends.  This module routes them
through :mod:`repro.sweep.executor` instead, in three stages:

1. **plan** — an experiment declares every measurement it needs
   against a :class:`MeasurementPlan` (``rotor_cover``,
   ``rotor_return_exact``, ``walk_cover``, ``walk_gaps``,
   ``rotor_cover_general``); each call materializes the exact instance
   the serial code would have built (same placements, same pointer
   arrays, same derived seeds) into an explicit
   :mod:`repro.sweep.cells` cell, and returns a
   :class:`MeasurementHandle` future.  Duplicate requests collapse
   onto one cell.
2. **pack** — :meth:`MeasurementPlan.execute` hands the deduplicated
   cell list to :func:`repro.sweep.executor.run_cells`, which probes
   the on-disk result cache, groups misses by (model, n, budget,
   metrics), packs them into ``BatchRingKernel`` / ``BatchRingWalks``
   lanes, and fans chunks over worker processes.
3. **scatter** — every handle resolves its value from the returned
   metrics: rotor covers as exact ints, limit cycles as
   :class:`repro.analysis.return_time.RingReturnTime`, walk covers as
   the serial :class:`repro.randomwalk.cover.CoverEstimate` rebuilt
   from the per-repetition samples, gap statistics as
   :class:`repro.randomwalk.visits.GapStatistics`.

**Backends.**  ``backend="batch"`` is the default described above.
``backend="reference"`` evaluates every cell with the original serial
functions instead — same requests, same values, no kernels, no cache —
kept as the escape hatch and as the baseline the equivalence tests and
``benchmarks/bench_experiments.py`` pin against: rotor results are
bit-identical and walk repetitions seed-for-seed identical across
backends.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Sequence

from repro import obs
from repro.randomwalk.cover import CoverEstimate
from repro.randomwalk.visits import GapStatistics
from repro.sweep.cells import (
    GeneralRotorCell,
    RotorCell,
    WalkCoverCell,
    WalkGapsCell,
)
from repro.util.rng import derive_seed

BACKENDS = ("batch", "reference")

#: Serial-harness round budgets, mirrored exactly so both backends
#: simulate identical horizons (see repro.analysis.cover_time /
#: return_time and repro.randomwalk.cover usage).
def _rotor_cover_budget(n: int) -> int:
    return 8 * n * n + 64


def _rotor_return_budget(n: int) -> int:
    return 16 * n * n + 1024


def _walk_cover_budget(n: int) -> int:
    return 64 * n * n


@dataclass(frozen=True)
class BackendStats:
    """Execution accounting of one plan: what ran, what was cached."""

    backend: str
    computed: int
    cached: int
    elapsed: float
    failed: int = 0

    def summary_line(self) -> str:
        """The one-line accounting the CLI prints after each run."""
        line = (
            f"backend={self.backend} computed={self.computed} "
            f"cached={self.cached}"
        )
        if self.failed:
            line += f" failed={self.failed}"
        return line + f" elapsed={self.elapsed:.2f}s"


class MeasurementHandle:
    """Future for one scheduled measurement; resolves after execute()."""

    __slots__ = ("_plan", "_hash", "_wrap")

    def __init__(
        self,
        plan: "MeasurementPlan",
        config_hash: str,
        wrap: Callable[[dict], object],
    ) -> None:
        self._plan = plan
        self._hash = config_hash
        self._wrap = wrap

    @property
    def value(self):
        """The measured value; raises until the plan has executed."""
        metrics = self._plan._metrics_for(self._hash)
        return self._wrap(metrics)


class MeasurementPlan:
    """Collects measurement requests; executes them in one batch.

    Parameters
    ----------
    backend:
        ``"batch"`` (sweep kernels through the executor, default) or
        ``"reference"`` (the original serial functions, uncached).
    jobs:
        Worker processes for batch chunks (``<= 1``: in-process).
    cache_dir:
        On-disk result cache directory for the batch backend; ``None``
        disables caching.  The reference backend never caches.
    chunk_lanes:
        Lanes per kernel chunk (scheduling only, never affects
        results); ``None`` uses the executor default.
    progress:
        Optional ``(done, total)`` callback for the batch backend.
    """

    def __init__(
        self,
        backend: str = "batch",
        jobs: int = 1,
        cache_dir: str | None = None,
        chunk_lanes: int | None = None,
        progress: Callable[[int, int], None] | None = None,
    ) -> None:
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; known: {BACKENDS}"
            )
        if jobs < 0:
            raise ValueError(f"jobs must be non-negative, got {jobs}")
        self.backend = backend
        self.jobs = jobs
        self.cache_dir = cache_dir
        self.chunk_lanes = chunk_lanes
        self.progress = progress
        self._cells: dict[str, object] = {}
        self._results: dict[str, dict] | None = None
        self._stats: BackendStats | None = None

    # ------------------------------------------------------------------
    # request vocabulary (plan stage)
    # ------------------------------------------------------------------
    def _schedule(
        self, cell, wrap: Callable[[dict], object]
    ) -> MeasurementHandle:
        if self._results is not None:
            raise RuntimeError(
                "plan already executed; build a new MeasurementPlan"
            )
        self._cells.setdefault(cell.config_hash, cell)
        return MeasurementHandle(self, cell.config_hash, wrap)

    def rotor_cover(
        self,
        n: int,
        agents: Sequence[int],
        directions: Sequence[int],
        max_rounds: int | None = None,
    ) -> MeasurementHandle:
        """Deterministic rotor cover time (exact int), as
        :func:`repro.analysis.cover_time.ring_rotor_cover_time`."""
        cell = RotorCell(
            n=n,
            agents=tuple(int(a) for a in agents),
            directions=tuple(int(d) for d in directions),
            metrics=("cover",),
            max_rounds=(
                max_rounds if max_rounds is not None else _rotor_cover_budget(n)
            ),
        )
        return self._schedule(cell, _wrap_rotor_cover)

    def rotor_return_exact(
        self,
        n: int,
        agents: Sequence[int],
        directions: Sequence[int],
        max_rounds: int | None = None,
    ) -> MeasurementHandle:
        """Exact limit-cycle return time (a
        :class:`repro.analysis.return_time.RingReturnTime`), as
        :func:`repro.analysis.return_time.ring_rotor_return_time_exact`.
        """
        cell = RotorCell(
            n=n,
            agents=tuple(int(a) for a in agents),
            directions=tuple(int(d) for d in directions),
            metrics=("stabilization", "return"),
            max_rounds=(
                max_rounds
                if max_rounds is not None
                else _rotor_return_budget(n)
            ),
        )
        k = len(cell.agents)
        return self._schedule(
            cell, lambda metrics: _wrap_rotor_return(metrics, n, k)
        )

    def walk_cover(
        self,
        n: int,
        agents: Sequence[int],
        repetitions: int,
        base_seed: int = 0,
        max_rounds: int | None = None,
    ) -> MeasurementHandle:
        """Mean cover time of k seeded walks (a
        :class:`repro.randomwalk.cover.CoverEstimate`), seed-for-seed
        as :func:`repro.analysis.cover_time.ring_walk_cover_estimate`.
        """
        if repetitions < 1:
            raise ValueError(
                f"repetitions must be positive, got {repetitions}"
            )
        # Exactly the repetition seeds estimate_cover_time would derive.
        seeds = tuple(
            derive_seed(base_seed, "cover", rep) for rep in range(repetitions)
        )
        cell = WalkCoverCell(
            n=n,
            agents=tuple(int(a) for a in agents),
            seeds=seeds,
            max_rounds=(
                max_rounds if max_rounds is not None else _walk_cover_budget(n)
            ),
        )
        return self._schedule(cell, _wrap_walk_cover)

    def walk_gaps(
        self,
        n: int,
        k: int,
        node: int,
        observation_rounds: int,
        burn_in: int = 0,
        seed: int = 0,
    ) -> MeasurementHandle:
        """Visit-gap statistics (a
        :class:`repro.randomwalk.visits.GapStatistics`), as
        :func:`repro.randomwalk.visits.ring_walk_gap_statistics`."""
        cell = WalkGapsCell(
            n=n,
            k=k,
            node=node,
            observation_rounds=observation_rounds,
            burn_in=burn_in,
            seed=seed,
        )
        return self._schedule(cell, _wrap_walk_gaps)

    def rotor_cover_general(
        self,
        graph,
        agents: Sequence[int],
        ports: Sequence[int],
        max_rounds: int | None = None,
    ) -> MeasurementHandle:
        """Rotor cover time on a port-labeled graph (exact int), as
        :func:`repro.analysis.cover_time.rotor_cover_time_general`."""
        if max_rounds is None:
            # graph.diameter() caches, so wide grids pay the n-BFS
            # sweep once per graph rather than once per cell.
            max_rounds = 16 * graph.diameter() * graph.num_edges + 64
        cell = GeneralRotorCell.from_graph(
            graph, agents, ports, max_rounds
        )
        return self._schedule(cell, _wrap_rotor_cover)

    # ------------------------------------------------------------------
    # execution (pack stage)
    # ------------------------------------------------------------------
    @property
    def num_cells(self) -> int:
        """Distinct scheduled measurements (after deduplication)."""
        return len(self._cells)

    @property
    def stats(self) -> BackendStats:
        if self._stats is None:
            raise RuntimeError("plan has not executed yet")
        return self._stats

    def execute(self) -> BackendStats:
        """Run every scheduled cell; afterwards handles resolve."""
        if self._results is not None:
            return self.stats
        started = time.perf_counter()
        cells = list(self._cells.values())
        with obs.span(
            "plan.execute", backend=self.backend, cells=len(cells)
        ):
            failed = 0
            if self.backend == "reference":
                self._results = {
                    cell.config_hash: _reference_metrics(cell)
                    for cell in cells
                }
                cached: set[str] = set()
            else:
                from repro.sweep.executor import (
                    DEFAULT_CHUNK_LANES,
                    run_cells,
                )

                self._results, cached, failure_report = run_cells(
                    cells,
                    jobs=self.jobs,
                    cache_dir=self.cache_dir,
                    progress=self.progress,
                    chunk_lanes=self.chunk_lanes or DEFAULT_CHUNK_LANES,
                )
                failed = failure_report.failed
        obs.count_many({
            "plan.cells": len(cells),
            "plan.computed": len(cells) - len(cached) - failed,
            "plan.cached": len(cached),
        })
        self._stats = BackendStats(
            backend=self.backend,
            computed=len(cells) - len(cached) - failed,
            cached=len(cached),
            elapsed=time.perf_counter() - started,
            failed=failed,
        )
        if failed:
            # An experiment needs every scheduled measurement: a sweep
            # may tolerate quarantined cells, a paper table cannot.
            raise RuntimeError(
                "measurement plan quarantined "
                f"{failed} cell(s): "
                + "; ".join(failure_report.summary_lines())
            )
        return self._stats

    def _metrics_for(self, config_hash: str) -> dict:
        if self._results is None:
            raise RuntimeError(
                "measurement not available: call plan.execute() first"
            )
        return self._results[config_hash]


# ----------------------------------------------------------------------
# scatter stage: metrics dict -> the serial harness's value types
# ----------------------------------------------------------------------
def _wrap_rotor_cover(metrics: dict) -> int:
    cover = metrics.get("cover")
    if cover is None:
        # Mirrors the serial engines' loud budget failure.
        raise RuntimeError("not covered within the round budget")
    return int(cover)


def _wrap_rotor_return(metrics: dict, n: int, k: int):
    from repro.analysis.return_time import RingReturnTime

    if metrics.get("preperiod") is None or metrics.get("period") is None:
        raise RuntimeError("no limit cycle confirmed within the round budget")
    return RingReturnTime(
        n=n,
        k=k,
        worst_gap=float(metrics["worst_gap"]),
        best_gap=float(metrics["best_gap"]),
        preperiod=int(metrics["preperiod"]),
        period=int(metrics["period"]),
    )


def _wrap_walk_cover(metrics: dict) -> CoverEstimate:
    samples = metrics.get("cover_samples")
    if samples is None or any(value < 0 for value in samples):
        raise RuntimeError("walk not covered within the round budget")
    # Rebuilt from the raw samples through the one shared definition
    # of the summary/CI arithmetic, so both backends yield
    # float-identical estimates.
    return CoverEstimate.from_samples(samples)


def _wrap_walk_gaps(metrics: dict) -> GapStatistics:
    return GapStatistics.from_metrics(metrics)


# ----------------------------------------------------------------------
# reference backend: the original serial functions, cell by cell
# ----------------------------------------------------------------------
def _reference_metrics(cell) -> dict:
    if isinstance(cell, RotorCell):
        return _reference_rotor(cell)
    if isinstance(cell, WalkCoverCell):
        return _reference_walk_cover(cell)
    if isinstance(cell, WalkGapsCell):
        return _reference_walk_gaps(cell)
    if isinstance(cell, GeneralRotorCell):
        return _reference_general(cell)
    raise TypeError(f"unsupported cell type {type(cell).__name__}")


def _reference_rotor(cell: RotorCell) -> dict:
    metrics: dict = {}
    if "cover" in cell.metrics:
        from repro.analysis.cover_time import ring_rotor_cover_time

        metrics["cover"] = ring_rotor_cover_time(
            cell.n, list(cell.agents), list(cell.directions), cell.max_rounds
        )
    if "stabilization" in cell.metrics or "return" in cell.metrics:
        from repro.analysis.return_time import ring_rotor_return_time_exact

        result = ring_rotor_return_time_exact(
            cell.n, list(cell.agents), list(cell.directions), cell.max_rounds
        )
        metrics.update(
            preperiod=int(result.preperiod),
            period=int(result.period),
            worst_gap=float(result.worst_gap),
            best_gap=float(result.best_gap),
        )
    return metrics


def _reference_walk_cover(cell: WalkCoverCell) -> dict:
    from repro.randomwalk.ring_walk import RingRandomWalks

    samples = [
        int(
            RingRandomWalks(
                cell.n, list(cell.agents), seed=seed
            ).run_until_covered(cell.max_rounds)
        )
        for seed in cell.seeds
    ]
    # Derived statistics through the shared arithmetic, so cached/raw
    # metric dicts are comparable across backends.
    estimate = CoverEstimate.from_samples(samples)
    return {
        "cover_reps": len(samples),
        "cover_truncated": 0,
        "cover_samples": samples,
        "cover": estimate.mean,
        "cover_std": estimate.summary.std,
        "cover_ci_low": estimate.ci_low,
        "cover_ci_high": estimate.ci_high,
    }


def _reference_walk_gaps(cell: WalkGapsCell) -> dict:
    from repro.randomwalk.visits import ring_walk_gap_statistics

    stats = ring_walk_gap_statistics(
        cell.n,
        cell.k,
        node=cell.node,
        observation_rounds=cell.observation_rounds,
        burn_in=cell.burn_in,
        seed=cell.seed,
    )
    return stats.to_metrics()


def _reference_general(cell: GeneralRotorCell) -> dict:
    from repro.analysis.cover_time import rotor_cover_time_general
    from repro.graphs.base import PortLabeledGraph

    graph = PortLabeledGraph(cell.graph_ports, validate=False)
    return {
        "cover": rotor_cover_time_general(
            graph, list(cell.agents), list(cell.ports), cell.max_rounds
        )
    }
