"""Speed-up tables: cover time improvement as a function of k.

The paper frames its results as the *speed-up* of k agents over one:
Θ(log k) for the worst placement, Θ(k²) for the best (rotor-router),
vs Θ(log k) and Θ(k²/log²k) for random walks.  This module computes
measured speed-up columns and matches them against candidate shapes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.analysis.scaling import flatness, normalized

CoverFunction = Callable[[int, int], float]
"""Maps (n, k) to a (mean) cover time."""


@dataclass(frozen=True)
class SpeedupRow:
    k: int
    cover_time: float
    speedup: float


@dataclass(frozen=True)
class SpeedupTable:
    """Measured speed-up S(k) = C(n, 1) / C(n, k) for fixed n."""

    n: int
    rows: tuple[SpeedupRow, ...]

    def speedups(self) -> list[float]:
        return [row.speedup for row in self.rows]

    def ks(self) -> list[int]:
        return [row.k for row in self.rows]

    def shape_flatness(self, shape: Callable[[int], float]) -> float:
        """Flatness of S(k)/shape(k) — 1.0 means a perfect Θ-match."""
        predicted = [shape(k) for k in self.ks()]
        return flatness(normalized(self.speedups(), predicted))


def measure_speedup(
    cover: CoverFunction, n: int, ks: Sequence[int]
) -> SpeedupTable:
    """Build the speed-up table of ``cover`` over the given ks.

    The k = 1 baseline is always measured (even if absent from ``ks``).
    """
    if not ks:
        raise ValueError("at least one k is required")
    baseline = float(cover(n, 1))
    if baseline <= 0:
        raise ValueError(f"baseline cover time must be positive: {baseline}")
    rows = []
    for k in ks:
        value = float(cover(n, k))
        rows.append(SpeedupRow(k=k, cover_time=value, speedup=baseline / value))
    return SpeedupTable(n=n, rows=tuple(rows))


# Candidate speed-up shapes from Table 1 -------------------------------
def shape_log(k: int) -> float:
    """Θ(log k) with a 1-at-k=1 convention (worst-case shapes)."""
    return max(1.0, math.log(k))


def shape_linear(k: int) -> float:
    """Θ(k) (expanders/cliques in the random-walk literature)."""
    return float(k)


def shape_quadratic(k: int) -> float:
    """Θ(k²) (rotor-router best case)."""
    return float(k * k)


def shape_quadratic_over_log2(k: int) -> float:
    """Θ(k²/log²k) (random-walk best case, Theorem 5)."""
    if k == 1:
        return 1.0
    return k * k / math.log(k) ** 2


def best_matching_shape(
    table: SpeedupTable,
    shapes: dict[str, Callable[[int], float]],
) -> tuple[str, float]:
    """Name and flatness of the best-matching candidate shape."""
    if not shapes:
        raise ValueError("at least one candidate shape is required")
    scored = {
        name: table.shape_flatness(shape) for name, shape in shapes.items()
    }
    best = min(scored, key=scored.get)
    return best, scored[best]


TABLE1_SHAPES: dict[str, Callable[[int], float]] = {
    "log k": shape_log,
    "k": shape_linear,
    "k^2": shape_quadratic,
    "k^2/log^2 k": shape_quadratic_over_log2,
}
