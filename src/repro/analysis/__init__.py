"""Measurement harnesses turning the simulators into experiment data.

* :mod:`repro.analysis.cover_time` — cover-time measurement for both
  models under any placement/pointer initialization;
* :mod:`repro.analysis.return_time` — Theorem 6 measurements (exact
  limit-cycle return times and windowed estimates);
* :mod:`repro.analysis.speedup` — speed-up tables vs. k;
* :mod:`repro.analysis.scaling` — power-law fits and flatness checks
  used to verify the paper's Θ-shapes;
* :mod:`repro.analysis.remote` — remote vertices (Definition 2,
  Lemma 15) and the Theorem 4 adversary;
* :mod:`repro.analysis.domains_stats` — domain-evolution traces
  (Lemma 12 convergence, Figure 1 border statistics, §2.3 growth);
* :mod:`repro.analysis.backend` — the analysis→sweep bridge: a
  :class:`~repro.analysis.backend.MeasurementPlan` collects the
  per-cell measurement requests an experiment makes and executes them
  through the batched sweep executor (``backend="batch"``) or the
  original serial harnesses (``backend="reference"``), bit-identically.
"""

from repro.analysis.backend import BackendStats, MeasurementPlan
from repro.analysis.cover_time import (
    ring_rotor_cover_time,
    ring_walk_cover_estimate,
    rotor_cover_time_general,
    worst_over_pointer_seeds,
)
from repro.analysis.remote import (
    count_remote_vertices,
    is_remote,
    remote_vertex_mask,
)
from repro.analysis.scaling import fit_power_law, flatness, normalized

__all__ = [
    "BackendStats",
    "MeasurementPlan",
    "ring_rotor_cover_time",
    "ring_walk_cover_estimate",
    "rotor_cover_time_general",
    "worst_over_pointer_seeds",
    "remote_vertex_mask",
    "count_remote_vertices",
    "is_remote",
    "fit_power_law",
    "flatness",
    "normalized",
]
