"""`repro stats`: plain-text breakdowns of a trace manifest.

Renders the tables the CLI's ``stats`` subcommand prints: per-phase
wall clock (chunk indices collapsed to ``chunk[*]`` so thousand-chunk
runs stay readable), cache traffic, fault handling (retry/quarantine/
pool-restart events of the supervising dispatcher, shown only when a
run actually saw any), per-kernel counters with estimated throughput,
per-worker busy time, and the raw counter list — all through
:class:`repro.util.tables.Table`, the same renderer experiment
reports use.
"""

from __future__ import annotations

import re

from repro.util.tables import Table

_CHUNK = re.compile(r"chunk\[\d+\]")

#: Kernel counter prefixes in display order, with the counter names
#: backing the normalized ``rounds``/``lane_rounds`` columns (kernels
#: count what is natural for them: the general kernel processes
#: occupied pairs, the gap scan row-rounds).
_KERNELS = (
    ("ring", "rounds", "lane_rounds"),
    ("limit", "rounds", "lane_rounds"),
    ("gaps", "rounds", "lane_rounds"),
    ("walk", "rounds", "lane_rounds"),
    ("general", "vector_rounds", "pair_rounds"),
)


def _phase_key(name: str) -> str:
    return _CHUNK.sub("chunk[*]", name)


def _phase_table(manifest: dict) -> Table:
    spans = manifest["spans"]
    groups: dict[str, list[dict]] = {}
    for span in spans:
        groups.setdefault(_phase_key(span["name"]), []).append(span)
    total = manifest["meta"].get("wall")
    if not isinstance(total, (int, float)) or total <= 0:
        total = sum(s["wall"] for s in spans if "/" not in s["name"])
    table = Table(
        columns=["phase", "count", "wall_s", "cpu_s", "share_%"],
        caption="per-phase wall clock (share of run wall; phases "
        "overlap hierarchically and across workers)",
        formats=[None, "d", ".3f", ".3f", ".1f"],
    )
    ranked = sorted(
        groups.items(), key=lambda kv: -sum(s["wall"] for s in kv[1])
    )
    for key, members in ranked:
        wall = sum(s["wall"] for s in members)
        cpu = sum(float(s.get("cpu", 0.0)) for s in members)
        table.add_row(
            key,
            len(members),
            wall,
            cpu,
            100.0 * wall / total if total else None,
        )
    return table


def _cache_table(counters: dict) -> Table | None:
    names = ("cache.hits", "cache.misses", "cache.corrupt", "cache.puts")
    if not any(name in counters for name in names):
        return None
    table = Table(
        columns=[
            "backend", "hits", "misses", "corrupt", "puts", "hit_%",
            "batches", "batch_cells",
        ],
        caption="result cache (total row plus one row per backend seen; "
        "batches/batch_cells count batched lookup_many probes)",
        formats=[None, "d", "d", "d", "d", ".1f", "d", "d"],
    )

    def add_row(label: str, prefix: str, batched: bool) -> None:
        hits = counters.get(f"{prefix}.hits", 0)
        misses = counters.get(f"{prefix}.misses", 0)
        corrupt = counters.get(f"{prefix}.corrupt", 0)
        probes = hits + misses + corrupt
        table.add_row(
            label,
            hits,
            misses,
            corrupt,
            counters.get(f"{prefix}.puts", 0) if batched else None,
            100.0 * hits / probes if probes else None,
            counters.get("cache.batch_lookups", 0) if batched else None,
            counters.get("cache.batch_size", 0) if batched else None,
        )

    add_row("total", "cache", batched=True)
    for backend in ("json", "sqlite"):
        prefix = f"cache.{backend}"
        if any(key.startswith(f"{prefix}.") for key in counters):
            add_row(backend, prefix, batched=False)
    return table


def _kernel_table(manifest: dict) -> Table | None:
    counters = manifest["counters"]
    compute_wall = sum(
        s["wall"] for s in manifest["spans"] if s["name"].endswith("/compute")
    )
    table = Table(
        columns=[
            "kernel", "invocations", "lanes", "rounds", "lane_rounds",
            "Mlr/s", "covered", "truncated", "serial_cells",
        ],
        caption="per-kernel counters (Mlr/s: million lane-rounds per "
        "second against total compute wall)",
        formats=[None, "d", "d", "d", "d", ".2f", "d", "d", "d"],
    )
    rows = 0
    for prefix, rounds_name, lane_rounds_name in _KERNELS:
        if not any(key.startswith(f"{prefix}.") for key in counters):
            continue
        get = lambda name: counters.get(f"{prefix}.{name}")  # noqa: E731
        lane_rounds = get(lane_rounds_name)
        covered = get("lanes_covered")
        if covered is None:
            covered = get("lanes_resolved")
        truncated = get("lanes_truncated")
        table.add_row(
            prefix,
            get("invocations"),
            get("lanes"),
            get(rounds_name),
            lane_rounds,
            (
                lane_rounds / compute_wall / 1e6
                if lane_rounds and compute_wall > 0
                else None
            ),
            covered,
            truncated,
            get("serial_cells"),
        )
        rows += 1
    return table if rows else None


#: Robustness counters in display order: what the supervising
#: dispatcher had to survive (emitted only when nonzero, so the table
#: appears only for runs that actually saw failure handling).
_ROBUSTNESS = (
    ("executor.retries", "chunk redispatches after failed attempts"),
    ("executor.timeouts", "chunk deadlines exceeded"),
    ("executor.chunk_failures", "chunks bisected after retry exhaustion"),
    ("executor.quarantined_cells", "cells abandoned with a failure record"),
    ("executor.pool_restarts", "worker pools torn down and rebuilt"),
    ("executor.serial_fallbacks", "degradations to in-process execution"),
    ("cache.quarantined", "corrupt store rows evicted at probe time"),
)


def _robustness_table(counters: dict) -> Table | None:
    present = [
        (name, description)
        for name, description in _ROBUSTNESS
        if counters.get(name)
    ]
    if not present:
        return None
    table = Table(
        columns=["event", "count", "meaning"],
        caption="fault handling (supervisor + store self-healing)",
        formats=[None, "d", None],
    )
    for name, description in present:
        table.add_row(name, counters[name], description)
    return table


def _worker_table(manifest: dict) -> Table | None:
    if not manifest["workers"]:
        return None
    table = Table(
        columns=["worker", "pid", "chunks", "wall_s", "cpu_s"],
        caption="workers (busy wall/CPU over chunk spans)",
        formats=["d", None, "d", ".3f", ".3f"],
    )
    for worker in manifest["workers"]:
        table.add_row(
            worker["worker"],
            worker["pid"],
            worker["chunks"],
            float(worker["wall"]),
            float(worker["cpu"]),
        )
    return table


def _counter_table(counters: dict) -> Table | None:
    if not counters:
        return None
    table = Table(
        columns=["counter", "value"],
        caption="all counters",
        formats=[None, "d"],
    )
    for name in sorted(counters):
        table.add_row(name, counters[name])
    return table


def render_stats(manifest: dict, path: str = "") -> str:
    """The full ``repro stats`` text for a loaded manifest."""
    meta = manifest["meta"]
    header = (
        f"trace {path or '<manifest>'}: run {manifest['run_id']} "
        f"(schema {manifest['schema']})"
    )
    described = [
        f"{key}={meta[key]}" for key in sorted(meta) if key != "wall"
    ]
    wall = meta.get("wall")
    if isinstance(wall, (int, float)):
        described.append(f"wall={wall:.2f}s")
    if described:
        header += "\n  " + "  ".join(described)
    parts = [header, _phase_table(manifest).render()]
    for table in (
        _cache_table(manifest["counters"]),
        _robustness_table(manifest["counters"]),
        _kernel_table(manifest),
        _worker_table(manifest),
        _counter_table(manifest["counters"]),
    ):
        if table is not None:
            parts.append(table.render())
    parts.extend(
        f"warning: leftover shard not merged: {name}"
        for name in manifest["leftover_shards"]
    )
    return "\n\n".join(parts)
