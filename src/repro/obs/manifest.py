"""Trace sessions: per-worker JSONL shards merged into run manifests.

A :class:`TraceSession` (normally entered via :func:`trace_session`,
which the CLI's ``--trace PATH`` wraps around a command) owns three
things:

* the **main telemetry** — the ambient :class:`~repro.obs.telemetry.
  Telemetry` of the driving process, where executor spans
  (``cache.get``, ``plan``, ``aggregate``) and accounting counters
  land;
* the **shard directory** ``<path>.shards/`` — every worker process
  appends its chunks' events to its own
  ``<run id>.<pid>.events.jsonl`` file (one writer per file, so no
  locking), via :func:`traced_chunk` which the executor calls around
  each chunk;
* the **manifest** at ``<path>`` — a schema-versioned JSON-lines file
  rebuilt atomically at every :meth:`~TraceSession.checkpoint` (the
  executor checkpoints when ``run_cells`` returns, so a crashed
  multi-experiment run keeps everything merged so far).

The merge is deterministic: counters sum across shards and are
emitted name-sorted; spans follow in (main, shard-filename-sorted,
file-order) order with worker indices normalized to positions in the
sorted shard list.  Merging the same shard set twice yields a
byte-identical manifest; across *repeated runs* only the counter
section is reproducible (timings, pids and worker assignment of
chunks legitimately vary).  Shard files in the directory that do not
belong to the session's run id — leftovers of a killed run — are
reported as ``leftover_shard`` events, never merged.
"""

from __future__ import annotations

import json
import os
import uuid
from contextlib import contextmanager
from typing import Callable, Iterator

from repro.obs import telemetry as _telemetry
from repro.obs.telemetry import Telemetry
from repro.util.timing import Stopwatch

#: Version stamped into (and required of) every manifest header.
MANIFEST_SCHEMA_VERSION = 1

_SHARD_SUFFIX = ".events.jsonl"

_SESSION: "TraceSession | None" = None


def current_session() -> "TraceSession | None":
    """The active :class:`TraceSession`, or None when not tracing."""
    return _SESSION


class TraceSession:
    """One traced run: a manifest path, a run id, and a shard dir."""

    def __init__(self, path: str, meta: dict | None = None) -> None:
        self.path = path
        self.run_id = uuid.uuid4().hex[:16]
        self.shard_dir = f"{path}.shards"
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        os.makedirs(self.shard_dir, exist_ok=True)
        self.telemetry = Telemetry()
        self.meta = dict(meta or {})
        self._chunks = 0
        self._watch = Stopwatch().start()
        self._closed = False

    def next_chunk_trace(self) -> dict:
        """The payload stanza telling a worker where to shard events.

        Chunk indices are assigned monotonically across every
        ``run_cells`` call of the session, so span names like
        ``chunk[7]`` are unique within one manifest.
        """
        info = {
            "shard_dir": self.shard_dir,
            "run_id": self.run_id,
            "chunk": self._chunks,
        }
        self._chunks += 1
        return info

    def checkpoint(self) -> str:
        """(Re)write the manifest from all current state, atomically."""
        return write_manifest(
            self.path,
            run_id=self.run_id,
            main=self.telemetry,
            shard_dir=self.shard_dir,
            meta={**self.meta, "wall": round(self._watch.split(), 6)},
        )

    def close(self) -> str:
        """Final checkpoint; then remove this run's merged shards."""
        if self._closed:
            return self.path
        self._closed = True
        path = self.checkpoint()
        for name in _shard_names(self.shard_dir):
            if name.startswith(f"{self.run_id}."):
                os.unlink(os.path.join(self.shard_dir, name))
        try:
            os.rmdir(self.shard_dir)
        except OSError:
            pass  # leftover shards of a crashed run stay visible
        return path


@contextmanager
def trace_session(
    path: str, meta: dict | None = None
) -> Iterator[TraceSession]:
    """Run a block under a new trace session.

    Installs the session's telemetry as the ambient context (so the
    executor and, under ``fork``, its workers see it) and guarantees a
    final manifest on exit, crash or not.
    """
    global _SESSION
    if _SESSION is not None:
        raise RuntimeError("a trace session is already active")
    session = TraceSession(path, meta=meta)
    _SESSION = session
    previous = _telemetry.set_active(session.telemetry)
    try:
        yield session
    finally:
        _telemetry.set_active(previous)
        _SESSION = None
        session.close()


def shard_path(shard_dir: str, run_id: str) -> str:
    """This process's shard file for ``run_id``."""
    return os.path.join(shard_dir, f"{run_id}.{os.getpid()}{_SHARD_SUFFIX}")


def append_shard(shard_dir: str, run_id: str, events: list[dict]) -> str:
    """Append ``events`` to this process's shard (one JSON per line)."""
    path = shard_path(shard_dir, run_id)
    text = "".join(
        json.dumps(event, sort_keys=True) + "\n" for event in events
    )
    with open(path, "a") as handle:
        handle.write(text)
    return path


def traced_chunk(
    trace: dict, fn: Callable[[dict], object], payload: dict
) -> object:
    """Run one executor chunk under a fresh worker telemetry context.

    Wraps the work in ``chunk[i]`` / ``chunk[i]/compute`` spans, lets
    kernel counters land in the fresh context (the previous ambient
    context — the forked copy of the session's, in workers — is saved
    and restored), then appends the drained events to this process's
    shard file.
    """
    tel = Telemetry()
    previous = _telemetry.set_active(tel)
    try:
        with tel.span(
            f"chunk[{trace['chunk']}]", cells=len(payload["configs"])
        ):
            with tel.span("compute"):
                result = fn(payload)
    finally:
        _telemetry.set_active(previous)
    append_shard(trace["shard_dir"], trace["run_id"], tel.events())
    return result


def _shard_names(shard_dir: str) -> list[str]:
    """Shard files in ``shard_dir``, in sorted (merge) order.

    The deterministic-merge guarantee leans on this order: worker
    indices are positions in this list, so the listing is sorted at
    the ``os.listdir`` call site (never returned raw).
    """
    try:
        names = sorted(os.listdir(shard_dir))
    except OSError:
        return []
    return [name for name in names if name.endswith(_SHARD_SUFFIX)]


def write_manifest(
    path: str,
    run_id: str,
    main: Telemetry | None,
    shard_dir: str,
    meta: dict | None = None,
) -> str:
    """Merge main telemetry + shards into the manifest at ``path``.

    See the module docstring for the merge order and determinism
    guarantees.  The write is atomic (tmp file + rename), so a reader
    never sees a half-merged manifest.
    """
    counters: dict[str, int] = {}
    spans: list[dict] = []
    workers: list[dict] = []
    leftovers: list[str] = []
    if main is not None:
        for name, value in main.counters.items():
            counters[name] = counters.get(name, 0) + value
        spans.extend(
            {"event": "span", "worker": "main", **record}
            for record in main.spans
        )
    own_shards: list[str] = []
    for name in _shard_names(shard_dir):
        if name.startswith(f"{run_id}."):
            own_shards.append(name)
        else:
            leftovers.append(name)
    for index, name in enumerate(own_shards):
        pid = name[len(run_id) + 1:-len(_SHARD_SUFFIX)]
        chunks = 0
        wall = 0.0
        cpu = 0.0
        with open(os.path.join(shard_dir, name)) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                event = json.loads(line)
                kind = event.get("event")
                if kind == "counters":
                    for cname, value in event["counters"].items():
                        counters[cname] = counters.get(cname, 0) + int(value)
                elif kind == "span":
                    record = dict(event)
                    record["worker"] = index
                    spans.append(record)
                    if "/" not in record.get("name", ""):
                        # Top-level (chunk) spans sum to the worker's
                        # busy time; nested spans would double-count.
                        chunks += 1
                        wall += float(record.get("wall", 0.0))
                        cpu += float(record.get("cpu", 0.0))
        workers.append(
            {
                "event": "worker",
                "worker": index,
                "pid": pid,
                "chunks": chunks,
                "wall": wall,
                "cpu": cpu,
            }
        )
    lines: list[dict] = [
        {
            "event": "manifest",
            "schema": MANIFEST_SCHEMA_VERSION,
            "run_id": run_id,
            "meta": dict(meta or {}),
        }
    ]
    lines.extend(
        {"event": "counter", "name": name, "value": counters[name]}
        for name in sorted(counters)
    )
    lines.extend(spans)
    lines.extend(workers)
    lines.extend(
        {"event": "leftover_shard", "file": name} for name in leftovers
    )
    text = "".join(json.dumps(line, sort_keys=True) + "\n" for line in lines)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w") as handle:
        handle.write(text)
    os.replace(tmp, path)
    return path


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def load_manifest(path: str) -> dict:
    """Parse and validate a manifest; ``ValueError`` on any violation.

    Returns ``{"schema", "run_id", "meta", "counters", "spans",
    "workers", "leftover_shards"}`` with counters as one name->value
    dict.  This is the schema validator CI runs against the smoke
    trace, so it is strict: unknown event kinds, non-integer counters
    and malformed spans all fail loudly.
    """
    with open(path) as handle:
        raw = [line for line in handle.read().splitlines() if line.strip()]
    if not raw:
        raise ValueError("empty manifest")

    def parse(lineno: int, line: str) -> dict:
        try:
            event = json.loads(line)
        except ValueError as exc:
            raise ValueError(f"line {lineno}: not JSON ({exc})") from None
        if not isinstance(event, dict) or not isinstance(
            event.get("event"), str
        ):
            raise ValueError(f"line {lineno}: missing 'event' kind")
        return event

    header = parse(1, raw[0])
    if header["event"] != "manifest":
        raise ValueError("line 1: first event must be 'manifest'")
    if header.get("schema") != MANIFEST_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported manifest schema {header.get('schema')!r} "
            f"(expected {MANIFEST_SCHEMA_VERSION})"
        )
    if not isinstance(header.get("run_id"), str) or not header["run_id"]:
        raise ValueError("line 1: manifest requires a run_id")
    meta = header.get("meta", {})
    if not isinstance(meta, dict):
        raise ValueError("line 1: meta must be an object")
    out: dict = {
        "schema": MANIFEST_SCHEMA_VERSION,
        "run_id": header["run_id"],
        "meta": meta,
        "counters": {},
        "spans": [],
        "workers": [],
        "leftover_shards": [],
    }
    for lineno, line in enumerate(raw[1:], start=2):
        event = parse(lineno, line)
        kind = event["event"]
        if kind == "counter":
            name = event.get("name")
            value = event.get("value")
            if (
                not isinstance(name, str)
                or not isinstance(value, int)
                or isinstance(value, bool)
            ):
                raise ValueError(
                    f"line {lineno}: counter requires a string name "
                    "and an integer value"
                )
            if name in out["counters"]:
                raise ValueError(
                    f"line {lineno}: duplicate counter {name!r}"
                )
            out["counters"][name] = value
        elif kind == "span":
            if not isinstance(event.get("name"), str):
                raise ValueError(f"line {lineno}: span requires a name")
            if not _is_number(event.get("wall")) or event["wall"] < 0:
                raise ValueError(
                    f"line {lineno}: span requires a non-negative wall"
                )
            if not _is_number(event.get("start")):
                raise ValueError(f"line {lineno}: span requires a start")
            if "worker" not in event:
                raise ValueError(f"line {lineno}: span requires a worker")
            out["spans"].append(event)
        elif kind == "worker":
            for field in ("worker", "pid", "chunks", "wall", "cpu"):
                if field not in event:
                    raise ValueError(
                        f"line {lineno}: worker requires {field!r}"
                    )
            out["workers"].append(event)
        elif kind == "leftover_shard":
            if not isinstance(event.get("file"), str):
                raise ValueError(
                    f"line {lineno}: leftover_shard requires a file"
                )
            out["leftover_shards"].append(event["file"])
        elif kind == "manifest":
            raise ValueError(f"line {lineno}: duplicate manifest header")
        else:
            raise ValueError(f"line {lineno}: unknown event kind {kind!r}")
    return out
