"""Telemetry core: hierarchical spans and monotonic counters.

One :class:`Telemetry` instance collects everything a process (or one
worker chunk) observes: named integer counters and wall/CPU-timed
spans whose names nest by ``/`` (``chunk[3]/compute``).  An instance
becomes *ambient* through :func:`set_active`; instrumented code asks
:func:`active` for it and records only when one is installed.

The disabled-path contract — pinned by
``benchmarks/bench_obs_overhead.py`` — is that instrumentation costs
one module-global read per guarded site when telemetry is off::

    tel = active()
    if tel is not None:
        tel.count_many({...})

Kernels therefore accumulate their per-round tallies in plain local
ints (cheap against any vectorized round) and emit them through one
guarded call per invocation; per-round code never touches telemetry
objects.  Span timing shares one :class:`repro.util.timing.Stopwatch`
per context: consecutive :meth:`~repro.util.timing.Stopwatch.split`
readings give start offsets and durations on a single clock.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator, Mapping

from repro.util.timing import Stopwatch

_ACTIVE: "Telemetry | None" = None


def active() -> "Telemetry | None":
    """The ambient :class:`Telemetry`, or None when telemetry is off.

    This is the whole disabled-path cost of a guarded recording site.
    """
    return _ACTIVE


def set_active(telemetry: "Telemetry | None") -> "Telemetry | None":
    """Install the ambient telemetry context; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = telemetry
    return previous


@contextmanager
def span(name: str, **attrs) -> Iterator[dict | None]:
    """Span on the ambient telemetry; a no-op when telemetry is off.

    For cold control-flow paths (executor stages, plan execution)
    where the convenience outweighs the extra call.
    """
    tel = _ACTIVE
    if tel is None:
        yield None
    else:
        with tel.span(name, **attrs) as record:
            yield record


def count(name: str, value: int = 1) -> None:
    """Counter bump on the ambient telemetry; no-op when off."""
    tel = _ACTIVE
    if tel is not None:
        tel.count(name, value)


def count_many(counters: Mapping[str, int]) -> None:
    """Bulk counter merge on the ambient telemetry; no-op when off."""
    tel = _ACTIVE
    if tel is not None:
        tel.count_many(counters)


class Telemetry:
    """Span and counter sink for one process or worker chunk.

    Counters merge monotonically (addition only); spans record their
    qualified name, start offset on the instance's clock, wall
    duration and CPU (``time.process_time``) duration, plus any
    JSON-serializable attributes the call site attaches.
    """

    __slots__ = ("counters", "spans", "_stack", "_clock")

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.spans: list[dict] = []
        self._stack: list[str] = []
        self._clock = Stopwatch().start()

    def count(self, name: str, value: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + int(value)

    def count_many(self, counters: Mapping[str, int]) -> None:
        own = self.counters
        for name, value in counters.items():
            own[name] = own.get(name, 0) + int(value)

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[dict]:
        """Time a block; nested spans qualify their names with ``/``."""
        record: dict = {"name": "/".join(self._stack + [name])}
        if attrs:
            record["attrs"] = dict(attrs)
        self._stack.append(name)
        start = self._clock.split()
        cpu_start = time.process_time()
        try:
            yield record
        finally:
            self._stack.pop()
            record["start"] = start
            record["wall"] = self._clock.split() - start
            record["cpu"] = time.process_time() - cpu_start
            self.spans.append(record)

    def events(self) -> list[dict]:
        """Snapshot as JSON-ready shard events: spans, then counters."""
        events: list[dict] = [
            {"event": "span", **record} for record in self.spans
        ]
        if self.counters:
            events.append(
                {"event": "counters", "counters": dict(self.counters)}
            )
        return events
