"""``repro.obs``: low-overhead telemetry for the sweep stack.

Three layers, documented in their modules:

* :mod:`repro.obs.telemetry` — the ambient :class:`Telemetry` context
  (hierarchical spans, monotonic counters) and the guarded-emission
  contract that keeps disabled-path overhead to one attribute check;
* :mod:`repro.obs.manifest` — :class:`TraceSession`, per-worker JSONL
  shards and the deterministic merge into a schema-versioned run
  manifest;
* :mod:`repro.obs.stats` — the ``repro stats`` table renderer.
"""

from repro.obs.manifest import (
    MANIFEST_SCHEMA_VERSION,
    TraceSession,
    append_shard,
    current_session,
    load_manifest,
    shard_path,
    trace_session,
    traced_chunk,
    write_manifest,
)
from repro.obs.stats import render_stats
from repro.obs.telemetry import (
    Telemetry,
    active,
    count,
    count_many,
    set_active,
    span,
)

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "Telemetry",
    "TraceSession",
    "active",
    "append_shard",
    "count",
    "count_many",
    "current_session",
    "load_manifest",
    "render_stats",
    "set_active",
    "shard_path",
    "span",
    "trace_session",
    "traced_chunk",
    "write_manifest",
]
