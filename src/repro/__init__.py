"""Reproduction of "The multi-agent rotor-router on the ring: a
deterministic alternative to parallel random walks" (Klasing, Kosowski,
Pajak, Sauerwald; PODC 2013 / Distributed Computing 30(2), 2017).

Public API overview
-------------------

Engines (the paper's model, §1.3):

>>> from repro import RingRotorRouter
>>> from repro.core import pointers, placement
>>> n, k = 64, 4
>>> engine = RingRotorRouter(
...     n,
...     pointers.ring_negative(n, placement.equally_spaced(n, k)),
...     placement.equally_spaced(n, k),
... )
>>> cover_time = engine.run_until_covered()

The comparison baseline (parallel random walks, §3.3):

>>> from repro import RingRandomWalks
>>> walks = RingRandomWalks(n, placement.equally_spaced(n, k), seed=7)
>>> walk_cover = walks.run_until_covered()

Subpackages
-----------
- :mod:`repro.core` — rotor-router engines, delayed deployments,
  domains, limit behaviour;
- :mod:`repro.graphs` — port-labeled graph substrate;
- :mod:`repro.randomwalk` — k independent walks + closed forms;
- :mod:`repro.theory` — Lemma 13 sequences, §2.3 ODE, token game,
  Θ-shapes;
- :mod:`repro.analysis` — measurement harnesses (cover/return times,
  scaling fits, remote vertices, domain statistics);
- :mod:`repro.loadbalance` — token-diffusion extension;
- :mod:`repro.experiments` — the Table 1 / figure / theorem
  reproductions, runnable as ``python -m repro.experiments.<name>``;
- :mod:`repro.sweep` — declarative parameter sweeps over a batched
  ring kernel with a parallel executor and an on-disk result cache,
  runnable as ``python -m repro sweep <scenario>``.
"""

from repro.core.engine import MultiAgentRotorRouter
from repro.core.ring import RingRotorRouter
from repro.graphs.base import PortLabeledGraph
from repro.graphs.ring import ring_graph
from repro.randomwalk.ring_walk import RingRandomWalks
from repro.randomwalk.walker import ParallelRandomWalks

__version__ = "1.0.0"

__all__ = [
    "MultiAgentRotorRouter",
    "RingRotorRouter",
    "PortLabeledGraph",
    "ring_graph",
    "RingRandomWalks",
    "ParallelRandomWalks",
    "__version__",
]
