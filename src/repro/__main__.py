"""``python -m repro`` — dispatch to the experiments CLI."""

from repro.cli import main

raise SystemExit(main())
