"""Seeded random graphs (expanders in practice) and port shuffling.

Parallel random-walk speed-up is known to be linear on expanders
(Alon et al. [4], Elsässer–Sauerwald [15]); we reproduce the analogous
multi-agent rotor-router behaviour on random regular graphs.  Both
generators take explicit seeds so experiments are reproducible, and
both return connected graphs (retrying the construction when needed).
"""

from __future__ import annotations

import numpy as np

from repro.graphs.base import PortLabeledGraph
from repro.util.rng import make_rng

_MAX_ATTEMPTS = 200


def gnp_random_graph(
    n: int,
    p: float,
    seed: int | np.random.Generator | None = 0,
    require_connected: bool = True,
) -> PortLabeledGraph:
    """Erdős–Rényi G(n, p) with ports in ascending neighbor order.

    When ``require_connected`` is set the construction retries with
    fresh randomness until the sample is connected, which for
    ``p >= 2 ln n / n`` succeeds quickly.
    """
    if n < 2:
        raise ValueError(f"G(n,p) requires n >= 2, got {n}")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    rng = make_rng(seed)
    for _ in range(_MAX_ATTEMPTS):
        mask = rng.random((n, n)) < p
        edges = [
            (u, v) for u in range(n) for v in range(u + 1, n) if mask[u, v]
        ]
        graph = PortLabeledGraph.from_edges(n, edges)
        if not require_connected or graph.is_connected():
            return graph
    raise RuntimeError(
        f"failed to sample a connected G({n}, {p}) in {_MAX_ATTEMPTS} attempts"
    )


def random_regular_graph(
    n: int, degree: int, seed: int | np.random.Generator | None = 0
) -> PortLabeledGraph:
    """A connected random d-regular graph.

    Delegates the sampling to networkx (whose algorithm avoids the
    naive pairing model's exponential rejection rate at higher degrees)
    and retries with derived seeds until the sample is connected —
    quick for d >= 3, where random regular graphs are connected w.h.p.
    """
    if n * degree % 2 != 0:
        raise ValueError("n * degree must be even")
    if degree >= n:
        raise ValueError("degree must be smaller than n")
    if degree < 1:
        raise ValueError("degree must be at least 1")
    import networkx as nx

    rng = make_rng(seed)
    for _ in range(_MAX_ATTEMPTS):
        sample_seed = int(rng.integers(0, 2 ** 31 - 1))
        nx_graph = nx.random_regular_graph(degree, n, seed=sample_seed)
        graph = PortLabeledGraph.from_edges(n, nx_graph.edges())
        if graph.is_connected():
            return graph
    raise RuntimeError(
        f"failed to sample a connected {degree}-regular graph on {n} nodes"
    )


def shuffled_ports(
    graph: PortLabeledGraph, seed: int | np.random.Generator | None = 0
) -> PortLabeledGraph:
    """Return the same graph with every node's port order shuffled.

    Port orders are part of the adversarial initialization in the
    rotor-router model; shuffling them (deterministically, per seed)
    lets experiments sample over cyclic orders on graphs of degree > 2.
    """
    rng = make_rng(seed)
    new_ports = []
    for v in range(graph.num_nodes):
        row = list(graph.neighbors(v))
        rng.shuffle(row)
        new_ports.append(row)
    return PortLabeledGraph(new_ports)
