"""Port-labeled undirected graphs: the substrate of the rotor-router.

The rotor-router model is defined on an undirected graph whose every
node carries a *fixed cyclic ordering of its outgoing arcs* (a port
ordering).  Plain adjacency lists are not enough — the order matters —
so this package provides :class:`PortLabeledGraph`, which stores the
neighbors of each node in explicit port order, together with builders
for the graph families used in the paper and its related work: rings
(the paper's main object), paths (used in the Theorem 1 reduction),
grids/tori, hypercubes, cliques, stars, lollipops and random graphs.
"""

from repro.graphs.base import GraphCSR, PortLabeledGraph
from repro.graphs.families import (
    clique,
    grid_2d,
    hypercube,
    lollipop,
    path_graph,
    star,
    torus_2d,
)
from repro.graphs.random_graphs import (
    gnp_random_graph,
    random_regular_graph,
    shuffled_ports,
)
from repro.graphs.ring import ring_graph

__all__ = [
    "GraphCSR",
    "PortLabeledGraph",
    "ring_graph",
    "path_graph",
    "grid_2d",
    "torus_2d",
    "hypercube",
    "clique",
    "star",
    "lollipop",
    "gnp_random_graph",
    "random_regular_graph",
    "shuffled_ports",
]
