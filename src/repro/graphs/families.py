"""Deterministic graph families used by the paper and its related work.

The paper's headline results are about the ring, but its introduction
and related-work sections compare against other topologies: the
two-dimensional grid (rotor-router cover Θ(|V|^{3/2}) vs random-walk
Θ(|V| log² |V|)), hypercubes and cliques (linear random-walk speed-up),
and stars.  The multi-agent speed-up experiments of Yanovski et al.
[27], which the paper cites as the only prior multi-agent study, are
reproduced on these families in ``benchmarks/bench_speedup_general_graphs.py``.
"""

from __future__ import annotations

from repro.graphs.base import PortLabeledGraph


def path_graph(n: int) -> PortLabeledGraph:
    """The n-node path 0-1-...-(n-1).

    Used by the Theorem 1 analysis: the ring with all agents on one node
    behaves like a path with half the agents at one endpoint.  Interior
    nodes order their ports as [right, left], matching the ring's
    convention; endpoints have a single port.
    """
    if n < 2:
        raise ValueError(f"path requires at least 2 nodes, got {n}")
    ports: list[list[int]] = []
    for v in range(n):
        if v == 0:
            ports.append([1])
        elif v == n - 1:
            ports.append([n - 2])
        else:
            ports.append([v + 1, v - 1])
    return PortLabeledGraph(ports)


def grid_2d(rows: int, cols: int) -> PortLabeledGraph:
    """The rows x cols grid with open boundaries.

    Node (r, c) has id ``r * cols + c``.  Ports are ordered
    east, south, west, north (skipping missing directions), a fixed
    order so runs are reproducible.
    """
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be positive")
    if rows * cols < 2:
        raise ValueError("grid must have at least 2 nodes")

    def node_id(r: int, c: int) -> int:
        return r * cols + c

    ports: list[list[int]] = []
    for r in range(rows):
        for c in range(cols):
            row: list[int] = []
            if c + 1 < cols:
                row.append(node_id(r, c + 1))
            if r + 1 < rows:
                row.append(node_id(r + 1, c))
            if c - 1 >= 0:
                row.append(node_id(r, c - 1))
            if r - 1 >= 0:
                row.append(node_id(r - 1, c))
            ports.append(row)
    return PortLabeledGraph(ports)


def torus_2d(rows: int, cols: int) -> PortLabeledGraph:
    """The rows x cols torus (grid with wrap-around), 4-regular.

    Requires both dimensions >= 3 so that the wrap-around does not
    create parallel edges.
    """
    if rows < 3 or cols < 3:
        raise ValueError("torus dimensions must be at least 3")

    def node_id(r: int, c: int) -> int:
        return r * cols + c

    ports = []
    for r in range(rows):
        for c in range(cols):
            ports.append(
                [
                    node_id(r, (c + 1) % cols),
                    node_id((r + 1) % rows, c),
                    node_id(r, (c - 1) % cols),
                    node_id((r - 1) % rows, c),
                ]
            )
    return PortLabeledGraph(ports)


def hypercube(dimension: int) -> PortLabeledGraph:
    """The d-dimensional hypercube on 2^d nodes.

    Port i of node v flips bit i: the natural dimension-ordered ports.
    Studied as a rotor-router load-balancing topology by Akbari and
    Berenbrink [1].
    """
    if dimension < 1:
        raise ValueError("hypercube dimension must be at least 1")
    n = 1 << dimension
    ports = [[v ^ (1 << bit) for bit in range(dimension)] for v in range(n)]
    return PortLabeledGraph(ports)


def clique(n: int) -> PortLabeledGraph:
    """The complete graph K_n with ports in ascending neighbor order."""
    if n < 2:
        raise ValueError(f"clique requires at least 2 nodes, got {n}")
    ports = [[u for u in range(n) if u != v] for v in range(n)]
    return PortLabeledGraph(ports)


def star(leaves: int) -> PortLabeledGraph:
    """The star with a center (node 0) and ``leaves`` leaf nodes."""
    if leaves < 1:
        raise ValueError("star requires at least 1 leaf")
    ports = [list(range(1, leaves + 1))] + [[0] for _ in range(leaves)]
    return PortLabeledGraph(ports)


def lollipop(clique_size: int, tail_length: int) -> PortLabeledGraph:
    """A clique with a path tail — the classic bad case for walk-based
    exploration, exercised by cover-time stress tests."""
    if clique_size < 3:
        raise ValueError("lollipop clique must have at least 3 nodes")
    if tail_length < 1:
        raise ValueError("lollipop tail must have at least 1 node")
    n = clique_size + tail_length
    ports: list[list[int]] = []
    for v in range(clique_size):
        row = [u for u in range(clique_size) if u != v]
        if v == clique_size - 1:
            row.append(clique_size)  # attach the tail
        ports.append(row)
    for i in range(tail_length):
        v = clique_size + i
        row = [v - 1]
        if i + 1 < tail_length:
            row.append(v + 1)
        ports.append(row)
    return PortLabeledGraph(ports)
