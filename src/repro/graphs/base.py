"""Port-labeled undirected graphs.

A :class:`PortLabeledGraph` over nodes ``0..n-1`` stores, for each node
``v``, the list ``ports[v]`` of neighbors *in cyclic port order*: port
``i`` of ``v`` leads to ``ports[v][i]``, and the rotor-router advances
pointers through ports ``0, 1, ..., deg(v)-1`` cyclically.

The graph is simple (no self-loops, no parallel edges) and undirected:
``u`` appears in ``ports[v]`` exactly when ``v`` appears in
``ports[u]``.  The *directed symmetric version* of the paper (arcs
``(v,u)`` and ``(u,v)`` for every edge ``{v,u}``) is implicit: an arc is
identified by its tail and port index.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np


@dataclass(frozen=True)
class GraphCSR:
    """A port-labeled graph packed into CSR arrays.

    The flat layout the batched general-graph kernel consumes: node
    ``v``'s neighbors in port order are
    ``neighbors[indptr[v]:indptr[v + 1]]``, so *arc* ``(v, port)`` is
    row ``indptr[v] + port``.  ``deg`` is redundant with ``indptr``
    but kept materialized because the kernel gathers it per occupied
    node every round.

    Arrays are immutable (``writeable=False``); ``digest`` is a
    deterministic content hash of the packed structure, used to key
    shared graph tables so a graph is serialized once per executor
    chunk instead of once per cell.
    """

    indptr: np.ndarray
    neighbors: np.ndarray
    deg: np.ndarray

    def __post_init__(self) -> None:
        for name in ("indptr", "neighbors", "deg"):
            array = getattr(self, name)
            if array.flags.writeable:
                array = array.copy()
                array.flags.writeable = False
                object.__setattr__(self, name, array)

    @classmethod
    def from_ports(cls, ports: Sequence[Sequence[int]]) -> "GraphCSR":
        """Pack explicit port lists (``ports[v]`` in cyclic order)."""
        deg = np.fromiter(
            (len(row) for row in ports), dtype=np.int64, count=len(ports)
        )
        indptr = np.zeros(len(ports) + 1, dtype=np.int64)
        np.cumsum(deg, out=indptr[1:])
        if indptr[-1]:
            neighbors = np.concatenate(
                [np.asarray(row, dtype=np.int64) for row in ports if len(row)]
            )
        else:
            neighbors = np.zeros(0, dtype=np.int64)
        return cls(indptr=indptr, neighbors=neighbors, deg=deg)

    @property
    def num_nodes(self) -> int:
        return len(self.indptr) - 1

    @property
    def num_arcs(self) -> int:
        return int(self.indptr[-1])

    @property
    def digest(self) -> str:
        """Deterministic content hash of the packed graph structure."""
        cached = getattr(self, "_digest", None)
        if cached is None:
            payload = self.indptr.tobytes() + self.neighbors.tobytes()
            cached = hashlib.sha256(payload).hexdigest()
            object.__setattr__(self, "_digest", cached)
        return cached

    def to_ports(self) -> tuple[tuple[int, ...], ...]:
        """Unpack back into the port-list form (exact round trip)."""
        flat = self.neighbors.tolist()
        bounds = self.indptr.tolist()
        return tuple(
            tuple(flat[bounds[v]:bounds[v + 1]])
            for v in range(self.num_nodes)
        )


class PortLabeledGraph:
    """An undirected graph with explicit cyclic port orderings.

    Parameters
    ----------
    ports:
        ``ports[v]`` is the sequence of neighbors of node ``v`` in port
        order.  The constructor copies the data into tuples, so the
        graph is immutable after construction.
    validate:
        When true (the default), check symmetry and simplicity.
    """

    __slots__ = (
        "_ports", "_port_index_cache", "_num_edges", "_csr_cache",
        "_diameter_cache",
    )

    def __init__(
        self, ports: Sequence[Sequence[int]], validate: bool = True
    ) -> None:
        self._ports: tuple[tuple[int, ...], ...] = tuple(
            tuple(int(u) for u in row) for row in ports
        )
        n = len(self._ports)
        if validate:
            self._validate(n)
        self._port_index_cache: tuple[dict[int, int], ...] | None = None
        self._csr_cache: GraphCSR | None = None
        self._diameter_cache: int | None = None
        self._num_edges = sum(len(row) for row in self._ports) // 2

    @property
    def _port_index(self) -> tuple[dict[int, int], ...]:
        """Reverse lookup (port index of u within ports[v]), built lazily.

        Most graphs never need the reverse direction — simulation only
        follows ports forward — and building one dict per node is O(m)
        Python-object work, so it is deferred to the first
        ``port_to``/``has_edge`` call instead of taxing every
        construction.
        """
        if self._port_index_cache is None:
            self._port_index_cache = tuple(
                {u: i for i, u in enumerate(row)} for row in self._ports
            )
        return self._port_index_cache

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls, n: int, edges: Iterable[tuple[int, int]]
    ) -> "PortLabeledGraph":
        """Build a graph with ports ordered by ascending neighbor id."""
        adjacency: list[set[int]] = [set() for _ in range(n)]
        for u, v in edges:
            if u == v:
                raise ValueError(f"self-loop at node {u} is not allowed")
            if not (0 <= u < n and 0 <= v < n):
                raise ValueError(f"edge ({u}, {v}) out of range for n={n}")
            adjacency[u].add(v)
            adjacency[v].add(u)
        return cls([sorted(neigh) for neigh in adjacency])

    @classmethod
    def from_networkx(cls, nx_graph) -> "PortLabeledGraph":
        """Convert a networkx graph with integer nodes ``0..n-1``."""
        n = nx_graph.number_of_nodes()
        nodes = sorted(nx_graph.nodes())
        if nodes != list(range(n)):
            raise ValueError("nodes must be exactly 0..n-1")
        return cls.from_edges(n, nx_graph.edges())

    def _validate(self, n: int) -> None:
        for v, row in enumerate(self._ports):
            seen: set[int] = set()
            for u in row:
                if not 0 <= u < n:
                    raise ValueError(f"node {v} has out-of-range neighbor {u}")
                if u == v:
                    raise ValueError(f"self-loop at node {v}")
                if u in seen:
                    raise ValueError(
                        f"parallel edge {v}-{u}: multigraphs are not supported"
                    )
                seen.add(u)
        for v, row in enumerate(self._ports):
            for u in row:
                if v not in self._ports[u]:
                    raise ValueError(
                        f"asymmetric adjacency: {v}->{u} present, {u}->{v} missing"
                    )

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self._ports)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    @property
    def num_arcs(self) -> int:
        """Number of arcs of the directed symmetric version (2m)."""
        return 2 * self._num_edges

    def degree(self, v: int) -> int:
        return len(self._ports[v])

    def neighbors(self, v: int) -> tuple[int, ...]:
        """Neighbors of ``v`` in port order."""
        return self._ports[v]

    def port_lists(self) -> tuple[tuple[int, ...], ...]:
        """All port lists at once (the constructor's canonical form).

        Returns the internal immutable tuple, so callers materializing
        many cells over one graph share a single structure instead of
        copying O(m) port data per cell.
        """
        return self._ports

    def to_csr(self) -> GraphCSR:
        """The graph packed into CSR arrays (computed once, cached)."""
        if self._csr_cache is None:
            self._csr_cache = GraphCSR.from_ports(self._ports)
        return self._csr_cache

    def port_target(self, v: int, port: int) -> int:
        """The node reached from ``v`` through port ``port``."""
        return self._ports[v][port % len(self._ports[v])]

    def port_to(self, v: int, u: int) -> int:
        """The port index of ``v`` that leads to neighbor ``u``."""
        try:
            return self._port_index[v][u]
        except KeyError as exc:
            raise ValueError(f"{u} is not a neighbor of {v}") from exc

    def has_edge(self, v: int, u: int) -> bool:
        return u in self._port_index[v]

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over undirected edges as ``(min, max)`` pairs."""
        for v, row in enumerate(self._ports):
            for u in row:
                if v < u:
                    yield (v, u)

    def arcs(self) -> Iterator[tuple[int, int]]:
        """Iterate over all arcs (both orientations of every edge)."""
        for v, row in enumerate(self._ports):
            for u in row:
                yield (v, u)

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def is_connected(self) -> bool:
        n = self.num_nodes
        if n == 0:
            return True
        return len(self._bfs_distances(0)) == n

    def _bfs_distances(self, source: int) -> dict[int, int]:
        distances = {source: 0}
        queue = deque([source])
        while queue:
            v = queue.popleft()
            for u in self._ports[v]:
                if u not in distances:
                    distances[u] = distances[v] + 1
                    queue.append(u)
        return distances

    def bfs_distances(self, source: int) -> list[int]:
        """Distances from ``source`` to every node (-1 if unreachable)."""
        found = self._bfs_distances(source)
        return [found.get(v, -1) for v in range(self.num_nodes)]

    def eccentricity(self, source: int) -> int:
        """Maximum distance from ``source`` (graph must be connected)."""
        found = self._bfs_distances(source)
        if len(found) != self.num_nodes:
            raise ValueError("graph is not connected")
        return max(found.values())

    def diameter(self) -> int:
        """Exact diameter by n BFS traversals, computed once and cached.

        The cache matters because round-budget derivations consult the
        diameter once per scheduled cell — grids fan hundreds of cells
        over one graph instance.
        """
        if self._diameter_cache is None:
            self._diameter_cache = max(
                self.eccentricity(v) for v in range(self.num_nodes)
            )
        return self._diameter_cache

    def to_networkx(self):
        """Export to a networkx graph (edges only; port order is lost)."""
        import networkx as nx

        nx_graph = nx.Graph()
        nx_graph.add_nodes_from(range(self.num_nodes))
        nx_graph.add_edges_from(self.edges())
        return nx_graph

    # ------------------------------------------------------------------
    # dunder conveniences
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.num_nodes

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PortLabeledGraph):
            return NotImplemented
        return self._ports == other._ports

    def __hash__(self) -> int:
        return hash(self._ports)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PortLabeledGraph(n={self.num_nodes}, m={self.num_edges})"
        )
