"""Port-labeled undirected graphs.

A :class:`PortLabeledGraph` over nodes ``0..n-1`` stores, for each node
``v``, the list ``ports[v]`` of neighbors *in cyclic port order*: port
``i`` of ``v`` leads to ``ports[v][i]``, and the rotor-router advances
pointers through ports ``0, 1, ..., deg(v)-1`` cyclically.

The graph is simple (no self-loops, no parallel edges) and undirected:
``u`` appears in ``ports[v]`` exactly when ``v`` appears in
``ports[u]``.  The *directed symmetric version* of the paper (arcs
``(v,u)`` and ``(u,v)`` for every edge ``{v,u}``) is implicit: an arc is
identified by its tail and port index.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator, Sequence


class PortLabeledGraph:
    """An undirected graph with explicit cyclic port orderings.

    Parameters
    ----------
    ports:
        ``ports[v]`` is the sequence of neighbors of node ``v`` in port
        order.  The constructor copies the data into tuples, so the
        graph is immutable after construction.
    validate:
        When true (the default), check symmetry and simplicity.
    """

    __slots__ = ("_ports", "_port_index", "_num_edges")

    def __init__(
        self, ports: Sequence[Sequence[int]], validate: bool = True
    ) -> None:
        self._ports: tuple[tuple[int, ...], ...] = tuple(
            tuple(int(u) for u in row) for row in ports
        )
        n = len(self._ports)
        if validate:
            self._validate(n)
        # Reverse lookup: port index of u within ports[v].
        self._port_index: tuple[dict[int, int], ...] = tuple(
            {u: i for i, u in enumerate(row)} for row in self._ports
        )
        self._num_edges = sum(len(row) for row in self._ports) // 2

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls, n: int, edges: Iterable[tuple[int, int]]
    ) -> "PortLabeledGraph":
        """Build a graph with ports ordered by ascending neighbor id."""
        adjacency: list[set[int]] = [set() for _ in range(n)]
        for u, v in edges:
            if u == v:
                raise ValueError(f"self-loop at node {u} is not allowed")
            if not (0 <= u < n and 0 <= v < n):
                raise ValueError(f"edge ({u}, {v}) out of range for n={n}")
            adjacency[u].add(v)
            adjacency[v].add(u)
        return cls([sorted(neigh) for neigh in adjacency])

    @classmethod
    def from_networkx(cls, nx_graph) -> "PortLabeledGraph":
        """Convert a networkx graph with integer nodes ``0..n-1``."""
        n = nx_graph.number_of_nodes()
        nodes = sorted(nx_graph.nodes())
        if nodes != list(range(n)):
            raise ValueError("nodes must be exactly 0..n-1")
        return cls.from_edges(n, nx_graph.edges())

    def _validate(self, n: int) -> None:
        for v, row in enumerate(self._ports):
            seen: set[int] = set()
            for u in row:
                if not 0 <= u < n:
                    raise ValueError(f"node {v} has out-of-range neighbor {u}")
                if u == v:
                    raise ValueError(f"self-loop at node {v}")
                if u in seen:
                    raise ValueError(
                        f"parallel edge {v}-{u}: multigraphs are not supported"
                    )
                seen.add(u)
        for v, row in enumerate(self._ports):
            for u in row:
                if v not in self._ports[u]:
                    raise ValueError(
                        f"asymmetric adjacency: {v}->{u} present, {u}->{v} missing"
                    )

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self._ports)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    @property
    def num_arcs(self) -> int:
        """Number of arcs of the directed symmetric version (2m)."""
        return 2 * self._num_edges

    def degree(self, v: int) -> int:
        return len(self._ports[v])

    def neighbors(self, v: int) -> tuple[int, ...]:
        """Neighbors of ``v`` in port order."""
        return self._ports[v]

    def port_target(self, v: int, port: int) -> int:
        """The node reached from ``v`` through port ``port``."""
        return self._ports[v][port % len(self._ports[v])]

    def port_to(self, v: int, u: int) -> int:
        """The port index of ``v`` that leads to neighbor ``u``."""
        try:
            return self._port_index[v][u]
        except KeyError as exc:
            raise ValueError(f"{u} is not a neighbor of {v}") from exc

    def has_edge(self, v: int, u: int) -> bool:
        return u in self._port_index[v]

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over undirected edges as ``(min, max)`` pairs."""
        for v, row in enumerate(self._ports):
            for u in row:
                if v < u:
                    yield (v, u)

    def arcs(self) -> Iterator[tuple[int, int]]:
        """Iterate over all arcs (both orientations of every edge)."""
        for v, row in enumerate(self._ports):
            for u in row:
                yield (v, u)

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def is_connected(self) -> bool:
        n = self.num_nodes
        if n == 0:
            return True
        return len(self._bfs_distances(0)) == n

    def _bfs_distances(self, source: int) -> dict[int, int]:
        distances = {source: 0}
        queue = deque([source])
        while queue:
            v = queue.popleft()
            for u in self._ports[v]:
                if u not in distances:
                    distances[u] = distances[v] + 1
                    queue.append(u)
        return distances

    def bfs_distances(self, source: int) -> list[int]:
        """Distances from ``source`` to every node (-1 if unreachable)."""
        found = self._bfs_distances(source)
        return [found.get(v, -1) for v in range(self.num_nodes)]

    def eccentricity(self, source: int) -> int:
        """Maximum distance from ``source`` (graph must be connected)."""
        found = self._bfs_distances(source)
        if len(found) != self.num_nodes:
            raise ValueError("graph is not connected")
        return max(found.values())

    def diameter(self) -> int:
        """Exact diameter by n BFS traversals (fine at our scales)."""
        return max(self.eccentricity(v) for v in range(self.num_nodes))

    def to_networkx(self):
        """Export to a networkx graph (edges only; port order is lost)."""
        import networkx as nx

        nx_graph = nx.Graph()
        nx_graph.add_nodes_from(range(self.num_nodes))
        nx_graph.add_edges_from(self.edges())
        return nx_graph

    # ------------------------------------------------------------------
    # dunder conveniences
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.num_nodes

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PortLabeledGraph):
            return NotImplemented
        return self._ports == other._ports

    def __hash__(self) -> int:
        return hash(self._ports)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PortLabeledGraph(n={self.num_nodes}, m={self.num_edges})"
        )
