"""The ring (cycle) graph — the paper's main object of study.

Port convention used throughout the reproduction: for every node ``v``
of the n-node ring,

* port 0 leads **clockwise** to ``(v + 1) mod n``;
* port 1 leads **anticlockwise** to ``(v - 1) mod n``.

The paper notes that on the ring there is only one cyclic permutation
of two neighbors, so only the pointer arrangement (not the port order)
is adversarial; fixing this convention therefore loses no generality,
and it is what lets :class:`repro.core.ring.RingRotorRouter` represent
pointers as +/-1 directions while remaining step-for-step equivalent to
the general engine on :func:`ring_graph`.
"""

from __future__ import annotations

from repro.graphs.base import PortLabeledGraph

CLOCKWISE = +1
ANTICLOCKWISE = -1


def ring_graph(n: int) -> PortLabeledGraph:
    """The n-node cycle with the canonical port convention.

    Requires ``n >= 3`` (a 2-cycle would be a multigraph, which the
    rotor-router engine does not model).
    """
    if n < 3:
        raise ValueError(f"ring requires at least 3 nodes, got {n}")
    ports = [[(v + 1) % n, (v - 1) % n] for v in range(n)]
    return PortLabeledGraph(ports)


def ring_distance(n: int, u: int, v: int) -> int:
    """Graph distance between ``u`` and ``v`` on the n-ring."""
    d = abs(u - v) % n
    return min(d, n - d)


def clockwise_distance(n: int, u: int, v: int) -> int:
    """Number of clockwise steps from ``u`` to ``v`` on the n-ring."""
    return (v - u) % n


def direction_toward(n: int, source: int, target: int) -> int:
    """Shortest-path direction (+1 clockwise / -1 anticlockwise).

    Ties (antipodal target on an even ring) resolve clockwise; the
    adversary in the paper may pick either, and experiments that care
    test both via explicit pointer arrays.
    """
    if source == target:
        raise ValueError("direction is undefined for source == target")
    forward = clockwise_distance(n, source, target)
    return CLOCKWISE if forward <= n - forward else ANTICLOCKWISE
