"""The paper's asymptotic shapes as explicit normalization formulas.

Θ-bounds carry no constants, so experiments never compare absolute
values against these functions; they divide measured quantities by them
and check the resulting column is flat across k (and across n).  The
k = 1 cases fall back to the exact/known single-agent values so that
speed-up tables have a meaningful baseline.
"""

from __future__ import annotations

import math


def harmonic_number(k: int) -> float:
    """H_k = 1 + 1/2 + ... + 1/k (H_0 = 0)."""
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    return sum(1.0 / i for i in range(1, k + 1))


def _check(n: int, k: int) -> None:
    if n < 3:
        raise ValueError(f"ring requires n >= 3, got {n}")
    if k < 1:
        raise ValueError(f"k must be at least 1, got {k}")


def rotor_cover_worst(n: int, k: int) -> float:
    """Θ(n²/log k) — k-agent rotor-router, worst placement (Thms 1-2)."""
    _check(n, k)
    if k == 1:
        return float(n * n)
    return n * n / math.log(k)


def rotor_cover_best(n: int, k: int) -> float:
    """Θ(n²/k²) — k-agent rotor-router, best placement (Thms 3-4)."""
    _check(n, k)
    return (n / k) ** 2


def rotor_return_time(n: int, k: int) -> float:
    """Θ(n/k) — k-agent rotor-router return time (Thm 6)."""
    _check(n, k)
    return n / k


def walk_cover_worst(n: int, k: int) -> float:
    """Θ(n²/log k) — k random walks, worst placement (Alon et al. [4])."""
    _check(n, k)
    if k == 1:
        return n * (n - 1) / 2.0
    return n * n / math.log(k)


def walk_cover_best(n: int, k: int) -> float:
    """Θ((n/k)² log² k) — k random walks, equal spacing (Thm 5)."""
    _check(n, k)
    if k == 1:
        return n * (n - 1) / 2.0
    return (n / k) ** 2 * math.log(k) ** 2


def rotor_speedup_worst(k: int) -> float:
    """Worst-placement speed-up over one agent: Θ(log k)."""
    if k < 1:
        raise ValueError(f"k must be at least 1, got {k}")
    return max(1.0, math.log(k))


def rotor_speedup_best(k: int) -> float:
    """Best-placement speed-up over one agent: Θ(k²)."""
    if k < 1:
        raise ValueError(f"k must be at least 1, got {k}")
    return float(k * k)


def walk_speedup_best(k: int) -> float:
    """Best-placement random-walk speed-up: Θ(k²/log²k)."""
    if k < 1:
        raise ValueError(f"k must be at least 1, got {k}")
    if k == 1:
        return 1.0
    return k * k / math.log(k) ** 2


def paper_regime_max_k(n: int) -> int:
    """Largest k with k < n^(1/11) (the paper's analysis regime)."""
    if n < 3:
        raise ValueError(f"ring requires n >= 3, got {n}")
    k = int(round(n ** (1.0 / 11.0)))
    while k ** 11 >= n:
        k -= 1
    return max(k, 1)
