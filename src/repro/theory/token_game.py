"""The one-player token game from the appendix proof of Lemma 8.

k stacks start with η tokens each.  A move takes one token from stack
``src`` to stack ``dst`` and is **legal** iff, before the move, the
destination holds at most 8 tokens more than the source
(``h_dst <= h_src + 8``).  The proof establishes two facts that we make
executable and stress in tests/benchmarks:

* **partial-sum invariant**: after any number of legal moves, the sum
  of the i largest stacks is at most ``η·i + 5·k·i − 5·i²``;
* **claim**: every stack always holds at least ``η − 5k + 5`` tokens.

The game models lazy-domain sizes: a domain can only "steal" a node
from a neighbor that is not much smaller (Lemma 8 condition), hence no
domain can ever be bled dry — the heart of the domain-stability
argument.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.util.rng import make_rng

LEGAL_MARGIN = 8
"""A move is legal iff the destination exceeds the source by at most this."""


class IllegalMoveError(ValueError):
    """Raised when a requested token move violates the legality rule."""


class TokenGame:
    """Mutable state of the one-player token game."""

    def __init__(self, num_stacks: int, initial_height: int) -> None:
        if num_stacks < 2:
            raise ValueError(f"need at least 2 stacks, got {num_stacks}")
        if initial_height < 0:
            raise ValueError(
                f"initial height must be non-negative, got {initial_height}"
            )
        self.num_stacks = num_stacks
        self.initial_height = initial_height
        self.heights = [initial_height] * num_stacks
        self.moves_played = 0

    # ------------------------------------------------------------------
    # moves
    # ------------------------------------------------------------------
    def is_legal(self, src: int, dst: int) -> bool:
        """Legality: src nonempty, src != dst, h_dst <= h_src + 8."""
        if src == dst:
            return False
        if not (0 <= src < self.num_stacks and 0 <= dst < self.num_stacks):
            return False
        if self.heights[src] <= 0:
            return False
        return self.heights[dst] <= self.heights[src] + LEGAL_MARGIN

    def move(self, src: int, dst: int) -> None:
        """Apply a legal move; raise :class:`IllegalMoveError` otherwise."""
        if not self.is_legal(src, dst):
            raise IllegalMoveError(
                f"move {src}->{dst} illegal: heights "
                f"{self.heights[src] if 0 <= src < self.num_stacks else '?'} -> "
                f"{self.heights[dst] if 0 <= dst < self.num_stacks else '?'}"
            )
        self.heights[src] -= 1
        self.heights[dst] += 1
        self.moves_played += 1

    def legal_moves(self) -> list[tuple[int, int]]:
        """All currently legal (src, dst) pairs."""
        return [
            (src, dst)
            for src in range(self.num_stacks)
            for dst in range(self.num_stacks)
            if self.is_legal(src, dst)
        ]

    # ------------------------------------------------------------------
    # invariants (the appendix claim and its proof invariant)
    # ------------------------------------------------------------------
    def min_height(self) -> int:
        return min(self.heights)

    def sum_of_largest(self, i: int) -> int:
        """y_i: the sum of the i largest stack heights."""
        if not 1 <= i <= self.num_stacks:
            raise ValueError(f"i must be in [1, {self.num_stacks}]")
        return sum(sorted(self.heights, reverse=True)[:i])

    def claim_lower_bound(self) -> int:
        """The appendix claim: every stack holds >= η − 5k + 5 tokens."""
        return self.initial_height - 5 * self.num_stacks + 5

    def claim_holds(self) -> bool:
        return self.min_height() >= self.claim_lower_bound()

    def partial_sum_bound(self, i: int) -> int:
        """Proof invariant bound: y_i <= η·i + 5·k·i − 5·i²."""
        if not 1 <= i <= self.num_stacks:
            raise ValueError(f"i must be in [1, {self.num_stacks}]")
        eta, k = self.initial_height, self.num_stacks
        return eta * i + 5 * k * i - 5 * i * i

    def partial_sums_hold(self) -> bool:
        return all(
            self.sum_of_largest(i) <= self.partial_sum_bound(i)
            for i in range(1, self.num_stacks + 1)
        )


# ----------------------------------------------------------------------
# adversaries
# ----------------------------------------------------------------------
def play_random_adversary(
    game: TokenGame,
    moves: int,
    seed: int | np.random.Generator | None = 0,
) -> int:
    """Play ``moves`` uniformly random legal moves; returns moves made.

    Stops early if no legal move exists (cannot happen for k >= 2 with
    positive heights, but guarded anyway).
    """
    rng = make_rng(seed)
    played = 0
    for _ in range(moves):
        options = game.legal_moves()
        if not options:
            break
        src, dst = options[int(rng.integers(0, len(options)))]
        game.move(src, dst)
        played += 1
    return played


def play_draining_adversary(game: TokenGame, moves: int) -> int:
    """Greedy adversary attacking the claim: always drain the smallest
    stack into the tallest stack it is still allowed to feed.

    This is the worst natural strategy against the minimum-height
    claim; benchmarks show the claim's bound η − 5k + 5 is respected
    (and reasonably tight in its 5k shape).
    """
    played = 0
    for _ in range(moves):
        order = sorted(range(game.num_stacks), key=lambda s: game.heights[s])
        src = order[0]
        candidates = [
            dst
            for dst in range(game.num_stacks)
            if dst != src and game.is_legal(src, dst)
        ]
        if not candidates:
            break
        dst = max(candidates, key=lambda d: game.heights[d])
        game.move(src, dst)
        played += 1
    return played


def play_move_sequence(
    game: TokenGame, sequence: Iterable[tuple[int, int]]
) -> int:
    """Play explicit (src, dst) moves, skipping illegal ones.

    Returns the number of moves actually applied.  Used by
    property-based tests: hypothesis generates arbitrary sequences and
    the invariants must survive whichever subset was legal.
    """
    played = 0
    for src, dst in sequence:
        if game.is_legal(src, dst):
            game.move(src, dst)
            played += 1
    return played
