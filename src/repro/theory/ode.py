"""Continuous-time approximation of domain evolution (paper §2.3).

The paper approximates the discrete motion of k agents on the ring by a
system of ODEs over the domain sizes ``nu_i(t)``:

    d nu_i / dt = 1/nu_i - 1/(2 nu_{i-1}) - 1/(2 nu_{i+1}),

with boundary conditions depending on coverage: before the ring is
covered, domains 1 and k border the unexplored region and the paper
sets ``nu_0 = nu_{k+1} = +inf`` (the corresponding terms vanish); after
coverage the system is cyclic (``nu_0 = nu_k``, ``nu_{k+1} = nu_1``).

The postulated asymptotics — ``f(t) ~ sqrt(t)`` growth of the covered
region and relative domain sizes ``~ 1/i`` (more precisely the Lemma 13
profile) — are checked against both this integration and the discrete
simulator in ``benchmarks/bench_ode_approximation.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.integrate import solve_ivp


def domain_rhs(
    nu: np.ndarray, covered: bool, mirror_right: bool = False
) -> np.ndarray:
    """Right-hand side of the §2.3 ODE system for sizes ``nu_1..nu_k``.

    Boundary conditions:

    * ``covered=True`` — cyclic (``nu_0 = nu_k``, ``nu_{k+1} = nu_1``):
      the ring after coverage;
    * ``covered=False, mirror_right=False`` — both ends open
      (``nu_0 = nu_{k+1} = +inf``): the ring while uncovered, whose two
      frontiers make the profile symmetric;
    * ``covered=False, mirror_right=True`` — open at the frontier end,
      mirror at the other (``nu_{k+1} = nu_k``): the *path* of the
      Theorem 1 reduction, whose stationary shape is exactly the
      Lemma 13 sequence (its boundary condition ``a_{k+1} = a_k``).
    """
    nu = np.asarray(nu, dtype=float)
    k = nu.size
    if k == 0:
        raise ValueError("at least one domain is required")
    inv = 1.0 / nu
    rhs = inv.copy()
    if covered:
        left = np.roll(inv, 1)    # nu_{i-1}; cyclic
        right = np.roll(inv, -1)  # nu_{i+1}; cyclic
        rhs -= 0.5 * (left + right)
    else:
        # nu_0 = +inf: the frontier term vanishes at the left end.
        rhs[1:] -= 0.5 * inv[:-1]
        rhs[:-1] -= 0.5 * inv[1:]
        if mirror_right:
            # nu_{k+1} = nu_k: the wall reflects the last domain.
            rhs[-1] -= 0.5 * inv[-1]
    return rhs


@dataclass(frozen=True)
class DomainTrajectory:
    """Solution of the domain ODE on a time grid."""

    times: np.ndarray          # shape (T,)
    sizes: np.ndarray          # shape (T, k)

    @property
    def total(self) -> np.ndarray:
        """Total covered length over time (sum of domain sizes)."""
        return self.sizes.sum(axis=1)

    def growth_exponent(self, skip_fraction: float = 0.5) -> float:
        """Log-log slope of total size vs time over the late segment.

        The paper postulates f(t) ~ sqrt(t), i.e. an exponent of 0.5.
        Early transients are skipped.
        """
        start = int(self.times.size * skip_fraction)
        if self.times.size - start < 2:
            raise ValueError("not enough samples to fit a growth exponent")
        x = np.log(self.times[start:])
        y = np.log(self.total[start:])
        slope, _ = np.polyfit(x, y, 1)
        return float(slope)

    def final_profile(self) -> np.ndarray:
        """Final domain sizes normalized to sum 1 (compare to Lemma 13)."""
        final = self.sizes[-1]
        return final / final.sum()


def integrate_domains(
    initial_sizes: np.ndarray | list[float],
    t_final: float,
    covered: bool = False,
    mirror_right: bool = False,
    num_samples: int = 200,
    rtol: float = 1e-8,
    atol: float = 1e-10,
) -> DomainTrajectory:
    """Integrate the §2.3 ODE from ``initial_sizes`` up to ``t_final``.

    All initial sizes must be positive.  The integration starts at
    ``t = 1`` (the system is singular at size 0, and the paper's
    approximation is only meaningful for sizes >> 1), sampling
    logarithmically so the sqrt-growth fit is well conditioned.  See
    :func:`domain_rhs` for the boundary-condition options.
    """
    nu0 = np.asarray(initial_sizes, dtype=float)
    if nu0.ndim != 1 or nu0.size < 1:
        raise ValueError("initial_sizes must be a non-empty 1-d array")
    if np.any(nu0 <= 0):
        raise ValueError("all initial domain sizes must be positive")
    if t_final <= 1.0:
        raise ValueError(f"t_final must exceed 1, got {t_final}")
    times = np.logspace(0.0, np.log10(t_final), num_samples)

    def rhs(_t: float, nu: np.ndarray) -> np.ndarray:
        return domain_rhs(nu, covered, mirror_right)

    solution = solve_ivp(
        rhs,
        (times[0], times[-1]),
        nu0,
        t_eval=times,
        rtol=rtol,
        atol=atol,
        method="RK45",
    )
    if not solution.success:  # pragma: no cover - defensive
        raise RuntimeError(f"ODE integration failed: {solution.message}")
    return DomainTrajectory(times=solution.t, sizes=solution.y.T.copy())


def equilibrium_check(sizes: np.ndarray | list[float]) -> float:
    """Max |d nu_i/dt| for a cyclic configuration (0 at equilibrium).

    After coverage the stationary solution is the uniform profile
    ``g_i = const`` (paper §2.3): equal domains have zero drift.
    """
    return float(np.abs(domain_rhs(np.asarray(sizes, float), covered=True)).max())
