"""The Lemma 13 profile sequence — the shape of domains in the worst case.

Lemma 13 constructs, for every k > 3, a normalized sequence
``a_0 = +inf, a_1 > a_2 > ... > a_k = a_{k+1}`` with ``sum a_i = 1``
describing the *relative* sizes of agent domains in the all-on-one-node
worst case: the i-th agent from the frontier keeps a domain of size
proportional to ``a_i ~ 1/(i H_k)``.  The construction goes through the
auxiliary recurrence

    b_0 = 0,  b_1 = c,  b_{i+1} = 2 b_i - b_{i-1} - 1/b_i,

choosing the unique ``c`` with ``b_{k+1} = b_k`` and setting
``a_i = 1/(c b_i)``.  We solve for ``c`` by bisection (the proof shows
``d_{k+1}(c) = b_{k+1} - b_k`` is continuous and crosses zero), then
expose all six properties of the lemma for verification:

(1) ``a_0 = +inf``;
(2) ``a_{k+1} = a_k < a_{k-1} < ... < a_1``;
(3) ``sum_{i=1..k} a_i = 1``;
(4) ``a_i / a_1 = 2/a_i - 1/a_{i-1} - 1/a_{i+1}`` (with ``1/a_0 = 0``);
(5) ``1/(4 (H_k + 1)) <= a_1 <= 1/H_k``;
(6) ``a_i >= 1/(4 i (H_k + 1))``.

The sequence also powers the Theorem 1 delayed deployment: agent i is
parked at position ``p_i S`` where ``p_i = sum_{j>=i} a_j``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

from repro.theory.bounds import harmonic_number


def _b_sequence(c: float, k: int) -> list[float] | None:
    """The {b_i} recurrence up to index k+1, or None if it degenerates.

    Degeneration (some ``b_i <= 0`` before the end) means ``c`` is too
    small; the bisection treats it as a negative sign.
    """
    b = [0.0, c]
    for _ in range(1, k + 1):
        nxt = 2.0 * b[-1] - b[-2] - 1.0 / b[-1]
        if nxt <= 0.0 or not math.isfinite(nxt):
            return None
        b.append(nxt)
    return b


def _final_difference(c: float, k: int) -> float:
    """d_{k+1}(c) = b_{k+1} - b_k, with -inf for degenerate sequences."""
    b = _b_sequence(c, k)
    if b is None:
        return -math.inf
    return b[k + 1] - b[k]


@dataclass(frozen=True)
class ProfileSequence:
    """The solved Lemma 13 sequence for a given k.

    ``a[i]`` is ``a_i`` for ``1 <= i <= k`` (index 0 stores ``inf`` so
    the paper's indexing carries over); ``p[i] = sum_{j=i..k} a_j`` are
    the Theorem 1 position fractions (``p[1] = 1``).
    """

    k: int
    c: float
    b: tuple[float, ...]
    a: tuple[float, ...]

    @property
    def p(self) -> tuple[float, ...]:
        """Position fractions p_i = a_i + ... + a_k; p[0] unused (inf)."""
        suffix = [0.0] * (self.k + 2)
        for i in range(self.k, 0, -1):
            suffix[i] = suffix[i + 1] + self.a[i]
        suffix[0] = math.inf
        return tuple(suffix[: self.k + 1])

    def residual(self, i: int) -> float:
        """Deviation from property (4) at index i (should be ~0)."""
        if not 1 <= i <= self.k:
            raise ValueError(f"index {i} outside [1, {self.k}]")
        a = self.a
        left = a[i] / a[1]
        prev = 0.0 if i == 1 else 1.0 / a[i - 1]
        nxt = 1.0 / (a[i] if i == self.k else a[i + 1])
        return left - (2.0 / a[i] - prev - nxt)


@lru_cache(maxsize=None)
def solve_profile(k: int, tolerance: float = 1e-13) -> ProfileSequence:
    """Solve Lemma 13 for ``k`` agents (requires ``k > 3``).

    Brackets the root of ``d_{k+1}(c)`` and bisects to ``tolerance``
    (relative).  The proof gives ``H_k <= c² <= 4(H_k + 1)``, which we
    use as the initial bracket (widened defensively).
    """
    if k <= 3:
        raise ValueError(f"Lemma 13 requires k > 3, got {k}")
    h_k = harmonic_number(k)
    low = 0.5 * math.sqrt(h_k)
    high = 2.5 * math.sqrt(h_k + 1.0)
    # d_{k+1} is negative for too-small c and positive for large c.
    for _ in range(200):
        if _final_difference(low, k) < 0.0:
            break
        low *= 0.5
    else:  # pragma: no cover - defensive
        raise RuntimeError("failed to bracket the Lemma 13 root from below")
    for _ in range(200):
        if _final_difference(high, k) > 0.0:
            break
        high *= 2.0
    else:  # pragma: no cover - defensive
        raise RuntimeError("failed to bracket the Lemma 13 root from above")
    while (high - low) > tolerance * high:
        mid = 0.5 * (low + high)
        if _final_difference(mid, k) < 0.0:
            low = mid
        else:
            high = mid
    c = 0.5 * (low + high)
    b = _b_sequence(c, k)
    if b is None:  # pragma: no cover - defensive
        raise RuntimeError("converged c yields a degenerate sequence")
    a = [math.inf] + [1.0 / (c * b[i]) for i in range(1, k + 1)]
    return ProfileSequence(k=k, c=c, b=tuple(b), a=tuple(a))
