"""Analytical toolkit: the paper's sequences, bounds, ODE and token game.

* :mod:`repro.theory.sequences` — the Lemma 13 normalized domain-size
  profile {a_i} (solved numerically exactly as constructed in the
  proof: bisection on the free parameter c of the {b_i} recurrence);
* :mod:`repro.theory.bounds` — every Θ(...) shape of Table 1 as an
  explicit normalization formula, plus harmonic numbers;
* :mod:`repro.theory.ode` — the continuous-time approximation of §2.3,
  integrated with scipy;
* :mod:`repro.theory.token_game` — the one-player token game from the
  appendix proof of Lemma 8, with its invariants executable.
"""

from repro.theory.bounds import (
    harmonic_number,
    rotor_cover_best,
    rotor_cover_worst,
    rotor_return_time,
    walk_cover_best,
    walk_cover_worst,
)
from repro.theory.ode import integrate_domains
from repro.theory.sequences import ProfileSequence, solve_profile
from repro.theory.token_game import TokenGame

__all__ = [
    "ProfileSequence",
    "solve_profile",
    "harmonic_number",
    "rotor_cover_worst",
    "rotor_cover_best",
    "rotor_return_time",
    "walk_cover_worst",
    "walk_cover_best",
    "integrate_domains",
    "TokenGame",
]
