"""Plain-text table rendering for experiment reports.

Every experiment prints its results in the same layout the paper uses
(Table 1 style): a header row, aligned columns, and an optional caption.
Keeping the renderer tiny and dependency-free means benchmark output is
readable both in CI logs and in a terminal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence


def _render_cell(value: object, spec: str | None) -> str:
    if value is None:
        return "-"
    if spec and isinstance(value, (int, float)):
        return format(value, spec)
    return str(value)


@dataclass
class Table:
    """An append-only table with aligned plain-text rendering."""

    columns: Sequence[str]
    caption: str = ""
    formats: Sequence[str | None] | None = None
    rows: list[list[object]] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        """Append one row; must match the number of columns."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has "
                f"{len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def render(self) -> str:
        """Render the table with a caption, header and rule lines."""
        return format_table(
            self.columns, self.rows, caption=self.caption, formats=self.formats
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()

    def column(self, name: str) -> list[object]:
        """Extract one column by header name (for assertions in benches)."""
        try:
            index = list(self.columns).index(name)
        except ValueError as exc:
            raise KeyError(f"no column named {name!r}") from exc
        return [row[index] for row in self.rows]


def format_table(
    columns: Sequence[str],
    rows: Iterable[Sequence[object]],
    caption: str = "",
    formats: Sequence[str | None] | None = None,
) -> str:
    """Format ``rows`` as an aligned plain-text table."""
    columns = [str(c) for c in columns]
    if formats is None:
        formats = [None] * len(columns)
    if len(formats) != len(columns):
        raise ValueError("formats must match the number of columns")
    rendered_rows = []
    for row in rows:
        row = list(row)
        if len(row) != len(columns):
            raise ValueError("row width does not match column count")
        rendered_rows.append(
            [_render_cell(cell, spec) for cell, spec in zip(row, formats)]
        )
    widths = [len(header) for header in columns]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))

    parts: list[str] = []
    if caption:
        parts.append(caption)
    parts.append(line(columns))
    parts.append(line(["-" * width for width in widths]))
    parts.extend(line(row) for row in rendered_rows)
    return "\n".join(parts)
