"""A tiny stopwatch used by the experiment harness."""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class Stopwatch:
    """Accumulating stopwatch with context-manager support.

    >>> watch = Stopwatch()
    >>> with watch:
    ...     _ = sum(range(1000))
    >>> watch.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    _started_at: float | None = field(default=None, repr=False)

    @property
    def running(self) -> bool:
        """Whether an interval is currently being timed."""
        return self._started_at is not None

    def start(self) -> "Stopwatch":
        if self._started_at is not None:
            raise RuntimeError("stopwatch already running")
        self._started_at = time.perf_counter()
        return self

    def split(self) -> float:
        """Lap reading: ``elapsed`` plus the in-flight interval.

        Unlike :meth:`stop`, the stopwatch keeps running; span
        implementations use consecutive splits as start/end offsets on
        one shared clock.
        """
        if self._started_at is None:
            raise RuntimeError("stopwatch is not running")
        return self.elapsed + (time.perf_counter() - self._started_at)

    def stop(self) -> float:
        if self._started_at is None:
            raise RuntimeError("stopwatch is not running")
        self.elapsed += time.perf_counter() - self._started_at
        self._started_at = None
        return self.elapsed

    def reset(self) -> None:
        self.elapsed = 0.0
        self._started_at = None

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
