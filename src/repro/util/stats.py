"""Summary statistics for repeated stochastic measurements.

Random-walk cover times are random variables; every experiment that
reports them runs repetitions and reports a mean with a confidence
interval.  This module provides the small amount of statistics needed
for that: summaries, normal-approximation intervals, and a bootstrap
fallback for small samples / skewed distributions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from statistics import NormalDist
from typing import Sequence

import numpy as np

from repro.util.rng import make_rng


@dataclass(frozen=True)
class Summary:
    """Point summary of a sample of real measurements."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    median: float

    def sem(self) -> float:
        """Standard error of the mean (0 for singleton samples)."""
        if self.count <= 1:
            return 0.0
        return self.std / math.sqrt(self.count)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"mean={self.mean:.4g} ±{self.sem():.2g} "
            f"(n={self.count}, min={self.minimum:.4g}, max={self.maximum:.4g})"
        )


def summarize(values: Sequence[float]) -> Summary:
    """Compute a :class:`Summary` of ``values`` (must be non-empty)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    return Summary(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        median=float(np.median(arr)),
    )


def normal_ci(
    values: Sequence[float], confidence: float = 0.95
) -> tuple[float, float]:
    """Normal-approximation confidence interval for the mean.

    Uses the z quantile; adequate for the sample sizes used in the
    experiments (tens of repetitions).  For ``confidence`` = 0.95 the
    z value is 1.96.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    summary = summarize(values)
    # The three standard quantiles cover almost every use in this
    # repository; anything else comes from the stdlib inverse normal
    # CDF (setup.py declares numpy only, so scipy must not be needed).
    z_table = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}
    z = z_table.get(round(confidence, 2))
    if z is None:
        z = float(NormalDist().inv_cdf(0.5 + confidence / 2.0))
    half = z * summary.sem()
    return summary.mean - half, summary.mean + half


def bootstrap_ci(
    values: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int | None = 0,
) -> tuple[float, float]:
    """Percentile bootstrap confidence interval for the mean."""
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot bootstrap an empty sample")
    if arr.size == 1:
        return float(arr[0]), float(arr[0])
    rng = make_rng(seed)
    indices = rng.integers(0, arr.size, size=(resamples, arr.size))
    means = arr[indices].mean(axis=1)
    lower = float(np.quantile(means, (1.0 - confidence) / 2.0))
    upper = float(np.quantile(means, 1.0 - (1.0 - confidence) / 2.0))
    return lower, upper


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (used for averaging ratios across a sweep)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot average an empty sample")
    if np.any(arr <= 0):
        raise ValueError("geometric mean requires strictly positive values")
    return float(np.exp(np.log(arr).mean()))


def max_abs_deviation_ratio(values: Sequence[float]) -> float:
    """Spread of a sequence as ``max/min`` (flatness measure).

    Experiments that verify an asymptotic shape (e.g. ``C(n,k) * log k /
    n**2`` should be roughly constant in ``k``) report this ratio; a value
    close to 1 means the normalized column is flat.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot measure spread of an empty sample")
    if np.any(arr <= 0):
        raise ValueError("spread ratio requires strictly positive values")
    return float(arr.max() / arr.min())
