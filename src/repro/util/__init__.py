"""Shared utilities: seeded RNG helpers, statistics, table rendering, timing.

These helpers are deliberately small and dependency-light; every other
subpackage of :mod:`repro` may import from here, but :mod:`repro.util`
imports nothing from the rest of the package.
"""

from repro.util.rng import derive_seed, make_rng, spawn_rngs
from repro.util.stats import (
    Summary,
    bootstrap_ci,
    geometric_mean,
    normal_ci,
    summarize,
)
from repro.util.tables import Table, format_table
from repro.util.timing import Stopwatch

__all__ = [
    "derive_seed",
    "make_rng",
    "spawn_rngs",
    "Summary",
    "bootstrap_ci",
    "geometric_mean",
    "normal_ci",
    "summarize",
    "Table",
    "format_table",
    "Stopwatch",
]
