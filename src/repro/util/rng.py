"""Deterministic random number generator plumbing.

All stochastic components of the reproduction (random walks, random
initializations, random graphs) accept either an integer seed or a
:class:`numpy.random.Generator`.  Centralizing the coercion here keeps
experiments reproducible: the same seed always yields the same runs.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Sequence

import numpy as np

RngLike = "int | np.random.Generator | None"


def make_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` yields a fresh nondeterministic generator; an ``int`` yields a
    deterministic PCG64 generator; an existing generator is returned as-is
    (not copied), so callers sharing a generator share its stream.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_seed(base: int, *labels: object) -> int:
    """Derive a stable 63-bit sub-seed from ``base`` and context labels.

    Experiments that fan out over a parameter grid use this to give every
    cell its own independent-but-reproducible stream::

        seed = derive_seed(1234, "table1", n, k, repetition)

    The derivation is a SHA-256 hash, so it is stable across processes,
    platforms and Python versions (unlike ``hash()``).
    """
    text = ":".join([str(base), *[str(label) for label in labels]])
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def spawn_rngs(
    seed: int, count: int, *labels: object
) -> list[np.random.Generator]:
    """Create ``count`` independent deterministic generators.

    Each generator is seeded from :func:`derive_seed` with its index
    appended, so the list is reproducible and its members independent.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return [
        make_rng(derive_seed(seed, *labels, index)) for index in range(count)
    ]


def choice_seeded(
    rng: np.random.Generator, options: Sequence[object]
) -> object:
    """Pick one element of ``options`` uniformly (helper for tests)."""
    if not options:
        raise ValueError("cannot choose from an empty sequence")
    return options[int(rng.integers(0, len(options)))]


def shuffled(rng: np.random.Generator, items: Iterable[object]) -> list:
    """Return a new list with the elements of ``items`` shuffled."""
    result = list(items)
    rng.shuffle(result)
    return result
