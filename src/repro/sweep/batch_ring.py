"""Vectorized batch ring kernel: many rotor-router lanes per numpy op.

Sweeps spend their time stepping thousands of *independent* ring
configurations, so instead of vectorizing one configuration (the
:class:`repro.core.ring_dense.DenseRingRotorRouter` design) this kernel
stacks ``B`` of them into ``(B, n)`` arrays and advances all lanes with
one fixed sequence of numpy operations per round.

The ring's degree-2 structure makes the round-robin rule branch-free.
Storing the pointer as a bit ``p`` (1 = clockwise, 0 = anticlockwise)
instead of a +/-1 direction:

* clockwise exits  ``fwd = (c + p) >> 1``  (ceil(c/2) when the pointer
  is clockwise, floor(c/2) otherwise),
* anticlockwise exits ``bwd = c - fwd``,
* arrivals ``a(v) = fwd(v-1) + bwd(v+1)``,
* pointer flip iff ``c`` is odd: ``p ^= c & 1`` — fused here as
  ``p = (p ^ c) & 1`` since ``p`` is a bit.

Counts are bounded by the lane's agent count ``k``, so the dtype is
chosen per batch (int8 up to k=126, int16 up to k=32766, else int64)
— the dominant cost is memory traffic and halving the element width
roughly doubles the throughput.  All buffers are preallocated and the
arrival computation writes straight into the double buffer, so a round
is allocation-free.

Per-lane detection built on top of the kernel:

* **cover** — ``cover_rounds[b]`` records the round lane ``b`` first
  had every node visited (visits = agent arrivals, initial occupancy
  counts at round 0).  Single ``step`` calls track this exactly; the
  bulk drivers (``run`` / ``run_until_covered``) instead advance in
  windows with a one-op visited accumulator (``seen |= counts``),
  reconcile per-lane unvisited counts once per window, and pin exact
  cover rounds by replaying just-covered lanes from the window's
  snapshot — per-lane reductions are ~10x the cost of the element-wise
  round itself, so they must stay off the per-step path;
* **stabilization** — :func:`batch_limit_cycles` runs Brent's
  cycle-finding with shared vectorized stepping and per-lane
  bookkeeping over configuration keys;
* **return times** — :func:`batch_return_gaps` scans one limit-cycle
  period per lane (lanes with shorter periods are frozen via the
  ``lane_mask`` argument of :meth:`BatchRingKernel.step`) and records
  the worst per-node visit gap including the wrap-around gap, exactly
  as :func:`repro.core.limit.return_time_exact`.

Step-for-step equivalence with the reference engines is enforced by
``tests/test_sweep_batch_ring.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

_DTYPE_LIMITS = ((np.int8, 126), (np.int16, 32766), (np.int64, 2**62))


def _counts_dtype(max_agents: int) -> type:
    """Smallest signed dtype holding ``c + 1`` for every count ``c``."""
    for dtype, limit in _DTYPE_LIMITS:
        if max_agents <= limit:
            return dtype
    raise ValueError(f"batch kernel supports at most 2^62 agents, got {max_agents}")


class BatchRingKernel:
    """``B`` independent k-agent rotor-routers on n-rings, stepped together.

    Parameters
    ----------
    n:
        Ring size shared by every lane (>= 3).
    pointers:
        ``(B, n)`` array-like of initial directions, +1 (clockwise) or
        -1 per node, one row per lane.
    counts:
        ``(B, n)`` array-like of initial agent counts per node; every
        lane needs at least one agent.
    track_cover:
        Maintain per-lane visited sets and ``cover_rounds``.  Turn off
        for limit-cycle searches, which only need the configuration.
    """

    def __init__(
        self,
        n: int,
        pointers: np.ndarray,
        counts: np.ndarray,
        track_cover: bool = True,
    ) -> None:
        if n < 3:
            raise ValueError(f"ring requires n >= 3, got {n}")
        directions = np.asarray(pointers)
        initial = np.asarray(counts)
        if directions.ndim != 2 or directions.shape[1] != n:
            raise ValueError(
                f"pointers must have shape (B, {n}), got {directions.shape}"
            )
        if initial.shape != directions.shape:
            raise ValueError(
                f"counts shape {initial.shape} does not match pointers "
                f"shape {directions.shape}"
            )
        if not np.all((directions == 1) | (directions == -1)):
            raise ValueError("pointers must be +1 or -1")
        if np.any(initial < 0):
            raise ValueError("counts must be non-negative")
        per_lane = initial.sum(axis=1)
        if np.any(per_lane < 1):
            raise ValueError("every lane requires at least one agent")

        self.n = n
        self.num_lanes = directions.shape[0]
        self.num_agents = per_lane.astype(np.int64)
        self.round = 0

        dtype = _counts_dtype(int(per_lane.max()))
        # Pointer bit: 1 = clockwise (+1), 0 = anticlockwise (-1).
        self._ptr = (directions == 1).astype(dtype)
        self._counts = initial.astype(dtype)
        self._next = np.empty_like(self._counts)
        self._fwd = np.empty_like(self._counts)
        self._bwd = np.empty_like(self._counts)

        self._track_cover = bool(track_cover)
        self.cover_rounds = np.full(self.num_lanes, -1, dtype=np.int64)
        if self._track_cover:
            # Visited accumulator: ``seen |= counts`` each round keeps
            # a cell nonzero iff its node was ever occupied — one
            # element-wise op per round, no comparison or temporary.
            self._seen = self._counts.copy()
            self._unvisited = n - np.count_nonzero(self._seen, axis=1)
            self.cover_rounds[self._unvisited == 0] = 0
            self._all_covered = bool((self.cover_rounds >= 0).all())
        else:
            self._seen = None
            self._unvisited = None
            self._all_covered = True

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------
    def _step_arith(self) -> None:
        """One round of the rotor-router arithmetic, no cover tracking."""
        c, p = self._counts, self._ptr
        fwd, bwd, nxt = self._fwd, self._bwd, self._next
        np.add(c, p, out=fwd)
        np.right_shift(fwd, 1, out=fwd)
        np.subtract(c, fwd, out=bwd)
        np.bitwise_xor(p, c, out=p)
        np.bitwise_and(p, 1, out=p)
        # arrivals(v) = fwd(v-1) + bwd(v+1), written into the back buffer
        np.add(fwd[:, :-2], bwd[:, 2:], out=nxt[:, 1:-1])
        np.add(fwd[:, -1], bwd[:, 1], out=nxt[:, 0])
        np.add(fwd[:, -2], bwd[:, 0], out=nxt[:, -1])
        self._counts, self._next = nxt, self._counts
        self.round += 1

    def _step_arith_subset(self, active: np.ndarray) -> None:
        """Advance only the ``active`` lanes (cost proportional to them).

        Used by the masked schedules of the limit-cycle search and the
        gap scan, where most lanes end up frozen: the frozen majority
        is never touched, instead of being snapshotted and restored.
        """
        c = self._counts[active]
        p = self._ptr[active]
        fwd = (c + p) >> 1
        bwd = c - fwd
        nxt = np.empty_like(c)
        nxt[:, 1:-1] = fwd[:, :-2] + bwd[:, 2:]
        nxt[:, 0] = fwd[:, -1] + bwd[:, 1]
        nxt[:, -1] = fwd[:, -2] + bwd[:, 0]
        self._counts[active] = nxt
        self._ptr[active] = (p ^ c) & 1
        self.round += 1

    def step(
        self,
        lane_mask: np.ndarray | None = None,
        need_visits: bool = True,
    ) -> np.ndarray | None:
        """Advance one synchronous round in every (masked) lane.

        ``lane_mask`` is an optional ``(B,)`` boolean array; lanes where
        it is false keep their configuration unchanged (used to freeze
        lanes whose per-lane schedule has ended).  Returns a ``(B, n)``
        boolean array marking the nodes that received at least one
        agent this round (all-false rows for frozen lanes) — or None
        when the caller passes ``need_visits=False`` and the kernel
        does not track cover, which keeps a masked step's cost
        proportional to the active lanes (the limit-cycle search's
        tail case).

        ``round`` counts ``step`` calls; with masks, callers manage
        per-lane time axes themselves.
        """
        want_visits = need_visits or (
            self._track_cover and not self._all_covered
        )
        if lane_mask is None:
            self._step_arith()
            visits = self._counts != 0 if want_visits else None
        else:
            active = np.flatnonzero(lane_mask)
            self._step_arith_subset(active)
            if want_visits:
                visits = np.zeros((self.num_lanes, self.n), dtype=bool)
                visits[active] = self._counts[active] != 0
            else:
                visits = None
        if self._track_cover and not self._all_covered:
            newly = visits & (self._seen == 0)
            np.bitwise_or(self._seen, self._counts, out=self._seen)
            # New visits are sparse (a lane's frontier grows by at most
            # two nodes per round), so update through indices.
            cells = np.flatnonzero(newly)
            if cells.size:
                lanes = cells // self.n
                self._unvisited -= np.bincount(
                    lanes, minlength=self.num_lanes
                )
                self._record_covered(np.unique(lanes), self.round)
        return visits

    def _record_covered(self, lanes: np.ndarray, at_round: int) -> None:
        """Stamp ``cover_rounds`` for lanes whose unvisited hit zero."""
        just = lanes[
            (self._unvisited[lanes] == 0) & (self.cover_rounds[lanes] < 0)
        ]
        if just.size:
            self.cover_rounds[just] = at_round
            self._all_covered = bool((self.cover_rounds >= 0).all())

    #: Rounds per reconciliation window of the bulk drivers: large
    #: enough to amortize the per-lane reduction, small enough that a
    #: replay is negligible.
    _WINDOW = 32

    def _advance_windowed(self, rounds: int) -> None:
        """Advance ``rounds`` rounds with windowed exact cover tracking.

        Per round only ``seen |= counts`` runs (one element-wise op);
        once per window the per-lane unvisited counts are reconciled,
        and lanes that covered inside the window are replayed from the
        window-start snapshot to recover the exact cover round.  The
        replay is deterministic, touches only the few covered lanes,
        and is bounded by the window length.
        """
        remaining = rounds
        while remaining > 0:
            window = min(self._WINDOW, remaining)
            if self._all_covered or not self._track_cover:
                for _ in range(remaining):
                    self._step_arith()
                return
            base_round = self.round
            snap_counts = self._counts.copy()
            snap_ptr = self._ptr.copy()
            snap_seen = self._seen.copy()
            for _ in range(window):
                self._step_arith()
                np.bitwise_or(self._seen, self._counts, out=self._seen)
            remaining -= window
            self._unvisited = self.n - np.count_nonzero(self._seen, axis=1)
            covered = np.flatnonzero(
                (self._unvisited == 0) & (self.cover_rounds < 0)
            )
            if covered.size:
                self._replay_cover_rounds(
                    covered, snap_counts, snap_ptr, snap_seen,
                    base_round, window,
                )
                self._all_covered = bool((self.cover_rounds >= 0).all())

    def _replay_cover_rounds(
        self,
        lanes: np.ndarray,
        snap_counts: np.ndarray,
        snap_ptr: np.ndarray,
        snap_seen: np.ndarray,
        base_round: int,
        window: int,
    ) -> None:
        """Re-run ``lanes`` from the snapshot to stamp exact cover rounds."""
        sub = object.__new__(BatchRingKernel)
        sub.n = self.n
        sub.num_lanes = len(lanes)
        sub.round = base_round
        sub._counts = snap_counts[lanes]
        sub._ptr = snap_ptr[lanes]
        sub._next = np.empty_like(sub._counts)
        sub._fwd = np.empty_like(sub._counts)
        sub._bwd = np.empty_like(sub._counts)
        sub._track_cover = True
        sub._seen = snap_seen[lanes]
        sub._unvisited = sub.n - np.count_nonzero(sub._seen, axis=1)
        sub.cover_rounds = np.full(sub.num_lanes, -1, dtype=np.int64)
        sub._all_covered = False
        for _ in range(window):
            sub.step()
            if sub._all_covered:
                break
        self.cover_rounds[lanes] = sub.cover_rounds

    def run(self, rounds: int) -> None:
        """Advance every lane ``rounds`` rounds (windowed fast path)."""
        if rounds < 0:
            raise ValueError(f"rounds must be non-negative, got {rounds}")
        self._advance_windowed(rounds)

    def run_until_covered(
        self, max_rounds: int, strict: bool = True
    ) -> np.ndarray:
        """Step until every lane has covered its ring; per-lane cover rounds.

        With ``strict``, lanes still uncovered after ``max_rounds``
        raise ``RuntimeError`` (mirroring the reference engines);
        otherwise they report -1, letting sweeps record truncation
        instead of dying mid-grid.
        """
        if not self._track_cover:
            raise RuntimeError("kernel was created with track_cover=False")
        while not self._all_covered and self.round < max_rounds:
            self._advance_windowed(
                min(self._WINDOW, max_rounds - self.round)
            )
        if strict and not self._all_covered:
            uncovered = int((self.cover_rounds < 0).sum())
            raise RuntimeError(
                f"{uncovered} of {self.num_lanes} lanes not covered "
                f"within {max_rounds} rounds"
            )
        return self.cover_rounds.copy()

    # ------------------------------------------------------------------
    # state inspection
    # ------------------------------------------------------------------
    def counts_lane(self, lane: int) -> np.ndarray:
        """Agent counts of one lane as int64 (copy)."""
        return self._counts[lane].astype(np.int64)

    def directions_lane(self, lane: int) -> list[int]:
        """Pointer directions (+1/-1) of one lane."""
        return [1 if bit else -1 for bit in self._ptr[lane]]

    def positions(self, lane: int) -> list[int]:
        """Sorted agent locations of one lane, with multiplicity."""
        row = self._counts[lane]
        result: list[int] = []
        for v in np.flatnonzero(row):
            result.extend([int(v)] * int(row[v]))
        return result

    def unvisited_lane(self, lane: int) -> int:
        if not self._track_cover:
            raise RuntimeError("kernel was created with track_cover=False")
        return int(self.n - np.count_nonzero(self._seen[lane]))

    def state_keys(self, lanes: "list[int] | None" = None) -> dict[int, bytes]:
        """Configuration keys (pointer bits + counts) by lane index.

        Two lanes of same-dtype kernels share a key iff they are in the
        same configuration; used by the batch Brent search, which
        passes only the still-unresolved ``lanes`` so the search tail
        scales with them rather than the whole batch.
        """
        if lanes is None:
            lanes = range(self.num_lanes)
        ptr_rows = self._ptr
        count_rows = self._counts
        return {
            b: ptr_rows[b].tobytes() + count_rows[b].tobytes()
            for b in lanes
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BatchRingKernel(n={self.n}, lanes={self.num_lanes}, "
            f"round={self.round})"
        )


def lanes_from_configs(
    n: int, configurations: list[tuple[list[int], list[int]]]
) -> tuple[np.ndarray, np.ndarray]:
    """Stack ``(directions, agents)`` pairs into kernel input arrays.

    Every pair describes one lane: a length-``n`` +/-1 direction list
    and agent starting nodes with multiplicity (the same arguments the
    reference :class:`repro.core.ring.RingRotorRouter` takes).
    """
    if not configurations:
        raise ValueError("at least one configuration is required")
    num_lanes = len(configurations)
    pointers = np.empty((num_lanes, n), dtype=np.int8)
    counts = np.zeros((num_lanes, n), dtype=np.int64)
    for b, (directions, agents) in enumerate(configurations):
        if len(directions) != n:
            raise ValueError(
                f"lane {b}: pointers have length {len(directions)}, "
                f"ring has {n} nodes"
            )
        pointers[b] = directions
        if not agents:
            raise ValueError(f"lane {b}: at least one agent is required")
        for a in agents:
            if not 0 <= a < n:
                raise ValueError(f"lane {b}: agent position {a} out of range")
            counts[b, a] += 1
    return pointers, counts


# ----------------------------------------------------------------------
# per-lane limit-cycle detection (stabilization + return times)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BatchLimitCycles:
    """Per-lane stabilization results: preperiod mu and period lam.

    Lanes whose cycle was not confirmed within the round budget (only
    possible with ``strict=False``) carry -1 in both arrays.
    """

    preperiods: np.ndarray
    periods: np.ndarray


def batch_limit_cycles(
    n: int,
    pointers: np.ndarray,
    counts: np.ndarray,
    max_rounds: int,
    strict: bool = True,
) -> BatchLimitCycles:
    """Brent's cycle search over every lane, with shared stepping.

    The kernel advances all lanes with one vectorized step per round;
    only the key comparison and the per-lane ``(power, lam)`` schedule
    run in Python.  Results match
    :func:`repro.core.limit.find_limit_cycle` exactly (both compute
    the true minimal period and preperiod).

    With ``strict``, exhausting ``max_rounds`` raises ``RuntimeError``
    (mirroring the reference); otherwise unresolved lanes report -1,
    letting sweeps record truncation instead of dying mid-grid.
    """
    if max_rounds < 1:
        raise ValueError(f"max_rounds must be positive, got {max_rounds}")
    hare = BatchRingKernel(n, pointers, counts, track_cover=False)
    num_lanes = hare.num_lanes
    saved = hare.state_keys()  # tortoise snapshots (initial configuration)
    power = np.ones(num_lanes, dtype=np.int64)
    lam = np.zeros(num_lanes, dtype=np.int64)
    periods = np.zeros(num_lanes, dtype=np.int64)
    pending = list(range(num_lanes))
    pending_mask = np.ones(num_lanes, dtype=bool)
    steps = 0
    while pending:
        if steps >= max_rounds:
            if strict:
                raise RuntimeError(
                    f"{len(pending)} lanes have no limit cycle confirmed "
                    f"within {max_rounds} rounds"
                )
            periods[pending] = -1
            break
        # Resolved lanes are frozen: their configuration is no longer
        # read, and the search tail then scales with unresolved lanes.
        hare.step(lane_mask=pending_mask, need_visits=False)
        steps += 1
        keys = hare.state_keys(pending)
        still = []
        for b in pending:
            lam[b] += 1
            if keys[b] == saved[b]:
                periods[b] = lam[b]
                pending_mask[b] = False
            else:
                if lam[b] == power[b]:
                    saved[b] = keys[b]
                    power[b] *= 2
                    lam[b] = 0
                still.append(b)
        pending = still

    # Phase 2: preperiods, with the hare a full period ahead per lane.
    # Unresolved lanes (period -1) are frozen by the masks throughout.
    tortoise = BatchRingKernel(n, pointers, counts, track_cover=False)
    hare = BatchRingKernel(n, pointers, counts, track_cover=False)
    for t in range(int(periods.max())):
        hare.step(lane_mask=periods > t, need_visits=False)
    preperiods = np.zeros(num_lanes, dtype=np.int64)
    resolved = periods > 0
    tortoise_keys = tortoise.state_keys()
    hare_keys = hare.state_keys()
    unmatched = np.array(
        [
            resolved[b] and tortoise_keys[b] != hare_keys[b]
            for b in range(num_lanes)
        ]
    )
    steps = 0
    while unmatched.any():
        if steps > max_rounds:
            raise RuntimeError(
                f"preperiod exceeds {max_rounds} rounds (inconsistent state)"
            )
        tortoise.step(lane_mask=unmatched, need_visits=False)
        hare.step(lane_mask=unmatched, need_visits=False)
        steps += 1
        preperiods[unmatched] += 1
        open_lanes = np.flatnonzero(unmatched)
        tortoise_keys = tortoise.state_keys(open_lanes)
        hare_keys = hare.state_keys(open_lanes)
        for b in open_lanes:
            if tortoise_keys[b] == hare_keys[b]:
                unmatched[b] = False
    preperiods[~resolved] = -1
    return BatchLimitCycles(preperiods=preperiods, periods=periods)


def batch_return_gaps(
    n: int,
    pointers: np.ndarray,
    counts: np.ndarray,
    cycles: BatchLimitCycles,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-lane (worst, best) visit gaps within one limit-cycle period.

    Advances each lane to its cycle start, then scans exactly one
    period per lane recording per-node gaps between consecutive visits,
    including the wrap-around gap (last visit -> first visit of the
    next repetition), exactly like
    :func:`repro.core.limit.return_time_exact`.
    """
    runner = BatchRingKernel(n, pointers, counts, track_cover=False)
    num_lanes = runner.num_lanes
    preperiods, periods = cycles.preperiods, cycles.periods
    if np.any(periods < 1):
        raise ValueError(
            "every lane needs a confirmed cycle; slice unresolved "
            "(period -1) lanes out before computing gaps"
        )
    for t in range(int(preperiods.max())):
        runner.step(lane_mask=preperiods > t, need_visits=False)

    first = np.full((num_lanes, n), -1, dtype=np.int64)
    last = np.full((num_lanes, n), -1, dtype=np.int64)
    max_gap = np.zeros((num_lanes, n), dtype=np.int64)
    for t in range(int(periods.max())):
        visits = runner.step(lane_mask=periods > t)
        seen_before = visits & (last >= 0)
        gaps = t - last
        np.maximum(max_gap, np.where(seen_before, gaps, 0), out=max_gap)
        first[visits & (first < 0)] = t
        last[visits] = t

    wrap = first + periods[:, np.newaxis] - last
    gaps = np.maximum(max_gap, wrap).astype(float)
    gaps[first < 0] = np.inf  # never visited in-cycle (impossible on a ring)
    return gaps.max(axis=1), gaps.min(axis=1)
